//! Per-rung wall-clock comparison on the golden six: how much cheaper
//! each fidelity rung is per simulation, on the configuration the
//! design-space sweep runs hottest (exclusive + CATCH). Feeds the
//! DESIGN.md §14 / EXPERIMENTS.md ladder measurements.
//!
//! ```text
//! cargo run --release --example rung_timing [OPS [WARMUP]]
//! ```

use catch_core::experiments::GOLDEN_WORKLOADS;
use catch_core::{System, SystemConfig};
use catch_workloads::suite;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let ops: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(80_000);
    let warmup: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(30_000);
    let traces: Vec<_> = GOLDEN_WORKLOADS
        .iter()
        .map(|name| {
            suite::by_name(name)
                .expect("golden workload exists")
                .generate(ops, 42)
        })
        .collect();
    println!("rung_timing: golden six, ops={ops} warmup={warmup}");
    for (label, config) in [
        (
            "exclusive+CATCH",
            SystemConfig::baseline_exclusive().with_catch(),
        ),
        ("exclusive plain", SystemConfig::baseline_exclusive()),
    ] {
        println!("{label}:");
        let system = System::new(config);
        let mut per_rung = Vec::new();
        for rung in ["fast", "lite", "ooo"] {
            // One untimed warm-up pass, then two timed passes over all six.
            let run_all = |sys: &System| {
                for trace in &traces {
                    let r = match rung {
                        "fast" => sys.run_st_fast(trace.clone(), warmup),
                        "lite" => sys.run_st_lite(trace.clone(), warmup),
                        _ => sys.run_st_warm(trace.clone(), warmup),
                    };
                    std::hint::black_box(r);
                }
            };
            run_all(&system);
            let t = Instant::now();
            run_all(&system);
            run_all(&system);
            let ms = t.elapsed().as_secs_f64() * 1000.0 / (2.0 * traces.len() as f64);
            per_rung.push((rung, ms));
            println!("  {rung:<5} {ms:8.2} ms/run");
        }
        let ooo = per_rung.last().expect("three rungs").1;
        for (rung, ms) in &per_rung[..2] {
            println!("  {rung} speedup vs ooo: {:.2}x", ooo / ms.max(1e-9));
        }
    }
}
