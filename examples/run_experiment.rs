//! Runs any paper experiment by id (same registry the bench targets use).
//!
//! ```sh
//! cargo run --release --example run_experiment -- fig10
//! cargo run --release --example run_experiment -- fig10 40000 10000
//! cargo run --release --example run_experiment -- --md fig10    # markdown
//! cargo run --release --example run_experiment -- --jobs 4 fig10
//! cargo run --release --example run_experiment                  # lists ids
//! ```
//!
//! `--jobs N` sets the worker-thread count for suite runs (equivalent to
//! `CATCH_JOBS=N`; default: all cores). Results are bit-identical for
//! every N — parallelism only changes wall-clock time.

use catch_core::experiments::{self, runner, EvalConfig};

fn usage_and_exit() -> ! {
    eprintln!("usage: run_experiment [--md] [--jobs N] <id> [ops] [warmup]");
    eprintln!("available experiments:");
    for id in experiments::all_ids() {
        eprintln!("  {id}");
    }
    std::process::exit(2);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut markdown = false;
    // Flags may appear in any order ahead of the positional arguments.
    loop {
        match args.first().map(String::as_str) {
            Some("--md") => {
                markdown = true;
                args.remove(0);
            }
            Some("--jobs") => {
                args.remove(0);
                let Some(n) = args.first().and_then(|s| s.parse::<usize>().ok()) else {
                    eprintln!("--jobs requires a positive integer");
                    usage_and_exit();
                };
                args.remove(0);
                // The experiment registry sizes its Runner from the
                // environment, so the flag funnels through CATCH_JOBS.
                std::env::set_var(runner::JOBS_ENV, n.max(1).to_string());
            }
            _ => break,
        }
    }
    let Some(id) = args.first() else {
        usage_and_exit();
    };
    if !experiments::all_ids().contains(&id.as_str()) {
        eprintln!(
            "unknown experiment '{id}'; available: {:?}",
            experiments::all_ids()
        );
        std::process::exit(2);
    }
    let mut eval = EvalConfig::standard();
    if let Some(ops) = args.get(1).and_then(|s| s.parse().ok()) {
        eval.ops = ops;
    }
    if let Some(warmup) = args.get(2).and_then(|s| s.parse().ok()) {
        eval.warmup = warmup;
    }
    let report = experiments::run(id, &eval);
    if markdown {
        println!("{}", report.to_markdown());
    } else {
        println!("{report}");
    }
}
