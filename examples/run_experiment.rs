//! Runs any paper experiment by id (same registry the bench targets use).
//!
//! ```sh
//! cargo run --release --example run_experiment -- fig10
//! cargo run --release --example run_experiment -- fig10 40000 10000
//! cargo run --release --example run_experiment -- --md fig10    # markdown
//! cargo run --release --example run_experiment -- --jobs 4 fig10
//! cargo run --release --example run_experiment -- --sample 5000 fig10
//! cargo run --release --example run_experiment -- sample-smoke  # CI gate
//! cargo run --release --example run_experiment                  # lists ids
//! ```
//!
//! `--jobs N` sets the worker-thread count for suite runs (equivalent to
//! `CATCH_JOBS=N`; default: all cores). Results are bit-identical for
//! every N — parallelism only changes wall-clock time.
//!
//! `--sample I` runs each workload in SimPoint-style sampled mode with
//! `I`-op intervals instead of simulating every op in detail (see
//! DESIGN.md, "Sampling methodology").
//!
//! The special id `sample-smoke` is the CI accuracy gate: it runs one
//! golden workload full and sampled, prints both IPCs with the plan's
//! reported error bound, and exits non-zero if either the reported bound
//! or the actual IPC error reaches 5%.

use catch_core::experiments::{self, runner, EvalConfig};
use catch_core::{SampleConfig, System, SystemConfig};
use catch_workloads::suite;

fn usage_and_exit() -> ! {
    eprintln!("usage: run_experiment [--md] [--jobs N] [--sample I] <id> [ops] [warmup]");
    eprintln!("available experiments:");
    for id in experiments::all_ids() {
        eprintln!("  {id}");
    }
    eprintln!("  sample-smoke (CI accuracy gate)");
    std::process::exit(2);
}

/// The CI sampling gate: one golden workload, full vs sampled, hard-fail
/// when the reported bound or the achieved IPC error reaches `LIMIT_PCT`.
fn sample_smoke(eval: &EvalConfig) -> ! {
    const WORKLOAD: &str = "tpcc_like";
    const LIMIT_PCT: f64 = 5.0;
    let interval = eval.sample.unwrap_or_else(|| (eval.ops / 20).max(1));
    let trace = suite::by_name(WORKLOAD)
        .expect("golden workload exists")
        .generate(eval.ops, eval.seed);
    let system = System::new(SystemConfig::baseline_exclusive());
    let full = system.run_st(trace.clone());
    let sampled = system.run_sampled(trace, &SampleConfig::new(interval).with_max_clusters(10));
    let err = 100.0 * (sampled.result.ipc() - full.ipc()).abs() / full.ipc();
    let bound = sampled.sampling.ipc_error_bound_pct;
    println!(
        "sample-smoke: {WORKLOAD} ops={} interval={interval} \
         full IPC {:.4}, sampled IPC {:.4}, err {err:.2}%, reported bound {bound:.2}% \
         (detailed {:.1}% of trace)",
        eval.ops,
        full.ipc(),
        sampled.result.ipc(),
        100.0 * sampled.sampling.detailed_fraction()
    );
    if bound >= LIMIT_PCT || err >= LIMIT_PCT {
        eprintln!("sample-smoke FAILED: error or bound at/over {LIMIT_PCT}%");
        std::process::exit(1);
    }
    println!("sample-smoke OK (bound and error under {LIMIT_PCT}%)");
    std::process::exit(0);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut markdown = false;
    let mut sample: Option<usize> = None;
    // Flags may appear in any order ahead of the positional arguments.
    loop {
        match args.first().map(String::as_str) {
            Some("--md") => {
                markdown = true;
                args.remove(0);
            }
            Some("--jobs") => {
                args.remove(0);
                let Some(raw) = args.first() else {
                    eprintln!("--jobs requires a value");
                    usage_and_exit();
                };
                let n = runner::Runner::parse_jobs(raw).unwrap_or_else(|e| {
                    eprintln!("invalid --jobs: {e}");
                    usage_and_exit();
                });
                args.remove(0);
                // The experiment registry sizes its Runner from the
                // environment, so the flag funnels through CATCH_JOBS.
                std::env::set_var(runner::JOBS_ENV, n.to_string());
            }
            Some("--sample") => {
                args.remove(0);
                let Some(i) = args
                    .first()
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|&i| i > 0)
                else {
                    eprintln!("--sample requires a positive interval size in micro-ops");
                    usage_and_exit();
                };
                args.remove(0);
                sample = Some(i);
            }
            _ => break,
        }
    }
    let Some(id) = args.first().cloned() else {
        usage_and_exit();
    };
    let mut eval = EvalConfig::standard();
    eval.sample = sample;
    if let Some(ops) = args.get(1).and_then(|s| s.parse().ok()) {
        eval.ops = ops;
    }
    if let Some(warmup) = args.get(2).and_then(|s| s.parse().ok()) {
        eval.warmup = warmup;
    }
    if id == "sample-smoke" {
        sample_smoke(&eval);
    }
    if !experiments::all_ids().contains(&id.as_str()) {
        eprintln!(
            "unknown experiment '{id}'; available: {:?}",
            experiments::all_ids()
        );
        std::process::exit(2);
    }
    let report = experiments::run(&id, &eval);
    if markdown {
        println!("{}", report.to_markdown());
    } else {
        println!("{report}");
    }
}
