//! Runs any paper experiment by id (same registry the bench targets use).
//!
//! ```sh
//! cargo run --release --example run_experiment -- fig10
//! cargo run --release --example run_experiment -- fig10 40000 10000
//! cargo run --release --example run_experiment -- --md fig10    # markdown
//! cargo run --release --example run_experiment -- --jobs 4 fig10
//! cargo run --release --example run_experiment -- --sample 5000 fig10
//! cargo run --release --example run_experiment -- all           # whole registry
//! cargo run --release --example run_experiment -- --cache-dir /tmp/cc fig10
//! cargo run --release --example run_experiment -- --no-cache fig10
//! cargo run --release --example run_experiment -- sample-smoke  # CI gate
//! cargo run --release --example run_experiment -- obs-smoke     # CI gate
//! cargo run --release --example run_experiment -- cache-smoke   # CI gate
//! cargo run --release --example run_experiment -- timeq-smoke   # CI gate
//! cargo run --release --example run_experiment -- server-smoke  # CI gate
//! cargo run --release --example run_experiment -- --engine tick fig10
//! cargo run --release --example run_experiment -- --trace-events t.json
//! cargo run --release --example run_experiment -- --profile tpcc_like
//! cargo run --release --example run_experiment -- serve /tmp/catch.sock
//! cargo run --release --example run_experiment -- --server /tmp/catch.sock fig10
//! cargo run --release --example run_experiment -- cache-stats   # shard inventory
//! cargo run --release --example run_experiment -- sweep         # quick design-space grid
//! cargo run --release --example run_experiment -- sweep:paper --checkpoint /tmp/s.journal
//! cargo run --release --example run_experiment -- sweep-smoke   # CI gate
//! cargo run --release --example run_experiment -- --fidelity lite sweep:paper
//! cargo run --release --example run_experiment -- ladder-smoke  # CI gate
//! cargo run --release --example run_experiment                  # lists ids
//! ```
//!
//! `--jobs N` sets the worker-thread count for suite runs (equivalent to
//! `CATCH_JOBS=N`; default: all cores). Results are bit-identical for
//! every N — parallelism only changes wall-clock time.
//!
//! `--sample I` runs each workload in SimPoint-style sampled mode with
//! `I`-op intervals instead of simulating every op in detail (see
//! DESIGN.md, "Sampling methodology").
//!
//! `--cache-dir DIR` persists the run cache to DIR (equivalent to
//! `CATCH_RUN_CACHE=DIR`); `--no-cache` disables all memoization
//! (equivalent to `CATCH_RUN_CACHE=off`). The default is in-memory
//! caching only. Every run prints a one-line cache summary
//! (hits/misses/bytes) to stderr; reports are byte-identical in every
//! mode (see DESIGN.md, "Run cache").
//!
//! The special id `all` runs the entire registry as one deduplicated
//! work queue (`experiments::run_all`): structurally identical
//! simulations shared by several figures run exactly once.
//!
//! `--trace-events PATH` switches to trace mode: instead of an experiment
//! id the positional argument names a workload (default `tpcc_like`, or
//! `all` for every golden workload) which is simulated under the CATCH
//! configuration with the full observability layer attached, writing a
//! cycle-stamped event trace to PATH — Chrome `about://tracing` JSON by
//! default, JSONL when PATH ends in `.jsonl`. With `all`, workloads run
//! in parallel on the suite runner; each job writes a part file and the
//! parts are merged in job-index order, so the trace is byte-identical
//! for every `--jobs` value.
//!
//! `--profile` runs one workload (default `tpcc_like`) with a counting
//! sink and prints the event taxonomy histogram plus the core's sampled
//! ROB / scheduler / MSHR occupancies.
//!
//! The special id `sample-smoke` is the CI accuracy gate: it runs one
//! golden workload full and sampled, prints both IPCs with the plan's
//! reported error bound, and exits non-zero if either the reported bound
//! or the actual IPC error reaches 5%.
//!
//! The special id `obs-smoke` is the CI observability-overhead gate: it
//! times one golden workload with observability fully off against the
//! same run with a sink attached but every event class masked, and exits
//! non-zero when the masked run is ≥ 2% slower (min-of-N timing). It also
//! asserts the two runs retire identical core statistics.
//!
//! The special id `cache-smoke` is the CI run-cache gate: it runs the
//! whole registry twice against a persistent cache directory (dropping
//! the in-memory cache in between, so the second pass loads from disk),
//! and exits non-zero unless the second pass is ≥ 2× faster and every
//! report is byte-identical.
//!
//! The special id `timeq-smoke` is the CI cycle-engine parity gate: it
//! runs one golden workload under the full CATCH configuration on both
//! the reference tick loop and the `timeq` event-queue engine, prints a
//! wall-clock comparison, and exits non-zero unless the two runs retire
//! bit-identical counters.
//!
//! `--engine tick|timeq` selects the cycle engine for ordinary
//! experiment runs (equivalent to `CATCH_ENGINE`; default: `timeq`).
//! Results are bit-identical for both — the engine only changes how the
//! simulator finds the next cycle that can make progress.
//!
//! The `serve` subcommand starts the simulation daemon on a unix socket
//! (see DESIGN.md §12): experiment requests arrive as newline-delimited
//! JSON frames, are deduplicated against in-flight jobs and the run
//! cache, and are scheduled across a worker pool with strict priority
//! classes and per-client fair share. `--workers N` sizes the pool
//! (default: all cores); `--cache-dir` applies to the daemon's
//! process-wide run cache. A protocol `shutdown` request drains the
//! daemon gracefully: in-flight jobs finish, queued jobs are rejected
//! with a retryable error, and the process exits 0.
//!
//! `--server SOCK` runs the positional id (or `all`) on a daemon
//! instead of in-process; reports arrive pre-rendered and are printed
//! byte-identically to a local run. `--client NAME` sets the fair-share
//! identity and `--priority interactive|sweep|background` the
//! scheduling class. The control ids `ping`, `stats` and `shutdown`
//! talk to the daemon itself (`stats` prints queue depth, per-client
//! shares, run-cache activity and the disk-shard inventory).
//!
//! The `cache-stats` subcommand prints the on-disk run-cache inventory
//! (shard count, bytes, entry ages) for the directory selected by
//! `--cache-dir`/`CATCH_RUN_CACHE` or an optional positional path.
//!
//! The special id `server-smoke` is the CI simulation-service gate: it
//! starts an in-process daemon on a temp socket, submits the same
//! golden-workload experiment from two clients, and exits non-zero
//! unless both responses are byte-identical to a local run, the second
//! response triggered zero recomputation (warm cache via `/stats`), and
//! the daemon shuts down cleanly (socket unlinked, all threads joined).
//!
//! The ids `sweep`, `sweep:quick` and `sweep:paper` run a design-space
//! grid through the sweep engine (see DESIGN.md §13): points execute on
//! the parallel runner through the run cache and the report ranks the
//! Pareto frontier over perf vs energy vs area. `--checkpoint PATH`
//! journals completed points so an interrupted sweep resumes with zero
//! recompute; `--points N` stops after N new points (budgeted slices of
//! a long sweep). The same ids are accepted by a daemon, where sweeps
//! drain through the `sweep` priority class behind interactive work:
//! `--server SOCK --priority sweep sweep:paper`.
//!
//! The special id `sweep-smoke` is the CI sweep gate: it runs the quick
//! grid twice against one checkpoint journal — first in an interrupted
//! prefix (`--points`-style) plus completion, then fully resumed from
//! the journal — and exits non-zero unless the resumed pass recomputes
//! nothing (run-cache miss delta zero) and renders byte-identical
//! report bytes.
//!
//! `--fidelity fast|lite|ooo` selects the model rung every simulation
//! runs on (DESIGN.md §14): `ooo` is the full out-of-order reference
//! (default), `lite` the in-order timing-lite core over the real memory
//! hierarchy, `fast` the functional fast-forward model. The fidelity is
//! structural — it is part of every run-cache, sweep-journal and daemon
//! admission fingerprint, so rungs never alias. A `lite` (or `fast`)
//! sweep runs the whole grid on the cheap rung and re-validates the
//! spot-check stride plus every frontier candidate at the OOO
//! reference, so Pareto frontier rows are always OOO-measured.
//!
//! The special id `ladder-smoke` is the CI fidelity-ladder gate: it
//! runs every golden workload on all three rungs, prints the per-rung
//! error vs the OOO reference, and exits non-zero when a timing-lite
//! error exceeds its budget (IPC or MPKI).

use catch_core::experiments::{self, runner, EvalConfig, Fidelity, GOLDEN_WORKLOADS};
use catch_core::report::json::run_results_to_json;
use catch_core::{
    merge_parts, part_path, CacheMode, ChromeTraceSink, CountingSink, Engine, EventClass,
    JsonlSink, NullSink, Obs, OccupancyHist, RunCache, SampleConfig, System, SystemConfig,
    TraceFormat,
};
use catch_server::{cachedao, Client, Priority, Server, ServerConfig};
use catch_workloads::suite;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

fn usage_and_exit() -> ! {
    eprintln!(
        "usage: run_experiment [--md] [--jobs N] [--sample I] \
         [--engine tick|timeq] [--fidelity fast|lite|ooo] \
         [--cache-dir DIR] [--no-cache] \
         [--trace-events PATH] [--profile] \
         [--server SOCK] [--client NAME] [--priority P] [--workers N] \
         [--checkpoint PATH] [--points N] \
         <id|workload> [ops] [warmup]"
    );
    eprintln!("available experiments:");
    for id in experiments::all_ids() {
        eprintln!("  {id}");
    }
    eprintln!("  all (whole registry, one deduplicated work queue)");
    eprintln!("  sweep | sweep:quick | sweep:paper (design-space grid; DESIGN.md §13)");
    eprintln!("  serve SOCK (start the simulation daemon; see DESIGN.md §12)");
    eprintln!("  cache-stats [DIR] (on-disk run-cache shard inventory)");
    eprintln!("  sample-smoke (CI accuracy gate)");
    eprintln!("  obs-smoke (CI observability-overhead gate)");
    eprintln!("  cache-smoke (CI run-cache gate)");
    eprintln!("  timeq-smoke (CI cycle-engine parity gate)");
    eprintln!("  server-smoke (CI simulation-service gate)");
    eprintln!("  sweep-smoke (CI sweep resumability gate)");
    eprintln!("  ladder-smoke (CI fidelity-ladder accuracy gate)");
    std::process::exit(2);
}

/// Daemon mode: bind the socket, serve until a protocol `shutdown`
/// drains the pool, then exit 0.
fn serve(sock: &Path, workers: Option<usize>) -> ! {
    let mut config = ServerConfig::default();
    if let Some(w) = workers {
        config.workers = w;
    }
    let handle = match Server::bind(sock, config.clone()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cannot bind {}: {e}", sock.display());
            std::process::exit(1);
        }
    };
    eprintln!(
        "catch-server: listening on {} ({} workers, cache {:?})",
        sock.display(),
        config.workers,
        RunCache::global().mode()
    );
    match handle.wait() {
        Ok(()) => {
            eprintln!("catch-server: drained, exiting");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("catch-server: shutdown error: {e}");
            std::process::exit(1);
        }
    }
}

/// Client mode: run `id` (or `all`) on a daemon; prints the pre-rendered
/// reports byte-identically to a local run, then a stats line to stderr.
fn client_mode(sock: &Path, id: &str, eval: &EvalConfig, name: &str, priority: Priority) -> ! {
    let mut client = match Client::connect(sock) {
        Ok(c) => c.with_identity(name, priority),
        Err(e) => {
            eprintln!("cannot connect to {}: {e}", sock.display());
            std::process::exit(1);
        }
    };
    // Daemon-control ids (no local equivalent).
    match id {
        "ping" => {
            client.ping().unwrap_or_else(|e| {
                eprintln!("ping: {e}");
                std::process::exit(1);
            });
            println!("pong");
            std::process::exit(0);
        }
        "stats" => {
            let (sched, cache, shards) = client.stats().unwrap_or_else(|e| {
                eprintln!("stats: {e}");
                std::process::exit(1);
            });
            println!(
                "queue {} deep, {} running; {} admitted / {} coalesced / \
                 {} rejected / {} completed",
                sched.queue_depth,
                sched.running,
                sched.admitted,
                sched.coalesced,
                sched.rejected,
                sched.completed
            );
            for (client, share) in &sched.shares {
                println!("  share {client}: {share} ops dispatched");
            }
            println!("{cache}");
            println!(
                "disk: {} shards, {} B, oldest {}s, newest {}s",
                shards.entries, shards.bytes, shards.oldest_secs, shards.newest_secs
            );
            std::process::exit(0);
        }
        "shutdown" => {
            client.shutdown().unwrap_or_else(|e| {
                eprintln!("shutdown: {e}");
                std::process::exit(1);
            });
            println!("server draining");
            std::process::exit(0);
        }
        _ => {}
    }
    let ids: Vec<&str> = if id == "all" {
        experiments::all_ids().to_vec()
    } else {
        vec![id]
    };
    for id in ids {
        match client.run(id, eval) {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("{id}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Ok((sched, cache, _)) = client.stats() {
        eprintln!(
            "server: {} admitted / {} coalesced / {} completed; {cache}",
            sched.admitted, sched.coalesced, sched.completed
        );
    }
    std::process::exit(0);
}

/// Shard inventory for the on-disk run cache: `dir` overrides the mode
/// from `--cache-dir` / `CATCH_RUN_CACHE`.
fn cache_stats(dir: Option<&Path>) -> ! {
    let dir = match (dir, RunCache::global().mode()) {
        (Some(d), _) => d.to_path_buf(),
        (None, CacheMode::Disk(d)) => d,
        (None, mode) => {
            eprintln!(
                "cache-stats: no cache directory (mode {mode:?}); \
                 pass a path, --cache-dir DIR, or set {}",
                catch_core::RUN_CACHE_ENV
            );
            std::process::exit(2);
        }
    };
    match cachedao::scan(&dir) {
        Ok(stats) => {
            println!(
                "cache-stats: {} — {} shards, {} B, oldest {}s, newest {}s",
                dir.display(),
                stats.entries,
                stats.bytes,
                stats.oldest_secs,
                stats.newest_secs
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("cache-stats: cannot scan {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
}

/// The CI simulation-service gate: an in-process daemon on a temp
/// socket, the same experiment from two clients, hard-fail unless both
/// responses are byte-identical to a local run, the second triggered
/// zero recomputation, and shutdown is clean.
fn server_smoke(eval: &EvalConfig) -> ! {
    const ID: &str = "fig10";
    let tag = std::process::id();
    let sock = std::env::temp_dir().join(format!("catch-server-smoke-{tag}.sock"));
    if !matches!(RunCache::global().mode(), CacheMode::Disk(_)) {
        let dir = std::env::temp_dir().join(format!("catch-server-smoke-cache-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        RunCache::global().set_mode(CacheMode::Disk(dir));
    }
    let handle = Server::bind(&sock, ServerConfig::default()).unwrap_or_else(|e| {
        eprintln!("server-smoke FAILED: cannot bind {}: {e}", sock.display());
        std::process::exit(1);
    });
    let connect = |name: &str, priority| {
        Client::connect(&sock)
            .unwrap_or_else(|e| {
                eprintln!("server-smoke FAILED: connect: {e}");
                std::process::exit(1);
            })
            .with_identity(name, priority)
    };
    let mut alice = connect("alice", Priority::Interactive);
    let mut bob = connect("bob", Priority::Sweep);

    let t = Instant::now();
    let first = alice.run(ID, eval).unwrap_or_else(|e| {
        eprintln!("server-smoke FAILED: first run: {e}");
        std::process::exit(1);
    });
    let cold_secs = t.elapsed().as_secs_f64();
    let misses_cold = alice.stats().expect("stats after first run").1.misses;

    let t = Instant::now();
    let second = bob.run(ID, eval).unwrap_or_else(|e| {
        eprintln!("server-smoke FAILED: second run: {e}");
        std::process::exit(1);
    });
    let warm_secs = t.elapsed().as_secs_f64();
    let (sched, cache, shards) = bob.stats().expect("stats after second run");

    println!(
        "server-smoke: {ID} ops={} cold {:.1} ms, warm {:.1} ms; \
         {} admitted / {} coalesced / {} completed; {} shards on disk",
        eval.ops,
        1e3 * cold_secs,
        1e3 * warm_secs,
        sched.admitted,
        sched.coalesced,
        sched.completed,
        shards.entries,
    );
    if first != second {
        eprintln!("server-smoke FAILED: the two clients got different report bytes");
        std::process::exit(1);
    }
    if cache.misses != misses_cold {
        eprintln!(
            "server-smoke FAILED: second response recomputed \
             ({} misses cold, {} after warm)",
            misses_cold, cache.misses
        );
        std::process::exit(1);
    }
    let local = experiments::run(ID, eval).to_string();
    if local != first {
        eprintln!("server-smoke FAILED: served report differs from a local run");
        std::process::exit(1);
    }
    alice.shutdown().unwrap_or_else(|e| {
        eprintln!("server-smoke FAILED: shutdown request: {e}");
        std::process::exit(1);
    });
    if let Err(e) = handle.wait() {
        eprintln!("server-smoke FAILED: drain: {e}");
        std::process::exit(1);
    }
    if sock.exists() {
        eprintln!("server-smoke FAILED: socket not unlinked on exit");
        std::process::exit(1);
    }
    println!("server-smoke OK (byte-identical, zero recompute, clean drain)");
    std::process::exit(0);
}

/// The CI cycle-engine gate: one golden workload under the CATCH
/// configuration on both engines, hard-fail unless every counter is
/// bit-identical. Also prints the wall-clock comparison, since the
/// event-queue engine's whole reason to exist is throughput.
fn timeq_smoke(eval: &EvalConfig) -> ! {
    const WORKLOAD: &str = "tpcc_like";
    let trace = suite::by_name(WORKLOAD)
        .expect("golden workload exists")
        .generate(eval.ops, eval.seed);
    let build = |engine: Engine| {
        let mut config = SystemConfig::baseline_exclusive().with_catch();
        // Pin skip-ahead on: with it off the engine choice is inert and
        // the comparison would be vacuous.
        config.core.skip_ahead = true;
        config.core.engine = engine;
        System::new(config)
    };
    let mut results = Vec::new();
    for engine in [Engine::Tick, Engine::TimeQ] {
        let system = build(engine);
        let t = Instant::now();
        let result = system.run_st_warm(trace.clone(), eval.warmup);
        let secs = t.elapsed().as_secs_f64();
        println!(
            "timeq-smoke: {WORKLOAD} ops={} engine {:<5} IPC {:.4}, {:.1} ms \
             ({:.2} Mcycles/s)",
            eval.ops,
            engine.name(),
            result.ipc(),
            1e3 * secs,
            result.core.cycles as f64 / secs / 1e6,
        );
        results.push(run_results_to_json(&[result]));
    }
    if results[0] != results[1] {
        eprintln!("timeq-smoke FAILED: timeq counters diverged from the tick engine");
        std::process::exit(1);
    }
    println!("timeq-smoke OK (bit-identical counters on both engines)");
    std::process::exit(0);
}

/// The CI run-cache gate: the whole registry twice against a persistent
/// cache directory, hard-fail unless the warm pass is ≥ `MIN_SPEEDUP`×
/// faster with byte-identical reports.
fn cache_smoke(eval: &EvalConfig) -> ! {
    const MIN_SPEEDUP: f64 = 2.0;
    let cache = RunCache::global();
    let dir = match cache.mode() {
        // Honour an explicit --cache-dir / CATCH_RUN_CACHE=<dir>.
        CacheMode::Disk(dir) => dir,
        _ => std::env::temp_dir().join(format!("catch-cache-smoke-{}", std::process::id())),
    };
    cache.set_mode(CacheMode::Disk(dir.clone()));

    let ids = experiments::all_ids();
    let render = |reports: &[(String, catch_core::report::ExperimentReport)]| -> String {
        reports
            .iter()
            .map(|(_, r)| r.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    };

    cache.reset_memory();
    let t = Instant::now();
    let cold = render(&experiments::run_all(&ids, eval, None));
    let cold_secs = t.elapsed().as_secs_f64();
    eprintln!("cache-smoke cold: {} ({cold_secs:.1}s)", cache.summary());

    // Drop the in-memory cache so the warm pass must load from disk.
    cache.reset_memory();
    let t = Instant::now();
    let warm = render(&experiments::run_all(&ids, eval, None));
    let warm_secs = t.elapsed().as_secs_f64();
    eprintln!("cache-smoke warm: {} ({warm_secs:.1}s)", cache.summary());

    let speedup = cold_secs / warm_secs.max(1e-9);
    println!(
        "cache-smoke: {} experiments, cold {cold_secs:.1}s, warm {warm_secs:.1}s, \
         speedup {speedup:.2}x, dir {}",
        ids.len(),
        dir.display()
    );
    if cold != warm {
        eprintln!("cache-smoke FAILED: warm-cache reports differ from cold-cache reports");
        std::process::exit(1);
    }
    if speedup < MIN_SPEEDUP {
        eprintln!("cache-smoke FAILED: warm pass under {MIN_SPEEDUP}x faster");
        std::process::exit(1);
    }
    println!("cache-smoke OK (byte-identical, ≥{MIN_SPEEDUP}x)");
    std::process::exit(0);
}

/// The CI sampling gate: one golden workload, full vs sampled, hard-fail
/// when the reported bound or the achieved IPC error reaches `LIMIT_PCT`.
fn sample_smoke(eval: &EvalConfig) -> ! {
    const WORKLOAD: &str = "tpcc_like";
    const LIMIT_PCT: f64 = 5.0;
    let interval = eval.sample.unwrap_or_else(|| (eval.ops / 20).max(1));
    let trace = suite::by_name(WORKLOAD)
        .expect("golden workload exists")
        .generate(eval.ops, eval.seed);
    let system = System::new(SystemConfig::baseline_exclusive());
    let full = system.run_st(trace.clone());
    let sampled = system.run_sampled(trace, &SampleConfig::new(interval).with_max_clusters(10));
    let err = 100.0 * (sampled.result.ipc() - full.ipc()).abs() / full.ipc();
    let bound = sampled.sampling.ipc_error_bound_pct;
    println!(
        "sample-smoke: {WORKLOAD} ops={} interval={interval} \
         full IPC {:.4}, sampled IPC {:.4}, err {err:.2}%, reported bound {bound:.2}% \
         (detailed {:.1}% of trace)",
        eval.ops,
        full.ipc(),
        sampled.result.ipc(),
        100.0 * sampled.sampling.detailed_fraction()
    );
    if bound >= LIMIT_PCT || err >= LIMIT_PCT {
        eprintln!("sample-smoke FAILED: error or bound at/over {LIMIT_PCT}%");
        std::process::exit(1);
    }
    println!("sample-smoke OK (bound and error under {LIMIT_PCT}%)");
    std::process::exit(0);
}

/// The CI observability-overhead gate: observability off vs a sink
/// attached with every class masked. Min-of-N wall-clock, interleaved so
/// machine drift hits both variants alike; hard-fail at `LIMIT_PCT`.
fn obs_smoke(eval: &EvalConfig) -> ! {
    const WORKLOAD: &str = "tpcc_like";
    const LIMIT_PCT: f64 = 2.0;
    // Wall-clock noise on a busy host easily exceeds the 2% budget for
    // any single pair, so reps are interleaved and the estimate uses the
    // min per variant (noise only ever adds time). Reps keep going until
    // the estimate is comfortably under the limit or the budget is spent.
    const MIN_REPS: usize = 5;
    const MAX_REPS: usize = 15;
    let trace = suite::by_name(WORKLOAD)
        .expect("golden workload exists")
        .generate(eval.ops, eval.seed);
    let system = System::new(SystemConfig::baseline_exclusive().with_catch());
    let masked = Obs::attached(Arc::new(Mutex::new(NullSink)), EventClass::NONE);

    // Parity first: a masked sink must not perturb a single counter.
    let off_run = system.run_st(trace.clone());
    let masked_run = system.run_st_obs(trace.clone(), &masked);
    assert_eq!(
        off_run.core, masked_run.core,
        "masked observability changed core statistics"
    );

    let mut best_off = f64::INFINITY;
    let mut best_masked = f64::INFINITY;
    let mut reps = 0;
    while reps < MAX_REPS {
        // Alternate which variant runs first so per-rep drift (frequency
        // ramps, cache warming) cannot bias one side.
        for variant in [reps % 2, (reps + 1) % 2] {
            let t = Instant::now();
            if variant == 0 {
                std::hint::black_box(system.run_st(trace.clone()));
                best_off = best_off.min(t.elapsed().as_secs_f64());
            } else {
                std::hint::black_box(system.run_st_obs(trace.clone(), &masked));
                best_masked = best_masked.min(t.elapsed().as_secs_f64());
            }
        }
        reps += 1;
        let est = 100.0 * (best_masked - best_off) / best_off;
        if reps >= MIN_REPS && est < LIMIT_PCT / 2.0 {
            break;
        }
    }
    let overhead_pct = 100.0 * (best_masked - best_off) / best_off;
    println!(
        "obs-smoke: {WORKLOAD} ops={} off {:.1} ms, masked-sink {:.1} ms, \
         overhead {overhead_pct:+.2}% (min of {reps})",
        eval.ops,
        1e3 * best_off,
        1e3 * best_masked,
    );
    if overhead_pct >= LIMIT_PCT {
        eprintln!("obs-smoke FAILED: masked-sink overhead at/over {LIMIT_PCT}%");
        std::process::exit(1);
    }
    println!("obs-smoke OK (overhead under {LIMIT_PCT}%)");
    std::process::exit(0);
}

/// Trace mode: simulate `workload` (or every golden workload) under the
/// CATCH configuration with all event classes enabled, exporting to
/// `path` in the format chosen by its extension.
fn traced_run(path: &Path, workload: &str, eval: &EvalConfig) -> ! {
    let format = TraceFormat::from_path(path);
    let system = System::new(SystemConfig::baseline_exclusive().with_catch());
    if workload == "all" {
        let pool = runner::Runner::from_env().unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
        // Each job writes its own part file (one job's event order is
        // deterministic; interleaving across jobs is not), merged in
        // job-index order: identical bytes for every worker count.
        let parts: Vec<PathBuf> = (0..GOLDEN_WORKLOADS.len())
            .map(|i| part_path(path, i))
            .collect();
        let ipcs = pool.run(&GOLDEN_WORKLOADS, |i, name| {
            let trace = suite::by_name(name)
                .expect("golden workload exists")
                .generate(eval.ops, eval.seed);
            let part = part_path(path, i);
            let obs = match format {
                TraceFormat::Chrome => Obs::attached(
                    Arc::new(Mutex::new(
                        ChromeTraceSink::create_fragment(&part).expect("create trace part file"),
                    )),
                    EventClass::ALL,
                ),
                TraceFormat::Jsonl => Obs::attached(
                    Arc::new(Mutex::new(
                        JsonlSink::create(&part).expect("create trace part file"),
                    )),
                    EventClass::ALL,
                ),
            };
            let result = system.run_st_warm_obs(trace, eval.warmup, &obs);
            obs.finish().expect("flush trace part file");
            result.ipc()
        });
        let events = merge_parts(&parts, path, format).expect("merge trace part files");
        for (name, ipc) in GOLDEN_WORKLOADS.iter().zip(&ipcs) {
            println!("trace-events: {name} IPC {ipc:.4}");
        }
        println!(
            "trace-events: {} workloads, {events} events -> {} ({format:?})",
            GOLDEN_WORKLOADS.len(),
            path.display()
        );
    } else {
        let trace = match suite::by_name(workload) {
            Ok(spec) => spec.generate(eval.ops, eval.seed),
            Err(_) => {
                eprintln!("unknown workload '{workload}' (or 'all'); see tab2 for the suite");
                std::process::exit(2);
            }
        };
        let (result, events) = match format {
            TraceFormat::Chrome => {
                let sink = Arc::new(Mutex::new(
                    ChromeTraceSink::create(path).expect("create trace file"),
                ));
                let obs = Obs::attached(sink.clone(), EventClass::ALL);
                let result = system.run_st_warm_obs(trace, eval.warmup, &obs);
                obs.finish().expect("flush trace file");
                let events = sink.lock().expect("sink lock").events();
                (result, events)
            }
            TraceFormat::Jsonl => {
                let sink = Arc::new(Mutex::new(
                    JsonlSink::create(path).expect("create trace file"),
                ));
                let obs = Obs::attached(sink.clone(), EventClass::ALL);
                let result = system.run_st_warm_obs(trace, eval.warmup, &obs);
                obs.finish().expect("flush trace file");
                let events = sink.lock().expect("sink lock").events();
                (result, events)
            }
        };
        println!(
            "trace-events: {workload} ops={} IPC {:.4}, {events} events -> {} ({format:?})",
            eval.ops,
            result.ipc(),
            path.display()
        );
    }
    std::process::exit(0);
}

/// Local sweep mode: run (or resume) a design-space grid through the
/// sweep engine and print its Pareto report.
fn local_sweep(
    spec: &catch_core::sweep::SweepSpec,
    eval: &EvalConfig,
    checkpoint: Option<PathBuf>,
    points: Option<usize>,
    markdown: bool,
) -> ! {
    let opts = catch_core::sweep::SweepOptions {
        jobs: None,
        checkpoint,
        limit: points,
        spot_stride: None,
    };
    match catch_core::sweep::run_sweep(spec, eval, &opts) {
        Ok(outcome) => {
            if markdown {
                print!("{}", outcome.report.to_markdown());
            } else {
                print!("{}", outcome.report);
            }
            eprintln!(
                "sweep: {} points ({} computed, {} resumed, {} pending, {} degenerate, \
                 {} ooo-validated)",
                outcome.total,
                outcome.computed,
                outcome.resumed,
                outcome.remaining,
                outcome.degenerate,
                outcome.validated
            );
            eprintln!("{}", RunCache::global().summary());
            std::process::exit(if outcome.remaining > 0 { 3 } else { 0 });
        }
        Err(e) => {
            eprintln!("sweep: {e}");
            std::process::exit(1);
        }
    }
}

/// The CI sweep-resumability gate: the quick grid against one checkpoint
/// journal, interrupted after a 3-point budget, then completed, then
/// fully resumed after dropping the in-memory cache. Hard-fail unless
/// the resumed pass recomputes nothing (zero run-cache misses) and its
/// report is byte-identical to the completed run's.
fn sweep_smoke(eval: &EvalConfig) -> ! {
    use catch_core::sweep::{run_sweep, SweepOptions, SweepSpec};
    const INTERRUPT_AFTER: usize = 3;
    let dir = std::env::temp_dir().join(format!("catch-sweep-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = SweepSpec::quick();
    let opts = SweepOptions {
        jobs: None,
        checkpoint: Some(dir.join("sweep.journal")),
        limit: None,
        spot_stride: None,
    };
    let cache = RunCache::global();
    let run = |opts: &SweepOptions, what: &str| {
        run_sweep(&spec, eval, opts).unwrap_or_else(|e| {
            eprintln!("sweep-smoke FAILED: {what}: {e}");
            std::process::exit(1);
        })
    };

    // Pass 1: "killed" after a 3-point budget (the journal keeps them).
    let t = Instant::now();
    let partial = run(
        &SweepOptions {
            limit: Some(INTERRUPT_AFTER),
            ..opts.clone()
        },
        "interrupted pass",
    );
    // Pass 2: finish the grid from the journal.
    let finished = run(&opts, "completing pass");
    let cold_secs = t.elapsed().as_secs_f64();
    let misses_cold = cache.summary().misses;

    // Pass 3: drop the in-memory cache; the journal alone must carry it.
    cache.reset_memory();
    let t = Instant::now();
    let resumed = run(&opts, "resumed pass");
    let warm_secs = t.elapsed().as_secs_f64();
    let miss_delta = cache.summary().misses - misses_cold;

    println!(
        "sweep-smoke: {} points ops={} — interrupted at {}, completed {} more, \
         cold {:.1} ms, resumed {:.1} ms, resume miss delta {miss_delta}",
        finished.total,
        eval.ops,
        partial.computed,
        finished.computed,
        1e3 * cold_secs,
        1e3 * warm_secs,
    );
    if partial.computed != INTERRUPT_AFTER || partial.remaining == 0 {
        eprintln!("sweep-smoke FAILED: the interrupted pass did not stop mid-grid");
        std::process::exit(1);
    }
    if resumed.computed != 0 || resumed.resumed != resumed.total {
        eprintln!(
            "sweep-smoke FAILED: resume recomputed {} points instead of journaling all {}",
            resumed.computed, resumed.total
        );
        std::process::exit(1);
    }
    if miss_delta != 0 {
        eprintln!("sweep-smoke FAILED: resume simulated {miss_delta} runs (expected zero)");
        std::process::exit(1);
    }
    if finished.report.to_string() != resumed.report.to_string() {
        eprintln!("sweep-smoke FAILED: resumed report differs from the completed run's bytes");
        std::process::exit(1);
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!("sweep-smoke OK (resume: zero recompute, byte-identical report)");
    std::process::exit(0);
}

/// The CI fidelity-ladder gate: every golden workload on all three
/// rungs, hard-fail when a timing-lite error vs the OOO reference
/// exceeds its budget (see `experiments::ladder`).
fn ladder_smoke(eval: &EvalConfig) -> ! {
    use catch_core::experiments::{
        ladder_errors, LITE_IPC_ERR_BUDGET_PCT, LITE_MPKI_ERR_BUDGET_PCT,
    };
    let t = Instant::now();
    let errors = ladder_errors(eval);
    let secs = t.elapsed().as_secs_f64();
    for rung in &errors.lite {
        println!(
            "ladder-smoke: {:<13} lite vs ooo — IPC err {:>6.2}% (budget \
             {LITE_IPC_ERR_BUDGET_PCT}%), L2 MPKI err {:>6.2}%, LLC MPKI err {:>6.2}% \
             (budget {LITE_MPKI_ERR_BUDGET_PCT}%)",
            rung.workload, rung.ipc_pct, rung.l2_mpki_pct, rung.llc_mpki_pct,
        );
    }
    println!(
        "ladder-smoke: {} workloads x 3 rungs, ops={} ({secs:.1}s)",
        errors.lite.len(),
        eval.ops
    );
    let violations = errors.violations();
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("ladder-smoke FAILED: {v}");
        }
        std::process::exit(1);
    }
    println!("ladder-smoke OK (timing-lite within every error budget)");
    std::process::exit(0);
}

fn occ_line(name: &str, h: &OccupancyHist) -> String {
    format!(
        "  {name:<10} mean {:>7.1}  max {:>5}  samples {}",
        h.mean(),
        h.max,
        h.samples
    )
}

/// Profile mode: one workload with a counting sink — prints the event
/// taxonomy histogram and the core's sampled occupancy summaries.
fn profile_run(workload: &str, eval: &EvalConfig) -> ! {
    let trace = match suite::by_name(workload) {
        Ok(spec) => spec.generate(eval.ops, eval.seed),
        Err(_) => {
            eprintln!("unknown workload '{workload}'; see tab2 for the suite");
            std::process::exit(2);
        }
    };
    let system = System::new(SystemConfig::baseline_exclusive().with_catch());
    let sink = Arc::new(Mutex::new(CountingSink::new()));
    let obs = Obs::attached(sink.clone(), EventClass::ALL);
    let result = system.run_st_warm_obs(trace, eval.warmup, &obs);
    drop(obs);
    let sink = sink.lock().expect("sink lock");
    println!(
        "profile: {workload} ops={} IPC {:.4}, {} events",
        eval.ops,
        result.ipc(),
        sink.total()
    );
    let mut counts = sink.counts().to_vec();
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    for (name, n) in counts {
        println!("  {name:<24} {n:>10}");
    }
    println!(
        "occupancy (sampled every {} cycles):",
        catch_obs::OCC_SAMPLE_PERIOD
    );
    println!("{}", occ_line("rob", &result.core.rob_occ));
    println!("{}", occ_line("sched", &result.core.sched_occ));
    println!("{}", occ_line("mshr", &result.core.mshr_occ));
    std::process::exit(0);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut markdown = false;
    let mut sample: Option<usize> = None;
    let mut trace_events: Option<PathBuf> = None;
    let mut profile = false;
    let mut server_sock: Option<PathBuf> = None;
    let mut client_name: Option<String> = None;
    let mut priority = Priority::Interactive;
    let mut workers: Option<usize> = None;
    let mut checkpoint: Option<PathBuf> = None;
    let mut points: Option<usize> = None;
    let mut fidelity: Option<Fidelity> = None;
    // Flags may appear in any order ahead of the positional arguments.
    loop {
        match args.first().map(String::as_str) {
            Some("--md") => {
                markdown = true;
                args.remove(0);
            }
            Some("--jobs") => {
                args.remove(0);
                let Some(raw) = args.first() else {
                    eprintln!("--jobs requires a value");
                    usage_and_exit();
                };
                let n = runner::Runner::parse_jobs(raw).unwrap_or_else(|e| {
                    eprintln!("invalid --jobs: {e}");
                    usage_and_exit();
                });
                args.remove(0);
                // The experiment registry sizes its Runner from the
                // environment, so the flag funnels through CATCH_JOBS.
                std::env::set_var(runner::JOBS_ENV, n.to_string());
            }
            Some("--sample") => {
                args.remove(0);
                let Some(i) = args
                    .first()
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|&i| i > 0)
                else {
                    eprintln!("--sample requires a positive interval size in micro-ops");
                    usage_and_exit();
                };
                args.remove(0);
                sample = Some(i);
            }
            Some("--engine") => {
                args.remove(0);
                let Some(raw) = args.first() else {
                    eprintln!("--engine requires 'tick' or 'timeq'");
                    usage_and_exit();
                };
                let engine = Engine::parse(raw).unwrap_or_else(|e| {
                    eprintln!("invalid --engine: {e}");
                    usage_and_exit();
                });
                args.remove(0);
                // CoreConfig resolves its engine from the environment,
                // so the flag funnels through CATCH_ENGINE (same pattern
                // as --jobs / CATCH_JOBS).
                std::env::set_var("CATCH_ENGINE", engine.name());
            }
            Some("--trace-events") => {
                args.remove(0);
                let Some(raw) = args.first() else {
                    eprintln!("--trace-events requires an output path");
                    usage_and_exit();
                };
                trace_events = Some(PathBuf::from(raw));
                args.remove(0);
            }
            Some("--profile") => {
                profile = true;
                args.remove(0);
            }
            Some("--cache-dir") => {
                args.remove(0);
                let Some(raw) = args.first() else {
                    eprintln!("--cache-dir requires a directory path");
                    usage_and_exit();
                };
                RunCache::global().set_mode(CacheMode::Disk(PathBuf::from(raw)));
                args.remove(0);
            }
            Some("--no-cache") => {
                RunCache::global().set_mode(CacheMode::Off);
                args.remove(0);
            }
            Some("--server") => {
                args.remove(0);
                let Some(raw) = args.first() else {
                    eprintln!("--server requires a socket path");
                    usage_and_exit();
                };
                server_sock = Some(PathBuf::from(raw));
                args.remove(0);
            }
            Some("--client") => {
                args.remove(0);
                let Some(raw) = args.first() else {
                    eprintln!("--client requires a name");
                    usage_and_exit();
                };
                client_name = Some(raw.clone());
                args.remove(0);
            }
            Some("--priority") => {
                args.remove(0);
                let Some(raw) = args.first() else {
                    eprintln!("--priority requires interactive|sweep|background");
                    usage_and_exit();
                };
                priority = Priority::parse(raw).unwrap_or_else(|e| {
                    eprintln!("invalid --priority: {e}");
                    usage_and_exit();
                });
                args.remove(0);
            }
            Some("--workers") => {
                args.remove(0);
                let Some(n) = args
                    .first()
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                else {
                    eprintln!("--workers requires a positive thread count");
                    usage_and_exit();
                };
                workers = Some(n);
                args.remove(0);
            }
            Some("--fidelity") => {
                args.remove(0);
                let Some(raw) = args.first() else {
                    eprintln!("--fidelity requires 'fast', 'lite' or 'ooo'");
                    usage_and_exit();
                };
                fidelity = Some(Fidelity::parse(raw).unwrap_or_else(|e| {
                    eprintln!("invalid --fidelity: {e}");
                    usage_and_exit();
                }));
                args.remove(0);
            }
            Some("--checkpoint") => {
                args.remove(0);
                let Some(raw) = args.first() else {
                    eprintln!("--checkpoint requires a journal path");
                    usage_and_exit();
                };
                checkpoint = Some(PathBuf::from(raw));
                args.remove(0);
            }
            Some("--points") => {
                args.remove(0);
                let Some(n) = args
                    .first()
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                else {
                    eprintln!("--points requires a positive point count");
                    usage_and_exit();
                };
                points = Some(n);
                args.remove(0);
            }
            _ => break,
        }
    }
    // Fail fast on a typo'd CATCH_JOBS before any simulation starts
    // (suite runs would otherwise panic mid-experiment).
    if let Err(e) = runner::Runner::from_env() {
        eprintln!("{e}");
        std::process::exit(2);
    }
    let mut eval = EvalConfig::standard();
    eval.sample = sample;
    if let Some(f) = fidelity {
        eval.fidelity = f;
    }
    if let Some(ops) = args.get(1).and_then(|s| s.parse().ok()) {
        eval.ops = ops;
    }
    if let Some(warmup) = args.get(2).and_then(|s| s.parse().ok()) {
        eval.warmup = warmup;
    }
    if let Some(path) = trace_events {
        let workload = args.first().map(String::as_str).unwrap_or("tpcc_like");
        traced_run(&path, workload, &eval);
    }
    if profile {
        let workload = args.first().map(String::as_str).unwrap_or("tpcc_like");
        profile_run(workload, &eval);
    }
    let Some(id) = args.first().cloned() else {
        usage_and_exit();
    };
    if id == "serve" {
        let Some(sock) = args.get(1).map(PathBuf::from) else {
            eprintln!("serve requires a socket path");
            usage_and_exit();
        };
        serve(&sock, workers);
    }
    if id == "cache-stats" {
        cache_stats(args.get(1).map(Path::new));
    }
    if id == "server-smoke" {
        server_smoke(&eval);
    }
    if let Some(sock) = server_sock {
        if markdown {
            eprintln!("--md is not supported with --server (reports arrive pre-rendered)");
            std::process::exit(2);
        }
        let name = client_name.unwrap_or_else(|| format!("anon-{}", std::process::id()));
        client_mode(&sock, &id, &eval, &name, priority);
    }
    if id == "sample-smoke" {
        sample_smoke(&eval);
    }
    if id == "obs-smoke" {
        obs_smoke(&eval);
    }
    if id == "cache-smoke" {
        cache_smoke(&eval);
    }
    if id == "timeq-smoke" {
        timeq_smoke(&eval);
    }
    if id == "sweep-smoke" {
        sweep_smoke(&eval);
    }
    if id == "ladder-smoke" {
        ladder_smoke(&eval);
    }
    if let Some(spec) = catch_core::sweep::by_request_id(&id) {
        local_sweep(&spec, &eval, checkpoint, points, markdown);
    }
    if id == "all" {
        let reports = experiments::run_all(&experiments::all_ids(), &eval, None);
        for (_, report) in &reports {
            if markdown {
                println!("{}", report.to_markdown());
            } else {
                println!("{report}");
            }
        }
        eprintln!("{}", RunCache::global().summary());
        return;
    }
    if !experiments::all_ids().contains(&id.as_str()) {
        eprintln!(
            "unknown experiment '{id}'; available: {:?}",
            experiments::all_ids()
        );
        std::process::exit(2);
    }
    let report = experiments::run(&id, &eval);
    if markdown {
        println!("{}", report.to_markdown());
    } else {
        println!("{report}");
    }
    eprintln!("{}", RunCache::global().summary());
}
