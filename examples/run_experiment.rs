//! Runs any paper experiment by id (same registry the bench targets use).
//!
//! ```sh
//! cargo run --release --example run_experiment -- fig10
//! cargo run --release --example run_experiment -- fig10 40000 10000
//! cargo run --release --example run_experiment -- --md fig10   # markdown
//! cargo run --release --example run_experiment                 # lists ids
//! ```

use catch_core::experiments::{self, EvalConfig};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let markdown = args.first().map(|a| a == "--md").unwrap_or(false);
    if markdown {
        args.remove(0);
    }
    let Some(id) = args.first() else {
        eprintln!("usage: run_experiment <id> [ops] [warmup]");
        eprintln!("available experiments:");
        for id in experiments::all_ids() {
            eprintln!("  {id}");
        }
        std::process::exit(2);
    };
    if !experiments::all_ids().contains(&id.as_str()) {
        eprintln!("unknown experiment '{id}'; available: {:?}", experiments::all_ids());
        std::process::exit(2);
    }
    let mut eval = EvalConfig::standard();
    if let Some(ops) = args.get(1).and_then(|s| s.parse().ok()) {
        eval.ops = ops;
    }
    if let Some(warmup) = args.get(2).and_then(|s| s.parse().ok()) {
        eval.warmup = warmup;
    }
    let report = experiments::run(id, &eval);
    if markdown {
        println!("{}", report.to_markdown());
    } else {
        println!("{report}");
    }
}
