//! Trace tooling: generate, save, load, and inspect traces.
//!
//! ```sh
//! cargo run --release --example trace_tool -- gen xalanc_like out.ctrc 50000
//! cargo run --release --example trace_tool -- info out.ctrc
//! cargo run --release --example trace_tool -- dump out.ctrc 20
//! cargo run --release --example trace_tool -- run out.ctrc
//! ```

use catch_core::{System, SystemConfig};
use catch_trace::Trace;
use catch_workloads::suite;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::exit;

fn usage() -> ! {
    eprintln!("usage: trace_tool gen <workload> <file> [ops] [seed]");
    eprintln!("       trace_tool info <file>");
    eprintln!("       trace_tool dump <file> [count]");
    eprintln!("       trace_tool run  <file>");
    exit(2);
}

fn load_trace(path: &str) -> Trace {
    let file = File::open(path).unwrap_or_else(|e| {
        eprintln!("cannot open {path}: {e}");
        exit(1);
    });
    Trace::read_from(&mut BufReader::new(file)).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => {
            let (Some(workload), Some(path)) = (args.get(1), args.get(2)) else {
                usage()
            };
            let ops = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(50_000);
            let seed = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(42);
            let spec = suite::by_name(workload).unwrap_or_else(|e| {
                eprintln!("{e}");
                exit(1);
            });
            let trace = spec.generate(ops, seed);
            let file = File::create(path).unwrap_or_else(|e| {
                eprintln!("cannot create {path}: {e}");
                exit(1);
            });
            let mut w = BufWriter::new(file);
            trace.write_to(&mut w).expect("write trace");
            println!("wrote {trace} to {path}");
        }
        Some("info") => {
            let Some(path) = args.get(1) else { usage() };
            let trace = load_trace(path);
            println!("{trace}");
            println!("  {}", trace.stats());
        }
        Some("dump") => {
            let Some(path) = args.get(1) else { usage() };
            let count = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(32);
            let trace = load_trace(path);
            for (i, op) in trace.ops().iter().take(count).enumerate() {
                let mem = op.mem.map(|m| format!(" [{}]", m.addr)).unwrap_or_default();
                let br = op
                    .branch
                    .map(|b| format!(" -> {} ({})", b.target, if b.taken { "T" } else { "NT" }))
                    .unwrap_or_default();
                println!("{i:6} {} {}{mem}{br}", op.pc, op.class);
            }
        }
        Some("run") => {
            let Some(path) = args.get(1) else { usage() };
            let trace = load_trace(path);
            let result = System::new(SystemConfig::baseline_exclusive()).run_st(trace);
            println!("{}: IPC {:.3}", result.workload, result.ipc());
        }
        _ => usage(),
    }
}
