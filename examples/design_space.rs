//! Design-space exploration: the area/performance trade-off CATCH opens
//! up (Section VI-E narrative) — sweep LLC capacities with and without an
//! L2, with and without CATCH, and print a perf-per-area frontier.
//!
//! ```sh
//! cargo run --release --example design_space [ops]
//! ```

use catch_core::area::{hierarchy_area, AreaConstants};
use catch_core::energy::{energy_of, EnergyConstants};
use catch_core::{geomean, System, SystemConfig};
use catch_workloads::suite;

fn main() {
    let ops: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000);

    // A representative slice of the suite to keep the sweep quick.
    let names = [
        "xalanc_like",
        "milc_like",
        "spmv_like",
        "tpcc_like",
        "sysmark_like",
    ];
    let traces: Vec<_> = names
        .iter()
        .map(|n| suite::by_name(n).expect("known workload").generate(ops, 42))
        .collect();

    struct Point {
        name: String,
        config: SystemConfig,
        l2_bytes: u64,
        llc_bytes: u64,
    }

    let mut points = Vec::new();
    let base = SystemConfig::baseline_exclusive();
    points.push(Point {
        name: "3-level baseline (1MB L2 + 5.5MB)".into(),
        config: base.clone(),
        l2_bytes: 1 << 20,
        llc_bytes: 5632 << 10,
    });
    points.push(Point {
        name: "3-level + CATCH".into(),
        config: base.clone().with_catch(),
        l2_bytes: 1 << 20,
        llc_bytes: 5632 << 10,
    });
    for llc_kb in [5632u64, 6656, 9728] {
        points.push(Point {
            name: format!("2-level CATCH ({:.1}MB LLC)", llc_kb as f64 / 1024.0),
            config: base.clone().without_l2(llc_kb << 10).with_catch(),
            l2_bytes: 0,
            llc_bytes: llc_kb << 10,
        });
    }

    // Baseline IPCs for normalisation.
    let base_sys = System::new(base);
    let base_ipcs: Vec<f64> = traces
        .iter()
        .map(|t| base_sys.run_st(t.clone()).ipc())
        .collect();
    let constants = EnergyConstants::paper_like();
    let area_constants = AreaConstants::nm14();

    println!(
        "{:<38} {:>9} {:>10} {:>10} {:>10}",
        "configuration", "perf", "area(mm2)", "perf/area", "energy"
    );
    for p in points {
        let sys = System::new(p.config.clone());
        let mut ratios = Vec::new();
        let mut energy = 0.0;
        for (t, &b) in traces.iter().zip(&base_ipcs) {
            let r = sys.run_st(t.clone());
            ratios.push(r.ipc() / b);
            energy += energy_of(&r, &constants, p.l2_bytes, p.llc_bytes).total_uj();
        }
        let perf = geomean(&ratios);
        // Four-core chip area from the analytical model (the paper's
        // "30% lesser area" arithmetic).
        let mut hier4 = p.config.hierarchy.clone();
        hier4.cores = 4;
        let area = hierarchy_area(&hier4, &area_constants);
        println!(
            "{:<38} {:>8.3}x {:>10.2} {:>10.4} {:>9.1}uJ  (caches {:.1}mm2)",
            p.name,
            perf,
            area.total_mm2(),
            perf / area.total_mm2(),
            energy,
            area.cache_mm2(),
        );
    }
    println!(
        "\n(perf = geomean IPC ratio vs 3-level baseline over {} workloads)",
        names.len()
    );
}
