//! Design-space exploration: the area/performance trade-off CATCH opens
//! up (Section VI-E narrative), driven through the sweep engine — the
//! same grid expansion, run-cache-backed parallel frontier and Pareto
//! report `run_experiment sweep` and the `catch-server` sweep class use,
//! so this example can never drift from the product path.
//!
//! ```sh
//! cargo run --release --example design_space [ops] [grid]
//! ```
//!
//! `grid` is a sweep preset (`quick` by default, `paper` for the full
//! 600-point grid). Add `--md` for markdown output. Pass a checkpoint
//! through the full CLI instead: `run_experiment sweep --checkpoint f`.

use catch_core::experiments::{EvalConfig, Fidelity};
use catch_core::sweep::{run_sweep, SweepOptions, SweepSpec};
use catch_core::RunCache;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let md = args.iter().any(|a| a == "--md");
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let ops: usize = positional
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000);
    let grid = positional.get(1).map(|s| s.as_str()).unwrap_or("quick");

    let Some(spec) = SweepSpec::by_name(grid) else {
        eprintln!("unknown sweep grid '{grid}' (try: quick, paper)");
        std::process::exit(2);
    };
    let eval = EvalConfig {
        ops,
        warmup: ops / 4,
        seed: 42,
        sample: None,
        fidelity: Fidelity::Ooo,
    };

    match run_sweep(&spec, &eval, &SweepOptions::default()) {
        Ok(outcome) => {
            if md {
                print!("{}", outcome.report.to_markdown());
            } else {
                print!("{}", outcome.report);
            }
            let cache = RunCache::global().summary();
            eprintln!(
                "sweep: {} points ({} computed, {} resumed); cache {} hits / {} misses",
                outcome.total, outcome.computed, outcome.resumed, cache.hits, cache.misses
            );
        }
        Err(e) => {
            eprintln!("sweep failed: {e}");
            std::process::exit(1);
        }
    }
}
