//! Multi-programmed consolidation: run a 4-way mix on the baseline and on
//! CATCH configurations and compare weighted speedups.
//!
//! ```sh
//! cargo run --release --example mp_consolidation [workload] [ops]
//! ```

use catch_core::{System, SystemConfig};
use catch_workloads::{mp, suite};

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "xalanc_like".to_string());
    let ops: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(30_000);

    let spec = suite::by_name(&name).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    let mix = mp::MpMix {
        name: format!("rate4_{}", spec.name),
        members: [spec; 4],
    };
    let traces = mix.generate(ops, 42);
    println!("mix: {} (4 copies, distinct seeds)", mix.name);

    // Alone IPCs on the single-core baseline.
    let alone_sys = System::new(SystemConfig::baseline_exclusive());
    let alone: Vec<f64> = traces
        .iter()
        .map(|t| alone_sys.run_st(t.clone()).ipc())
        .collect();
    println!(
        "alone IPCs: {:?}",
        alone
            .iter()
            .map(|i| (i * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );

    let configs = [
        SystemConfig::baseline_exclusive().with_cores(4),
        SystemConfig::baseline_exclusive()
            .with_cores(4)
            .without_l2(6656 << 10),
        SystemConfig::baseline_exclusive()
            .with_cores(4)
            .without_l2(9728 << 10)
            .with_catch(),
        SystemConfig::baseline_exclusive()
            .with_cores(4)
            .with_catch(),
    ];

    let mut base_ws = None;
    for config in configs {
        let name = config.name.clone();
        let result = System::new(config).run_mp(traces.clone());
        let ws = result.weighted_speedup(&alone);
        let delta = base_ws
            .map(|b: f64| format!("{:+.2}%", (ws / b - 1.0) * 100.0))
            .unwrap_or_else(|| "baseline".to_string());
        base_ws.get_or_insert(ws);
        println!("{name:>28}: weighted speedup {ws:.3} ({delta})");
    }
}
