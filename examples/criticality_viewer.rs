//! Criticality viewer: run a workload and dump what the hardware
//! criticality detector learned — the critical load PCs, detector
//! counters, and the Table I area budget.
//!
//! ```sh
//! cargo run --release --example criticality_viewer [workload] [ops]
//! ```

use catch_cache::{CacheHierarchy, HierarchyConfig};
use catch_cpu::{Core, CoreConfig};
use catch_criticality::area::AreaBudget;
use catch_dram::{DramConfig, DramSystem};
use catch_workloads::suite;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "astar_like".to_string());
    let ops: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(60_000);

    let spec = suite::by_name(&name).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    let trace = spec.generate(ops, 42);

    let hcfg = HierarchyConfig::skylake_server(1);
    let mut hier = CacheHierarchy::new(&hcfg, Box::new(DramSystem::new(DramConfig::ddr4_2400())));
    let mut core = Core::new(0, trace, CoreConfig::catch());
    let stats = core.run_to_completion(&mut hier);

    println!("== {} ==", name);
    println!("{stats}");
    let d = stats.detector;
    println!(
        "\ndetector: {} retired, {} walks, {} critical-load observations, {} re-learns, {} graph overflows",
        d.retired, d.walks, d.critical_load_observations, d.relearns, d.overflows
    );

    let pcs = core.detector().critical_pcs();
    println!("\ncritical load PCs ({}):", pcs.len());
    for pc in pcs {
        println!("  {pc}");
    }

    let budget = AreaBudget::for_rob(224);
    println!(
        "\ndetector hardware budget: graph {:.2} KB + PCs {:.2} KB + table {:.2} KB = {:.2} KB",
        budget.graph_bytes as f64 / 1024.0,
        budget.pc_bytes as f64 / 1024.0,
        budget.table_bytes as f64 / 1024.0,
        budget.total_bytes() as f64 / 1024.0
    );

    let hist = stats.memory.load_latency_hist;
    println!(
        "\nload latency histogram (cycles): ≤5:{} ≤15:{} ≤40:{} ≤100:{} ≤250:{} >250:{}",
        hist[0], hist[1], hist[2], hist[3], hist[4], hist[5]
    );

    let t = stats.tact;
    println!(
        "\nTACT: {} targets, deep {} / cross {} / feeder {} prefetches, {} cross assocs, {} feeder relations",
        t.targets_allocated, t.deep_issued, t.cross_issued, t.feeder_issued,
        t.cross_learned, t.feeder_learned
    );
    let timeliness = hier.stats().timeliness;
    println!(
        "timeliness: {} issued, {:.0}% from LLC, {} used ({:.0}% saved >80% of LLC latency)",
        timeliness.issued,
        100.0 * timeliness.llc_fraction(),
        timeliness.used,
        100.0 * timeliness.over_80_fraction(),
    );
}
