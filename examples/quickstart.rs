//! Quickstart: run one workload on the baseline and on CATCH, and print
//! the comparison.
//!
//! ```sh
//! cargo run --release --example quickstart [workload] [ops]
//! ```

use catch_core::{System, SystemConfig};
use catch_workloads::suite;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "xalanc_like".to_string());
    let ops: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(60_000);

    let spec = match suite::by_name(&name) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}. Available workloads:");
            for w in suite::all() {
                eprintln!("  {} [{}]", w.name, w.category);
            }
            std::process::exit(1);
        }
    };
    let trace = spec.generate(ops, 42);
    println!("workload: {trace}");
    println!("  {}", trace.stats());

    let configs = [
        SystemConfig::baseline_exclusive(),
        SystemConfig::baseline_exclusive().with_catch(),
        SystemConfig::baseline_exclusive()
            .without_l2(9728 << 10)
            .with_catch(),
    ];

    let mut baseline_ipc = None;
    for config in configs {
        let name = config.name.clone();
        let result = System::new(config).run_st(trace.clone());
        let ipc = result.ipc();
        let delta = baseline_ipc
            .map(|b: f64| format!("{:+.2}%", (ipc / b - 1.0) * 100.0))
            .unwrap_or_else(|| "baseline".to_string());
        baseline_ipc.get_or_insert(ipc);
        let lv = result.core.memory.loads_by_level;
        println!(
            "{name:>24}: IPC {ipc:.3} ({delta})  loads L1/L2/LLC/MEM = {}/{}/{}/{}  \
             [{} TACT pf, {} fwd, {:.2}% br-miss, {} I$ miss]",
            lv[0],
            lv[1],
            lv[2],
            lv[3],
            result.core.memory.tact_prefetches,
            result.core.memory.forwarded,
            100.0 * result.core.branches.mispredict_rate(),
            result.core.frontend.icache_misses,
        );
    }
}
