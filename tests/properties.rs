//! Property-based tests over the simulator's core invariants.

use catch_cache::{
    AccessKind, CacheArray, CacheConfig, CacheHierarchy, FixedLatencyBackend, HierarchyConfig,
    Level,
};
use catch_trace::{Addr, ArchReg, LineAddr, TraceBuilder};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A cache never holds more lines than its capacity, and a line just
    /// filled is always present.
    #[test]
    fn cache_array_capacity_and_presence(
        lines in proptest::collection::vec(0u64..256, 1..200),
    ) {
        let config = CacheConfig::new("t", 16 * 64, 4, 1).expect("valid");
        let mut cache = CacheArray::new(&config);
        for &l in &lines {
            let line = LineAddr::new(l);
            cache.fill(line, false, false);
            prop_assert!(cache.probe(line));
            prop_assert!(cache.occupancy() <= 16);
        }
    }

    /// Invalidate after fill always finds the line; double-invalidate
    /// finds nothing.
    #[test]
    fn cache_array_invalidate_roundtrip(l in 0u64..10_000, dirty: bool) {
        let config = CacheConfig::new("t", 64 * 64, 8, 1).expect("valid");
        let mut cache = CacheArray::new(&config);
        let line = LineAddr::new(l);
        cache.fill(line, dirty, false);
        prop_assert_eq!(cache.invalidate(line), Some(dirty));
        prop_assert_eq!(cache.invalidate(line), None);
    }

    /// Demand access latency equals the level's latency for resident
    /// lines, and repeated accesses are monotonically non-increasing in
    /// level (a touched line never moves outward).
    #[test]
    fn hierarchy_access_levels_monotone(
        addrs in proptest::collection::vec(0u64..2048, 1..100),
    ) {
        let mut hier = CacheHierarchy::new(
            &HierarchyConfig::skylake_server(1),
            Box::new(FixedLatencyBackend::new(200)),
        );
        let mut cycle = 0;
        for &a in &addrs {
            let line = LineAddr::new(a);
            let first = hier.access(0, AccessKind::Load, line, cycle);
            cycle = first.ready_at(cycle) + 10;
            let second = hier.access(0, AccessKind::Load, line, cycle);
            cycle += 10;
            prop_assert_eq!(second.hit_level, Level::L1,
                "a just-loaded line must hit the L1");
            prop_assert!(second.latency <= first.latency);
        }
    }

    /// The same trace always produces the same cycle count (simulator
    /// determinism over arbitrary small traces).
    #[test]
    fn core_is_deterministic(
        loads in proptest::collection::vec((0u64..1u64 << 20, 0u64..64), 10..80),
    ) {
        use catch_cpu::{Core, CoreConfig};
        let build = || {
            let mut b = TraceBuilder::new("prop");
            for &(addr, chain) in &loads {
                b.load(ArchReg::new(1), Addr::new(addr * 8), addr);
                for _ in 0..(chain % 4) {
                    b.alu(ArchReg::new(2), &[ArchReg::new(1)]);
                }
            }
            b.build()
        };
        let run = || {
            let mut hier = CacheHierarchy::new(
                &HierarchyConfig::skylake_server(1),
                Box::new(FixedLatencyBackend::new(200)),
            );
            let mut core = Core::new(0, build(), CoreConfig::baseline());
            core.run_to_completion(&mut hier).cycles
        };
        prop_assert_eq!(run(), run());
    }

    /// Retired-instruction count always equals trace length, whatever the
    /// branch/mispredict structure.
    #[test]
    fn all_fetched_ops_retire(
        branches in proptest::collection::vec(any::<bool>(), 5..60),
    ) {
        use catch_cpu::{Core, CoreConfig};
        let mut b = TraceBuilder::new("prop");
        for &taken in &branches {
            b.alu(ArchReg::new(1), &[]);
            let target = b.cursor().advance(8);
            b.cond_branch(taken, target, &[ArchReg::new(1)]);
        }
        let trace = b.build();
        let expect = trace.len() as u64;
        let mut hier = CacheHierarchy::new(
            &HierarchyConfig::skylake_server(1),
            Box::new(FixedLatencyBackend::new(200)),
        );
        let mut core = Core::new(0, trace, CoreConfig::baseline());
        let stats = core.run_to_completion(&mut hier);
        prop_assert_eq!(stats.instructions, expect);
    }

    /// The criticality detector's critical PCs are always drawn from the
    /// PCs actually fed to it.
    #[test]
    fn detector_reports_only_seen_pcs(
        lat in proptest::collection::vec(1u64..60, 30..200),
    ) {
        use catch_criticality::{CriticalityDetector, DetectorConfig, RetiredInst};
        let config = DetectorConfig {
            rob_size: 8,
            ..DetectorConfig::paper()
        };
        let mut det = CriticalityDetector::new(config);
        let mut seen = Vec::new();
        for (i, &l) in lat.iter().enumerate() {
            let pc = catch_trace::Pc::new(0x1000 + (i as u64 % 7) * 4);
            seen.push(pc);
            let seq = det.next_seq();
            let inst = if i % 3 == 0 {
                RetiredInst::new(pc, l).as_load(Level::L2)
            } else {
                RetiredInst::compute(pc, l, &[seq.saturating_sub(1)])
            };
            det.on_retire(inst);
        }
        for pc in det.critical_pcs() {
            prop_assert!(seen.contains(&pc));
        }
    }
}
