//! First-party deterministic pseudo-random number generation.
//!
//! The workspace builds fully offline, so instead of the `rand` crate we
//! carry a minimal [SplitMix64](https://prng.di.unimi.it/splitmix64.c)
//! generator. It is the canonical seeder for the xoshiro family: a 64-bit
//! state walked by a Weyl sequence and finalised with a variant of the
//! MurmurHash3 mixer — statistically strong for trace generation and
//! victim selection, one line of state, and trivially reproducible across
//! platforms.
//!
//! The API mirrors the subset of `rand::Rng` the workspace used
//! (`gen_range`, `gen_bool`), so call sites read the same.
//!
//! [`Cases`] is the deterministic replacement for `proptest`: it derives
//! one sub-generator per case from a base seed and logs the failing case's
//! seed, so any property failure reproduces with a one-line unit test.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 pseudo-random generator (Steele, Lea & Flood; JPDC 2014).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Mirrors
    /// `SeedableRng::seed_from_u64` so call sites read the same as with
    /// `rand`.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)` (53 random mantissa bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p.clamp(0.0, 1.0)
    }

    /// A uniform draw from `range` (empty ranges panic, like `rand`).
    ///
    /// Uses the multiply-shift reduction (Lemire 2019) — deterministic,
    /// no rejection loop, and bias below 2⁻⁶⁴ × span, far under anything a
    /// cache simulation can observe.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    fn uniform_u64(&mut self, lo: u64, hi_exclusive: u64) -> u64 {
        assert!(lo < hi_exclusive, "gen_range called with an empty range");
        let span = hi_exclusive - lo;
        lo + ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// Range shapes accepted by [`SplitMix64::gen_range`].
pub trait UniformRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample(self, rng: &mut SplitMix64) -> Self::Output;
}

impl UniformRange for Range<u64> {
    type Output = u64;
    fn sample(self, rng: &mut SplitMix64) -> u64 {
        rng.uniform_u64(self.start, self.end)
    }
}

impl UniformRange for Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut SplitMix64) -> usize {
        rng.uniform_u64(self.start as u64, self.end as u64) as usize
    }
}

impl UniformRange for Range<i64> {
    type Output = i64;
    fn sample(self, rng: &mut SplitMix64) -> i64 {
        let span = self.end.wrapping_sub(self.start) as u64;
        assert!(
            self.start < self.end,
            "gen_range called with an empty range"
        );
        self.start
            .wrapping_add(((rng.next_u64() as u128 * span as u128) >> 64) as i64)
    }
}

impl UniformRange for RangeInclusive<usize> {
    type Output = usize;
    fn sample(self, rng: &mut SplitMix64) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        rng.uniform_u64(lo as u64, hi as u64 + 1) as usize
    }
}

/// Deterministic multi-case test driver (the in-repo `proptest`
/// replacement).
///
/// Each case gets an independent [`SplitMix64`] derived from the base
/// seed; on a panic the failing case's seed is printed first, so the
/// failure reproduces as `with_seed(<printed seed>)`.
///
/// ```
/// use catch_trace::rng::Cases;
///
/// Cases::new(16).run(|rng| {
///     let v = rng.gen_range(0u64..100);
///     assert!(v < 100);
/// });
/// ```
#[derive(Clone, Debug)]
pub struct Cases {
    count: u64,
    base_seed: u64,
}

impl Cases {
    /// `count` cases from the default base seed.
    pub fn new(count: u64) -> Self {
        Cases {
            count,
            base_seed: 0xCA7C4_CA5E5,
        }
    }

    /// Overrides the base seed (use the seed printed by a failing run to
    /// reproduce it as a single case).
    pub fn with_base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Runs `f` once per case. On panic, prints the case index and the
    /// exact seed that reproduces it, then re-raises the panic.
    pub fn run(&self, mut f: impl FnMut(&mut SplitMix64)) {
        for case in 0..self.count {
            // Derive the per-case seed through the generator itself so
            // consecutive cases are decorrelated.
            let seed = SplitMix64::seed_from_u64(self.base_seed ^ case).next_u64();
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut rng = SplitMix64::seed_from_u64(seed);
                f(&mut rng);
            }));
            if let Err(payload) = result {
                eprintln!(
                    "property failed at case {case}/{}; reproduce with \
                     Cases::new(1).with_base_seed({:#x}) [case seed {seed:#x}]",
                    self.count,
                    self.base_seed ^ case
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain
        // splitmix64.c test vector.
        let mut rng = SplitMix64::seed_from_u64(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
        assert_eq!(rng.next_u64(), 9817491932198370423);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(rng.gen_range(10u64..20) < 20);
            assert!(rng.gen_range(10u64..20) >= 10);
            let v = rng.gen_range(0usize..=4);
            assert!(v <= 4);
            let s = rng.gen_range(-8i64..8);
            assert!((-8..8).contains(&s));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SplitMix64::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "p=0.3 gave {hits}/10000");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_f64_is_in_unit_interval() {
        let mut rng = SplitMix64::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn cases_are_deterministic_and_decorrelated() {
        let mut firsts = Vec::new();
        Cases::new(8).run(|rng| firsts.push(rng.next_u64()));
        let mut again = Vec::new();
        Cases::new(8).run(|rng| again.push(rng.next_u64()));
        assert_eq!(firsts, again);
        let mut sorted = firsts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), firsts.len(), "case seeds must differ");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SplitMix64::seed_from_u64(1).gen_range(5u64..5);
    }
}
