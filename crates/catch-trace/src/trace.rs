//! The [`Trace`] container and workload categories.

use crate::op::MicroOp;
use crate::stats::TraceStats;
use std::fmt;

/// Workload category, mirroring Table II of the paper.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Category {
    /// Client applications (sysmark, face detection, media encode).
    Client,
    /// SPEC CPU 2006 floating point.
    Fspec,
    /// HPC kernels (linpack, stencils, bio).
    Hpc,
    /// SPEC CPU 2006 integer.
    Ispec,
    /// Server workloads (tpcc, specjbb, hadoop — large code footprints).
    Server,
}

impl Category {
    /// All categories in the paper's reporting order.
    pub const ALL: [Category; 5] = [
        Category::Client,
        Category::Fspec,
        Category::Hpc,
        Category::Ispec,
        Category::Server,
    ];

    /// Short label used in reports ("client", "FSPEC", ...).
    pub fn label(self) -> &'static str {
        match self {
            Category::Client => "client",
            Category::Fspec => "FSPEC",
            Category::Hpc => "HPC",
            Category::Ispec => "ISPEC",
            Category::Server => "server",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A retired-path instruction trace for one application.
///
/// Traces are produced by the generators in `catch-workloads` (or by the
/// [`crate::TraceBuilder`] directly in tests) and consumed by the core
/// model. The container is immutable after construction.
#[derive(Clone, Debug)]
pub struct Trace {
    name: String,
    category: Category,
    ops: Vec<MicroOp>,
}

impl Trace {
    /// Creates a trace from parts. Prefer [`crate::TraceBuilder`].
    pub fn from_parts(name: impl Into<String>, category: Category, ops: Vec<MicroOp>) -> Self {
        Trace {
            name: name.into(),
            category,
            ops,
        }
    }

    /// Workload name (e.g. `"mcf_like"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Workload category.
    pub fn category(&self) -> Category {
        self.category
    }

    /// The micro-ops in retirement order.
    pub fn ops(&self) -> &[MicroOp] {
        &self.ops
    }

    /// Number of micro-ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the trace holds no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Computes summary statistics over the trace.
    pub fn stats(&self) -> TraceStats {
        TraceStats::measure(&self.ops)
    }

    /// Returns a copy truncated to at most `max_ops` micro-ops.
    pub fn truncated(&self, max_ops: usize) -> Trace {
        Trace {
            name: self.name.clone(),
            category: self.category,
            ops: self.ops[..self.ops.len().min(max_ops)].to_vec(),
        }
    }

    /// Returns a copy with every data address *and load value* offset by
    /// `offset` bytes — a distinct virtual address space for one process
    /// of a multi-programmed mix. Offsetting values along with addresses
    /// preserves pointer identities (`value == next address`) and keeps
    /// linear `address = scale·value + base` relations linear, so the
    /// feeder prefetcher sees a consistent world. Code addresses are left
    /// alone (shared text is realistic).
    pub fn rebased(&self, offset: u64) -> Trace {
        let ops = self
            .ops
            .iter()
            .map(|op| {
                let mut op = *op;
                if let Some(mem) = op.mem.as_mut() {
                    mem.addr = mem.addr.offset(offset as i64);
                }
                if op.class == crate::OpClass::Load {
                    op.load_value = op.load_value.wrapping_add(offset);
                }
                op
            })
            .collect();
        Trace {
            name: self.name.clone(),
            category: self.category,
            ops,
        }
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] ({} uops)",
            self.name,
            self.category,
            self.ops.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Addr, ArchReg, Pc};
    use crate::op::OpClass;

    #[test]
    fn trace_accessors() {
        let ops = vec![
            MicroOp::compute(Pc::new(0), OpClass::Alu, Some(ArchReg::new(1)), &[]),
            MicroOp::load(Pc::new(4), ArchReg::new(2), Addr::new(64), 7, &[]),
        ];
        let t = Trace::from_parts("t", Category::Ispec, ops);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.category(), Category::Ispec);
        assert_eq!(t.name(), "t");
        assert_eq!(format!("{t}"), "t [ISPEC] (2 uops)");
    }

    #[test]
    fn truncation_bounds() {
        let ops = vec![MicroOp::compute(Pc::new(0), OpClass::Nop, None, &[]); 10];
        let t = Trace::from_parts("t", Category::Hpc, ops);
        assert_eq!(t.truncated(3).len(), 3);
        assert_eq!(t.truncated(100).len(), 10);
    }

    #[test]
    fn category_labels_are_unique() {
        let mut labels: Vec<_> = Category::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 5);
    }
}
