//! Ergonomic construction of traces.

use crate::ids::{Addr, ArchReg, Pc};
use crate::op::{BranchInfo, BranchKind, MicroOp, OpClass};
use crate::trace::{Category, Trace};

/// A code location captured by [`TraceBuilder::label`], usable as a branch
/// target.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Label(Pc);

impl Label {
    /// The PC this label refers to.
    pub fn pc(self) -> Pc {
        self.0
    }
}

/// Builds a [`Trace`] by emitting micro-ops at an advancing PC cursor.
///
/// Instructions are 4 bytes; emitting an op advances the cursor. Loops are
/// expressed by capturing a [`Label`] and emitting a taken branch back to
/// it — the builder rewinds the PC cursor so that the re-executed loop body
/// reuses the *same* PCs, which is what PC-indexed hardware structures
/// (stride prefetchers, critical-load tables) require.
///
/// # Example
///
/// ```
/// use catch_trace::{TraceBuilder, ArchReg, Addr};
///
/// let mut b = TraceBuilder::new("loop");
/// let r1 = ArchReg::new(1);
/// let top = b.label();
/// for i in 0..4 {
///     b.jump_to(top); // rewind cursor to loop body start
///     b.load(r1, Addr::new(64 * i), i);
///     b.alu(r1, &[r1]);
///     b.backedge(top, i != 3);
/// }
/// let t = b.build();
/// assert_eq!(t.len(), 12);
/// // same PCs across iterations:
/// assert_eq!(t.ops()[0].pc, t.ops()[3].pc);
/// ```
#[derive(Debug)]
pub struct TraceBuilder {
    name: String,
    category: Category,
    pc: Pc,
    ops: Vec<MicroOp>,
}

impl TraceBuilder {
    /// Creates a builder starting at PC `0x40_0000` with category
    /// [`Category::Client`].
    pub fn new(name: impl Into<String>) -> Self {
        TraceBuilder {
            name: name.into(),
            category: Category::Client,
            pc: Pc::new(0x40_0000),
            ops: Vec::new(),
        }
    }

    /// Sets the workload category.
    pub fn category(&mut self, category: Category) -> &mut Self {
        self.category = category;
        self
    }

    /// Number of ops emitted so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Current PC cursor.
    pub fn cursor(&self) -> Pc {
        self.pc
    }

    /// Captures the current cursor as a label.
    pub fn label(&mut self) -> Label {
        Label(self.pc)
    }

    /// Moves the cursor to an arbitrary PC (e.g. a new "function").
    pub fn set_pc(&mut self, pc: Pc) -> &mut Self {
        self.pc = pc;
        self
    }

    /// Moves the cursor to a previously captured label (loop re-entry).
    pub fn jump_to(&mut self, label: Label) -> &mut Self {
        self.pc = label.pc();
        self
    }

    fn push(&mut self, op: MicroOp) {
        self.ops.push(op);
        self.pc = self.pc.advance(4);
    }

    /// Emits an integer ALU op writing `dst`.
    pub fn alu(&mut self, dst: ArchReg, srcs: &[ArchReg]) -> &mut Self {
        let op = MicroOp::compute(self.pc, OpClass::Alu, Some(dst), srcs);
        self.push(op);
        self
    }

    /// Emits an integer multiply writing `dst`.
    pub fn mul(&mut self, dst: ArchReg, srcs: &[ArchReg]) -> &mut Self {
        let op = MicroOp::compute(self.pc, OpClass::Mul, Some(dst), srcs);
        self.push(op);
        self
    }

    /// Emits a divide writing `dst`.
    pub fn div(&mut self, dst: ArchReg, srcs: &[ArchReg]) -> &mut Self {
        let op = MicroOp::compute(self.pc, OpClass::Div, Some(dst), srcs);
        self.push(op);
        self
    }

    /// Emits an FP add writing `dst`.
    pub fn fadd(&mut self, dst: ArchReg, srcs: &[ArchReg]) -> &mut Self {
        let op = MicroOp::compute(self.pc, OpClass::FpAdd, Some(dst), srcs);
        self.push(op);
        self
    }

    /// Emits an FP multiply writing `dst`.
    pub fn fmul(&mut self, dst: ArchReg, srcs: &[ArchReg]) -> &mut Self {
        let op = MicroOp::compute(self.pc, OpClass::FpMul, Some(dst), srcs);
        self.push(op);
        self
    }

    /// Emits a no-op.
    pub fn nop(&mut self) -> &mut Self {
        let op = MicroOp::compute(self.pc, OpClass::Nop, None, &[]);
        self.push(op);
        self
    }

    /// Emits a load of `value` from `addr` into `dst` with no address
    /// dependences.
    pub fn load(&mut self, dst: ArchReg, addr: Addr, value: u64) -> &mut Self {
        let op = MicroOp::load(self.pc, dst, addr, value, &[]);
        self.push(op);
        self
    }

    /// Emits a load whose address depends on `srcs` (e.g. pointer chase).
    pub fn load_dep(
        &mut self,
        dst: ArchReg,
        addr: Addr,
        value: u64,
        srcs: &[ArchReg],
    ) -> &mut Self {
        let op = MicroOp::load(self.pc, dst, addr, value, srcs);
        self.push(op);
        self
    }

    /// Emits a store to `addr` of data in `srcs`.
    pub fn store(&mut self, addr: Addr, srcs: &[ArchReg]) -> &mut Self {
        let op = MicroOp::store(self.pc, addr, srcs);
        self.push(op);
        self
    }

    /// Emits a conditional branch to `target`.
    pub fn cond_branch(&mut self, taken: bool, target: Pc, srcs: &[ArchReg]) -> &mut Self {
        let info = BranchInfo {
            taken,
            target,
            kind: BranchKind::Conditional,
        };
        let op = MicroOp::branch(self.pc, info, srcs);
        self.push(op);
        self
    }

    /// Emits a conditional loop back-edge to `label`. When `taken` is false
    /// the cursor simply falls through (loop exit).
    pub fn backedge(&mut self, label: Label, taken: bool) -> &mut Self {
        self.cond_branch(taken, label.pc(), &[])
    }

    /// Emits an unconditional direct jump to `target`.
    pub fn jump(&mut self, target: Pc) -> &mut Self {
        let info = BranchInfo {
            taken: true,
            target,
            kind: BranchKind::Direct,
        };
        let op = MicroOp::branch(self.pc, info, &[]);
        self.push(op);
        self
    }

    /// Emits an indirect jump to `target` (harder to predict).
    pub fn indirect_jump(&mut self, target: Pc, srcs: &[ArchReg]) -> &mut Self {
        let info = BranchInfo {
            taken: true,
            target,
            kind: BranchKind::Indirect,
        };
        let op = MicroOp::branch(self.pc, info, srcs);
        self.push(op);
        self
    }

    /// Emits a raw micro-op at the current cursor, overriding its PC.
    pub fn raw(&mut self, mut op: MicroOp) -> &mut Self {
        op.pc = self.pc;
        self.push(op);
        self
    }

    /// Finishes the trace.
    pub fn build(self) -> Trace {
        Trace::from_parts(self.name, self.category, self.ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpClass;

    #[test]
    fn cursor_advances_by_four() {
        let mut b = TraceBuilder::new("t");
        let start = b.cursor();
        b.nop().nop();
        assert_eq!(b.cursor(), start.advance(8));
    }

    #[test]
    fn loop_reuses_pcs() {
        let mut b = TraceBuilder::new("t");
        let r = ArchReg::new(1);
        let top = b.label();
        for i in 0..3 {
            b.jump_to(top);
            b.alu(r, &[]);
            b.backedge(top, i != 2);
        }
        let t = b.build();
        assert_eq!(t.ops()[0].pc, t.ops()[2].pc);
        assert_eq!(t.ops()[1].pc, t.ops()[3].pc);
        // Final back-edge is not taken.
        assert!(!t.ops()[5].branch.unwrap().taken);
    }

    #[test]
    fn set_pc_moves_code_footprint() {
        let mut b = TraceBuilder::new("t");
        b.nop();
        b.set_pc(Pc::new(0x80_0000));
        b.nop();
        let t = b.build();
        assert_eq!(t.ops()[1].pc, Pc::new(0x80_0000));
    }

    #[test]
    fn category_is_recorded() {
        let mut b = TraceBuilder::new("t");
        b.category(Category::Server);
        b.nop();
        assert_eq!(b.build().category(), Category::Server);
    }

    #[test]
    fn raw_op_pc_is_overridden() {
        let mut b = TraceBuilder::new("t");
        let cursor = b.cursor();
        let op = MicroOp::compute(Pc::new(0xdead), OpClass::Alu, None, &[]);
        b.raw(op);
        assert_eq!(b.build().ops()[0].pc, cursor);
    }
}
