//! Summary statistics for traces.

use crate::op::{MicroOp, OpClass};
use std::collections::HashSet;
use std::fmt;

/// Footprint and mix statistics for a trace.
///
/// Used by the workload suite's self-tests to assert that each generator
/// produces the memory/code behaviour its category requires (e.g. server
/// workloads must have a large code footprint).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total micro-ops.
    pub ops: usize,
    /// Loads.
    pub loads: usize,
    /// Stores.
    pub stores: usize,
    /// Branches.
    pub branches: usize,
    /// Taken branches.
    pub taken_branches: usize,
    /// Distinct data cache lines touched.
    pub data_lines: usize,
    /// Distinct 4 KB data pages touched.
    pub data_pages: usize,
    /// Distinct code cache lines touched.
    pub code_lines: usize,
    /// Distinct load/store PCs.
    pub mem_pcs: usize,
}

impl TraceStats {
    /// Measures statistics over a slice of micro-ops.
    pub fn measure(ops: &[MicroOp]) -> Self {
        let mut stats = TraceStats {
            ops: ops.len(),
            ..TraceStats::default()
        };
        let mut data_lines = HashSet::new();
        let mut data_pages = HashSet::new();
        let mut code_lines = HashSet::new();
        let mut mem_pcs = HashSet::new();
        for op in ops {
            code_lines.insert(op.pc.line());
            match op.class {
                OpClass::Load => stats.loads += 1,
                OpClass::Store => stats.stores += 1,
                OpClass::Branch => {
                    stats.branches += 1;
                    if op.branch.map(|b| b.taken).unwrap_or(false) {
                        stats.taken_branches += 1;
                    }
                }
                _ => {}
            }
            if let Some(mem) = op.mem {
                data_lines.insert(mem.addr.line());
                data_pages.insert(mem.addr.page());
                mem_pcs.insert(op.pc);
            }
        }
        stats.data_lines = data_lines.len();
        stats.data_pages = data_pages.len();
        stats.code_lines = code_lines.len();
        stats.mem_pcs = mem_pcs.len();
        stats
    }

    /// Approximate data footprint in bytes (lines × 64).
    pub fn data_footprint_bytes(&self) -> u64 {
        self.data_lines as u64 * crate::LINE_BYTES
    }

    /// Approximate code footprint in bytes (lines × 64).
    pub fn code_footprint_bytes(&self) -> u64 {
        self.code_lines as u64 * crate::LINE_BYTES
    }

    /// Fraction of ops that are loads.
    pub fn load_fraction(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.loads as f64 / self.ops as f64
        }
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} uops ({} ld, {} st, {} br), data {:.1} KB, code {:.1} KB",
            self.ops,
            self.loads,
            self.stores,
            self.branches,
            self.data_footprint_bytes() as f64 / 1024.0,
            self.code_footprint_bytes() as f64 / 1024.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Addr, ArchReg, Pc};

    #[test]
    fn measure_counts_classes_and_footprints() {
        let r = ArchReg::new(1);
        let ops = vec![
            MicroOp::load(Pc::new(0), r, Addr::new(0), 0, &[]),
            MicroOp::load(Pc::new(4), r, Addr::new(64), 0, &[]),
            MicroOp::load(Pc::new(4), r, Addr::new(64), 0, &[]),
            MicroOp::store(Pc::new(8), Addr::new(4096), &[r]),
            MicroOp::branch(
                Pc::new(12),
                crate::BranchInfo {
                    taken: true,
                    target: Pc::new(0),
                    kind: crate::BranchKind::Conditional,
                },
                &[],
            ),
        ];
        let s = TraceStats::measure(&ops);
        assert_eq!(s.ops, 5);
        assert_eq!(s.loads, 3);
        assert_eq!(s.stores, 1);
        assert_eq!(s.branches, 1);
        assert_eq!(s.taken_branches, 1);
        assert_eq!(s.data_lines, 3); // lines 0, 1, 64
        assert_eq!(s.data_pages, 2); // pages 0, 1
        assert_eq!(s.code_lines, 1); // PCs 0..12 in one 64 B line
        assert_eq!(s.mem_pcs, 3); // PCs 0, 4, 8
        assert!((s.load_fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = TraceStats::measure(&[]);
        assert_eq!(s.ops, 0);
        assert_eq!(s.load_fraction(), 0.0);
        assert_eq!(s.data_footprint_bytes(), 0);
    }
}
