//! Trace serialisation: a compact, versioned binary format.
//!
//! The paper's methodology is trace-driven; real deployments capture
//! traces once and replay them across configurations. This module gives
//! the workspace the same workflow: [`Trace::write_to`] /
//! [`Trace::read_from`] stream a trace to/from any `Read`/`Write`
//! (buffer them for files) in a compact little-endian format:
//!
//! ```text
//! magic "CTRC" | version u16 | category u8 | name len u16 | name bytes
//! op count u64 | per op: pc u64, class u8, flags u8,
//!   srcs (u8 each, 0xFF = none) ×3, dst u8 (0xFF = none),
//!   [addr u64, size u8]   if flags & MEM
//!   [value u64]           if flags & VALUE
//!   [target u64, kind u8, taken] if flags & BRANCH
//! ```

use crate::ids::{Addr, ArchReg, Pc};
use crate::op::{BranchInfo, BranchKind, MemRef, MicroOp, OpClass};
use crate::trace::{Category, Trace};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"CTRC";
const VERSION: u16 = 1;

const FLAG_MEM: u8 = 1;
const FLAG_VALUE: u8 = 2;
const FLAG_BRANCH: u8 = 4;
const NO_REG: u8 = 0xFF;

/// Error reading a serialized trace.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a trace file (bad magic).
    BadMagic,
    /// Unsupported format version.
    UnsupportedVersion(u16),
    /// Corrupt field (with a description).
    Corrupt(&'static str),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "i/o error: {e}"),
            TraceIoError::BadMagic => write!(f, "not a trace file (bad magic)"),
            TraceIoError::UnsupportedVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceIoError::Corrupt(what) => write!(f, "corrupt trace: {what}"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

fn category_code(c: Category) -> u8 {
    match c {
        Category::Client => 0,
        Category::Fspec => 1,
        Category::Hpc => 2,
        Category::Ispec => 3,
        Category::Server => 4,
    }
}

fn category_from(code: u8) -> Result<Category, TraceIoError> {
    Ok(match code {
        0 => Category::Client,
        1 => Category::Fspec,
        2 => Category::Hpc,
        3 => Category::Ispec,
        4 => Category::Server,
        _ => return Err(TraceIoError::Corrupt("category")),
    })
}

fn class_code(c: OpClass) -> u8 {
    match c {
        OpClass::Alu => 0,
        OpClass::Mul => 1,
        OpClass::Div => 2,
        OpClass::FpAdd => 3,
        OpClass::FpMul => 4,
        OpClass::Load => 5,
        OpClass::Store => 6,
        OpClass::Branch => 7,
        OpClass::Nop => 8,
    }
}

fn class_from(code: u8) -> Result<OpClass, TraceIoError> {
    Ok(match code {
        0 => OpClass::Alu,
        1 => OpClass::Mul,
        2 => OpClass::Div,
        3 => OpClass::FpAdd,
        4 => OpClass::FpMul,
        5 => OpClass::Load,
        6 => OpClass::Store,
        7 => OpClass::Branch,
        8 => OpClass::Nop,
        _ => return Err(TraceIoError::Corrupt("op class")),
    })
}

fn kind_code(k: BranchKind) -> u8 {
    match k {
        BranchKind::Conditional => 0,
        BranchKind::Direct => 1,
        BranchKind::Indirect => 2,
    }
}

fn kind_from(code: u8) -> Result<BranchKind, TraceIoError> {
    Ok(match code {
        0 => BranchKind::Conditional,
        1 => BranchKind::Direct,
        2 => BranchKind::Indirect,
        _ => return Err(TraceIoError::Corrupt("branch kind")),
    })
}

fn read_exact<const N: usize>(r: &mut impl Read) -> Result<[u8; N], TraceIoError> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

fn read_u64(r: &mut impl Read) -> Result<u64, TraceIoError> {
    Ok(u64::from_le_bytes(read_exact::<8>(r)?))
}

fn read_u16(r: &mut impl Read) -> Result<u16, TraceIoError> {
    Ok(u16::from_le_bytes(read_exact::<2>(r)?))
}

fn read_u8(r: &mut impl Read) -> Result<u8, TraceIoError> {
    Ok(read_exact::<1>(r)?[0])
}

impl Trace {
    /// Serialises the trace. Wrap `w` in a `BufWriter` for files; a `mut`
    /// reference also works as a writer.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), TraceIoError> {
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&[category_code(self.category())])?;
        let name = self.name().as_bytes();
        let name_len = u16::try_from(name.len()).unwrap_or(u16::MAX);
        w.write_all(&name_len.to_le_bytes())?;
        w.write_all(&name[..name_len as usize])?;
        w.write_all(&(self.len() as u64).to_le_bytes())?;
        for op in self.ops() {
            w.write_all(&op.pc.get().to_le_bytes())?;
            let mut flags = 0u8;
            if op.mem.is_some() {
                flags |= FLAG_MEM;
            }
            if op.load_value != 0 {
                flags |= FLAG_VALUE;
            }
            if op.branch.is_some() {
                flags |= FLAG_BRANCH;
            }
            w.write_all(&[class_code(op.class), flags])?;
            for slot in op.srcs {
                w.write_all(&[slot.map(|r| r.index() as u8).unwrap_or(NO_REG)])?;
            }
            w.write_all(&[op.dst.map(|r| r.index() as u8).unwrap_or(NO_REG)])?;
            if let Some(mem) = op.mem {
                w.write_all(&mem.addr.get().to_le_bytes())?;
                w.write_all(&[mem.size])?;
            }
            if flags & FLAG_VALUE != 0 {
                w.write_all(&op.load_value.to_le_bytes())?;
            }
            if let Some(b) = op.branch {
                w.write_all(&b.target.get().to_le_bytes())?;
                w.write_all(&[kind_code(b.kind), u8::from(b.taken)])?;
            }
        }
        Ok(())
    }

    /// Deserialises a trace written by [`Trace::write_to`]. Wrap `r` in a
    /// `BufReader` for files.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError`] on I/O failure, bad magic, unsupported
    /// version, or corrupt fields.
    pub fn read_from(r: &mut impl Read) -> Result<Trace, TraceIoError> {
        if &read_exact::<4>(r)? != MAGIC {
            return Err(TraceIoError::BadMagic);
        }
        let version = read_u16(r)?;
        if version != VERSION {
            return Err(TraceIoError::UnsupportedVersion(version));
        }
        let category = category_from(read_u8(r)?)?;
        let name_len = read_u16(r)? as usize;
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name).map_err(|_| TraceIoError::Corrupt("name"))?;
        let count = read_u64(r)?;
        if count > 1 << 32 {
            return Err(TraceIoError::Corrupt("op count"));
        }
        let mut ops = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let pc = Pc::new(read_u64(r)?);
            let [class, flags] = read_exact::<2>(r)?;
            let class = class_from(class)?;
            let mut srcs = [None; 3];
            for slot in srcs.iter_mut() {
                let raw = read_u8(r)?;
                if raw != NO_REG {
                    if raw as usize >= ArchReg::COUNT {
                        return Err(TraceIoError::Corrupt("source register"));
                    }
                    *slot = Some(ArchReg::new(raw));
                }
            }
            let dst_raw = read_u8(r)?;
            let dst = if dst_raw == NO_REG {
                None
            } else if (dst_raw as usize) < ArchReg::COUNT {
                Some(ArchReg::new(dst_raw))
            } else {
                return Err(TraceIoError::Corrupt("destination register"));
            };
            let mem = if flags & FLAG_MEM != 0 {
                let addr = Addr::new(read_u64(r)?);
                let size = read_u8(r)?;
                Some(MemRef { addr, size })
            } else {
                None
            };
            let load_value = if flags & FLAG_VALUE != 0 {
                read_u64(r)?
            } else {
                0
            };
            let branch = if flags & FLAG_BRANCH != 0 {
                let target = Pc::new(read_u64(r)?);
                let [kind, taken] = read_exact::<2>(r)?;
                Some(BranchInfo {
                    taken: taken != 0,
                    target,
                    kind: kind_from(kind)?,
                })
            } else {
                None
            };
            ops.push(MicroOp {
                pc,
                class,
                srcs,
                dst,
                mem,
                load_value,
                branch,
            });
        }
        Ok(Trace::from_parts(name, category, ops))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;

    fn sample() -> Trace {
        let mut b = TraceBuilder::new("roundtrip");
        b.category(Category::Server);
        let r1 = ArchReg::new(1);
        let r2 = ArchReg::new(2);
        b.load(r1, Addr::new(0x1000), 0xdead_beef);
        b.alu(r2, &[r1]);
        b.store(Addr::new(0x2000), &[r2]);
        let top = b.label();
        b.cond_branch(true, top.pc(), &[r2]);
        b.indirect_jump(Pc::new(0x9000), &[r1]);
        b.fmul(ArchReg::new(20), &[ArchReg::new(20)]);
        b.build()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t = sample();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let back = Trace::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back.name(), t.name());
        assert_eq!(back.category(), t.category());
        assert_eq!(back.ops(), t.ops());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = Trace::read_from(&mut &b"NOPE....."[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::BadMagic));
    }

    #[test]
    fn unsupported_version_rejected() {
        let t = sample();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        buf[4] = 0xFF; // clobber version
        let err = Trace::read_from(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::UnsupportedVersion(_)));
    }

    #[test]
    fn truncated_stream_is_io_error() {
        let t = sample();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let err = Trace::read_from(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::Io(_)));
    }

    #[test]
    fn corrupt_register_detected() {
        let t = sample();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        // First op's first source register byte: header is 4+2+1+2+name+8,
        // op starts with pc(8)+class(1)+flags(1).
        let name_len = t.name().len();
        let srcs_at = 4 + 2 + 1 + 2 + name_len + 8 + 8 + 1 + 1;
        buf[srcs_at] = 200; // invalid register index
        let err = Trace::read_from(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::Corrupt(_)), "{err}");
    }

    #[test]
    fn compactness_is_reasonable() {
        let t = sample();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        // Well under a serde-JSON encoding; ~14-28 bytes per op.
        assert!(buf.len() < t.len() * 32 + 64, "size {}", buf.len());
    }
}
