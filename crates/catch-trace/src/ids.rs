//! Newtype identifiers for addresses, program counters and registers.

use std::fmt;

/// Bytes per cache line (64 B, as in the paper's Skylake-like baseline).
pub const LINE_BYTES: u64 = 64;

/// Bytes per page (4 KB, the granularity used by the TACT trigger cache).
pub const PAGE_BYTES: u64 = 4096;

/// A data (virtual) byte address.
///
/// # Example
///
/// ```
/// use catch_trace::Addr;
/// let a = Addr::new(0x1234);
/// assert_eq!(a.line().base().get(), 0x1200 & !63);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte value.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte address.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the cache line containing this address.
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 / LINE_BYTES)
    }

    /// Returns the 4 KB page containing this address.
    pub const fn page(self) -> PageAddr {
        PageAddr(self.0 / PAGE_BYTES)
    }

    /// Returns the address offset by `delta` bytes (may be negative).
    pub const fn offset(self, delta: i64) -> Addr {
        Addr(self.0.wrapping_add(delta as u64))
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

/// A cache-line number (byte address divided by [`LINE_BYTES`]).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line number directly.
    pub const fn new(line: u64) -> Self {
        LineAddr(line)
    }

    /// Returns the raw line number.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the first byte address of the line.
    pub const fn base(self) -> Addr {
        Addr(self.0 * LINE_BYTES)
    }

    /// Returns the page containing this line.
    pub const fn page(self) -> PageAddr {
        PageAddr(self.0 * LINE_BYTES / PAGE_BYTES)
    }

    /// Returns the line `delta` lines away.
    pub const fn offset(self, delta: i64) -> LineAddr {
        LineAddr(self.0.wrapping_add(delta as u64))
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Line({:#x})", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A 4 KB page number.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageAddr(u64);

impl PageAddr {
    /// Creates a page number directly.
    pub const fn new(page: u64) -> Self {
        PageAddr(page)
    }

    /// Returns the raw page number.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the first byte address of the page.
    pub const fn base(self) -> Addr {
        Addr(self.0 * PAGE_BYTES)
    }
}

impl fmt::Debug for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Page({:#x})", self.0)
    }
}

/// A program counter (instruction byte address).
///
/// Code requests use [`Pc::line`] to obtain the instruction cache line.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pc(u64);

impl Pc {
    /// Creates a program counter from a raw byte value.
    pub const fn new(raw: u64) -> Self {
        Pc(raw)
    }

    /// Returns the raw byte value.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the instruction cache line containing this PC.
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 / LINE_BYTES)
    }

    /// Returns the PC advanced by `bytes`.
    pub const fn advance(self, bytes: u64) -> Pc {
        Pc(self.0.wrapping_add(bytes))
    }

    /// Returns a compact hash of the PC, as stored by area-constrained
    /// hardware tables (the paper stores a 10-bit hashed PC in the DDG).
    pub const fn hashed(self, bits: u32) -> u64 {
        // Simple xor-fold; adequate for a hardware-style hashed tag.
        let x = self.0 ^ (self.0 >> 13) ^ (self.0 >> 29);
        x & ((1u64 << bits) - 1)
    }
}

impl fmt::Debug for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pc({:#x})", self.0)
    }
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Pc {
    fn from(raw: u64) -> Self {
        Pc(raw)
    }
}

/// An architectural register identifier.
///
/// The model uses a flat namespace of up to 64 architectural registers;
/// workload generators conventionally use 0–15 for integer registers
/// (mirroring x86-64, and matching the 16-entry feeder tracking table of
/// TACT) and 16–47 for FP/vector registers.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArchReg(u8);

impl ArchReg {
    /// Maximum number of architectural registers in the model.
    pub const COUNT: usize = 64;

    /// Creates a register identifier.
    ///
    /// # Panics
    ///
    /// Panics if `index >= ArchReg::COUNT`.
    pub const fn new(index: u8) -> Self {
        assert!(
            (index as usize) < Self::COUNT,
            "register index out of range"
        );
        ArchReg(index)
    }

    /// Returns the register index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_line_and_page() {
        let a = Addr::new(4096 + 65);
        assert_eq!(a.line().get(), (4096 + 65) / 64);
        assert_eq!(a.page().get(), 1);
        assert_eq!(a.line().base().get(), 4096 + 64);
    }

    #[test]
    fn line_offset_wraps() {
        let l = LineAddr::new(10);
        assert_eq!(l.offset(-3).get(), 7);
        assert_eq!(l.offset(5).get(), 15);
    }

    #[test]
    fn pc_line_matches_addr_semantics() {
        let pc = Pc::new(0x400_0040);
        assert_eq!(pc.line().get(), 0x400_0040 / 64);
        assert_eq!(pc.advance(4).get(), 0x400_0044);
    }

    #[test]
    fn pc_hash_is_bounded() {
        for raw in [0u64, 1, 0xdead_beef, u64::MAX] {
            assert!(Pc::new(raw).hashed(10) < 1024);
        }
    }

    #[test]
    #[should_panic(expected = "register index out of range")]
    fn arch_reg_rejects_out_of_range() {
        let _ = ArchReg::new(64);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Addr::new(0x40)), "0x40");
        assert_eq!(format!("{}", ArchReg::new(3)), "r3");
        assert_eq!(format!("{:?}", LineAddr::new(1)), "Line(0x1)");
    }
}
