//! Micro-operation records.

use crate::ids::{Addr, ArchReg, Pc};
use std::fmt;

/// Functional class of a micro-op; determines which execution port it uses
/// and its base execution latency in the core model.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum OpClass {
    /// Simple integer ALU operation (1 cycle).
    Alu,
    /// Integer multiply (3 cycles).
    Mul,
    /// Integer/FP divide (long latency, unpipelined-ish).
    Div,
    /// Floating-point add/sub (4 cycles).
    FpAdd,
    /// Floating-point multiply / FMA (4-5 cycles).
    FpMul,
    /// Memory load; latency comes from the cache hierarchy.
    Load,
    /// Memory store; retires when address/data are ready, writes back
    /// through the L1.
    Store,
    /// Conditional or unconditional branch.
    Branch,
    /// No-op / fence placeholder (1 cycle, no dependences added).
    Nop,
}

impl OpClass {
    /// True for classes that reference memory.
    pub const fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::Alu => "alu",
            OpClass::Mul => "mul",
            OpClass::Div => "div",
            OpClass::FpAdd => "fadd",
            OpClass::FpMul => "fmul",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "branch",
            OpClass::Nop => "nop",
        };
        f.write_str(s)
    }
}

/// Up to three source registers, stored inline.
pub type SrcRegs = [Option<ArchReg>; 3];

/// A memory reference attached to a load or store.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct MemRef {
    /// Byte address referenced.
    pub addr: Addr,
    /// Access size in bytes (1–64).
    pub size: u8,
}

/// Kind of branch, affecting prediction behaviour.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum BranchKind {
    /// Conditional direct branch (predicted by the direction predictor).
    Conditional,
    /// Unconditional direct jump/call (always predicted correctly once the
    /// BTB knows the target; modelled as always-correct).
    Direct,
    /// Indirect jump/call/return (mispredicts with a configurable rate via
    /// the target predictor).
    Indirect,
}

/// Branch metadata attached to a [`OpClass::Branch`] micro-op.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct BranchInfo {
    /// Whether the branch is taken in the trace.
    pub taken: bool,
    /// Target PC when taken (fall-through is `pc + 4` otherwise).
    pub target: Pc,
    /// Branch kind.
    pub kind: BranchKind,
}

/// One retired-path micro-operation.
///
/// `MicroOp` is the unit the core model allocates, schedules, executes and
/// retires. Loads carry the value they load (`load_value`) so that the
/// TACT-Feeder prefetcher can learn data→address associations exactly as
/// the hardware proposal would observe them.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct MicroOp {
    /// Program counter of the parent instruction.
    pub pc: Pc,
    /// Functional class.
    pub class: OpClass,
    /// Source registers (dependences).
    pub srcs: SrcRegs,
    /// Destination register, if any.
    pub dst: Option<ArchReg>,
    /// Memory reference for loads/stores.
    pub mem: Option<MemRef>,
    /// Value loaded from memory (loads only; 0 otherwise).
    pub load_value: u64,
    /// Branch metadata (branches only).
    pub branch: Option<BranchInfo>,
}

impl MicroOp {
    /// Creates a non-memory, non-branch op.
    pub fn compute(pc: Pc, class: OpClass, dst: Option<ArchReg>, srcs: &[ArchReg]) -> Self {
        MicroOp {
            pc,
            class,
            srcs: pack_srcs(srcs),
            dst,
            mem: None,
            load_value: 0,
            branch: None,
        }
    }

    /// Creates a load of `size` bytes at `addr` producing `value` into `dst`.
    pub fn load(pc: Pc, dst: ArchReg, addr: Addr, value: u64, srcs: &[ArchReg]) -> Self {
        MicroOp {
            pc,
            class: OpClass::Load,
            srcs: pack_srcs(srcs),
            dst: Some(dst),
            mem: Some(MemRef { addr, size: 8 }),
            load_value: value,
            branch: None,
        }
    }

    /// Creates a store to `addr` whose data comes from `srcs`.
    pub fn store(pc: Pc, addr: Addr, srcs: &[ArchReg]) -> Self {
        MicroOp {
            pc,
            class: OpClass::Store,
            srcs: pack_srcs(srcs),
            dst: None,
            mem: Some(MemRef { addr, size: 8 }),
            load_value: 0,
            branch: None,
        }
    }

    /// Creates a branch.
    pub fn branch(pc: Pc, info: BranchInfo, srcs: &[ArchReg]) -> Self {
        MicroOp {
            pc,
            class: OpClass::Branch,
            srcs: pack_srcs(srcs),
            dst: None,
            mem: None,
            load_value: 0,
            branch: Some(info),
        }
    }

    /// True if this op reads `reg`.
    pub fn reads(&self, reg: ArchReg) -> bool {
        self.srcs.iter().flatten().any(|&r| r == reg)
    }

    /// Iterates over the source registers that are present.
    pub fn sources(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.srcs.iter().flatten().copied()
    }

    /// The address of the next sequential instruction (PCs advance by 4).
    pub fn fallthrough(&self) -> Pc {
        self.pc.advance(4)
    }

    /// The PC the front end should fetch after this op, honouring taken
    /// branches.
    pub fn next_pc(&self) -> Pc {
        match self.branch {
            Some(b) if b.taken => b.target,
            _ => self.fallthrough(),
        }
    }
}

fn pack_srcs(srcs: &[ArchReg]) -> SrcRegs {
    assert!(srcs.len() <= 3, "micro-ops have at most 3 register sources");
    let mut out: SrcRegs = [None; 3];
    for (slot, &reg) in out.iter_mut().zip(srcs.iter()) {
        *slot = Some(reg);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> ArchReg {
        ArchReg::new(i)
    }

    #[test]
    fn compute_op_tracks_sources() {
        let op = MicroOp::compute(Pc::new(0x10), OpClass::Alu, Some(r(3)), &[r(1), r(2)]);
        assert!(op.reads(r(1)));
        assert!(op.reads(r(2)));
        assert!(!op.reads(r(3)));
        assert_eq!(op.sources().count(), 2);
    }

    #[test]
    fn load_records_value_and_addr() {
        let op = MicroOp::load(Pc::new(0), r(1), Addr::new(0x80), 0xdead, &[r(2)]);
        assert_eq!(op.class, OpClass::Load);
        assert_eq!(op.mem.unwrap().addr, Addr::new(0x80));
        assert_eq!(op.load_value, 0xdead);
        assert_eq!(op.dst, Some(r(1)));
    }

    #[test]
    fn branch_next_pc_follows_taken_target() {
        let info = BranchInfo {
            taken: true,
            target: Pc::new(0x100),
            kind: BranchKind::Conditional,
        };
        let op = MicroOp::branch(Pc::new(0x10), info, &[]);
        assert_eq!(op.next_pc(), Pc::new(0x100));

        let nt = MicroOp::branch(
            Pc::new(0x10),
            BranchInfo {
                taken: false,
                ..info
            },
            &[],
        );
        assert_eq!(nt.next_pc(), Pc::new(0x14));
    }

    #[test]
    #[should_panic(expected = "at most 3")]
    fn too_many_sources_panics() {
        let _ = MicroOp::compute(Pc::new(0), OpClass::Alu, None, &[r(0), r(1), r(2), r(3)]);
    }

    #[test]
    fn mem_class_predicate() {
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        assert!(!OpClass::Branch.is_mem());
    }
}
