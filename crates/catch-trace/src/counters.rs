//! Flat counter export for statistics structs.
//!
//! Every stats block in the workspace can flatten itself into ordered
//! `(name, value)` pairs. The experiment harness uses this for three
//! things: byte-identical parity checks between the serial and parallel
//! suite runners, golden-stats regression snapshots, and JSON export —
//! all without an external serialisation dependency.

/// A flat, ordered list of named integer counters.
pub type CounterVec = Vec<(String, u64)>;

/// Types that can flatten their statistics into named counters.
///
/// Implementations must be *exhaustive* (every counter that affects
/// results appears) and *deterministically ordered* (same fields, same
/// order, every call) — golden snapshots diff the rendered list.
pub trait Counters {
    /// Appends `(prefix + name, value)` pairs for every counter.
    fn counters_into(&self, prefix: &str, out: &mut CounterVec);

    /// Collects all counters with the given prefix.
    fn counters(&self, prefix: &str) -> CounterVec {
        let mut out = Vec::new();
        self.counters_into(prefix, &mut out);
        out
    }
}

/// Difference of two snapshots of a monotonically increasing counter.
///
/// In debug builds (tests, CI) a non-monotonic pair panics: the stats
/// `minus` impls exist solely to delta counters that only ever grow
/// (warm-up exclusion, sampled snapshot reconstruction), so `now <
/// earlier` always means a counter-bookkeeping bug and must not be
/// silently masked. Release builds keep the saturating behaviour.
#[inline]
pub fn monotonic_delta(now: u64, earlier: u64) -> u64 {
    debug_assert!(
        now >= earlier,
        "non-monotonic counter snapshot: now {now} < earlier {earlier}"
    );
    now.saturating_sub(earlier)
}

/// Pushes one counter, joining prefix and name with `.` when needed.
pub fn push_counter(out: &mut CounterVec, prefix: &str, name: &str, value: u64) {
    out.push((join_prefix(prefix, name), value));
}

/// Ordered replay of a flat counter list, used to reconstruct stats
/// structs from a persisted [`CounterVec`].
///
/// Reconstruction mirrors [`Counters::counters_into`]: each struct
/// consumes its counters *in emission order*, and every read checks the
/// stored name against the expected one. A mismatch (renamed counter,
/// reordered fields, missing or extra entries) is a schema change and
/// surfaces as an `Err` — the run cache treats that as a miss and
/// recomputes rather than deserialising garbage.
#[derive(Clone, Debug)]
pub struct CounterSource {
    counters: CounterVec,
    cursor: usize,
}

impl CounterSource {
    /// Wraps a flat counter list for ordered replay.
    pub fn new(counters: CounterVec) -> Self {
        CounterSource {
            counters,
            cursor: 0,
        }
    }

    /// Consumes the next counter, checking it is named
    /// `prefix.name` (mirroring [`push_counter`]).
    pub fn take(&mut self, prefix: &str, name: &str) -> Result<u64, String> {
        let expect = join_prefix(prefix, name);
        match self.counters.get(self.cursor) {
            Some((k, v)) if *k == expect => {
                self.cursor += 1;
                Ok(*v)
            }
            Some((k, _)) => Err(format!(
                "counter schema mismatch: expected '{expect}', found '{k}'"
            )),
            None => Err(format!("counter stream ended; expected '{expect}'")),
        }
    }

    /// Peeks whether the next counter lives under `prefix` (i.e. its name
    /// is `prefix.<something>`). Used to discover optional blocks and
    /// per-core vector lengths without a side channel.
    pub fn next_in(&self, prefix: &str) -> bool {
        self.counters.get(self.cursor).is_some_and(|(k, _)| {
            k.strip_prefix(prefix)
                .is_some_and(|rest| rest.starts_with('.'))
        })
    }

    /// Checks every counter was consumed; trailing entries mean the
    /// stored list came from a newer (or older) schema.
    pub fn finish(self) -> Result<(), String> {
        match self.counters.get(self.cursor) {
            None => Ok(()),
            Some((k, _)) => Err(format!(
                "{} unconsumed counters starting at '{k}'",
                self.counters.len() - self.cursor
            )),
        }
    }
}

/// Types reconstructible from their own [`Counters`] export.
///
/// The implementation must consume exactly the counters
/// [`Counters::counters_into`] emits, in the same order — the pair of
/// impls forms a byte-exact round trip, asserted by the `cache_parity`
/// suite in `catch-tests`.
pub trait FromCounters: Sized {
    /// Rebuilds the struct by consuming its counters from `src`.
    fn from_counters(prefix: &str, src: &mut CounterSource) -> Result<Self, String>;
}

/// Joins a counter prefix and a sub-name with `.` (no leading dot for an
/// empty prefix).
pub fn join_prefix(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_string()
    } else {
        format!("{prefix}.{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Two {
        a: u64,
        b: u64,
    }

    impl Counters for Two {
        fn counters_into(&self, prefix: &str, out: &mut CounterVec) {
            push_counter(out, prefix, "a", self.a);
            push_counter(out, prefix, "b", self.b);
        }
    }

    #[test]
    fn prefixes_join_with_dot() {
        let t = Two { a: 1, b: 2 };
        assert_eq!(
            t.counters("core"),
            vec![("core.a".to_string(), 1), ("core.b".to_string(), 2)]
        );
        assert_eq!(t.counters("")[0].0, "a");
    }
}
