//! Flat counter export for statistics structs.
//!
//! Every stats block in the workspace can flatten itself into ordered
//! `(name, value)` pairs. The experiment harness uses this for three
//! things: byte-identical parity checks between the serial and parallel
//! suite runners, golden-stats regression snapshots, and JSON export —
//! all without an external serialisation dependency.

/// A flat, ordered list of named integer counters.
pub type CounterVec = Vec<(String, u64)>;

/// Types that can flatten their statistics into named counters.
///
/// Implementations must be *exhaustive* (every counter that affects
/// results appears) and *deterministically ordered* (same fields, same
/// order, every call) — golden snapshots diff the rendered list.
pub trait Counters {
    /// Appends `(prefix + name, value)` pairs for every counter.
    fn counters_into(&self, prefix: &str, out: &mut CounterVec);

    /// Collects all counters with the given prefix.
    fn counters(&self, prefix: &str) -> CounterVec {
        let mut out = Vec::new();
        self.counters_into(prefix, &mut out);
        out
    }
}

/// Difference of two snapshots of a monotonically increasing counter.
///
/// In debug builds (tests, CI) a non-monotonic pair panics: the stats
/// `minus` impls exist solely to delta counters that only ever grow
/// (warm-up exclusion, sampled snapshot reconstruction), so `now <
/// earlier` always means a counter-bookkeeping bug and must not be
/// silently masked. Release builds keep the saturating behaviour.
#[inline]
pub fn monotonic_delta(now: u64, earlier: u64) -> u64 {
    debug_assert!(
        now >= earlier,
        "non-monotonic counter snapshot: now {now} < earlier {earlier}"
    );
    now.saturating_sub(earlier)
}

/// Pushes one counter, joining prefix and name with `.` when needed.
pub fn push_counter(out: &mut CounterVec, prefix: &str, name: &str, value: u64) {
    out.push((join_prefix(prefix, name), value));
}

/// Joins a counter prefix and a sub-name with `.` (no leading dot for an
/// empty prefix).
pub fn join_prefix(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_string()
    } else {
        format!("{prefix}.{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Two {
        a: u64,
        b: u64,
    }

    impl Counters for Two {
        fn counters_into(&self, prefix: &str, out: &mut CounterVec) {
            push_counter(out, prefix, "a", self.a);
            push_counter(out, prefix, "b", self.b);
        }
    }

    #[test]
    fn prefixes_join_with_dot() {
        let t = Two { a: 1, b: 2 };
        assert_eq!(
            t.counters("core"),
            vec![("core.a".to_string(), 1), ("core.b".to_string(), 2)]
        );
        assert_eq!(t.counters("")[0].0, "a");
    }
}
