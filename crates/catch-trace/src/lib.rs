//! Instruction and trace model for the CATCH simulator.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: addresses, program counters, architectural registers, micro-op
//! records, and the [`Trace`] container that the cycle-level core model
//! consumes.
//!
//! The CATCH paper (Nori et al., ISCA 2018) evaluates its proposal with a
//! trace-driven cycle-accurate simulator. A trace here is a sequence of
//! retired-path [`MicroOp`]s carrying:
//!
//! * the program counter (so PC-indexed structures — stride prefetchers,
//!   critical-load tables, TACT tables — behave as in hardware),
//! * architectural register sources/destination (so the data-dependence
//!   graph of Fields et al. can be rebuilt),
//! * memory address *and loaded value* for loads (so the TACT-Feeder
//!   prefetcher can learn `address = scale * data + base` relations from
//!   real pointer dereferences),
//! * branch direction and target (so the front end can mispredict).
//!
//! # Example
//!
//! ```
//! use catch_trace::{ArchReg, TraceBuilder, Addr};
//!
//! let mut b = TraceBuilder::new("demo");
//! let r1 = ArchReg::new(1);
//! b.load(r1, Addr::new(0x1000), 42);
//! b.alu(ArchReg::new(2), &[r1]);
//! let trace = b.build();
//! assert_eq!(trace.len(), 2);
//! assert!(trace.ops()[1].reads(r1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
pub mod counters;
pub mod hash;
mod ids;
mod io;
mod op;
pub mod rng;
mod stats;
mod trace;

pub use builder::{Label, TraceBuilder};
pub use ids::{Addr, ArchReg, LineAddr, PageAddr, Pc, LINE_BYTES, PAGE_BYTES};
pub use io::TraceIoError;
pub use op::{BranchInfo, BranchKind, MemRef, MicroOp, OpClass, SrcRegs};
pub use stats::TraceStats;
pub use trace::{Category, Trace};
