//! Content-addressed memoization of suite simulations.
//!
//! The experiment registry re-simulates the same (configuration,
//! workload) pairs many times over: `fig01`, `fig03`, `fig10`, `fig12`,
//! `fig15` and the tables all include the exclusive baseline suite, and
//! every suite run used to regenerate each workload trace per job. The
//! run cache removes that duplication without changing a single byte of
//! any report:
//!
//! * **Fingerprinting** — [`run_fingerprint`] hashes the structural
//!   content of a [`SystemConfig`] (its `Debug` rendering with the
//!   display name stripped), the [`EvalConfig`], the workload id and
//!   [`SCHEMA_VERSION`] into a 128-bit key. Two requests share a key iff
//!   they describe the same simulation — so `fig10`'s `"CATCH"` and
//!   `fig12`'s `"base-excl+CATCH"` (structurally identical machines)
//!   simulate once; the requested display name is patched onto the
//!   cached result instead.
//! * **Single-flight deduplication** — concurrent requests for one key
//!   block on the first requester's computation instead of racing a
//!   duplicate simulation. A panicking computation marks its slot failed
//!   and wakes waiters so one of them retries.
//! * **Trace store** — traces are generated once per
//!   (workload, ops, seed) and shared as [`Arc<Trace>`] across every
//!   configuration that replays them.
//! * **Disk persistence** — with `CATCH_RUN_CACHE=<dir>`, finished runs
//!   are serialised through the first-party JSON writer
//!   ([`crate::report::json`]) together with an integrity hash over the
//!   canonical re-rendering, so a later process can skip the simulation
//!   entirely. Any mismatch (schema version, fingerprint, counter
//!   layout, integrity) silently falls back to recomputation.
//!
//! Correctness argument: a cached result is only ever reused under the
//! exact structural key that produced it, simulations are deterministic
//! functions of (config, eval, workload), and the only post-hoc mutation
//! is the report-label `config` field (which no counter depends on) —
//! hence cache-off, cache-on and warm-disk runs are byte-identical,
//! which the `cache_parity` suite in `catch-tests` asserts.

use crate::experiments::EvalConfig;
use crate::metrics::RunResult;
use crate::report::json;
use crate::system::SystemConfig;
use catch_trace::counters::CounterVec;
use catch_trace::hash::FxHasher;
use catch_trace::Trace;
use catch_workloads::WorkloadSpec;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Environment variable selecting the cache mode: unset (or empty) keeps
/// the in-memory cache, `off`/`0` disables caching entirely, and any
/// other value is a directory for cross-process persistence.
pub const RUN_CACHE_ENV: &str = "CATCH_RUN_CACHE";

/// Bump on any change that invalidates persisted results: counter
/// schema, trace generation, or simulator semantics. Part of every
/// fingerprint, so stale disk entries can never match.
pub const SCHEMA_VERSION: u64 = 1;

/// A 128-bit content fingerprint (two independent 64-bit Fx passes).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Hashes `payload` twice with distinct domain-prefix bytes; 64 bits per
/// half keeps accidental collisions across a few hundred keys negligible
/// (and the workload id is re-checked on every disk load anyway).
pub(crate) fn fp128(payload: &str) -> Fingerprint {
    let half = |tag: u8| {
        let mut h = FxHasher::default();
        h.write_u8(tag);
        h.write(payload.as_bytes());
        h.finish()
    };
    Fingerprint(((half(0x0D) as u128) << 64) | half(0xF1) as u128)
}

/// Structural cache key for one (config, eval, workload) simulation.
///
/// The config's display `name` is a report label with no effect on the
/// simulation, so it is stripped before hashing — structurally identical
/// configs requested under different names share one key. Everything
/// else rides on the derived `Debug` renderings, which cover every field
/// (including env-captured ones like `CoreConfig::skip_ahead`), so any
/// field perturbation changes the key.
pub fn run_fingerprint(config: &SystemConfig, eval: &EvalConfig, workload: &str) -> Fingerprint {
    let mut anon = config.clone();
    anon.name = String::new();
    fp128(&format!(
        "schema{SCHEMA_VERSION}|{anon:?}|{eval:?}|{workload}"
    ))
}

/// One memoization slot: in flight, ready, or failed (computer panicked).
enum SlotState<V> {
    InFlight,
    Ready(V),
    Failed,
}

struct Slot<V> {
    state: Mutex<SlotState<V>>,
    ready: Condvar,
}

/// Marks the slot failed if the computation unwinds, so waiters retry
/// instead of blocking forever.
struct FailGuard<'a, V> {
    slot: &'a Slot<V>,
    armed: bool,
}

impl<V> Drop for FailGuard<'_, V> {
    fn drop(&mut self) {
        if self.armed {
            *self.slot.state.lock().unwrap_or_else(|e| e.into_inner()) = SlotState::Failed;
            self.slot.ready.notify_all();
        }
    }
}

/// A concurrency-safe memo map with single-flight deduplication: the
/// first requester of a key computes; concurrent requesters block until
/// the value is ready and share it.
struct SingleFlight<K, V> {
    slots: Mutex<HashMap<K, Arc<Slot<V>>>>,
}

impl<K: Eq + Hash + Clone, V: Clone> SingleFlight<K, V> {
    fn new() -> Self {
        SingleFlight {
            slots: Mutex::new(HashMap::new()),
        }
    }

    fn clear(&self) {
        self.slots.lock().expect("memo map poisoned").clear();
    }

    /// Returns the memoized value and whether this call was a hit
    /// (either already ready, or satisfied by waiting on another
    /// requester's in-flight computation).
    fn get_or_compute(&self, key: K, compute: impl FnOnce() -> V) -> (V, bool) {
        let mut compute = Some(compute);
        loop {
            let (slot, is_computer) = {
                let mut slots = self.slots.lock().expect("memo map poisoned");
                match slots.entry(key.clone()) {
                    std::collections::hash_map::Entry::Occupied(e) => (e.get().clone(), false),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        let slot = Arc::new(Slot {
                            state: Mutex::new(SlotState::InFlight),
                            ready: Condvar::new(),
                        });
                        e.insert(slot.clone());
                        (slot, true)
                    }
                }
            };
            if is_computer {
                let mut guard = FailGuard {
                    slot: &slot,
                    armed: true,
                };
                let value = (compute.take().expect("computer runs once"))();
                guard.armed = false;
                *slot.state.lock().expect("slot poisoned") = SlotState::Ready(value.clone());
                slot.ready.notify_all();
                return (value, false);
            }
            let mut state = slot.state.lock().expect("slot poisoned");
            loop {
                match &*state {
                    SlotState::Ready(v) => return (v.clone(), true),
                    SlotState::Failed => break,
                    SlotState::InFlight => {
                        state = slot.ready.wait(state).expect("slot poisoned");
                    }
                }
            }
            // The computer panicked: evict the failed slot (unless a
            // retrier already replaced it) and race to become the new
            // computer.
            drop(state);
            let mut slots = self.slots.lock().expect("memo map poisoned");
            if let Some(current) = slots.get(&key) {
                if Arc::ptr_eq(current, &slot) {
                    slots.remove(&key);
                }
            }
        }
    }
}

/// Where cached results live.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CacheMode {
    /// No caching: every request simulates (and regenerates its trace).
    Off,
    /// In-process memoization only (the default).
    Memory,
    /// In-process memoization plus persistence under the directory.
    Disk(PathBuf),
}

impl CacheMode {
    /// Reads the mode from [`RUN_CACHE_ENV`].
    pub fn from_env() -> Self {
        match std::env::var(RUN_CACHE_ENV) {
            Err(_) => CacheMode::Memory,
            Ok(v) if v.is_empty() => CacheMode::Memory,
            Ok(v) if v == "off" || v == "0" => CacheMode::Off,
            Ok(dir) => CacheMode::Disk(PathBuf::from(dir)),
        }
    }
}

/// Monotonic cache activity counters (a snapshot, not a live view).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheSummary {
    /// Simulation requests served from memory (incl. single-flight waits).
    pub hits: u64,
    /// Simulation requests that actually simulated.
    pub misses: u64,
    /// Trace requests served from the shared store.
    pub trace_hits: u64,
    /// Trace requests that generated.
    pub trace_misses: u64,
    /// Results loaded from disk instead of simulating.
    pub disk_hits: u64,
    /// Results persisted to disk.
    pub disk_stores: u64,
    /// Bytes read from persisted results.
    pub bytes_read: u64,
    /// Bytes written to persisted results.
    pub bytes_written: u64,
    /// Disk entries that were unreadable or corrupt (each one fell back
    /// to recomputation; the first prints a stderr warning).
    pub disk_warnings: u64,
}

impl fmt::Display for CacheSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "run cache: {} hits / {} misses (traces {} reused / {} built), \
             disk {} loaded / {} stored, {} B read / {} B written",
            self.hits,
            self.misses,
            self.trace_hits,
            self.trace_misses,
            self.disk_hits,
            self.disk_stores,
            self.bytes_read,
            self.bytes_written
        )?;
        if self.disk_warnings > 0 {
            write!(f, ", {} disk warnings", self.disk_warnings)?;
        }
        Ok(())
    }
}

#[derive(Default)]
struct Activity {
    hits: AtomicU64,
    misses: AtomicU64,
    trace_hits: AtomicU64,
    trace_misses: AtomicU64,
    disk_hits: AtomicU64,
    disk_stores: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    disk_warnings: AtomicU64,
}

fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

/// The process-wide run cache (see the module docs).
pub struct RunCache {
    mode: Mutex<CacheMode>,
    results: SingleFlight<u128, Arc<RunResult>>,
    traces: SingleFlight<(String, usize, u64), Arc<Trace>>,
    activity: Activity,
    disk_warned: AtomicBool,
}

static GLOBAL: OnceLock<RunCache> = OnceLock::new();

impl RunCache {
    /// A fresh, empty cache in the given mode.
    pub fn new(mode: CacheMode) -> Self {
        RunCache {
            mode: Mutex::new(mode),
            results: SingleFlight::new(),
            traces: SingleFlight::new(),
            activity: Activity::default(),
            disk_warned: AtomicBool::new(false),
        }
    }

    /// The process-wide cache, lazily initialised from [`RUN_CACHE_ENV`]
    /// on first use. Binaries that take cache flags must set the env var
    /// (or call [`RunCache::set_mode`]) before the first simulation.
    pub fn global() -> &'static RunCache {
        GLOBAL.get_or_init(|| RunCache::new(CacheMode::from_env()))
    }

    /// Current mode.
    pub fn mode(&self) -> CacheMode {
        self.mode.lock().expect("mode poisoned").clone()
    }

    /// Switches mode (does not drop memoized entries; pair with
    /// [`RunCache::reset_memory`] when isolation matters).
    pub fn set_mode(&self, mode: CacheMode) {
        *self.mode.lock().expect("mode poisoned") = mode;
    }

    /// Drops every memoized result and trace (activity counters keep
    /// accumulating). Lets one process measure a cold-vs-warm-disk pass.
    pub fn reset_memory(&self) {
        self.results.clear();
        self.traces.clear();
    }

    /// Snapshot of the activity counters.
    pub fn summary(&self) -> CacheSummary {
        let a = &self.activity;
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        CacheSummary {
            hits: get(&a.hits),
            misses: get(&a.misses),
            trace_hits: get(&a.trace_hits),
            trace_misses: get(&a.trace_misses),
            disk_hits: get(&a.disk_hits),
            disk_stores: get(&a.disk_stores),
            bytes_read: get(&a.bytes_read),
            bytes_written: get(&a.bytes_written),
            disk_warnings: get(&a.disk_warnings),
        }
    }

    /// The shared trace for (workload, ops, seed): generated once,
    /// shared by every configuration that replays it.
    pub fn trace(&self, spec: &WorkloadSpec, ops: usize, seed: u64) -> Arc<Trace> {
        if self.mode() == CacheMode::Off {
            bump(&self.activity.trace_misses);
            return Arc::new(spec.generate(ops, seed));
        }
        let key = (spec.name.to_string(), ops, seed);
        let (trace, hit) = self
            .traces
            .get_or_compute(key, || Arc::new(spec.generate(ops, seed)));
        bump(if hit {
            &self.activity.trace_hits
        } else {
            &self.activity.trace_misses
        });
        trace
    }

    /// Memoized simulation: returns the cached result for the structural
    /// key of (config, eval, workload), computing via `compute` at most
    /// once per key (per process — or per cache directory lifetime in
    /// disk mode). The result's `config` label is always the requested
    /// `config.name`, whatever name first populated the key.
    pub fn run_result(
        &self,
        config: &SystemConfig,
        eval: &EvalConfig,
        workload: &str,
        compute: impl FnOnce() -> RunResult,
    ) -> RunResult {
        if self.mode() == CacheMode::Off {
            bump(&self.activity.misses);
            return compute();
        }
        let fp = run_fingerprint(config, eval, workload);
        let (cached, hit) = self.results.get_or_compute(fp.0, || {
            if let CacheMode::Disk(dir) = self.mode() {
                if let Some(loaded) = self.load_disk(&dir, fp, workload) {
                    bump(&self.activity.disk_hits);
                    return Arc::new(loaded);
                }
            }
            bump(&self.activity.misses);
            let result = compute();
            if let CacheMode::Disk(dir) = self.mode() {
                self.store_disk(&dir, fp, &result);
            }
            Arc::new(result)
        });
        if hit {
            bump(&self.activity.hits);
        }
        let mut out = (*cached).clone();
        out.config = config.name.clone();
        out
    }

    /// Records a disk problem: bumps the `disk_warnings` counter every
    /// time, prints a stderr warning only for the first one (a corrupt
    /// cache directory would otherwise warn once per entry).
    fn warn_disk(&self, detail: &str) {
        bump(&self.activity.disk_warnings);
        if !self.disk_warned.swap(true, Ordering::Relaxed) {
            eprintln!(
                "warning: run cache: {detail}; recomputing \
                 (further disk problems counted silently in cache stats)"
            );
        }
    }

    /// Best-effort disk load; any failure (missing, unparsable, wrong
    /// schema/fingerprint/workload, integrity mismatch) means "miss".
    /// A missing entry is the normal cold-cache case and stays silent;
    /// an unreadable or corrupt entry is reported via [`Self::warn_disk`].
    fn load_disk(&self, dir: &Path, fp: Fingerprint, workload: &str) -> Option<RunResult> {
        let path = entry_path(dir, fp);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
            Err(e) => {
                self.warn_disk(&format!("unreadable entry {}: {e}", path.display()));
                return None;
            }
        };
        let loaded = self.decode_disk(&text, fp, workload);
        if loaded.is_none() {
            self.warn_disk(&format!("corrupt or stale entry {}", path.display()));
        }
        loaded
    }

    /// The decode half of [`Self::load_disk`]: `None` means the entry is
    /// corrupt or stale (schema bump, fingerprint/workload mismatch,
    /// integrity failure).
    fn decode_disk(&self, text: &str, fp: Fingerprint, workload: &str) -> Option<RunResult> {
        let parsed = json::parse(text).ok()?;
        if parsed.get("schema")?.as_num()? != SCHEMA_VERSION {
            return None;
        }
        if parsed.get("fingerprint")?.as_str()? != fp.to_string() {
            return None;
        }
        let integrity = parsed.get("integrity")?.as_str()?;
        let result = parsed.get("result")?;
        let stored_workload = result.get("workload")?.as_str()?;
        if stored_workload != workload {
            return None;
        }
        let label = result.get("category")?.as_str()?;
        let config = result.get("config")?.as_str()?;
        let counters: CounterVec = result
            .get("counters")?
            .as_obj()?
            .iter()
            .map(|(k, v)| Some((k.clone(), v.as_num()?)))
            .collect::<Option<_>>()?;
        let rebuilt = RunResult::from_parts(
            stored_workload.to_string(),
            label,
            config.to_string(),
            counters,
        )
        .ok()?;
        // The integrity hash covers the canonical re-rendering of the
        // *rebuilt* result, so it validates the whole decode chain
        // (parse + counter replay), not just the file bytes.
        if fp128(&json::run_result_to_json(&rebuilt, 0)).to_string() != integrity {
            return None;
        }
        self.activity
            .bytes_read
            .fetch_add(text.len() as u64, Ordering::Relaxed);
        Some(rebuilt)
    }

    /// Best-effort atomic disk store (tmp file + rename); the stored
    /// result carries an empty `config` label so the file bytes do not
    /// depend on which experiment populated the entry.
    fn store_disk(&self, dir: &Path, fp: Fingerprint, result: &RunResult) {
        let mut canonical = result.clone();
        canonical.config = String::new();
        let integrity = fp128(&json::run_result_to_json(&canonical, 0));
        let text = format!(
            "{{\n  \"schema\": {SCHEMA_VERSION},\n  \"fingerprint\": \"{fp}\",\n  \
             \"integrity\": \"{integrity}\",\n  \"result\": {}\n}}\n",
            json::run_result_to_json(&canonical, 1)
        );
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let tmp = dir.join(format!(".{fp}.tmp.{}", std::process::id()));
        if std::fs::write(&tmp, &text).is_err() {
            return;
        }
        if std::fs::rename(&tmp, entry_path(dir, fp)).is_ok() {
            bump(&self.activity.disk_stores);
            self.activity
                .bytes_written
                .fetch_add(text.len() as u64, Ordering::Relaxed);
        } else {
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

fn entry_path(dir: &Path, fp: Fingerprint) -> PathBuf {
    dir.join(format!("{fp}.json"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;
    use catch_cache::Level;
    use catch_cpu::LoadOracle;
    use catch_criticality::DetectorConfig;
    use std::sync::atomic::AtomicUsize;

    fn quick() -> EvalConfig {
        EvalConfig::quick()
    }

    #[test]
    fn every_config_builder_changes_fingerprint() {
        let eval = quick();
        let base = SystemConfig::baseline_exclusive();
        let fp = |c: &SystemConfig| run_fingerprint(c, &eval, "mcf_like");
        // One variant per config-mutating builder.
        let variants = vec![
            SystemConfig::baseline_inclusive(),
            base.clone().with_cores(4),
            base.clone().without_l2(6656 << 10),
            base.clone().with_catch(),
            base.clone().with_tact_components(true, false, false, false),
            base.clone().with_oracle(LoadOracle::CriticalPrefetch),
            base.clone().with_oracle(LoadOracle::Demote {
                level: Level::L1,
                only_noncritical: false,
            }),
            base.clone()
                .with_detector(DetectorConfig::paper().with_table_entries(8)),
            base.clone().with_extra_latency(Level::Llc, 6),
            base.clone().with_ring(4),
            base.clone().oracle_study(),
        ];
        let mut seen = vec![fp(&base)];
        for v in &variants {
            let key = fp(v);
            assert!(
                !seen.contains(&key),
                "builder produced a colliding fingerprint for {:?}",
                v.name
            );
            seen.push(key);
        }
    }

    #[test]
    fn eval_and_workload_perturbations_change_fingerprint() {
        let base = SystemConfig::baseline_exclusive();
        let eval = quick();
        let reference = run_fingerprint(&base, &eval, "mcf_like");
        let mut ops = eval;
        ops.ops += 1;
        let mut warmup = eval;
        warmup.warmup += 1;
        let mut seed = eval;
        seed.seed += 1;
        let sampled = eval.with_sample(4_000);
        for (what, e) in [
            ("ops", ops),
            ("warmup", warmup),
            ("seed", seed),
            ("sample", sampled),
        ] {
            assert_ne!(
                run_fingerprint(&base, &e, "mcf_like"),
                reference,
                "changing {what} must change the key"
            );
        }
        assert_ne!(run_fingerprint(&base, &eval, "astar_like"), reference);
    }

    #[test]
    fn display_name_does_not_affect_fingerprint() {
        let eval = quick();
        let catch = SystemConfig::baseline_exclusive().with_catch();
        let renamed = catch.clone().named("CATCH");
        assert_eq!(
            run_fingerprint(&catch, &eval, "mcf_like"),
            run_fingerprint(&renamed, &eval, "mcf_like"),
            "the display name is a report label, not simulation content"
        );
    }

    #[test]
    fn single_flight_computes_once_across_threads() {
        let flight: SingleFlight<u64, u64> = SingleFlight::new();
        let computed = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let (v, _) = flight.get_or_compute(7, || {
                        computed.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        42
                    });
                    assert_eq!(v, 42);
                });
            }
        });
        assert_eq!(computed.load(Ordering::SeqCst), 1, "exactly one compute");
    }

    #[test]
    fn single_flight_recovers_from_panicking_computer() {
        let flight: SingleFlight<u64, u64> = SingleFlight::new();
        let waiter_value = std::thread::scope(|scope| {
            let waiter = scope.spawn(|| {
                // Give the panicking computer time to claim the slot.
                std::thread::sleep(std::time::Duration::from_millis(10));
                flight.get_or_compute(1, || 99).0
            });
            let computer = scope.spawn(|| {
                let _ = flight.get_or_compute(1, || -> u64 { panic!("boom") });
            });
            assert!(computer.join().is_err(), "computer panic propagates");
            waiter.join().expect("waiter recovers")
        });
        assert_eq!(waiter_value, 99, "a waiter retried after the failure");
    }

    #[test]
    fn off_mode_always_computes() {
        let cache = RunCache::new(CacheMode::Off);
        let spec = catch_workloads::suite::by_name("linpack_like").expect("known");
        let a = cache.trace(&spec, 400, 1);
        let b = cache.trace(&spec, 400, 1);
        assert!(!Arc::ptr_eq(&a, &b), "off mode must not share traces");
        assert_eq!(cache.summary().trace_misses, 2);
    }

    #[test]
    fn memory_mode_shares_traces_and_results() {
        let cache = RunCache::new(CacheMode::Memory);
        let spec = catch_workloads::suite::by_name("linpack_like").expect("known");
        let a = cache.trace(&spec, 400, 1);
        let b = cache.trace(&spec, 400, 1);
        assert!(
            Arc::ptr_eq(&a, &b),
            "one generation per (workload, ops, seed)"
        );
        assert!(!Arc::ptr_eq(&a, &cache.trace(&spec, 400, 2)));

        let eval = quick();
        let config = SystemConfig::baseline_exclusive();
        let renamed = config.clone().named("other-label");
        let computes = AtomicUsize::new(0);
        let run = |cfg: &SystemConfig| {
            cache.run_result(cfg, &eval, "linpack_like", || {
                computes.fetch_add(1, Ordering::SeqCst);
                crate::System::new(cfg.clone()).run_st((*a).clone())
            })
        };
        let first = run(&config);
        let second = run(&renamed);
        assert_eq!(computes.load(Ordering::SeqCst), 1, "one simulation per key");
        assert_eq!(first.config, "base-excl");
        assert_eq!(
            second.config, "other-label",
            "hit patched to requested name"
        );
        assert_eq!(first.core, second.core, "counters identical across names");
        cache.reset_memory();
        let _ = run(&config);
        assert_eq!(
            computes.load(Ordering::SeqCst),
            2,
            "reset drops memoization"
        );
    }

    #[test]
    fn corrupt_disk_entries_warn_once_and_recompute() {
        let dir = std::env::temp_dir().join(format!(
            "catch-runcache-corrupt-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create cache dir");
        let cache = RunCache::new(CacheMode::Disk(dir.clone()));
        let eval = quick();
        let config = SystemConfig::baseline_exclusive();
        // Plant garbage at both keys this test will probe.
        for workload in ["linpack_like", "mcf_like"] {
            let fp = run_fingerprint(&config, &eval, workload);
            std::fs::write(entry_path(&dir, fp), b"{ not json").expect("plant garbage");
        }
        let spec = catch_workloads::suite::by_name("linpack_like").expect("known");
        let trace = cache.trace(&spec, eval.ops, eval.seed);
        let result = cache.run_result(&config, &eval, "linpack_like", || {
            crate::System::new(config.clone()).run_st((*trace).clone())
        });
        assert_eq!(result.workload, "linpack_like", "fell back to computing");
        let summary = cache.summary();
        assert_eq!(summary.disk_warnings, 1, "corrupt entry counted");
        assert_eq!(summary.disk_hits, 0, "garbage never loads");
        assert!(
            summary.to_string().contains("1 disk warnings"),
            "summary surfaces the count: {summary}"
        );
        // A second corrupt entry still counts but must not warn again
        // (warn-once is per cache instance; asserted via the flag).
        assert!(cache.disk_warned.load(Ordering::Relaxed));
        let spec2 = catch_workloads::suite::by_name("mcf_like").expect("known");
        let trace2 = cache.trace(&spec2, eval.ops, eval.seed);
        cache.run_result(&config, &eval, "mcf_like", || {
            crate::System::new(config.clone()).run_st((*trace2).clone())
        });
        assert_eq!(cache.summary().disk_warnings, 2, "still counted");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
