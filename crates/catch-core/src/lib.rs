//! CATCH — Criticality Aware Tiered Cache Hierarchy simulator.
//!
//! This crate is the public facade of the workspace: it assembles the
//! substrate crates (trace model, caches, DRAM, OOO core, criticality
//! detection, TACT prefetchers, workload suite) into runnable systems and
//! hosts the paper's full experiment registry.
//!
//! * [`SystemConfig`] describes one machine configuration (hierarchy
//!   organisation + core features); presets cover every configuration the
//!   paper evaluates.
//! * [`System`] runs a single-thread trace or a 4-way multi-programmed
//!   mix against a configuration, producing a [`RunResult`]; sampled
//!   execution ([`System::run_sampled`]) trades detail for speed with a
//!   reported error estimate.
//! * [`experiments`] regenerates every table and figure of the paper; the
//!   `catch-bench` crate exposes them as `cargo bench` targets.
//! * [`energy`] implements the CACTI/Orion/Micron-inspired energy model
//!   behind Figure 16.
//! * [`sweep`] expands declarative design-space grids into hundreds of
//!   configurations and evaluates them through the run cache with a
//!   resumable checkpoint journal and Pareto-frontier reports.
//!
//! # Quickstart
//!
//! ```
//! use catch_core::{System, SystemConfig};
//! use catch_workloads::suite;
//!
//! let trace = suite::by_name("xalanc_like")?.generate(20_000, 42);
//! let baseline = System::new(SystemConfig::baseline_exclusive()).run_st(trace.clone());
//! let catch = System::new(SystemConfig::baseline_exclusive().with_catch()).run_st(trace);
//! // CATCH should not be slower than the baseline on this workload.
//! assert!(catch.ipc() > 0.9 * baseline.ipc());
//! # Ok::<(), catch_workloads::WorkloadsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod energy;
pub mod experiments;
mod metrics;
pub mod report;
pub mod runcache;
mod sampling;
pub mod sweep;
mod system;

pub use metrics::{geomean, geomean_ratio, try_geomean, MpResult, RunResult};
pub use runcache::{
    run_fingerprint, CacheMode, CacheSummary, Fingerprint, RunCache, RUN_CACHE_ENV,
};
pub use sampling::{SampledRun, SamplingSummary};
pub use system::{System, SystemConfig};

// Sampling configuration lives in `catch-sample`; re-export the types a
// `run_sampled` caller needs.
pub use catch_sample::{SampleConfig, SamplePlan};

// Re-export the pieces users commonly need alongside the facade.
pub use catch_cache::{HierarchyConfig, HierarchyKind, Level};
pub use catch_cpu::{CoreConfig, Engine, LoadOracle, TactMode};
pub use catch_obs::{
    merge_parts, part_path, ChromeTraceSink, CountingSink, Event, EventClass, EventKind, EventSink,
    JsonlSink, NullSink, Obs, OccupancyHist, TraceFormat, VecSink,
};
pub use catch_trace::hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use catch_trace::{Category, Trace};
pub use catch_workloads::WorkloadSpec;
