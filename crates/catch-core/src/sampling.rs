//! Sampled simulation: executing a [`SamplePlan`] against a [`System`].
//!
//! `catch-sample` decides *which* intervals to simulate; this module
//! actually runs them. Two execution modes share the same plan and the
//! same weighted reconstruction:
//!
//! * [`System::run_sampled`] — one core and one hierarchy walk the trace
//!   front to back, alternating detailed intervals with
//!   drain + fast-forward gaps. Representative intervals are measured by
//!   *snapshot deltas*: all statistics are monotonic counters, so the
//!   difference between the snapshots at an interval's retirement
//!   boundaries is exactly that interval's contribution, and everything
//!   that happens in the gaps (drained pipeline cycles, functional
//!   warmup) stays out of the measurement. When the plan makes every
//!   interval its own cluster, no gap ever occurs and the run is
//!   tick-for-tick identical to [`System::run_st`] — the reconstruction
//!   is then bit-exact, which `catch-tests/tests/sampling_accuracy.rs`
//!   asserts.
//! * [`System::run_sampled_parallel`] — each representative gets its own
//!   fresh core + hierarchy, fast-forwards over the whole trace prefix,
//!   then simulates its interval in detail; jobs fan out over the
//!   experiment [`Runner`](crate::experiments::Runner) and compose with
//!   `CATCH_JOBS`. Deterministic for a given plan regardless of worker
//!   count (index-ordered reduction), but *not* bit-identical to the
//!   serial mode: each representative starts from warmup-only state
//!   rather than the tail state of the previous detailed interval.
//!
//! Reconstruction multiplies each representative's delta by its cluster's
//! member count and sums — all in integer arithmetic, so weights of 1
//! introduce no rounding anywhere.

use crate::metrics::RunResult;
use crate::system::System;
use catch_cache::{CacheHierarchy, HierarchyStats};
use catch_cpu::{Core, CoreStats};
use catch_dram::{DramStats, DramSystem};
use catch_sample::{SampleConfig, SamplePlan};
use catch_trace::Trace;

/// How a sampled run was reconstructed, reported next to its
/// [`RunResult`].
#[derive(Clone, Debug)]
pub struct SamplingSummary {
    /// Number of trace intervals.
    pub intervals: usize,
    /// Number of clusters (= detailed-simulated representatives).
    pub clusters: usize,
    /// Micro-ops simulated in detail (inside measured intervals).
    pub detailed_ops: u64,
    /// Micro-ops in the whole trace.
    pub total_ops: u64,
    /// Heuristic a-priori bound on the relative IPC error, in percent
    /// (see [`SamplePlan::ipc_error_bound_pct`]).
    pub ipc_error_bound_pct: f64,
}

impl SamplingSummary {
    /// Fraction of the trace simulated in detail (0–1).
    pub fn detailed_fraction(&self) -> f64 {
        if self.total_ops == 0 {
            0.0
        } else {
            self.detailed_ops as f64 / self.total_ops as f64
        }
    }
}

/// A [`RunResult`] reconstructed from sampled execution, plus how it was
/// sampled.
#[derive(Clone, Debug)]
pub struct SampledRun {
    /// Weighted-reconstructed statistics (the full-run estimate).
    pub result: RunResult,
    /// Sampling metadata and error estimate.
    pub sampling: SamplingSummary,
}

/// A point-in-time capture of every monotonic counter in the simulated
/// machine.
#[derive(Clone, Debug, Default)]
struct Snapshot {
    core: CoreStats,
    hier: HierarchyStats,
    dram: Option<DramStats>,
}

impl Snapshot {
    fn take(core: &Core, hier: &CacheHierarchy) -> Snapshot {
        Snapshot {
            core: core.stats(),
            hier: hier.stats(),
            dram: hier
                .backend()
                .as_any()
                .downcast_ref::<DramSystem>()
                .map(|d| *d.stats()),
        }
    }

    fn minus(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            core: self.core.minus(&earlier.core),
            hier: self.hier.minus(&earlier.hier),
            dram: match (&self.dram, &earlier.dram) {
                (Some(a), Some(b)) => Some(a.minus(b)),
                _ => None,
            },
        }
    }

    fn add_scaled(&mut self, delta: &Snapshot, weight: u64) {
        self.core.add_scaled(&delta.core, weight);
        self.hier.add_scaled(&delta.hier, weight);
        if let Some(d) = &delta.dram {
            self.dram
                .get_or_insert_with(DramStats::default)
                .add_scaled(d, weight);
        }
    }
}

/// Ticks `core` until `retired` reaches `end` (or the trace completes),
/// panicking on a blown cycle budget.
fn run_detailed(core: &mut Core, hier: &mut CacheHierarchy, end: usize, budget: u64) {
    while !core.done() && (core.retired() as usize) < end {
        // Skip-ahead never retires during a jumped span, so the
        // `retired < end` boundary is observed exactly as in the naive
        // loop.
        core.tick_or_skip(hier);
        assert!(
            core.cycle() < budget,
            "sampled run exceeded cycle budget: likely deadlock at cycle {}",
            core.cycle()
        );
    }
}

impl System {
    /// Runs `trace` in sampled mode: detailed simulation for one weighted
    /// representative interval per cluster, functional fast-forward
    /// everywhere else, and weighted reconstruction of the full-run
    /// statistics. The module-level comments in `sampling.rs` describe
    /// the measurement discipline and the bit-identity guarantee.
    pub fn run_sampled(&self, trace: Trace, sample: &SampleConfig) -> SampledRun {
        let plan = SamplePlan::build(&trace, sample);
        let workload = trace.name().to_string();
        let category = trace.category();
        let total_ops = trace.len() as u64;
        let budget = 1000 * total_ops + 10_000_000;

        let mut hier = self.build_hierarchy(1);
        let mut core = Core::new(0, trace, self.config().core.clone());

        let mut acc = Snapshot::default();
        let mut rep_ipc = vec![0.0f64; plan.clusters];
        let mut detailed_ops = 0u64;

        for i in 0..plan.intervals.len() {
            let interval = &plan.intervals[i];
            if interval.weight == 0 {
                core.drain(&mut hier);
                // When the next interval is measured, hand the tail of
                // this gap back to detailed (but unmeasured) simulation:
                // it refills the pipeline and re-trains prefetchers and
                // the criticality detector, which functional warmup
                // cannot. The snapshot delta below excludes it.
                let next_is_rep = plan.intervals.get(i + 1).is_some_and(|iv| iv.weight > 0);
                let ff_until = if next_is_rep {
                    interval.end.saturating_sub(sample.warmup_ops)
                } else {
                    interval.end
                };
                core.fast_forward(&mut hier, ff_until);
                if next_is_rep {
                    run_detailed(&mut core, &mut hier, interval.end, budget);
                }
                continue;
            }
            let start = Snapshot::take(&core, &hier);
            run_detailed(&mut core, &mut hier, interval.end, budget);
            let delta = Snapshot::take(&core, &hier).minus(&start);
            rep_ipc[interval.cluster] = delta.core.ipc();
            detailed_ops += delta.core.instructions;
            acc.add_scaled(&delta, interval.weight);
        }

        finish(
            self,
            workload,
            category,
            acc,
            &plan,
            rep_ipc,
            detailed_ops,
            total_ops,
        )
    }

    /// Runs `trace` in sampled mode with one independent job per
    /// representative interval, fanned out over `runner` (composes with
    /// `CATCH_JOBS`). Each job builds a fresh core + hierarchy,
    /// fast-forwards the entire prefix before its interval, and simulates
    /// the interval in detail.
    ///
    /// Results are deterministic for a given plan and independent of the
    /// worker count, but not bit-identical to [`System::run_sampled`]:
    /// prefix state here comes from functional warmup alone.
    pub fn run_sampled_parallel(
        &self,
        trace: &Trace,
        sample: &SampleConfig,
        runner: &crate::experiments::Runner,
    ) -> SampledRun {
        let plan = SamplePlan::build(trace, sample);
        let workload = trace.name().to_string();
        let category = trace.category();
        let total_ops = trace.len() as u64;
        let budget = 1000 * total_ops + 10_000_000;

        let reps: Vec<catch_sample::Interval> = plan.representatives().cloned().collect();
        let deltas: Vec<Snapshot> = runner.run(&reps, |_, interval| {
            let mut hier = self.build_hierarchy(1);
            let mut core = Core::new(0, trace.clone(), self.config().core.clone());
            // Functional warmup over the prefix, then a detailed (but
            // unmeasured) ramp into the interval — see run_sampled.
            let ff_until = interval.start.saturating_sub(sample.warmup_ops);
            if ff_until > 0 {
                core.fast_forward(&mut hier, ff_until);
            }
            run_detailed(&mut core, &mut hier, interval.start, budget);
            let start = Snapshot::take(&core, &hier);
            run_detailed(&mut core, &mut hier, interval.end, budget);
            Snapshot::take(&core, &hier).minus(&start)
        });

        let mut acc = Snapshot::default();
        let mut rep_ipc = vec![0.0f64; plan.clusters];
        let mut detailed_ops = 0u64;
        for (interval, delta) in reps.iter().zip(&deltas) {
            rep_ipc[interval.cluster] = delta.core.ipc();
            detailed_ops += delta.core.instructions;
            acc.add_scaled(delta, interval.weight);
        }

        finish(
            self,
            workload,
            category,
            acc,
            &plan,
            rep_ipc,
            detailed_ops,
            total_ops,
        )
    }
}

#[allow(clippy::too_many_arguments)]
fn finish(
    system: &System,
    workload: String,
    category: catch_trace::Category,
    acc: Snapshot,
    plan: &SamplePlan,
    rep_ipc: Vec<f64>,
    detailed_ops: u64,
    total_ops: u64,
) -> SampledRun {
    SampledRun {
        result: RunResult {
            workload,
            category,
            config: system.config().name.clone(),
            core: acc.core,
            hierarchy: acc.hier,
            dram: acc.dram,
        },
        sampling: SamplingSummary {
            intervals: plan.interval_count(),
            clusters: plan.clusters,
            detailed_ops,
            total_ops,
            ipc_error_bound_pct: plan.ipc_error_bound_pct(&rep_ipc),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Runner;
    use crate::system::SystemConfig;
    use catch_trace::counters::Counters;
    use catch_workloads::suite;

    fn system() -> System {
        System::new(SystemConfig::baseline_exclusive())
    }

    #[test]
    fn sampled_covers_whole_trace_in_weights() {
        let trace = suite::by_name("astar_like").unwrap().generate(8_000, 7);
        let s = system().run_sampled(trace, &SampleConfig::new(1_000).with_max_clusters(3));
        assert_eq!(s.sampling.intervals, 8);
        // Retirement may overshoot interval boundaries by up to the
        // retire width, so the weighted total is only near-exact here
        // (it is bit-exact in the all-singleton configuration below).
        let total = s.result.core.instructions;
        assert!(
            (7_900..=8_100).contains(&total),
            "reconstructed {total} ops"
        );
        assert!(s.sampling.detailed_ops < 8_000);
        assert!(s.sampling.detailed_fraction() > 0.0);
    }

    #[test]
    fn singleton_clusters_reproduce_run_st_exactly() {
        let trace = suite::by_name("astar_like").unwrap().generate(6_000, 7);
        let full = system().run_st(trace.clone());
        let cfg = SampleConfig::new(1_000).with_max_clusters(usize::MAX);
        let s = system().run_sampled(trace, &cfg);
        assert_eq!(full.counters(""), s.result.counters(""));
        assert_eq!(s.sampling.ipc_error_bound_pct, 0.0);
        assert_eq!(s.sampling.detailed_ops, s.sampling.total_ops);
    }

    #[test]
    fn parallel_mode_is_worker_count_invariant() {
        let trace = suite::by_name("astar_like").unwrap().generate(8_000, 7);
        let cfg = SampleConfig::new(1_000).with_max_clusters(3);
        let sys = system();
        let serial = sys.run_sampled_parallel(&trace, &cfg, &Runner::with_jobs(1));
        let parallel = sys.run_sampled_parallel(&trace, &cfg, &Runner::with_jobs(4));
        assert_eq!(
            serial.result.counters(""),
            parallel.result.counters(""),
            "per-representative jobs must reduce deterministically"
        );
    }
}
