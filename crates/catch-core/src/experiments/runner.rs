//! Parallel experiment execution.
//!
//! Every experiment in the registry reduces to a bag of independent
//! (workload, configuration) simulation jobs: each job builds its own
//! core + hierarchy from a [`SystemConfig`](crate::SystemConfig) and its
//! own trace from a deterministic seed, so jobs share no mutable state.
//! [`Runner`] exploits that with a scoped-thread worker pool over a
//! lock-free work queue, and an **index-ordered reduction**: results are
//! written into the slot of the job that produced them, so the output
//! vector is byte-identical to a serial run regardless of worker count or
//! scheduling (asserted by the `harness_parity` suite in `catch-tests`).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the worker count (like `make -j`).
pub const JOBS_ENV: &str = "CATCH_JOBS";

/// A scoped-thread worker pool executing independent jobs with a
/// deterministic, serial-identical result order.
#[derive(Copy, Clone, Debug)]
pub struct Runner {
    jobs: usize,
}

impl Runner {
    /// A runner with exactly `jobs` workers.
    ///
    /// # Panics
    ///
    /// Panics on `jobs == 0`: a zero worker count is always a caller
    /// bug, and silently clamping it to 1 would contradict the strict
    /// rejection of `CATCH_JOBS=0` / `--jobs 0` (see
    /// [`Runner::parse_jobs`]). Callers handling user input validate
    /// with [`Runner::parse_jobs`] or [`Runner::from_env`] first.
    pub fn with_jobs(jobs: usize) -> Self {
        assert!(jobs >= 1, "Runner::with_jobs: job count must be at least 1");
        Runner { jobs }
    }

    /// A runner sized from the environment: `CATCH_JOBS` if set,
    /// otherwise the machine's available parallelism.
    ///
    /// Returns `Err` when `CATCH_JOBS` is set to an invalid value (zero,
    /// negative, or non-numeric). A typo'd job count must not silently
    /// fall back to a default — that is how a "-j 0" benchmark quietly
    /// runs on all cores — and library code must not panic on user
    /// input; callers surface the message at their own boundary.
    pub fn from_env() -> Result<Self, String> {
        let jobs = match std::env::var(JOBS_ENV) {
            Ok(v) => Self::parse_jobs(&v).map_err(|e| format!("invalid {JOBS_ENV}: {e}"))?,
            Err(_) => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        };
        Ok(Runner::with_jobs(jobs))
    }

    /// Parses a worker count from user input (`CATCH_JOBS` or a `--jobs`
    /// flag): a positive integer, rejected with a clear message otherwise.
    pub fn parse_jobs(value: &str) -> Result<usize, String> {
        match value.trim().parse::<usize>() {
            Ok(0) => Err(format!("job count must be at least 1, got '{value}'")),
            Ok(n) => Ok(n),
            Err(_) => Err(format!(
                "job count must be a positive integer, got '{value}'"
            )),
        }
    }

    /// Worker count this runner will spawn.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs `f` over every job and returns the results **in job order**
    /// (index-ordered reduction — bit-identical to a serial map).
    ///
    /// Workers pull indices from a shared atomic cursor, so long jobs do
    /// not convoy short ones. With one worker (or one job) no threads are
    /// spawned and `f` runs on the caller.
    ///
    /// # Panics
    ///
    /// Propagates the first worker panic after all workers have stopped.
    pub fn run<J, R, F>(&self, jobs: &[J], f: F) -> Vec<R>
    where
        J: Sync,
        R: Send,
        F: Fn(usize, &J) -> R + Sync,
    {
        let n = jobs.len();
        if self.jobs == 1 || n <= 1 {
            return jobs.iter().enumerate().map(|(i, j)| f(i, j)).collect();
        }
        let cursor = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
        std::thread::scope(|scope| {
            for _ in 0..self.jobs.min(n) {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let result = f(i, &jobs[i]);
                    slots.lock().expect("result slots poisoned")[i] = Some(result);
                });
            }
        });
        slots
            .into_inner()
            .expect("result slots poisoned")
            .into_iter()
            .map(|slot| slot.expect("every job fills its slot"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises the env-mutating tests (`cargo test` runs tests in
    /// threads sharing one process environment).
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    fn with_jobs_env<R>(value: Option<&str>, f: impl FnOnce() -> R) -> R {
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let saved = std::env::var(JOBS_ENV).ok();
        match value {
            Some(v) => std::env::set_var(JOBS_ENV, v),
            None => std::env::remove_var(JOBS_ENV),
        }
        let out = f();
        match saved {
            Some(v) => std::env::set_var(JOBS_ENV, v),
            None => std::env::remove_var(JOBS_ENV),
        }
        out
    }

    #[test]
    fn from_env_honours_valid_setting() {
        let runner = with_jobs_env(Some("3"), Runner::from_env).expect("valid setting");
        assert_eq!(runner.jobs(), 3);
    }

    #[test]
    fn from_env_defaults_without_setting() {
        let runner = with_jobs_env(None, Runner::from_env).expect("unset is fine");
        assert!(runner.jobs() >= 1);
    }

    #[test]
    fn from_env_rejects_zero_jobs() {
        let err = with_jobs_env(Some("0"), Runner::from_env).expect_err("zero rejected");
        assert!(err.contains(JOBS_ENV), "message names the variable: {err}");
        assert!(err.contains("at least 1"), "unhelpful message: {err}");
    }

    #[test]
    fn from_env_rejects_non_numeric_jobs() {
        let err = with_jobs_env(Some("four"), Runner::from_env).expect_err("text rejected");
        assert!(err.contains(JOBS_ENV), "message names the variable: {err}");
        assert!(err.contains("positive integer"), "unhelpful message: {err}");
    }

    #[test]
    fn results_are_index_ordered() {
        let jobs: Vec<usize> = (0..100).collect();
        for workers in [1, 2, 4, 7] {
            let out = Runner::with_jobs(workers).run(&jobs, |i, &j| {
                assert_eq!(i, j);
                j * 3
            });
            assert_eq!(out, (0..100).map(|j| j * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let jobs: Vec<u64> = (0..64).collect();
        let work = |_: usize, &j: &u64| {
            // A little arithmetic so jobs finish out of order.
            (0..(j % 7) * 1000).fold(j, |acc, x| acc.wrapping_mul(31).wrapping_add(x))
        };
        let serial = Runner::with_jobs(1).run(&jobs, work);
        let parallel = Runner::with_jobs(8).run(&jobs, work);
        assert_eq!(serial, parallel);
    }

    #[test]
    #[should_panic(expected = "job count must be at least 1")]
    fn zero_jobs_is_rejected() {
        let _ = Runner::with_jobs(0);
    }

    #[test]
    fn parse_jobs_accepts_positive_integers() {
        assert_eq!(Runner::parse_jobs("1"), Ok(1));
        assert_eq!(Runner::parse_jobs("16"), Ok(16));
        assert_eq!(Runner::parse_jobs(" 4 "), Ok(4), "whitespace is trimmed");
    }

    #[test]
    fn parse_jobs_rejects_zero() {
        let err = Runner::parse_jobs("0").expect_err("zero jobs");
        assert!(err.contains("at least 1"), "unhelpful message: {err}");
    }

    #[test]
    fn parse_jobs_rejects_non_numeric() {
        for bad in ["", "four", "-2", "3.5", "1x"] {
            let res = Runner::parse_jobs(bad);
            assert!(res.is_err(), "accepted '{bad}' as {res:?}");
            assert!(
                res.unwrap_err().contains("positive integer"),
                "unhelpful message for '{bad}'"
            );
        }
    }

    #[test]
    fn empty_job_list_is_fine() {
        let out: Vec<u32> = Runner::with_jobs(4).run(&[], |_, j: &u32| *j);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "a scoped thread panicked")]
    fn worker_panics_propagate() {
        let jobs: Vec<usize> = (0..8).collect();
        Runner::with_jobs(2).run(&jobs, |_, &j| {
            if j == 5 {
                panic!("boom");
            }
            j
        });
    }
}
