//! Figures 2 and 6: the worked data-dependence-graph example.

use crate::report::{ExperimentReport, Table, ValueKind};
use catch_cache::Level;
use catch_criticality::{DdgGraph, DetectorConfig, NodeKind, RetiredInst};
use catch_trace::Pc;

/// Reconstructs the paper's worked DDG example (Figures 2 and 6): a
/// 20-cycle load feeding a compare and a branch, an independent 10-cycle
/// load, a dependent 10-cycle load and a combining add — then prints the
/// incrementally computed node costs and the enumerated critical path.
pub fn fig02_ddg_example() -> ExperimentReport {
    let config = DetectorConfig {
        quantize_shift: 0,
        rename_latency: 0,
        ..DetectorConfig::paper()
    };
    let mut g = DdgGraph::new(config);
    let pc = |n: u64| Pc::new(0x400 + n * 4);

    let labels = [
        "R0 = [R1]  (20-cyc load)",
        "CMP R0, 8",
        "JLE #label",
        "R3 = [R4]  (10-cyc load)",
        "R5 = [R0]  (10-cyc load)",
        "R0 = R5 + R3",
    ];
    let i1 = g.push(RetiredInst::new(pc(1), 20).as_load(Level::Llc));
    let i2 = g.push(RetiredInst::compute(pc(2), 4, &[i1]));
    let i3 = g.push(RetiredInst::compute(pc(3), 4, &[i2]));
    let i4 = g.push(RetiredInst::new(pc(4), 10).as_load(Level::L2));
    let i5 = g.push(RetiredInst::compute(pc(5), 10, &[i1]).as_load(Level::L2));
    let i6 = g.push(RetiredInst::compute(pc(6), 4, &[i4, i5]));
    let seqs = [i1, i2, i3, i4, i5, i6];

    let mut costs = Table::new(
        "incremental E-node costs (longest distance to dispatch)",
        vec!["E cost".into(), "latency".into()],
        ValueKind::Raw,
    );
    for (label, seq) in labels.iter().zip(seqs) {
        let node = g.node(seq).expect("buffered");
        costs.push_row(*label, vec![node.e_cost() as f64, node.latency() as f64]);
    }

    let path = g.walk_critical_path();
    let mut walk = Table::new(
        "critical-path walk (youngest first)",
        vec!["instr #".into()],
        ValueKind::Raw,
    );
    for step in &path {
        let kind = match step.kind {
            NodeKind::Dispatch => "D",
            NodeKind::Execute => "E",
            NodeKind::Commit => "C",
        };
        walk.push_row(format!("{kind} node"), vec![step.seq as f64 + 1.0]);
    }

    let critical: Vec<String> = g
        .critical_loads()
        .iter()
        .map(|(pc, level)| format!("{pc} (hit {level})"))
        .collect();

    ExperimentReport {
        id: "fig2".into(),
        title: "Worked DDG example (Figures 2 and 6)".into(),
        tables: vec![costs, walk],
        notes: vec![
            format!("critical loads recorded: {}", critical.join(", ")),
            "paper: only the load feeding the long dependent chain is critical; the independent 10-cycle load is not, so demoting it to LLC latency would not lengthen the critical path".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_reproduces_figure_2_conclusions() {
        let report = fig02_ddg_example();
        let text = report.to_string();
        // The chain head and the dependent load are critical...
        assert!(text.contains("0x404"));
        assert!(text.contains("0x414"));
        // ...the independent load is not.
        assert!(!report.notes[0].contains("0x410"));
    }
}
