//! Figure 14: 4-way multi-programmed performance.

use super::{pct, EvalConfig};
use crate::metrics::geomean;
use crate::report::{ExperimentReport, Table, ValueKind};
use crate::system::{System, SystemConfig};

/// Number of mixes evaluated (half RATE-4, half random).
const MIX_COUNT: usize = 6;

/// Regenerates Figure 14: weighted speedup of NoL2, NoL2+CATCH and CATCH
/// over the 4-core baseline on 4-way mixes.
pub fn fig14_mp(eval: &EvalConfig) -> ExperimentReport {
    // Half RATE-4 mixes (spread across categories), half random mixes.
    let rate4 = catch_workloads::mp::rate4_mixes();
    let mut mixes: Vec<catch_workloads::mp::MpMix> = rate4
        .into_iter()
        .step_by(7) // every 7th of 20 → 3 spread-out rate4 mixes
        .take(MIX_COUNT / 2)
        .collect();
    mixes.extend(catch_workloads::mp::random_mixes(
        MIX_COUNT - mixes.len(),
        eval.seed,
    ));

    let baseline = SystemConfig::baseline_exclusive().with_cores(4);
    let configs = [
        baseline.clone().without_l2(6656 << 10).named("NoL2"),
        baseline
            .clone()
            .without_l2(9728 << 10)
            .with_catch()
            .named("NoL2 + CATCH"),
        baseline.clone().with_catch().named("CATCH"),
    ];

    // Per-config geomean of weighted-speedup ratios vs the baseline.
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
    let alone_system = System::new(SystemConfig::baseline_exclusive());

    let mut per_mix = Table::new(
        "per-mix weighted-speedup delta vs 4-core baseline",
        configs.iter().map(|c| c.name.clone()).collect(),
        ValueKind::PercentDelta,
    );

    for mix in &mixes {
        let traces = mix.generate(eval.ops, eval.seed);
        let alone_ipc: Vec<f64> = traces
            .iter()
            .map(|t| alone_system.run_st(t.clone()).ipc())
            .collect();

        let base_ws = System::new(baseline.clone())
            .run_mp(traces.clone())
            .weighted_speedup(&alone_ipc);

        let mut row = Vec::new();
        for (i, config) in configs.iter().enumerate() {
            let ws = System::new(config.clone())
                .run_mp(traces.clone())
                .weighted_speedup(&alone_ipc);
            ratios[i].push(ws / base_ws);
            row.push(pct(ws / base_ws));
        }
        per_mix.push_row(mix.name.clone(), row);
    }

    let mut table = Table::new(
        format!("4-way MP weighted speedup vs 4-core baseline ({MIX_COUNT} mixes)"),
        vec!["geomean".into()],
        ValueKind::PercentDelta,
    );
    for (i, config) in configs.iter().enumerate() {
        table.push_row(config.name.clone(), vec![pct(geomean(&ratios[i]))]);
    }

    ExperimentReport {
        id: "fig14".into(),
        title: "Performance impact on multi-programmed workloads".into(),
        tables: vec![table, per_mix],
        notes: vec![
            "paper: NoL2 −4.1%; NoL2+CATCH +8.5%; CATCH +9.0% — MP gains track the ST gains".into(),
        ],
    }
}
