//! Figure 13: contribution of each TACT component.

use super::{category_columns, category_pct_row, run_suite, EvalConfig};
use crate::report::{ExperimentReport, Table, ValueKind};
use crate::system::SystemConfig;

/// One cumulative component step: (code, cross, deep, feeder) enables.
type Components = (bool, bool, bool, bool);

/// The cumulative component steps the figure builds up.
const STEPS: [(&str, Components); 4] = [
    ("Code", (true, false, false, false)),
    ("+CROSS", (true, true, false, false)),
    ("+Deep", (true, true, true, false)),
    ("+Feeder", (true, true, true, true)),
];

fn step_config(label: &str, (code, cross, deep, feeder): Components) -> SystemConfig {
    SystemConfig::baseline_exclusive()
        .without_l2(6656 << 10)
        .with_tact_components(code, cross, deep, feeder)
        .named(label)
}

/// Suite configurations this experiment simulates (baseline first);
/// consumed by the experiment body and by `experiments::suite_requests`.
pub(crate) fn suite_configs() -> Vec<SystemConfig> {
    let mut configs = vec![SystemConfig::baseline_exclusive().without_l2(6656 << 10)];
    configs.extend(
        STEPS
            .iter()
            .map(|&(label, components)| step_config(label, components)),
    );
    configs
}

/// Regenerates Figure 13: the cumulative build-up Code → +Cross → +Deep →
/// +Feeder over the no-L2 configuration (6.5 MB LLC), per category.
pub fn fig13_tact_components(eval: &EvalConfig) -> ExperimentReport {
    let no_l2 = SystemConfig::baseline_exclusive().without_l2(6656 << 10);
    let base = run_suite(&no_l2, eval);

    let mut table = Table::new(
        "cumulative TACT components over NoL2 + 6.5MB LLC",
        category_columns(),
        ValueKind::PercentDelta,
    );
    for (label, components) in STEPS {
        let runs = run_suite(&step_config(label, components), eval);
        table.push_row(label, category_pct_row(&base, &runs));
    }

    ExperimentReport {
        id: "fig13".into(),
        title: "Performance gain from each TACT component".into(),
        tables: vec![table],
        notes: vec![
            "paper: Code +0.75% (server-heavy), +Cross +3.7%, +Deep +5.9%, +Feeder +2.7% — ~13% total over no-L2".into(),
        ],
    }
}
