//! Figure 16: energy savings of the two-level CATCH hierarchy.

use super::{run_suite, EvalConfig};
use crate::energy::{energy_of, EnergyConstants};
use crate::metrics::{geomean, RunResult};
use crate::report::{ExperimentReport, Table, ValueKind};
use crate::system::SystemConfig;
use catch_trace::Category;

/// Suite configurations this experiment simulates (baseline first);
/// consumed by the experiment body and by `experiments::suite_requests`.
pub(crate) fn suite_configs() -> Vec<SystemConfig> {
    vec![
        SystemConfig::baseline_exclusive(),
        SystemConfig::baseline_exclusive()
            .without_l2(9728 << 10)
            .with_catch(),
    ]
}

/// Regenerates Figure 16: per-category energy savings of
/// `NoL2 + 9.5 MB LLC + CATCH` over the three-level baseline, plus the
/// traffic shifts the paper reports (cache/DRAM down, interconnect up).
pub fn fig16_energy(eval: &EvalConfig) -> ExperimentReport {
    let constants = EnergyConstants::paper_like();
    let [base_cfg, catch_cfg]: [SystemConfig; 2] =
        suite_configs().try_into().expect("two configurations");

    let base = run_suite(&base_cfg, eval);
    let catch = run_suite(&catch_cfg, eval);

    let base_energy: Vec<f64> = base
        .iter()
        .map(|r| energy_of(r, &constants, 1 << 20, 5632 << 10).total_uj())
        .collect();
    let catch_energy: Vec<f64> = catch
        .iter()
        .map(|r| energy_of(r, &constants, 0, 9728 << 10).total_uj())
        .collect();

    let mut table = Table::new(
        "energy savings of two-level CATCH (NoL2 + 9.5MB LLC)",
        vec!["savings".into()],
        ValueKind::Percent,
    );
    let savings = |idx: Vec<usize>| -> f64 {
        let ratios: Vec<f64> = idx
            .iter()
            .map(|&i| catch_energy[i] / base_energy[i])
            .collect();
        100.0 * (1.0 - geomean(&ratios))
    };
    for cat in Category::ALL {
        let idx: Vec<usize> = base
            .iter()
            .enumerate()
            .filter(|(_, r)| r.category == cat)
            .map(|(i, _)| i)
            .collect();
        table.push_row(cat.label(), vec![savings(idx)]);
    }
    table.push_row("GeoMean", vec![savings((0..base.len()).collect())]);

    // Traffic shifts (Section VI-E narrative).
    fn sum(runs: &[RunResult], f: impl Fn(&RunResult) -> u64) -> f64 {
        runs.iter().map(f).sum::<u64>() as f64
    }
    fn cache_traffic(r: &RunResult) -> u64 {
        r.hierarchy.l2.iter().map(|s| s.activity()).sum::<u64>() + r.hierarchy.llc.activity()
    }
    let mut traffic = Table::new(
        "traffic of two-level CATCH relative to baseline",
        vec!["ratio".into()],
        ValueKind::Ratio,
    );
    traffic.push_row(
        "L2+LLC cache traffic",
        vec![sum(&catch, cache_traffic) / sum(&base, cache_traffic)],
    );
    traffic.push_row(
        "interconnect messages",
        vec![
            sum(&catch, |r| r.hierarchy.traffic.interconnect_messages())
                / sum(&base, |r| r.hierarchy.traffic.interconnect_messages()),
        ],
    );
    traffic.push_row(
        "DRAM accesses",
        vec![
            sum(&catch, |r| r.hierarchy.traffic.dram_accesses())
                / sum(&base, |r| r.hierarchy.traffic.dram_accesses()),
        ],
    );

    ExperimentReport {
        id: "fig16".into(),
        title: "Energy savings from CATCH on a two-level hierarchy".into(),
        tables: vec![table, traffic],
        notes: vec![
            "paper: ~11% geomean energy savings; 37% lower cache traffic, 22% lower memory traffic, ~5× interconnect traffic".into(),
            "reproduction caveat: the paper's savings are dominated by the 22% DRAM-traffic cut from growing the LLC 5.5→9.5 MB; at this trace scale every working set already fits 5.5 MB, so the DRAM ratio stays ~1.0 and the figure shows only the costs (larger-LLC access energy, more interconnect) without the dominant benefit. The traffic table is the reproducible part: cache traffic falls, interconnect rises, as the paper reports".into(),
        ],
    }
}
