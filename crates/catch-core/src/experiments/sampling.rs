//! Sampled-vs-full accuracy on the six golden workloads.
//!
//! Not a paper figure: this experiment validates the SimPoint-style
//! sampling subsystem (`catch-sample` + [`System::run_sampled`]) against
//! full detailed simulation, reporting per-workload reconstruction error
//! and the cost saved. The same six-workload slice anchors the
//! golden-stats regression snapshot in `catch-tests`.

use super::EvalConfig;
use crate::report::{ExperimentReport, Table, ValueKind};
use crate::system::{System, SystemConfig};
use catch_sample::SampleConfig;
use catch_workloads::suite;

/// The behaviour-diverse six-workload slice used for golden snapshots and
/// sampling validation: one workload per paper category plus the two
/// headline SPEC-like traces.
pub const GOLDEN_WORKLOADS: [&str; 6] = [
    "xalanc_like",
    "astar_like",
    "bio_like",
    "sysmark_like",
    "tpcc_like",
    "excel_like",
];

/// Percent error of `sampled` against `full` (0 when both are 0).
fn pct_err(sampled: f64, full: f64) -> f64 {
    if full == 0.0 {
        if sampled == 0.0 {
            0.0
        } else {
            100.0
        }
    } else {
        100.0 * (sampled - full).abs() / full
    }
}

/// Regenerates the sampled-vs-full accuracy table: for each golden
/// workload, full-run and sampled IPC, the reconstruction errors on IPC
/// and L2/LLC miss counts, the reported a-priori error bound, and the
/// detailed-simulation fraction.
pub fn sampling(eval: &EvalConfig) -> ExperimentReport {
    let interval_ops = eval.sample.unwrap_or_else(|| (eval.ops / 20).max(1));
    let sample = SampleConfig::new(interval_ops);
    let system = System::new(SystemConfig::baseline_exclusive());

    let mut accuracy = Table::new(
        format!("sampled-vs-full error, interval={interval_ops} ops"),
        vec![
            "IPC err%".into(),
            "L2 miss err%".into(),
            "LLC miss err%".into(),
            "bound%".into(),
        ],
        ValueKind::Raw,
    );
    let mut cost = Table::new(
        "sampling cost",
        vec![
            "full IPC".into(),
            "sampled IPC".into(),
            "detailed%".into(),
            "clusters".into(),
        ],
        ValueKind::Raw,
    );

    for name in GOLDEN_WORKLOADS {
        let trace = suite::by_name(name)
            .expect("golden workload exists")
            .generate(eval.ops, eval.seed);
        let full = system.run_st(trace.clone());
        let s = system.run_sampled(trace, &sample);

        let l2_full = full.hierarchy.l2.iter().map(|c| c.misses).sum::<u64>();
        let l2_sampled = s.result.hierarchy.l2.iter().map(|c| c.misses).sum::<u64>();
        accuracy.push_row(
            name,
            vec![
                pct_err(s.result.ipc(), full.ipc()),
                pct_err(l2_sampled as f64, l2_full as f64),
                pct_err(
                    s.result.hierarchy.llc.misses as f64,
                    full.hierarchy.llc.misses as f64,
                ),
                s.sampling.ipc_error_bound_pct,
            ],
        );
        cost.push_row(
            name,
            vec![
                full.ipc(),
                s.result.ipc(),
                100.0 * s.sampling.detailed_fraction(),
                s.sampling.clusters as f64,
            ],
        );
    }

    ExperimentReport {
        id: "sampling".into(),
        title: "SimPoint-style sampled simulation accuracy".into(),
        tables: vec![accuracy, cost],
        notes: vec![
            "target: IPC err < 5%, L2/LLC miss err < 10% on every golden workload".into(),
            "interval 0 and any oversized tail are pinned singletons (always detailed)".into(),
            "bound% is the plan's empirical sensitivity estimate (fitted |dIPC|/distance x dispersion)".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_report_covers_golden_slice() {
        let report = sampling(&EvalConfig::quick());
        assert_eq!(report.id, "sampling");
        assert_eq!(report.tables.len(), 2);
        for table in &report.tables {
            assert_eq!(table.rows.len(), GOLDEN_WORKLOADS.len());
        }
    }
}
