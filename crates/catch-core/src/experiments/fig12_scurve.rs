//! Figure 12: per-workload performance ratios (S-curve data).

use super::{run_suite, EvalConfig};
use crate::report::{ExperimentReport, Table, ValueKind};
use crate::system::SystemConfig;

/// Suite configurations this experiment simulates (baseline first);
/// consumed by the experiment body and by `experiments::suite_requests`.
pub(crate) fn suite_configs() -> Vec<SystemConfig> {
    vec![
        SystemConfig::baseline_exclusive(),
        SystemConfig::baseline_exclusive().without_l2(6656 << 10),
        SystemConfig::baseline_exclusive()
            .without_l2(9728 << 10)
            .with_catch(),
        SystemConfig::baseline_exclusive().with_catch(),
    ]
}

/// Regenerates Figure 12: per-workload performance ratio against the
/// baseline for `NoL2+6.5MB`, `NoL2+9.5MB+CATCH` and `CATCH`, sorted by
/// the CATCH ratio (the paper plots these as S-curves).
pub fn fig12_scurve(eval: &EvalConfig) -> ExperimentReport {
    let [base_cfg, no_l2_cfg, two_level_cfg, catch_cfg]: [SystemConfig; 4] =
        suite_configs().try_into().expect("four configurations");
    let base = run_suite(&base_cfg, eval);
    let no_l2 = run_suite(&no_l2_cfg, eval);
    let two_level_catch = run_suite(&two_level_cfg, eval);
    let catch = run_suite(&catch_cfg, eval);

    let mut rows: Vec<(String, Vec<f64>)> = base
        .iter()
        .enumerate()
        .map(|(i, b)| {
            (
                b.workload.clone(),
                vec![
                    no_l2[i].ipc() / b.ipc(),
                    two_level_catch[i].ipc() / b.ipc(),
                    catch[i].ipc() / b.ipc(),
                ],
            )
        })
        .collect();
    rows.sort_by(|a, b| a.1[2].partial_cmp(&b.1[2]).expect("finite ratios"));

    let mut table = Table::new(
        "per-workload performance ratio vs baseline (sorted by CATCH)",
        vec!["NoL2+6.5MB".into(), "NoL2+9.5+CATCH".into(), "CATCH".into()],
        ValueKind::Ratio,
    );
    for (label, values) in rows {
        table.push_row(label, values);
    }

    ExperimentReport {
        id: "fig12".into(),
        title: "Per-workload performance impact (S-curve)".into(),
        tables: vec![table],
        notes: vec![
            "paper: chase-bound workloads (hmmer-like) lose most without the L2 and are largely recovered; feeder-friendly gathers (mcf-like) swing to large gains; a few pointer-chase workloads (namd/gromacs-like) are not fully recovered".into(),
        ],
    }
}
