//! Figure 4: impact of increasing the latency of non-critical loads.

use super::{pct, run_suite, EvalConfig};
use crate::metrics::{geomean_ratio, RunResult};
use crate::report::{ExperimentReport, Table, ValueKind};
use crate::system::SystemConfig;
use catch_cache::Level;
use catch_cpu::LoadOracle;
use catch_criticality::DetectorConfig;

/// The per-level demotion variants the figure sweeps.
const VARIANTS: [(Level, &str); 3] = [
    (Level::L1, "L1 hits to L2 lat"),
    (Level::L2, "L2 hits to LLC lat"),
    (Level::Llc, "LLC hits to Mem lat"),
];

fn demote(level: Level, label: &str, only_noncritical: bool) -> SystemConfig {
    let mut config = SystemConfig::baseline_exclusive()
        .oracle_study()
        .with_oracle(LoadOracle::Demote {
            level,
            only_noncritical,
        })
        .named(format!(
            "{label} {}",
            if only_noncritical {
                "NonCritical"
            } else {
                "ALL"
            }
        ));
    if only_noncritical {
        // Criticality must be judged *at the demoted level*.
        config = config.with_detector(DetectorConfig::paper().with_track_levels(&[level]));
    }
    config
}

/// Suite configurations this experiment simulates (baseline first);
/// consumed by the experiment body and by `experiments::suite_requests`.
pub(crate) fn suite_configs() -> Vec<SystemConfig> {
    let mut configs = vec![SystemConfig::baseline_exclusive().oracle_study()];
    for (level, label) in VARIANTS {
        for only_noncritical in [false, true] {
            configs.push(demote(level, label, only_noncritical));
        }
    }
    configs
}

fn mean_converted(results: &[RunResult]) -> f64 {
    if results.is_empty() {
        return 0.0;
    }
    100.0
        * results
            .iter()
            .map(|r| r.core.memory.converted_fraction())
            .sum::<f64>()
        / results.len() as f64
}

/// Regenerates Figure 4: demoting ALL vs only NON-CRITICAL hits of each
/// level to the next level's latency; reports perf impact and the
/// fraction of loads converted.
pub fn fig04_criticality_oracle(eval: &EvalConfig) -> ExperimentReport {
    let base_config = SystemConfig::baseline_exclusive().oracle_study();
    let base = run_suite(&base_config, eval);

    let mut table = Table::new(
        "demotion oracles (perf impact % / loads converted %)",
        vec!["perf impact".into(), "loads converted".into()],
        ValueKind::Raw,
    );

    for (level, label) in VARIANTS {
        for only_noncritical in [false, true] {
            let config = demote(level, label, only_noncritical);
            let runs = run_suite(&config, eval);
            table.push_row(
                config.name.clone(),
                vec![pct(geomean_ratio(&base, &runs)), mean_converted(&runs)],
            );
        }
    }

    ExperimentReport {
        id: "fig4".into(),
        title: "Impact of increasing non-critical load latency".into(),
        tables: vec![table],
        notes: vec![
            "paper: L1 ALL −16.1% vs NonCritical −4.9%; L2 ALL −7.8% vs NonCritical −0.8%; LLC ALL −7.0% vs NonCritical −1.2%".into(),
            "shape: criticality filtering helps most at the L2 — the L2 is the right level to optimise with criticality".into(),
        ],
    }
}
