//! The experiment registry: one module per paper figure/table.
//!
//! Every experiment takes an [`EvalConfig`] (instruction budget + seed)
//! and returns an [`ExperimentReport`] whose tables print the same rows
//! and series the paper reports. The `catch-bench` crate wraps each as a
//! `cargo bench` target; `EXPERIMENTS.md` records paper-vs-measured.

mod ablations;
mod fig01_remove_l2;
mod fig02_ddg_example;
mod fig03_latency_sensitivity;
mod fig04_criticality_oracle;
mod fig05_oracle_prefetch;
mod fig10_catch_exclusive;
mod fig11_timeliness;
mod fig12_scurve;
mod fig13_tact_components;
mod fig14_mp;
mod fig15_llc_latency;
mod fig16_energy;
mod fig17_inclusive;
mod heuristic_detector;
mod ladder;
pub mod runner;
mod sampling;
mod tables;

pub use ablations::ablations;
pub use fig01_remove_l2::fig01_remove_l2;
pub use fig02_ddg_example::fig02_ddg_example;
pub use fig03_latency_sensitivity::fig03_latency_sensitivity;
pub use fig04_criticality_oracle::fig04_criticality_oracle;
pub use fig05_oracle_prefetch::fig05_oracle_prefetch;
pub use fig10_catch_exclusive::fig10_catch_exclusive;
pub use fig11_timeliness::fig11_timeliness;
pub use fig12_scurve::fig12_scurve;
pub use fig13_tact_components::fig13_tact_components;
pub use fig14_mp::fig14_mp;
pub use fig15_llc_latency::fig15_llc_latency;
pub use fig16_energy::fig16_energy;
pub use fig17_inclusive::fig17_inclusive;
pub use heuristic_detector::heuristic_detector;
pub use ladder::{
    ladder, ladder_errors, LadderErrors, RungErrors, LITE_IPC_ERR_BUDGET_PCT,
    LITE_MPKI_ERR_BUDGET_PCT,
};
pub use runner::Runner;
pub use sampling::{sampling, GOLDEN_WORKLOADS};
pub use tables::{fig09_tact_area, sec6d2_table_size, tab1_area, tab2_workloads};

use crate::metrics::RunResult;
use crate::report::ExperimentReport;
use crate::runcache::RunCache;
use crate::system::{System, SystemConfig};
use catch_workloads::WorkloadSpec;

/// Model-fidelity rung: which core model drives the (always real) memory
/// hierarchy, criticality detector and TACT. The ladder is ordered from
/// cheapest to reference; every rung is **structural** — it is part of the
/// run-cache key, the sweep/point fingerprints and the server's admission
/// fingerprint, so results from different rungs can never coalesce or
/// silently mix (DESIGN.md §14).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum Fidelity {
    /// Functional fast-forward: every op takes the
    /// [`Core::fast_forward`](catch_cpu::Core::fast_forward) warm path
    /// (tags, replacement, dirty state, branch training) at one op per
    /// cycle. Hierarchy counters are meaningful; IPC is not (≈1 by
    /// construction).
    Fast,
    /// Timing-lite: the in-order-issue scoreboard core
    /// ([`LiteCore`](catch_cpu::LiteCore)) — dependence timestamps over
    /// the real frontend, hierarchy, detector and TACT, with a
    /// functional warm-up phase. Tracks OOO IPC within the
    /// `ladder_validation` bounds at a fraction of the cost.
    Lite,
    /// The full out-of-order core: the reference model every other rung
    /// is validated against.
    #[default]
    Ooo,
}

impl Fidelity {
    /// Every rung, cheapest first.
    pub const ALL: [Fidelity; 3] = [Fidelity::Fast, Fidelity::Lite, Fidelity::Ooo];

    /// Stable lower-case label (CLI flag value, wire field, journal tag).
    pub fn label(self) -> &'static str {
        match self {
            Fidelity::Fast => "fast",
            Fidelity::Lite => "lite",
            Fidelity::Ooo => "ooo",
        }
    }

    /// Parses a [`Fidelity::label`].
    ///
    /// # Errors
    ///
    /// Returns a diagnostic listing the valid labels on unknown input.
    pub fn parse(s: &str) -> Result<Fidelity, String> {
        match s {
            "fast" => Ok(Fidelity::Fast),
            "lite" => Ok(Fidelity::Lite),
            "ooo" => Ok(Fidelity::Ooo),
            other => Err(format!(
                "unknown fidelity '{other}' (expected fast, lite or ooo)"
            )),
        }
    }
}

/// Evaluation scale: instruction budget per workload and the trace seed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct EvalConfig {
    /// Micro-ops per workload trace.
    pub ops: usize,
    /// Retired micro-ops excluded from measurement (warm-up).
    pub warmup: usize,
    /// Trace generation seed.
    pub seed: u64,
    /// Sampled execution: `Some(interval_ops)` replaces every full run
    /// with [`System::run_sampled`](crate::System::run_sampled) at that
    /// interval size (default clustering parameters); `warmup` is ignored
    /// in sampled mode — the cold-start interval is always simulated in
    /// detail and included in the reconstruction. Only meaningful on the
    /// [`Fidelity::Ooo`] rung; the cheaper rungs are themselves the
    /// approximation and ignore it.
    pub sample: Option<usize>,
    /// Model-fidelity rung (see [`Fidelity`]). Structural: two evals
    /// differing only here never share cache entries or admission
    /// fingerprints.
    pub fidelity: Fidelity,
}

impl EvalConfig {
    /// Default evaluation scale (balances fidelity and runtime).
    pub fn standard() -> Self {
        EvalConfig {
            ops: 80_000,
            warmup: 30_000,
            seed: 42,
            sample: None,
            fidelity: Fidelity::Ooo,
        }
    }

    /// Reduced scale for tests.
    pub fn quick() -> Self {
        EvalConfig {
            ops: 16_000,
            warmup: 4_000,
            seed: 42,
            sample: None,
            fidelity: Fidelity::Ooo,
        }
    }

    /// Switches suite runs to sampled execution with `interval_ops`-sized
    /// intervals.
    pub fn with_sample(mut self, interval_ops: usize) -> Self {
        self.sample = Some(interval_ops);
        self
    }

    /// Selects the model-fidelity rung.
    pub fn with_fidelity(mut self, fidelity: Fidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// The *screen* scale a ladder-mode sweep runs its cheap-rung grid
    /// pass at: `ops` divided by [`SCREEN_DIVISOR`] with the warm-up
    /// fraction preserved, floored at [`SCREEN_MIN_OPS`] so tiny evals
    /// (unit-test grids) are returned unchanged. Screening is a pure
    /// function of the eval, so the derived scale needs no extra
    /// configuration surface; the sweep fingerprints it structurally.
    /// Sampled mode is cleared — the screen *is* the sampling.
    pub fn screened(&self) -> Self {
        let ops = (self.ops / SCREEN_DIVISOR).max(SCREEN_MIN_OPS.min(self.ops));
        EvalConfig {
            ops,
            // Round the warm-up to keep its fraction of the run; the
            // measured tail shrinks proportionally.
            warmup: (self.warmup * ops) / self.ops.max(1),
            sample: None,
            ..*self
        }
    }
}

/// Scale divisor applied by [`EvalConfig::screened`]. The screen only
/// has to *rank* points (the ladder's stratified calibration and
/// OOO-validation fixpoint supply the reported numbers), so it can be
/// much more aggressive than a fidelity the report would quote raw.
pub const SCREEN_DIVISOR: usize = 8;

/// [`EvalConfig::screened`] never reduces `ops` below this floor (and
/// never increases it — evals at or under the floor are unchanged).
pub const SCREEN_MIN_OPS: usize = 8_000;

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig::standard()
    }
}

/// Runs the whole ST suite under one configuration, parallelised across
/// workloads with the environment-sized [`Runner`] (`CATCH_JOBS`, else all
/// cores). Results are index-ordered and bit-identical to a serial run.
pub fn run_suite(config: &SystemConfig, eval: &EvalConfig) -> Vec<RunResult> {
    run_suite_parallel(config, eval, None)
}

/// Runs the whole ST suite under one configuration with an explicit
/// worker count (`None` defers to [`Runner::from_env`]).
///
/// Each (workload, config) job resolves through the process-wide
/// [`RunCache`]: traces are generated once per (workload, ops, seed) and
/// shared, and structurally identical (config, eval, workload) requests
/// simulate once per process (or once per cache directory with
/// `CATCH_RUN_CACHE=<dir>`). Simulations run on private core +
/// hierarchy state, so worker count and scheduling cannot affect any
/// counter — the `harness_parity` and `cache_parity` suites in
/// `catch-tests` assert byte-identical results across job counts and
/// cache modes.
///
/// # Panics
///
/// Panics when `jobs` is `None` and `CATCH_JOBS` holds an invalid value.
/// Binaries that want a clean diagnostic validate up front with
/// [`Runner::from_env`] and pass the resolved count explicitly.
pub fn run_suite_parallel(
    config: &SystemConfig,
    eval: &EvalConfig,
    jobs: Option<usize>,
) -> Vec<RunResult> {
    let runner = match jobs {
        Some(n) => Runner::with_jobs(n),
        None => Runner::from_env().unwrap_or_else(|e| panic!("{e}")),
    };
    let system = System::new(config.clone());
    let workloads = catch_workloads::suite::all();
    runner.run(&workloads, |_, w| run_one(&system, eval, w))
}

/// Runs one (config, workload) simulation through the process-wide
/// [`RunCache`]: the memoized result when the structural key is already
/// known, a fresh simulation (with a store-shared trace) otherwise.
pub(crate) fn run_one(system: &System, eval: &EvalConfig, spec: &WorkloadSpec) -> RunResult {
    let cache = RunCache::global();
    cache.run_result(system.config(), eval, spec.name, || {
        let trace = (*cache.trace(spec, eval.ops, eval.seed)).clone();
        match (eval.fidelity, eval.sample) {
            (Fidelity::Fast, _) => system.run_st_fast(trace, eval.warmup),
            (Fidelity::Lite, _) => system.run_st_lite(trace, eval.warmup),
            (Fidelity::Ooo, Some(interval_ops)) => {
                let cfg = catch_sample::SampleConfig::new(interval_ops);
                system.run_sampled(trace, &cfg).result
            }
            (Fidelity::Ooo, None) => system.run_st_warm(trace, eval.warmup),
        }
    })
}

/// The suite configurations experiment `id` will simulate over the full
/// 28-workload suite (an empty list for experiments that are
/// simulation-free, multi-programmed, slice-based or self-scheduling).
///
/// [`run_all`] uses this to collect every (config, workload) job of a
/// registry invocation up front; each experiment body consumes the same
/// list (or the helpers behind it), so the two cannot drift — asserted by
/// the `cache_parity` suite in `catch-tests`.
pub fn suite_requests(id: &str) -> Vec<SystemConfig> {
    match id {
        "fig1" => fig01_remove_l2::suite_configs(),
        "fig3" => fig03_latency_sensitivity::suite_configs(),
        "fig4" => fig04_criticality_oracle::suite_configs(),
        "fig5" => fig05_oracle_prefetch::suite_configs(),
        "fig10" => fig10_catch_exclusive::suite_configs(),
        "fig11" => fig11_timeliness::suite_configs(),
        "fig12" => fig12_scurve::suite_configs(),
        "fig13" => fig13_tact_components::suite_configs(),
        "fig15" => fig15_llc_latency::suite_configs(),
        "fig16" => fig16_energy::suite_configs(),
        "fig17" => fig17_inclusive::suite_configs(),
        "sec6d2" => tables::sec6d2_suite_configs(),
        // fig2/fig9/tab1/tab2 are simulation-free; fig14 is
        // multi-programmed (uncached); ablations/heuristic run 6/8-workload
        // slices that hit the cache via run_one; sampling times its own
        // runs and stays self-scheduled; ladder deliberately runs the
        // golden six at every rung itself (rung evals differ from `eval`).
        _ => Vec::new(),
    }
}

/// Runs a set of experiments as **one deduplicated work queue**: every
/// unique (config, eval, workload) simulation of every requested
/// experiment is collected up front via [`suite_requests`], fingerprinted,
/// deduplicated, executed once on the parallel [`Runner`] (warming the
/// process-wide [`RunCache`]), and then each experiment assembles its
/// report entirely from cache hits.
///
/// Cross-experiment sharing falls out of the structural keys: fig10's
/// `CATCH` row, fig12's S-curve column and sec6d2's 32-entry row are the
/// same simulations and run once. Reports are byte-identical to running
/// each experiment alone (asserted by `cache_parity` in `catch-tests`).
///
/// # Panics
///
/// Panics on unknown ids (see [`all_ids`]) and propagates simulation
/// panics from worker threads.
pub fn run_all(
    ids: &[&str],
    eval: &EvalConfig,
    jobs: Option<usize>,
) -> Vec<(String, ExperimentReport)> {
    let runner = match jobs {
        Some(n) => Runner::with_jobs(n),
        None => Runner::from_env().unwrap_or_else(|e| panic!("{e}")),
    };
    let workloads = catch_workloads::suite::all();

    // Phase 1: collect every needed (config, workload) job, deduplicated
    // by structural fingerprint (display names do not split jobs).
    let mut seen = crate::FxHashSet::default();
    let mut queue: Vec<(SystemConfig, WorkloadSpec)> = Vec::new();
    for id in ids {
        for config in suite_requests(id) {
            for spec in &workloads {
                let fp = crate::runcache::run_fingerprint(&config, eval, spec.name);
                if seen.insert(fp.0) {
                    queue.push((config.clone(), *spec));
                }
            }
        }
    }

    // Phase 2: execute the global queue once; results land in the
    // process-wide cache (and the disk cache when enabled).
    runner.run(&queue, |_, (config, spec)| {
        let system = System::new(config.clone());
        run_one(&system, eval, spec);
    });

    // Phase 3: assemble every report from cache hits.
    ids.iter()
        .map(|id| (id.to_string(), run(id, eval)))
        .collect()
}

/// Percent delta of a ratio (1.084 → +8.4).
pub fn pct(ratio: f64) -> f64 {
    (ratio - 1.0) * 100.0
}

/// Column headers for per-category tables (categories + GeoMean).
pub(crate) fn category_columns() -> Vec<String> {
    let mut cols: Vec<String> = catch_trace::Category::ALL
        .iter()
        .map(|c| c.label().to_string())
        .collect();
    cols.push("GeoMean".to_string());
    cols
}

/// Per-category percent deltas of `new` vs `base` (last value = overall
/// geomean), aligned with [`category_columns`].
pub(crate) fn category_pct_row(base: &[RunResult], new: &[RunResult]) -> Vec<f64> {
    crate::metrics::per_category_ratio(base, new)
        .into_iter()
        .map(|(_, r)| pct(r))
        .collect()
}

/// All experiment ids in paper order.
pub fn all_ids() -> Vec<&'static str> {
    vec![
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig9",
        "tab1",
        "tab2",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "fig17",
        "sec6d2",
        "ablations",
        "heuristic",
        "sampling",
        "ladder",
    ]
}

/// Runs an experiment by id.
///
/// # Panics
///
/// Panics on unknown ids (see [`all_ids`]).
pub fn run(id: &str, eval: &EvalConfig) -> ExperimentReport {
    match id {
        "fig1" => fig01_remove_l2(eval),
        "fig2" => fig02_ddg_example(),
        "fig3" => fig03_latency_sensitivity(eval),
        "fig4" => fig04_criticality_oracle(eval),
        "fig5" => fig05_oracle_prefetch(eval),
        "fig9" => fig09_tact_area(),
        "tab1" => tab1_area(),
        "tab2" => tab2_workloads(),
        "fig10" => fig10_catch_exclusive(eval),
        "fig11" => fig11_timeliness(eval),
        "fig12" => fig12_scurve(eval),
        "fig13" => fig13_tact_components(eval),
        "fig14" => fig14_mp(eval),
        "fig15" => fig15_llc_latency(eval),
        "fig16" => fig16_energy(eval),
        "fig17" => fig17_inclusive(eval),
        "sec6d2" => sec6d2_table_size(eval),
        "ablations" => ablations(eval),
        "heuristic" => heuristic_detector(eval),
        "sampling" => sampling(eval),
        "ladder" => ladder(eval),
        other => panic!("unknown experiment id '{other}'; see all_ids()"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_cover_paper_artifacts() {
        let ids = all_ids();
        assert!(ids.contains(&"fig10"));
        assert!(ids.contains(&"tab1"));
        assert!(ids.contains(&"sampling"));
        assert!(ids.contains(&"ladder"));
        assert_eq!(ids.len(), 21);
    }

    #[test]
    fn fidelity_labels_round_trip() {
        for f in Fidelity::ALL {
            assert_eq!(Fidelity::parse(f.label()), Ok(f));
        }
        assert!(Fidelity::parse("atomic").is_err());
        assert_eq!(Fidelity::default(), Fidelity::Ooo);
    }

    #[test]
    fn fidelity_is_structural_in_the_eval_debug_rendering() {
        // Every fingerprint in the workspace hashes `{eval:?}`; two evals
        // differing only in rung must render differently.
        let ooo = EvalConfig::quick();
        let lite = EvalConfig::quick().with_fidelity(Fidelity::Lite);
        assert_ne!(format!("{ooo:?}"), format!("{lite:?}"));
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_id_panics() {
        let _ = run("fig99", &EvalConfig::quick());
    }
}
