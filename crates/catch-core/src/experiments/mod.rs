//! The experiment registry: one module per paper figure/table.
//!
//! Every experiment takes an [`EvalConfig`] (instruction budget + seed)
//! and returns an [`ExperimentReport`] whose tables print the same rows
//! and series the paper reports. The `catch-bench` crate wraps each as a
//! `cargo bench` target; `EXPERIMENTS.md` records paper-vs-measured.

mod ablations;
mod fig01_remove_l2;
mod fig02_ddg_example;
mod fig03_latency_sensitivity;
mod fig04_criticality_oracle;
mod fig05_oracle_prefetch;
mod fig10_catch_exclusive;
mod fig11_timeliness;
mod fig12_scurve;
mod fig13_tact_components;
mod fig14_mp;
mod fig15_llc_latency;
mod fig16_energy;
mod fig17_inclusive;
mod heuristic_detector;
pub mod runner;
mod sampling;
mod tables;

pub use ablations::ablations;
pub use fig01_remove_l2::fig01_remove_l2;
pub use fig02_ddg_example::fig02_ddg_example;
pub use fig03_latency_sensitivity::fig03_latency_sensitivity;
pub use fig04_criticality_oracle::fig04_criticality_oracle;
pub use fig05_oracle_prefetch::fig05_oracle_prefetch;
pub use fig10_catch_exclusive::fig10_catch_exclusive;
pub use fig11_timeliness::fig11_timeliness;
pub use fig12_scurve::fig12_scurve;
pub use fig13_tact_components::fig13_tact_components;
pub use fig14_mp::fig14_mp;
pub use fig15_llc_latency::fig15_llc_latency;
pub use fig16_energy::fig16_energy;
pub use fig17_inclusive::fig17_inclusive;
pub use heuristic_detector::heuristic_detector;
pub use runner::Runner;
pub use sampling::{sampling, GOLDEN_WORKLOADS};
pub use tables::{fig09_tact_area, sec6d2_table_size, tab1_area, tab2_workloads};

use crate::metrics::RunResult;
use crate::report::ExperimentReport;
use crate::system::{System, SystemConfig};

/// Evaluation scale: instruction budget per workload and the trace seed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct EvalConfig {
    /// Micro-ops per workload trace.
    pub ops: usize,
    /// Retired micro-ops excluded from measurement (warm-up).
    pub warmup: usize,
    /// Trace generation seed.
    pub seed: u64,
    /// Sampled execution: `Some(interval_ops)` replaces every full run
    /// with [`System::run_sampled`](crate::System::run_sampled) at that
    /// interval size (default clustering parameters); `warmup` is ignored
    /// in sampled mode — the cold-start interval is always simulated in
    /// detail and included in the reconstruction.
    pub sample: Option<usize>,
}

impl EvalConfig {
    /// Default evaluation scale (balances fidelity and runtime).
    pub fn standard() -> Self {
        EvalConfig {
            ops: 80_000,
            warmup: 30_000,
            seed: 42,
            sample: None,
        }
    }

    /// Reduced scale for tests.
    pub fn quick() -> Self {
        EvalConfig {
            ops: 16_000,
            warmup: 4_000,
            seed: 42,
            sample: None,
        }
    }

    /// Switches suite runs to sampled execution with `interval_ops`-sized
    /// intervals.
    pub fn with_sample(mut self, interval_ops: usize) -> Self {
        self.sample = Some(interval_ops);
        self
    }
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig::standard()
    }
}

/// Runs the whole ST suite under one configuration, parallelised across
/// workloads with the environment-sized [`Runner`] (`CATCH_JOBS`, else all
/// cores). Results are index-ordered and bit-identical to a serial run.
pub fn run_suite(config: &SystemConfig, eval: &EvalConfig) -> Vec<RunResult> {
    run_suite_parallel(config, eval, None)
}

/// Runs the whole ST suite under one configuration with an explicit
/// worker count (`None` defers to [`Runner::from_env`]).
///
/// Each (workload, config) job regenerates its trace from the eval seed
/// and simulates on a private core + hierarchy, so worker count and
/// scheduling cannot affect any counter — the `harness_parity` suite in
/// `catch-tests` asserts byte-identical results across job counts.
///
/// # Panics
///
/// Panics when `jobs` is `None` and `CATCH_JOBS` holds an invalid value.
/// Binaries that want a clean diagnostic validate up front with
/// [`Runner::from_env`] and pass the resolved count explicitly.
pub fn run_suite_parallel(
    config: &SystemConfig,
    eval: &EvalConfig,
    jobs: Option<usize>,
) -> Vec<RunResult> {
    let runner = match jobs {
        Some(n) => Runner::with_jobs(n),
        None => Runner::from_env().unwrap_or_else(|e| panic!("{e}")),
    };
    let system = System::new(config.clone());
    let workloads = catch_workloads::suite::all();
    runner.run(&workloads, |_, w| {
        let trace = w.generate(eval.ops, eval.seed);
        match eval.sample {
            Some(interval_ops) => {
                let cfg = catch_sample::SampleConfig::new(interval_ops);
                system.run_sampled(trace, &cfg).result
            }
            None => system.run_st_warm(trace, eval.warmup),
        }
    })
}

/// Percent delta of a ratio (1.084 → +8.4).
pub fn pct(ratio: f64) -> f64 {
    (ratio - 1.0) * 100.0
}

/// Column headers for per-category tables (categories + GeoMean).
pub(crate) fn category_columns() -> Vec<String> {
    let mut cols: Vec<String> = catch_trace::Category::ALL
        .iter()
        .map(|c| c.label().to_string())
        .collect();
    cols.push("GeoMean".to_string());
    cols
}

/// Per-category percent deltas of `new` vs `base` (last value = overall
/// geomean), aligned with [`category_columns`].
pub(crate) fn category_pct_row(base: &[RunResult], new: &[RunResult]) -> Vec<f64> {
    crate::metrics::per_category_ratio(base, new)
        .into_iter()
        .map(|(_, r)| pct(r))
        .collect()
}

/// All experiment ids in paper order.
pub fn all_ids() -> Vec<&'static str> {
    vec![
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig9",
        "tab1",
        "tab2",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "fig17",
        "sec6d2",
        "ablations",
        "heuristic",
        "sampling",
    ]
}

/// Runs an experiment by id.
///
/// # Panics
///
/// Panics on unknown ids (see [`all_ids`]).
pub fn run(id: &str, eval: &EvalConfig) -> ExperimentReport {
    match id {
        "fig1" => fig01_remove_l2(eval),
        "fig2" => fig02_ddg_example(),
        "fig3" => fig03_latency_sensitivity(eval),
        "fig4" => fig04_criticality_oracle(eval),
        "fig5" => fig05_oracle_prefetch(eval),
        "fig9" => fig09_tact_area(),
        "tab1" => tab1_area(),
        "tab2" => tab2_workloads(),
        "fig10" => fig10_catch_exclusive(eval),
        "fig11" => fig11_timeliness(eval),
        "fig12" => fig12_scurve(eval),
        "fig13" => fig13_tact_components(eval),
        "fig14" => fig14_mp(eval),
        "fig15" => fig15_llc_latency(eval),
        "fig16" => fig16_energy(eval),
        "fig17" => fig17_inclusive(eval),
        "sec6d2" => sec6d2_table_size(eval),
        "ablations" => ablations(eval),
        "heuristic" => heuristic_detector(eval),
        "sampling" => sampling(eval),
        other => panic!("unknown experiment id '{other}'; see all_ids()"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_cover_paper_artifacts() {
        let ids = all_ids();
        assert!(ids.contains(&"fig10"));
        assert!(ids.contains(&"tab1"));
        assert!(ids.contains(&"sampling"));
        assert_eq!(ids.len(), 20);
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_id_panics() {
        let _ = run("fig99", &EvalConfig::quick());
    }
}
