//! Figure 10: CATCH on the large-L2 exclusive-LLC baseline.

use super::{category_columns, category_pct_row, run_suite, EvalConfig};
use crate::report::{ExperimentReport, Table, ValueKind};
use crate::system::SystemConfig;

/// Suite configurations this experiment simulates (baseline first);
/// consumed by the experiment body and by `experiments::suite_requests`.
pub(crate) fn suite_configs() -> Vec<SystemConfig> {
    vec![
        SystemConfig::baseline_exclusive(),
        SystemConfig::baseline_exclusive().without_l2(6656 << 10),
        SystemConfig::baseline_exclusive().without_l2(9728 << 10),
        SystemConfig::baseline_exclusive()
            .without_l2(6656 << 10)
            .with_catch(),
        SystemConfig::baseline_exclusive()
            .without_l2(9728 << 10)
            .with_catch(),
        SystemConfig::baseline_exclusive()
            .with_catch()
            .named("CATCH"),
    ]
}

/// Regenerates Figure 10: the five configurations of the headline result,
/// per category and geomean, relative to the 1 MB L2 + 5.5 MB exclusive
/// LLC baseline.
pub fn fig10_catch_exclusive(eval: &EvalConfig) -> ExperimentReport {
    let mut configs = suite_configs();
    let base = run_suite(&configs.remove(0), eval);

    let mut table = Table::new(
        "perf vs 1MB L2 + 5.5MB exclusive LLC",
        category_columns(),
        ValueKind::PercentDelta,
    );
    for config in configs {
        let runs = run_suite(&config, eval);
        table.push_row(config.name.clone(), category_pct_row(&base, &runs));
    }

    ExperimentReport {
        id: "fig10".into(),
        title: "Performance gain on large-L2 exclusive-LLC baseline".into(),
        tables: vec![table],
        notes: vec![
            "paper: NoL2+6.5 −7.8%; NoL2+9.5 −5.1%; NoL2+6.5+CATCH +4.6%; NoL2+9.5+CATCH +7.2%; CATCH +8.4%".into(),
            "shape: CATCH recovers the no-L2 loss and beats the baseline; two-level CATCH ≈ three-level CATCH".into(),
        ],
    }
}
