//! Graph-based vs heuristic criticality detection under CATCH
//! (the comparison behind the paper's Section IV-A design argument).

use super::{pct, EvalConfig};
use crate::metrics::{geomean_ratio, RunResult};
use crate::report::{ExperimentReport, Table, ValueKind};
use crate::system::{System, SystemConfig};
use catch_cpu::DetectorKind;
use catch_criticality::HeuristicConfig;
use catch_workloads::suite;

const SLICE: [&str; 8] = [
    "xalanc_like",
    "astar_like",
    "hmmer_like",
    "stencil_like",
    "spmv_like",
    "tpcc_like",
    "h264_like",
    "mcf_like",
];

fn run_slice(config: &SystemConfig, eval: &EvalConfig) -> Vec<RunResult> {
    let system = System::new(config.clone());
    SLICE
        .iter()
        .map(|n| {
            let spec = suite::by_name(n).expect("slice workloads exist");
            super::run_one(&system, eval, &spec)
        })
        .collect()
}

/// Compares CATCH driven by the paper's graph detector against CATCH
/// driven by symptom heuristics: performance, flagged-PC volume and
/// prefetch traffic.
pub fn heuristic_detector(eval: &EvalConfig) -> ExperimentReport {
    let base = run_slice(&SystemConfig::baseline_exclusive(), eval);

    let graph_cfg = SystemConfig::baseline_exclusive().with_catch();
    let mut heur_cfg = SystemConfig::baseline_exclusive().with_catch();
    heur_cfg.core.detector_kind = DetectorKind::Heuristic(HeuristicConfig::default());

    let graph = run_slice(&graph_cfg, eval);
    let heur = run_slice(&heur_cfg, eval);

    let sum = |runs: &[RunResult], f: fn(&RunResult) -> u64| -> f64 {
        runs.iter().map(f).sum::<u64>() as f64 / runs.len() as f64
    };

    let mut table = Table::new(
        "CATCH with graph vs heuristic criticality detection",
        vec![
            "perf gain %".into(),
            "flags/10K inst".into(),
            "TACT pf/10K inst".into(),
        ],
        ValueKind::Raw,
    );
    for (label, runs) in [
        ("graph walk (paper)", &graph),
        ("symptom heuristics", &heur),
    ] {
        let per_10k = |n: f64, r: &[RunResult]| n / (sum(r, |x| x.core.instructions) / 10_000.0);
        table.push_row(
            label,
            vec![
                pct(geomean_ratio(&base, runs)),
                per_10k(
                    sum(runs, |r| r.core.detector.critical_load_observations),
                    runs,
                ),
                per_10k(sum(runs, |r| r.core.memory.tact_prefetches), runs),
            ],
        );
    }

    ExperimentReport {
        id: "heuristic".into(),
        title: "Graph-based vs heuristic criticality detection".into(),
        tables: vec![table],
        notes: vec![
            "paper §IV-A: heuristics \"often flag many more PCs than are truly critical\" — e.g. loads merely in the shadow of an unrelated mispredict".into(),
            "measured shape: the heuristic flags ~50% more loads and issues more prefetch traffic; performance is comparable at this scale (our L1 tolerates the extra traffic), so the graph's advantage is precision per joule of prefetch traffic, as the paper argues".into(),
        ],
    }
}
