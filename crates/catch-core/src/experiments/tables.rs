//! Table I, Table II and the Section VI-D2 table-size sensitivity study.

use super::{pct, run_suite, EvalConfig};
use crate::metrics::geomean_ratio;
use crate::report::{ExperimentReport, Table, ValueKind};
use crate::system::SystemConfig;
use catch_criticality::area::{AreaBudget, EDGE_BITS, HASHED_PC_BITS};
use catch_criticality::DetectorConfig;

/// Regenerates Table I: per-instruction DDG storage and the ~3 KB total.
pub fn tab1_area() -> ExperimentReport {
    let mut edges = Table::new(
        "DDG storage per buffered instruction (bits)",
        vec!["bits".into()],
        ValueKind::Raw,
    );
    edges.push_row(
        "D-D,C-C,D-E,C-D (implicit)",
        vec![EDGE_BITS.implicit as f64],
    );
    edges.push_row(
        "E-C (exec latency, quantised)",
        vec![EDGE_BITS.execution_latency as f64],
    );
    edges.push_row(
        "E-E (3 src + mem dep, 9b each)",
        vec![EDGE_BITS.data_dependence as f64],
    );
    edges.push_row(
        "E-D (bad speculation)",
        vec![EDGE_BITS.bad_speculation as f64],
    );
    edges.push_row("hashed PC", vec![HASHED_PC_BITS as f64]);

    let budget = AreaBudget::for_rob(224);
    let mut totals = Table::new(
        "total detector storage (KB, 224-entry ROB)",
        vec!["KB".into()],
        ValueKind::Raw,
    );
    let kb = |b: u64| b as f64 / 1024.0;
    totals.push_row("graph buffer (2x ROB window)", vec![kb(budget.graph_bytes)]);
    totals.push_row("hashed PCs (2.5x ROB)", vec![kb(budget.pc_bytes)]);
    totals.push_row(
        "critical-load table (32 x 8-way)",
        vec![kb(budget.table_bytes)],
    );
    totals.push_row("TOTAL", vec![kb(budget.total_bytes())]);

    ExperimentReport {
        id: "tab1".into(),
        title: "Area calculations for buffering the DDG graph".into(),
        tables: vec![edges, totals],
        notes: vec!["paper: ~2.3 KB graph + ~1 KB PCs ≈ 3 KB total".into()],
    }
}

/// Regenerates Figure 9: TACT structure storage (~1.2 KB total).
pub fn fig09_tact_area() -> ExperimentReport {
    use catch_prefetch::tact::area::FIGURE_9;
    let mut table = Table::new(
        "TACT structure storage (bytes)",
        vec!["bytes".into()],
        ValueKind::Raw,
    );
    table.push_row(
        "Critical Target PC table (32)",
        vec![FIGURE_9.target_table_bytes as f64],
    );
    table.push_row(
        "Feeder PC table (32)",
        vec![FIGURE_9.feeder_table_bytes as f64],
    );
    table.push_row(
        "Feeder tracking (16 arch regs)",
        vec![FIGURE_9.feeder_tracking_bytes as f64],
    );
    table.push_row(
        "Trigger cache (8 set x 8 way)",
        vec![FIGURE_9.trigger_cache_bytes as f64],
    );
    table.push_row(
        "CROSS PC candidates (32)",
        vec![FIGURE_9.cross_candidates_bytes as f64],
    );
    table.push_row("Code CNPIP", vec![FIGURE_9.code_cnpip_bytes as f64]);
    table.push_row("TOTAL", vec![FIGURE_9.total_bytes() as f64]);
    ExperimentReport {
        id: "fig9".into(),
        title: "Structures introduced by TACT with area calculations".into(),
        tables: vec![table],
        notes: vec!["paper: ~1.2 KB total across all TACT structures".into()],
    }
}

/// Regenerates Table II: the workload list by category.
pub fn tab2_workloads() -> ExperimentReport {
    let mut table = Table::new(
        "workload suite (synthetic analogues of Table II)",
        vec!["ops share".into()],
        ValueKind::Raw,
    );
    for spec in catch_workloads::suite::all() {
        table.push_row(format!("{} [{}]", spec.name, spec.category), vec![1.0]);
    }
    ExperimentReport {
        id: "tab2".into(),
        title: "Summarised list of applications used in this study".into(),
        tables: vec![table],
        notes: vec![
            "20 synthetic workloads, 4 per category, replacing the paper's 70 proprietary traces (see DESIGN.md)".into(),
        ],
    }
}

/// Critical-load-table sizes the Section VI-D2 study sweeps.
const TABLE_SIZES: [usize; 5] = [8, 16, 32, 64, 128];

fn table_size_config(entries: usize) -> SystemConfig {
    SystemConfig::baseline_exclusive()
        .with_catch()
        .with_detector(DetectorConfig::paper().with_table_entries(entries))
        .named(format!("{entries} entries"))
}

/// Suite configurations the Section VI-D2 study simulates (baseline
/// first); consumed by the experiment body and by
/// `experiments::suite_requests`.
pub(crate) fn sec6d2_suite_configs() -> Vec<SystemConfig> {
    let mut configs = vec![SystemConfig::baseline_exclusive()];
    configs.extend(
        TABLE_SIZES
            .iter()
            .map(|&entries| table_size_config(entries)),
    );
    configs
}

/// Regenerates the Section VI-D2 study: sensitivity of CATCH to the
/// critical-load-table size.
pub fn sec6d2_table_size(eval: &EvalConfig) -> ExperimentReport {
    let base = run_suite(&SystemConfig::baseline_exclusive(), eval);
    let mut table = Table::new(
        "CATCH gain vs critical-load-table entries",
        vec!["geomean gain".into()],
        ValueKind::PercentDelta,
    );
    for entries in TABLE_SIZES {
        let config = table_size_config(entries);
        let runs = run_suite(&config, eval);
        table.push_row(config.name.clone(), vec![pct(geomean_ratio(&base, &runs))]);
    }
    ExperimentReport {
        id: "sec6d2".into(),
        title: "Effect of critical-load-table size".into(),
        tables: vec![table],
        notes: vec![
            "paper: 32 entries suffice; larger tables admit rarely-critical PCs whose prefetches thrash the L1".into(),
        ],
    }
}
