//! Figure 3: sensitivity to hit latency at each cache level.

use super::{pct, run_suite, EvalConfig};
use crate::metrics::geomean_ratio;
use crate::report::{ExperimentReport, Table, ValueKind};
use crate::system::SystemConfig;
use catch_cache::Level;

/// The levels and extra-latency steps the figure sweeps.
const LEVELS: [Level; 3] = [Level::L1, Level::L2, Level::Llc];
const EXTRAS: std::ops::RangeInclusive<u64> = 1..=3;

fn slowed(level: Level, extra: u64) -> SystemConfig {
    SystemConfig::baseline_exclusive().with_extra_latency(level, extra)
}

/// Suite configurations this experiment simulates (baseline first);
/// consumed by the experiment body and by `experiments::suite_requests`.
pub(crate) fn suite_configs() -> Vec<SystemConfig> {
    let mut configs = vec![SystemConfig::baseline_exclusive()];
    for level in LEVELS {
        for extra in EXTRAS {
            configs.push(slowed(level, extra));
        }
    }
    configs
}

/// Regenerates Figure 3: +1/+2/+3 cycles at the L1, L2 and LLC of the
/// baseline, geomean percent impact.
pub fn fig03_latency_sensitivity(eval: &EvalConfig) -> ExperimentReport {
    let base = run_suite(&SystemConfig::baseline_exclusive(), eval);
    let mut table = Table::new(
        "perf impact of added hit latency (geomean)",
        vec!["+1 cyc".into(), "+2 cyc".into(), "+3 cyc".into()],
        ValueKind::PercentDelta,
    );
    for level in LEVELS {
        let mut row = Vec::new();
        for extra in EXTRAS {
            let slowed = run_suite(&slowed(level, extra), eval);
            row.push(pct(geomean_ratio(&base, &slowed)));
        }
        table.push_row(level.to_string(), row);
    }
    ExperimentReport {
        id: "fig3".into(),
        title: "Impact of latency increase in L1, L2 and LLC".into(),
        tables: vec![table],
        notes: vec![
            "paper: L1 +3cyc ⇒ −7.2%; L2 +3cyc ⇒ −1.4%; LLC +3cyc ⇒ −0.6% — L1 is by far the most latency-sensitive level".into(),
        ],
    }
}
