//! Figure 17: CATCH on the small-L2 inclusive-LLC baseline.

use super::{category_columns, category_pct_row, run_suite, EvalConfig};
use crate::report::{ExperimentReport, Table, ValueKind};
use crate::system::SystemConfig;

/// Suite configurations this experiment simulates (baseline first);
/// consumed by the experiment body and by `experiments::suite_requests`.
pub(crate) fn suite_configs() -> Vec<SystemConfig> {
    vec![
        SystemConfig::baseline_inclusive(),
        SystemConfig::baseline_inclusive()
            .without_l2(8 << 20)
            .named("noL2"),
        SystemConfig::baseline_inclusive()
            .without_l2(8 << 20)
            .with_catch()
            .named("noL2+CATCH"),
        SystemConfig::baseline_inclusive()
            .without_l2(9 << 20)
            .with_catch()
            .named("noL2+CATCH+9MB_L3"),
        SystemConfig::baseline_inclusive()
            .with_catch()
            .named("CATCH"),
    ]
}

/// Regenerates Figure 17: the 256 KB L2 + 8 MB inclusive LLC baseline
/// against NoL2, NoL2+CATCH, NoL2+CATCH+9MB and CATCH.
pub fn fig17_inclusive(eval: &EvalConfig) -> ExperimentReport {
    let mut configs = suite_configs();
    let base = run_suite(&configs.remove(0), eval);

    let mut table = Table::new(
        "perf vs 256KB L2 + 8MB inclusive LLC",
        category_columns(),
        ValueKind::PercentDelta,
    );
    for config in configs {
        let runs = run_suite(&config, eval);
        table.push_row(config.name.clone(), category_pct_row(&base, &runs));
    }

    ExperimentReport {
        id: "fig17".into(),
        title: "Performance gain on inclusive-LLC baseline".into(),
        tables: vec![table],
        notes: vec![
            "paper: noL2 −5.7%; noL2+CATCH +6.4%; +9MB +7.2%; CATCH (3-level) +10.3%".into(),
        ],
    }
}
