//! Figure 11: timeliness of inter-cache TACT prefetching.

use super::{run_suite, EvalConfig};
use crate::report::{ExperimentReport, Table, ValueKind};
use crate::system::SystemConfig;
use catch_trace::Category;

/// Suite configurations this experiment simulates; consumed by the
/// experiment body and by `experiments::suite_requests`.
pub(crate) fn suite_configs() -> Vec<SystemConfig> {
    vec![SystemConfig::baseline_exclusive()
        .without_l2(9728 << 10)
        .with_catch()]
}

/// Regenerates Figure 11: on the two-level CATCH configuration, the
/// fraction of TACT prefetches served from the LLC and the distribution
/// of LLC-latency savings among used prefetches, per category.
pub fn fig11_timeliness(eval: &EvalConfig) -> ExperimentReport {
    let runs = run_suite(&suite_configs().remove(0), eval);

    let mut table = Table::new(
        "TACT prefetch timeliness (percent)",
        vec![
            "% pf from LLC".into(),
            ">80% lat saved".into(),
            "10-80% saved".into(),
            "<10% saved".into(),
        ],
        ValueKind::Percent,
    );

    let mut row_for = |label: &str, members: Vec<&crate::RunResult>| {
        let mut issued = 0u64;
        let mut from_llc = 0u64;
        let mut used = 0u64;
        let (mut hi, mut mid, mut lo) = (0u64, 0u64, 0u64);
        for r in &members {
            let t = r.hierarchy.timeliness;
            issued += t.issued;
            from_llc += t.from_llc;
            used += t.used;
            hi += t.saved_over_80;
            mid += t.saved_10_to_80;
            lo += t.saved_under_10;
        }
        let pct = |n: u64, d: u64| {
            if d == 0 {
                0.0
            } else {
                100.0 * n as f64 / d as f64
            }
        };
        table.push_row(
            label,
            vec![
                pct(from_llc, issued),
                pct(hi, used),
                pct(mid, used),
                pct(lo, used),
            ],
        );
    };

    for cat in Category::ALL {
        let members: Vec<_> = runs.iter().filter(|r| r.category == cat).collect();
        row_for(cat.label(), members);
    }
    row_for("ALL", runs.iter().collect());

    ExperimentReport {
        id: "fig11".into(),
        title: "Timeliness of inter-cache TACT prefetching".into(),
        tables: vec![table],
        notes: vec![
            "paper: ~88% of TACT prefetches are served by the LLC; >85% of used prefetches save more than 80% of the LLC latency".into(),
        ],
    }
}
