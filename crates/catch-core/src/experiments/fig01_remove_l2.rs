//! Figure 1: performance impact of removing the L2.

use super::{category_columns, category_pct_row, run_suite, EvalConfig};
use crate::report::{ExperimentReport, Table, ValueKind};
use crate::system::SystemConfig;

/// Suite configurations this experiment simulates (baseline first);
/// consumed by the experiment body and by `experiments::suite_requests`.
pub(crate) fn suite_configs() -> Vec<SystemConfig> {
    vec![
        SystemConfig::baseline_exclusive(),
        SystemConfig::baseline_exclusive().without_l2(6656 << 10),
        SystemConfig::baseline_exclusive().without_l2(9728 << 10),
    ]
}

/// Regenerates Figure 1: the baseline (1 MB L2 + 5.5 MB exclusive LLC)
/// against `NoL2 + 6.5 MB LLC` (iso-capacity) and `NoL2 + 9.5 MB LLC`
/// (iso-area), reported as per-category percent deltas.
pub fn fig01_remove_l2(eval: &EvalConfig) -> ExperimentReport {
    let [base_cfg, no_l2_65_cfg, no_l2_95_cfg]: [SystemConfig; 3] =
        suite_configs().try_into().expect("three configurations");
    let base = run_suite(&base_cfg, eval);
    let no_l2_65 = run_suite(&no_l2_65_cfg, eval);
    let no_l2_95 = run_suite(&no_l2_95_cfg, eval);

    let mut table = Table::new(
        "performance impact of removing L2 (vs 1MB L2 + 5.5MB excl. LLC)",
        category_columns(),
        ValueKind::PercentDelta,
    );
    table.push_row("NoL2 + 6.5MB LLC", category_pct_row(&base, &no_l2_65));
    table.push_row("NoL2 + 9.5MB LLC", category_pct_row(&base, &no_l2_95));

    ExperimentReport {
        id: "fig1".into(),
        title: "Performance impact of removing L2".into(),
        tables: vec![table],
        notes: vec![
            "paper: NoL2+6.5MB loses ~7.8% geomean, NoL2+9.5MB (iso-area) still loses ~5.1%".into(),
        ],
    }
}
