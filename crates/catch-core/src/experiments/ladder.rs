//! Fidelity-ladder validation: every cheap rung vs the full OOO core.
//!
//! Not a paper figure: this experiment is the cross-validation harness
//! behind DESIGN.md §14. For each of the six golden workloads it runs the
//! `fast` and `lite` rungs plus the `ooo` reference at the same scale and
//! reports per-counter percentage error (IPC, L2/LLC MPKI, criticality
//! coverage), the way `sampling` reports reconstruction error. The
//! `ladder-smoke` CI gate calls [`ladder_errors`] and fails when a lite
//! error exceeds its budget; `catch-tests/tests/ladder_validation.rs`
//! asserts the same bounds plus the fast rung's bit-identity with the
//! existing fast-forward path.

use super::{run_one, EvalConfig, Fidelity};
use crate::metrics::RunResult;
use crate::report::{ExperimentReport, Table, ValueKind};
use crate::system::{System, SystemConfig};
use catch_workloads::suite;

use super::sampling::GOLDEN_WORKLOADS;

/// CI budget for the timing-lite rung's IPC error vs OOO on every golden
/// workload (acceptance criterion of the ladder issue).
pub const LITE_IPC_ERR_BUDGET_PCT: f64 = 10.0;

/// CI budget for the timing-lite rung's L2/LLC MPKI error vs OOO. The
/// hierarchy is the real one on both rungs; residual error comes from
/// prefetcher/TACT timing shifted by the simplified issue model.
pub const LITE_MPKI_ERR_BUDGET_PCT: f64 = 25.0;

/// Per-workload percentage errors of one rung against the OOO reference.
#[derive(Clone, Debug)]
pub struct RungErrors {
    /// Golden workload name.
    pub workload: &'static str,
    /// |IPC_rung − IPC_ooo| / IPC_ooo, percent.
    pub ipc_pct: f64,
    /// L2 demand-miss MPKI error, percent.
    pub l2_mpki_pct: f64,
    /// LLC demand-miss MPKI error, percent.
    pub llc_mpki_pct: f64,
    /// Criticality coverage (critical-load observations per
    /// kilo-instruction) error, percent.
    pub crit_cov_pct: f64,
}

/// [`RungErrors`] for both cheap rungs on all six golden workloads.
#[derive(Clone, Debug)]
pub struct LadderErrors {
    /// The functional fast-forward rung (reported, not gated: its IPC is
    /// 1 by construction and it skips the prefetchers, so only hierarchy
    /// *trends* are expected to survive).
    pub fast: Vec<RungErrors>,
    /// The timing-lite rung (gated against the `LITE_*` budgets).
    pub lite: Vec<RungErrors>,
}

impl LadderErrors {
    /// Budget violations on the gated (lite) rung, one line each; empty
    /// means the ladder is within bounds.
    pub fn violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        for e in &self.lite {
            if e.ipc_pct > LITE_IPC_ERR_BUDGET_PCT {
                out.push(format!(
                    "lite/{}: IPC error {:.2}% exceeds budget {LITE_IPC_ERR_BUDGET_PCT}%",
                    e.workload, e.ipc_pct
                ));
            }
            if e.l2_mpki_pct > LITE_MPKI_ERR_BUDGET_PCT {
                out.push(format!(
                    "lite/{}: L2 MPKI error {:.2}% exceeds budget {LITE_MPKI_ERR_BUDGET_PCT}%",
                    e.workload, e.l2_mpki_pct
                ));
            }
            if e.llc_mpki_pct > LITE_MPKI_ERR_BUDGET_PCT {
                out.push(format!(
                    "lite/{}: LLC MPKI error {:.2}% exceeds budget {LITE_MPKI_ERR_BUDGET_PCT}%",
                    e.workload, e.llc_mpki_pct
                ));
            }
        }
        out
    }
}

/// Percent error of `x` against reference `full` (0 when both are 0).
fn pct_err(x: f64, full: f64) -> f64 {
    if full == 0.0 {
        if x == 0.0 {
            0.0
        } else {
            100.0
        }
    } else {
        100.0 * (x - full).abs() / full
    }
}

fn kilo_insts(r: &RunResult) -> f64 {
    (r.core.instructions as f64 / 1000.0).max(f64::MIN_POSITIVE)
}

fn l2_mpki(r: &RunResult) -> f64 {
    r.hierarchy.l2.iter().map(|c| c.misses).sum::<u64>() as f64 / kilo_insts(r)
}

fn llc_mpki(r: &RunResult) -> f64 {
    r.hierarchy.llc.misses as f64 / kilo_insts(r)
}

fn crit_cov(r: &RunResult) -> f64 {
    r.core.detector.critical_load_observations as f64 / kilo_insts(r)
}

fn errors_vs(rung: &RunResult, full: &RunResult, workload: &'static str) -> RungErrors {
    RungErrors {
        workload,
        ipc_pct: pct_err(rung.ipc(), full.ipc()),
        l2_mpki_pct: pct_err(l2_mpki(rung), l2_mpki(full)),
        llc_mpki_pct: pct_err(llc_mpki(rung), llc_mpki(full)),
        crit_cov_pct: pct_err(crit_cov(rung), crit_cov(full)),
    }
}

/// Runs all three rungs on the golden six at `eval`'s scale (whatever
/// fidelity `eval` itself names is ignored — the ladder compares rungs)
/// and returns the per-counter errors. Every run resolves through the
/// process-wide run cache under its own rung-tagged fingerprint.
pub fn ladder_errors(eval: &EvalConfig) -> LadderErrors {
    let system = System::new(SystemConfig::baseline_exclusive());
    let mut fast = Vec::new();
    let mut lite = Vec::new();
    for name in GOLDEN_WORKLOADS {
        let spec = suite::by_name(name).expect("golden workload exists");
        let full = run_one(&system, &eval.with_fidelity(Fidelity::Ooo), &spec);
        let f = run_one(&system, &eval.with_fidelity(Fidelity::Fast), &spec);
        let l = run_one(&system, &eval.with_fidelity(Fidelity::Lite), &spec);
        fast.push(errors_vs(&f, &full, name));
        lite.push(errors_vs(&l, &full, name));
    }
    LadderErrors { fast, lite }
}

/// Regenerates the fidelity-ladder validation report: per-rung
/// per-counter error tables on the golden six, plus the absolute IPC
/// each rung reports (DESIGN.md §14).
pub fn ladder(eval: &EvalConfig) -> ExperimentReport {
    let system = System::new(SystemConfig::baseline_exclusive());
    let errs = ladder_errors(eval);

    let err_columns = vec![
        "IPC err%".into(),
        "L2 MPKI err%".into(),
        "LLC MPKI err%".into(),
        "crit cov err%".into(),
    ];
    let mut lite_table = Table::new(
        "timing-lite vs OOO error",
        err_columns.clone(),
        ValueKind::Raw,
    );
    for e in &errs.lite {
        lite_table.push_row(
            e.workload,
            vec![e.ipc_pct, e.l2_mpki_pct, e.llc_mpki_pct, e.crit_cov_pct],
        );
    }
    let mut fast_table = Table::new("fast vs OOO error", err_columns, ValueKind::Raw);
    for e in &errs.fast {
        fast_table.push_row(
            e.workload,
            vec![e.ipc_pct, e.l2_mpki_pct, e.llc_mpki_pct, e.crit_cov_pct],
        );
    }

    let mut ipc_table = Table::new(
        "absolute IPC per rung",
        vec!["fast".into(), "lite".into(), "ooo".into()],
        ValueKind::Raw,
    );
    for name in GOLDEN_WORKLOADS {
        let spec = suite::by_name(name).expect("golden workload exists");
        let row: Vec<f64> = Fidelity::ALL
            .iter()
            .map(|&f| run_one(&system, &eval.with_fidelity(f), &spec).ipc())
            .collect();
        ipc_table.push_row(name, row);
    }

    let violations = errs.violations();
    let gate_note = if violations.is_empty() {
        format!(
            "gate: PASS — lite IPC err <= {LITE_IPC_ERR_BUDGET_PCT}%, \
             MPKI err <= {LITE_MPKI_ERR_BUDGET_PCT}% on every golden workload"
        )
    } else {
        format!("gate: FAIL — {}", violations.join("; "))
    };

    ExperimentReport {
        id: "ladder".into(),
        title: "Fidelity-ladder validation (fast/lite vs OOO)".into(),
        tables: vec![lite_table, fast_table, ipc_table],
        notes: vec![
            gate_note,
            "fast rung is reported, not gated: IPC is 1 by construction and \
             prefetchers do not run during functional fast-forward"
                .into(),
            "crit cov = critical-load observations per kilo-instruction".into(),
            "every rung result is run-cache-keyed by its own fidelity; rungs never coalesce".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The accuracy budgets hold at the standard evaluation scale (the
    /// scale every experiment and the CI `ladder-smoke` gate run at).
    /// Quick-scale runs are transient-dominated — a few thousand
    /// detailed ops after warm-up — and are deliberately not gated.
    #[test]
    fn ladder_report_covers_golden_slice_and_passes_standard_gate() {
        let report = ladder(&EvalConfig::standard());
        assert_eq!(report.id, "ladder");
        assert_eq!(report.tables.len(), 3);
        for table in &report.tables {
            assert_eq!(table.rows.len(), GOLDEN_WORKLOADS.len());
        }
        assert!(
            report.notes[0].starts_with("gate: PASS"),
            "standard-scale ladder must be within budgets: {}",
            report.notes[0]
        );
    }
}
