//! Figure 15: sensitivity to LLC hit latency.

use super::{pct, run_suite, EvalConfig};
use crate::metrics::geomean_ratio;
use crate::report::{ExperimentReport, Table, ValueKind};
use crate::system::SystemConfig;
use catch_cache::Level;

/// The two hierarchy variants and LLC latency steps the figure sweeps.
type MakeConfig = fn() -> SystemConfig;
const VARIANTS: [(&str, MakeConfig); 2] = [
    ("NoL2 + 6.5MB LLC", || {
        SystemConfig::baseline_exclusive().without_l2(6656 << 10)
    }),
    ("NoL2 + 9.5MB LLC + CATCH", || {
        SystemConfig::baseline_exclusive()
            .without_l2(9728 << 10)
            .with_catch()
    }),
];
const EXTRAS: [u64; 3] = [0, 6, 12];

/// Suite configurations this experiment simulates (baseline first);
/// consumed by the experiment body and by `experiments::suite_requests`.
pub(crate) fn suite_configs() -> Vec<SystemConfig> {
    let mut configs = vec![SystemConfig::baseline_exclusive()];
    for (_, make) in VARIANTS {
        for extra in EXTRAS {
            configs.push(make().with_extra_latency(Level::Llc, extra));
        }
    }
    configs
}

/// Regenerates Figure 15: the no-L2 configuration and the two-level CATCH
/// configuration under +0/+6/+12 cycles of LLC latency, relative to the
/// (unmodified-latency) baseline.
pub fn fig15_llc_latency(eval: &EvalConfig) -> ExperimentReport {
    let base = run_suite(&SystemConfig::baseline_exclusive(), eval);

    let mut table = Table::new(
        "perf vs baseline under increased LLC latency",
        vec!["LLC".into(), "LLC+6cyc".into(), "LLC+12cyc".into()],
        ValueKind::PercentDelta,
    );

    for (label, make) in VARIANTS {
        let mut row = Vec::new();
        for extra in EXTRAS {
            let config = make().with_extra_latency(Level::Llc, extra);
            let runs = run_suite(&config, eval);
            row.push(pct(geomean_ratio(&base, &runs)));
        }
        table.push_row(label, row);
    }

    ExperimentReport {
        id: "fig15".into(),
        title: "Sensitivity to LLC hit latency".into(),
        tables: vec![table],
        notes: vec![
            "paper: each +6 cycles of LLC latency costs both configurations ~2%; CATCH stays ahead but cannot fully hide a slower LLC".into(),
        ],
    }
}
