//! Figure 5: performance potential of a criticality-aware oracle
//! prefetcher.

use super::{pct, run_suite, EvalConfig};
use crate::metrics::{geomean_ratio, RunResult};
use crate::report::{ExperimentReport, Table, ValueKind};
use crate::system::SystemConfig;
use catch_cpu::LoadOracle;
use catch_criticality::DetectorConfig;

/// Tracked-PC budgets the figure sweeps.
const PC_BUDGETS: [usize; 5] = [32, 64, 128, 1024, 2048];

fn pc_config(entries: usize) -> SystemConfig {
    SystemConfig::baseline_exclusive()
        .oracle_study()
        .with_oracle(LoadOracle::CriticalPrefetch)
        .with_detector(DetectorConfig::paper().with_table_entries(entries))
        .named(format!("{entries} PC"))
}

fn all_pc_config() -> SystemConfig {
    SystemConfig::baseline_exclusive()
        .oracle_study()
        .with_oracle(LoadOracle::PrefetchAll)
        .named("All PC")
}

fn no_l2_config() -> SystemConfig {
    SystemConfig::baseline_exclusive()
        .oracle_study()
        .without_l2(6656 << 10)
        .with_oracle(LoadOracle::CriticalPrefetch)
        .with_detector(DetectorConfig::paper().with_table_entries(2048))
        .named("NoL2 + 2048 PC")
}

/// Suite configurations this experiment simulates (baseline first);
/// consumed by the experiment body and by `experiments::suite_requests`.
pub(crate) fn suite_configs() -> Vec<SystemConfig> {
    let mut configs = vec![SystemConfig::baseline_exclusive().oracle_study()];
    configs.extend(PC_BUDGETS.iter().map(|&entries| pc_config(entries)));
    configs.push(all_pc_config());
    configs.push(no_l2_config());
    configs
}

fn mean_converted(results: &[RunResult]) -> f64 {
    100.0
        * results
            .iter()
            .map(|r| r.core.memory.converted_fraction())
            .sum::<f64>()
        / results.len().max(1) as f64
}

/// Regenerates Figure 5: the zero-time oracle prefetch of critical loads
/// that would hit the L2/LLC, sweeping the tracked-PC budget, plus the
/// all-PC bar and the NoL2 + 2048-PC bar.
pub fn fig05_oracle_prefetch(eval: &EvalConfig) -> ExperimentReport {
    let base_config = SystemConfig::baseline_exclusive().oracle_study();
    let base = run_suite(&base_config, eval);

    let mut table = Table::new(
        "oracle criticality prefetch (perf gain % / L1-miss loads converted %)",
        vec!["perf impact".into(), "loads converted".into()],
        ValueKind::Raw,
    );

    for entries in PC_BUDGETS {
        let config = pc_config(entries);
        let runs = run_suite(&config, eval);
        table.push_row(
            config.name.clone(),
            vec![pct(geomean_ratio(&base, &runs)), mean_converted(&runs)],
        );
    }

    // All PCs, criticality ignored.
    let all = run_suite(&all_pc_config(), eval);
    table.push_row(
        "All PC",
        vec![pct(geomean_ratio(&base, &all)), mean_converted(&all)],
    );

    // NoL2 with a deep critical table: the L2 becomes irrelevant.
    let no_l2 = run_suite(&no_l2_config(), eval);
    table.push_row(
        "NoL2 + 2048 PC",
        vec![pct(geomean_ratio(&base, &no_l2)), mean_converted(&no_l2)],
    );

    ExperimentReport {
        id: "fig5".into(),
        title: "Performance impact of criticality-aware oracle prefetch".into(),
        tables: vec![table],
        notes: vec![
            "paper: 32 PCs capture +5.5% of the +6.6% all-PC potential; NoL2+2048PC ≈ with-L2 — the L2 becomes redundant under criticality prefetching".into(),
        ],
    }
}
