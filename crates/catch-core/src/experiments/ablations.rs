//! Ablation studies of the design choices DESIGN.md calls out.
//!
//! Each ablation varies one mechanism of the CATCH design on a
//! behaviour-diverse slice of the suite and reports the geomean speedup
//! over the three-level baseline, so the contribution (or cost) of the
//! choice is directly visible.

use super::{pct, EvalConfig};
use crate::metrics::{geomean_ratio, RunResult};
use crate::report::{ExperimentReport, Table, ValueKind};
use crate::system::{System, SystemConfig};
use catch_cache::ReplKind;
use catch_criticality::DetectorConfig;
use catch_workloads::suite;

/// Workloads used by the ablations: one per behaviour class.
const SLICE: [&str; 6] = [
    "xalanc_like",
    "astar_like",
    "stencil_like",
    "spmv_like",
    "tpcc_like",
    "h264_like",
];

fn run_slice(config: &SystemConfig, eval: &EvalConfig) -> Vec<RunResult> {
    let system = System::new(config.clone());
    SLICE
        .iter()
        .map(|n| {
            let spec = suite::by_name(n).expect("slice workloads exist");
            super::run_one(&system, eval, &spec)
        })
        .collect()
}

/// Runs all ablations and reports geomean CATCH gains under each variant.
pub fn ablations(eval: &EvalConfig) -> ExperimentReport {
    let base = run_slice(&SystemConfig::baseline_exclusive(), eval);
    let gain = |config: &SystemConfig| pct(geomean_ratio(&base, &run_slice(config, eval)));

    // 1. Prefetch insertion policy in the L1 (MRU vs LIP).
    let mut insertion = Table::new(
        "L1 prefetch insertion policy (CATCH gain)",
        vec!["gain".into()],
        ValueKind::PercentDelta,
    );
    for (label, repl) in [
        ("MRU insertion (default)", ReplKind::Lru),
        ("LIP insertion", ReplKind::LruLip),
    ] {
        let mut config = SystemConfig::baseline_exclusive().with_catch();
        config.hierarchy.l1d.repl = repl;
        config.hierarchy.l1i.repl = repl;
        insertion.push_row(label, vec![gain(&config)]);
    }

    // 2. Feeder prefetch distance.
    let mut feeder = Table::new(
        "feeder prefetch distance (paper: 4)",
        vec!["gain".into()],
        ValueKind::PercentDelta,
    );
    for distance in [0u8, 2, 4, 8] {
        let mut config = SystemConfig::baseline_exclusive().with_catch();
        config.core.tact_config.feeder_distance = distance;
        feeder.push_row(format!("distance {distance}"), vec![gain(&config)]);
    }

    // 3. Deep-Self maximum distance.
    let mut deep = Table::new(
        "Deep-Self max distance (paper: 16)",
        vec!["gain".into()],
        ValueKind::PercentDelta,
    );
    for distance in [4u8, 8, 16, 32] {
        let mut config = SystemConfig::baseline_exclusive().with_catch();
        config.core.tact_config.deep_max_distance = distance;
        deep.push_row(format!("distance {distance}"), vec![gain(&config)]);
    }

    // 4. ROB size (criticality window scales with it).
    let mut rob = Table::new(
        "ROB size (CATCH gain; window scales with ROB)",
        vec!["gain".into()],
        ValueKind::PercentDelta,
    );
    for size in [128usize, 224, 448] {
        let mut baseline = SystemConfig::baseline_exclusive();
        baseline.core.rob_size = size;
        baseline.core.detector = DetectorConfig {
            rob_size: size,
            ..DetectorConfig::paper()
        };
        let base_runs = run_slice(&baseline, eval);
        let mut catch = baseline.clone().with_catch();
        catch.core.detector = DetectorConfig {
            rob_size: size,
            ..DetectorConfig::paper()
        };
        let catch_runs = run_slice(&catch, eval);
        rob.push_row(
            format!("ROB {size}"),
            vec![pct(geomean_ratio(&base_runs, &catch_runs))],
        );
    }

    // 5. LLC replacement under CATCH (paper §VII: LLC policies should be
    // locality-, not criticality-, based; we check CATCH is robust to the
    // policy choice).
    let mut llc = Table::new(
        "LLC replacement policy under two-level CATCH",
        vec!["gain".into()],
        ValueKind::PercentDelta,
    );
    for (label, repl) in [
        ("LRU", ReplKind::Lru),
        ("SRRIP", ReplKind::Srrip),
        ("Random", ReplKind::Random),
    ] {
        let mut config = SystemConfig::baseline_exclusive()
            .without_l2(9728 << 10)
            .with_catch();
        config.hierarchy.llc.repl = repl;
        llc.push_row(label, vec![gain(&config)]);
    }

    // 6. Code-runahead budget.
    let mut code = Table::new(
        "code-runahead lines per stall",
        vec!["gain".into()],
        ValueKind::PercentDelta,
    );
    for lines in [2usize, 8, 16] {
        let mut config = SystemConfig::baseline_exclusive().with_catch();
        config.core.code_runahead_lines = lines;
        code.push_row(format!("{lines} lines"), vec![gain(&config)]);
    }

    ExperimentReport {
        id: "ablations".into(),
        title: "Ablations of CATCH design choices".into(),
        tables: vec![insertion, feeder, deep, rob, llc, code],
        notes: vec![
            format!("slice: {}", SLICE.join(", ")),
            "expected: MRU ≥ LIP (prefetches must survive to first use); gains grow with feeder/deep distance then flatten; CATCH is robust to LLC policy".into(),
        ],
    }
}
