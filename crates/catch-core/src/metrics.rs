//! Run results and aggregate metrics.

use catch_cache::{CacheHierarchy, HierarchyStats};
use catch_cpu::CoreStats;
use catch_dram::{DramStats, DramSystem};
use catch_trace::counters::{join_prefix, CounterSource, CounterVec, Counters, FromCounters};
use catch_trace::Category;

/// Everything measured over one core's run under one configuration.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Workload name.
    pub workload: String,
    /// Workload category.
    pub category: Category,
    /// Configuration name.
    pub config: String,
    /// Core statistics.
    pub core: CoreStats,
    /// Hierarchy statistics (shared across cores in MP runs).
    pub hierarchy: HierarchyStats,
    /// DRAM statistics, when the backend is the DRAM model.
    pub dram: Option<DramStats>,
}

impl Counters for RunResult {
    fn counters_into(&self, prefix: &str, out: &mut CounterVec) {
        self.core.counters_into(&join_prefix(prefix, "core"), out);
        self.hierarchy
            .counters_into(&join_prefix(prefix, "hierarchy"), out);
        if let Some(dram) = &self.dram {
            dram.counters_into(&join_prefix(prefix, "dram"), out);
        }
    }
}

impl RunResult {
    /// Rebuilds a result from identity fields plus its flat counter
    /// export (the inverse of [`Counters::counters_into`]); used by the
    /// on-disk run cache. `label` is the workload category label as
    /// rendered in reports.
    pub fn from_parts(
        workload: String,
        label: &str,
        config: String,
        counters: CounterVec,
    ) -> Result<Self, String> {
        let category = *Category::ALL
            .iter()
            .find(|c| c.label() == label)
            .ok_or_else(|| format!("unknown workload category label '{label}'"))?;
        let mut src = CounterSource::new(counters);
        let core = CoreStats::from_counters("core", &mut src)?;
        let hierarchy = HierarchyStats::from_counters("hierarchy", &mut src)?;
        let dram = if src.next_in("dram") {
            Some(DramStats::from_counters("dram", &mut src)?)
        } else {
            None
        };
        src.finish()?;
        Ok(RunResult {
            workload,
            category,
            config,
            core,
            hierarchy,
            dram,
        })
    }

    /// Collects a result from a finished core + hierarchy.
    pub fn collect(
        workload: String,
        category: Category,
        config: String,
        core: CoreStats,
        hier: &CacheHierarchy,
    ) -> Self {
        let dram = hier
            .backend()
            .as_any()
            .downcast_ref::<DramSystem>()
            .map(|d| *d.stats());
        RunResult {
            workload,
            category,
            config,
            core,
            hierarchy: hier.stats(),
            dram,
        }
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.core.ipc()
    }
}

/// Result of a 4-way multi-programmed run.
#[derive(Clone, Debug)]
pub struct MpResult {
    /// Configuration name.
    pub config: String,
    /// Per-core results (index = core id).
    pub per_core: Vec<RunResult>,
}

impl MpResult {
    /// Weighted speedup against per-workload alone IPCs:
    /// `Σ IPC_together,i / IPC_alone,i`.
    pub fn weighted_speedup(&self, alone_ipc: &[f64]) -> f64 {
        assert_eq!(
            alone_ipc.len(),
            self.per_core.len(),
            "one alone IPC per core"
        );
        self.per_core
            .iter()
            .zip(alone_ipc)
            .map(|(r, &alone)| if alone > 0.0 { r.ipc() / alone } else { 0.0 })
            .sum()
    }
}

/// Geometric mean of positive values.
///
/// Degenerate *values* (zero, negative, non-finite) yield the 0.0
/// sentinel the registry's ratio tables render as a visibly-broken
/// `0.00x` row. An *empty* slice is a different failure — nothing was
/// aggregated at all — and returns NaN so it can never masquerade as a
/// plausible result. Layers that must fail loudly (the sweep engine's
/// per-point aggregation) should use [`try_geomean`] instead and handle
/// `None` explicitly.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    // Non-finite inputs are rejected along with non-positive ones: a
    // zero-IPC base run turns its ratio into +inf, and one inf (or NaN)
    // would otherwise poison the whole mean instead of flagging the
    // degenerate input with the 0.0 sentinel.
    if values.iter().any(|&v| !v.is_finite() || v <= 0.0) {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Geometric mean that refuses to aggregate nothing: `None` when the
/// slice is empty or contains a non-finite / non-positive value, the
/// mean otherwise. This is the checked face of [`geomean`] for callers
/// (the sweep aggregation layer) where a sentinel would be silently
/// journaled and ranked.
pub fn try_geomean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| !v.is_finite() || v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Geometric-mean speedup of `new` over `base`, paired by position.
///
/// Two empty slices yield NaN (nothing was compared), per [`geomean`];
/// every registry caller passes a fixed non-empty suite, and
/// `per_category_ratio` skips categories with no members before
/// aggregating.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn geomean_ratio(base: &[RunResult], new: &[RunResult]) -> f64 {
    assert_eq!(base.len(), new.len(), "paired runs required");
    let ratios: Vec<f64> = base
        .iter()
        .zip(new)
        .map(|(b, n)| {
            debug_assert_eq!(b.workload, n.workload, "pairing mismatch");
            n.ipc() / b.ipc()
        })
        .collect();
    geomean(&ratios)
}

/// Per-category geometric-mean speedups (category label, ratio), in
/// [`Category::ALL`] order, plus the overall geomean last.
pub fn per_category_ratio(base: &[RunResult], new: &[RunResult]) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for cat in Category::ALL {
        let pairs: (Vec<&RunResult>, Vec<&RunResult>) = base
            .iter()
            .zip(new)
            .filter(|(b, _)| b.category == cat)
            .unzip();
        if pairs.0.is_empty() {
            continue;
        }
        let ratios: Vec<f64> = pairs
            .0
            .iter()
            .zip(&pairs.1)
            .map(|(b, n)| n.ipc() / b.ipc())
            .collect();
        out.push((cat.label().to_string(), geomean(&ratios)));
    }
    out.push(("GeoMean".to_string(), geomean_ratio(base, new)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        // Aggregating nothing is NaN, never a plausible-looking number.
        assert!(geomean(&[]).is_nan());
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[1.0, 0.0]), 0.0);
        assert_eq!(geomean(&[1.0, f64::INFINITY]), 0.0);
        assert_eq!(geomean(&[1.0, f64::NAN]), 0.0);
    }

    #[test]
    fn try_geomean_rejects_degenerate_sets() {
        assert_eq!(try_geomean(&[]), None);
        assert_eq!(try_geomean(&[1.0, 0.0]), None);
        assert_eq!(try_geomean(&[1.0, f64::NAN]), None);
        assert_eq!(try_geomean(&[1.0, -2.0]), None);
        let m = try_geomean(&[2.0, 8.0]).unwrap();
        assert!((m - 4.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_ratio_survives_zero_ipc_base() {
        // A base run that retired nothing must yield the 0.0 sentinel,
        // not +inf (its per-pair ratio divides by a zero IPC).
        let base = vec![result(Category::Hpc, 0.0), result(Category::Hpc, 2.0)];
        let new = vec![result(Category::Hpc, 1.0), result(Category::Hpc, 2.0)];
        assert_eq!(geomean_ratio(&base, &new), 0.0);
    }

    fn result(cat: Category, ipc: f64) -> RunResult {
        let core = CoreStats {
            instructions: (ipc * 1000.0) as u64,
            cycles: 1000,
            ..CoreStats::default()
        };
        RunResult {
            workload: "w".into(),
            category: cat,
            config: "c".into(),
            core,
            hierarchy: HierarchyStats::default(),
            dram: None,
        }
    }

    #[test]
    fn geomean_ratio_pairs() {
        let base = vec![result(Category::Hpc, 1.0), result(Category::Hpc, 2.0)];
        let new = vec![result(Category::Hpc, 2.0), result(Category::Hpc, 2.0)];
        let r = geomean_ratio(&base, &new);
        assert!((r - 2.0_f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn per_category_includes_geomean_row() {
        let base = vec![result(Category::Hpc, 1.0), result(Category::Ispec, 1.0)];
        let new = vec![result(Category::Hpc, 1.1), result(Category::Ispec, 1.2)];
        let rows = per_category_ratio(&base, &new);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows.last().unwrap().0, "GeoMean");
    }

    #[test]
    fn weighted_speedup_sums_ratios() {
        let mp = MpResult {
            config: "c".into(),
            per_core: vec![result(Category::Hpc, 1.0), result(Category::Hpc, 2.0)],
        };
        let ws = mp.weighted_speedup(&[1.0, 1.0]);
        assert!((ws - 3.0).abs() < 1e-9);
    }
}
