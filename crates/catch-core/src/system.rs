//! System assembly: configuration presets and the simulation driver.

use crate::metrics::{MpResult, RunResult};
use catch_cache::{CacheHierarchy, HierarchyConfig, Level};
use catch_cpu::{run_fast_functional, Core, CoreConfig, Engine, LiteCore, LoadOracle, TactMode};
use catch_criticality::DetectorConfig;
use catch_dram::{DramConfig, DramSystem};
use catch_obs::Obs;
use catch_trace::Trace;

/// One machine configuration: hierarchy organisation, core features and
/// memory. Every configuration the paper evaluates is expressible through
/// the preset constructors plus the `with_*` modifiers.
#[derive(Clone, Debug, PartialEq)]
pub struct SystemConfig {
    /// Human-readable configuration name used in reports.
    pub name: String,
    /// Cache hierarchy.
    pub hierarchy: HierarchyConfig,
    /// Core model.
    pub core: CoreConfig,
    /// DRAM model.
    pub dram: DramConfig,
    /// Extra hit latency injected per level (Figures 3 and 15).
    pub extra_latency: Vec<(Level, u64)>,
}

impl SystemConfig {
    /// The large-L2 exclusive-LLC single-core baseline (1 MB L2 + 5.5 MB
    /// exclusive LLC, baseline prefetchers on).
    pub fn baseline_exclusive() -> Self {
        SystemConfig {
            name: "base-excl".into(),
            hierarchy: HierarchyConfig::skylake_server(1),
            core: CoreConfig::baseline(),
            dram: DramConfig::ddr4_2400(),
            extra_latency: Vec::new(),
        }
    }

    /// The small-L2 inclusive-LLC baseline (256 KB L2 + 8 MB inclusive
    /// LLC).
    pub fn baseline_inclusive() -> Self {
        SystemConfig {
            name: "base-incl".into(),
            hierarchy: HierarchyConfig::skylake_client(1),
            core: CoreConfig::baseline(),
            dram: DramConfig::ddr4_2400(),
            extra_latency: Vec::new(),
        }
    }

    /// Scales to `cores` cores (shared LLC size unchanged).
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.hierarchy.cores = cores;
        self
    }

    /// Removes the L2, setting the shared LLC to `llc_bytes`.
    pub fn without_l2(mut self, llc_bytes: u64) -> Self {
        self.hierarchy = self.hierarchy.without_l2(llc_bytes);
        self.name = format!("noL2+{}MB", llc_bytes as f64 / (1 << 20) as f64);
        self
    }

    /// Enables the full CATCH mechanisms (criticality detection + all
    /// TACT prefetchers).
    pub fn with_catch(mut self) -> Self {
        self.core.tact = TactMode::full();
        self.name = format!("{}+CATCH", self.name);
        self
    }

    /// Selects individual TACT components (Figure 13 build-up).
    pub fn with_tact_components(
        mut self,
        code: bool,
        cross: bool,
        deep: bool,
        feeder: bool,
    ) -> Self {
        self.core.tact = TactMode {
            data: cross || deep || feeder,
            code,
        };
        self.core.tact_config.enable_cross = cross;
        self.core.tact_config.enable_deep = deep;
        self.core.tact_config.enable_feeder = feeder;
        self
    }

    /// Installs a load oracle (Figures 4 and 5).
    pub fn with_oracle(mut self, oracle: LoadOracle) -> Self {
        self.core.oracle = oracle;
        self
    }

    /// Replaces the detector configuration (table-size sweeps, per-level
    /// tracking for Figure 4).
    pub fn with_detector(mut self, detector: DetectorConfig) -> Self {
        self.core.detector = detector;
        self
    }

    /// Adds hit latency at one level.
    pub fn with_extra_latency(mut self, level: Level, cycles: u64) -> Self {
        self.extra_latency.push((level, cycles));
        self
    }

    /// Enables the sliced-LLC ring (NUCA) model with `hop_cycles` per ring
    /// hop.
    pub fn with_ring(mut self, hop_cycles: u64) -> Self {
        self.hierarchy = self.hierarchy.with_ring(hop_cycles);
        self
    }

    /// Renames the configuration.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Oracle-study variant: perfect L1I and no baseline prefetchers
    /// (Section III-C methodology).
    pub fn oracle_study(mut self) -> Self {
        self.core.perfect_l1i = true;
        self.core.baseline_prefetchers = false;
        self
    }
}

/// Simulation driver for one configuration.
#[derive(Clone, Debug)]
pub struct System {
    config: SystemConfig,
}

impl System {
    /// Creates a driver.
    pub fn new(config: SystemConfig) -> Self {
        System { config }
    }

    /// Configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    pub(crate) fn build_hierarchy(&self, cores: usize) -> CacheHierarchy {
        self.build_hierarchy_obs(cores, &Obs::off())
    }

    pub(crate) fn build_hierarchy_obs(&self, cores: usize, obs: &Obs) -> CacheHierarchy {
        let mut hcfg = self.config.hierarchy.clone();
        hcfg.cores = cores;
        let mut dram = DramSystem::new(self.config.dram.clone());
        dram.set_obs(obs.clone());
        let mut hier = CacheHierarchy::new(&hcfg, Box::new(dram));
        hier.set_obs(obs.clone());
        for &(level, extra) in &self.config.extra_latency {
            hier.add_level_latency(level, extra);
        }
        // Under the event-queue engine the hierarchy and DRAM deposit
        // completion-cycle wake hints that cores drain into their
        // calendar queues. The hints only add idle-probe cycles (every
        // one lands on a cycle the core would have slept through), so
        // the tick engine never needs them — leaving them disabled
        // keeps its hot path free of the buffering.
        if self.config.core.engine == Engine::TimeQ && self.config.core.skip_ahead {
            hier.enable_wake_hints();
        }
        hier
    }

    /// Runs a single trace on core 0, returning the metrics.
    pub fn run_st(&self, trace: Trace) -> RunResult {
        self.run_st_warm(trace, 0)
    }

    /// [`System::run_st`] with an observability handle: every component
    /// (core pipeline, caches, DRAM, TACT, criticality detector) emits
    /// cycle-stamped events through clones of `obs`. Pass [`Obs::off`]
    /// (or call `run_st`) for a silent run — the handles then cost one
    /// predictable branch per would-be event.
    pub fn run_st_obs(&self, trace: Trace, obs: &Obs) -> RunResult {
        self.run_st_warm_obs(trace, 0, obs)
    }

    /// Runs a single trace, excluding the first `warmup_ops` retired
    /// micro-ops from measurement (caches, predictors and learned tables
    /// stay warm).
    pub fn run_st_warm(&self, trace: Trace, warmup_ops: usize) -> RunResult {
        self.run_st_warm_obs(trace, warmup_ops, &Obs::off())
    }

    /// [`System::run_st_warm`] with an observability handle (see
    /// [`System::run_st_obs`]); warm-up cycles also emit events.
    pub fn run_st_warm_obs(&self, trace: Trace, warmup_ops: usize, obs: &Obs) -> RunResult {
        let mut hier = self.build_hierarchy_obs(1, obs);
        let mut core = Core::new(0, trace, self.config.core.clone());
        core.set_obs(obs.clone());
        if warmup_ops > 0 {
            let budget = 1000 * core.trace().len() as u64 + 10_000_000;
            while !core.done() && (core.retired() as usize) < warmup_ops {
                core.tick_or_skip(&mut hier);
                assert!(core.cycle() < budget, "warm-up exceeded cycle budget");
            }
            core.end_warmup();
            hier.reset_stats();
        }
        let stats = core.run_to_completion(&mut hier);
        RunResult::collect(
            core.trace().name().to_string(),
            core.trace().category(),
            self.config.name.clone(),
            stats,
            &hier,
        )
    }

    /// Runs a single trace on the `fast` fidelity rung: the functional
    /// fast-forward path end to end (one op per cycle, warm hierarchy
    /// accesses, branch training, no pipeline timing). Counters are
    /// bit-identical to the existing [`Core::fast_forward`] because they
    /// *are* that path; IPC is 1 by construction. See DESIGN.md §14.
    pub fn run_st_fast(&self, trace: Trace, warmup_ops: usize) -> RunResult {
        let mut hier = self.build_hierarchy(1);
        let name = trace.name().to_string();
        let category = trace.category();
        let stats = run_fast_functional(0, trace, self.config.core.clone(), &mut hier, warmup_ops);
        RunResult::collect(name, category, self.config.name.clone(), stats, &hier)
    }

    /// Runs a single trace on the `timing-lite` fidelity rung: a
    /// functional fast-forward warm-up (the warm-up being approximate is
    /// part of the rung's semantics) followed by the in-order-issue
    /// scoreboard core ([`LiteCore`]) driving the real hierarchy,
    /// criticality detector and TACT. See DESIGN.md §14 for the error
    /// model; the `ladder` experiment measures it per workload.
    pub fn run_st_lite(&self, trace: Trace, warmup_ops: usize) -> RunResult {
        let mut hier = self.build_hierarchy(1);
        let mut core = LiteCore::new(0, trace, self.config.core.clone());
        if warmup_ops > 0 {
            core.fast_forward(&mut hier, warmup_ops);
            core.end_warmup();
            hier.reset_stats();
        }
        let stats = core.run_to_completion(&mut hier);
        RunResult::collect(
            core.trace().name().to_string(),
            core.trace().category(),
            self.config.name.clone(),
            stats,
            &hier,
        )
    }

    /// Runs four traces on a shared 4-core system. Cores that finish
    /// early idle (their caches stay resident). Returns per-core results.
    pub fn run_mp(&self, traces: [Trace; 4]) -> MpResult {
        self.run_mp_obs(traces, &Obs::off())
    }

    /// [`System::run_mp`] with an observability handle (see
    /// [`System::run_st_obs`]); events carry the id of the emitting core.
    pub fn run_mp_obs(&self, traces: [Trace; 4], obs: &Obs) -> MpResult {
        let mut hier = self.build_hierarchy_obs(4, obs);
        let mut cores: Vec<Core> = traces
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                let mut core = Core::new(i, t, self.config.core.clone());
                core.set_obs(obs.clone());
                core
            })
            .collect();
        let total_ops: usize = cores.iter().map(|c| c.trace().len()).sum();
        let budget = 1000 * total_ops as u64 + 10_000_000;
        let mut rounds = 0u64;
        let skip_ahead = self.config.core.skip_ahead;
        while cores.iter().any(|c| !c.done()) {
            let mut all_idle = true;
            for core in cores.iter_mut() {
                if !core.done() {
                    all_idle &= !core.tick_progress(&mut hier);
                }
            }
            // Lockstep skip-ahead: only when every live core had an
            // idle cycle may the shared clock jump, and only to the
            // earliest event across cores — any nearer event on one
            // core could feed the others through the shared LLC/DRAM.
            if all_idle && skip_ahead {
                let target = cores
                    .iter_mut()
                    .filter(|c| !c.done())
                    .filter_map(|c| c.next_wake_cycle(true))
                    .min();
                if let Some(target) = target {
                    for core in cores.iter_mut() {
                        if !core.done() && target > core.cycle() {
                            core.advance_to(&mut hier, target, true);
                        }
                    }
                }
            }
            rounds += 1;
            assert!(rounds < budget, "MP run exceeded cycle budget");
        }
        let per_core: Vec<RunResult> = cores
            .iter()
            .map(|c| {
                RunResult::collect(
                    c.trace().name().to_string(),
                    c.trace().category(),
                    self.config.name.clone(),
                    c.stats(),
                    &hier,
                )
            })
            .collect();
        MpResult {
            config: self.config.name.clone(),
            per_core,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catch_workloads::suite;

    #[test]
    fn presets_match_paper_configurations() {
        let base = SystemConfig::baseline_exclusive();
        assert_eq!(base.hierarchy.l2.bytes, 1 << 20);
        assert_eq!(base.hierarchy.llc.bytes, 5632 << 10);
        let no_l2 = base.clone().without_l2(6656 << 10);
        assert!(!no_l2.hierarchy.has_l2());
        let catch = base.with_catch();
        assert!(catch.core.tact.data && catch.core.tact.code);
        assert!(catch.name.contains("CATCH"));
    }

    #[test]
    fn st_run_produces_metrics() {
        let trace = suite::by_name("linpack_like").unwrap().generate(5_000, 1);
        let result = System::new(SystemConfig::baseline_exclusive()).run_st(trace);
        assert!(result.ipc() > 0.1);
        assert_eq!(result.workload, "linpack_like");
        assert!(result.dram.is_some(), "DRAM stats must be recoverable");
    }

    #[test]
    fn extra_latency_slows_l1() {
        // A serial pointer chase is directly gated by load-to-use latency.
        let trace = suite::by_name("astar_like").unwrap().generate(20_000, 1);
        let base = System::new(SystemConfig::baseline_exclusive()).run_st(trace.clone());
        let slowed =
            System::new(SystemConfig::baseline_exclusive().with_extra_latency(Level::L1, 3))
                .run_st(trace);
        assert!(
            slowed.ipc() < base.ipc(),
            "L1 +3cyc must slow a chase: {} vs {}",
            slowed.ipc(),
            base.ipc()
        );
    }

    #[test]
    fn obs_run_matches_silent_run_and_covers_all_classes() {
        use catch_obs::{EventClass, VecSink};
        use std::sync::{Arc, Mutex};

        let trace = suite::by_name("tpcc_like").unwrap().generate(8_000, 1);
        let system = System::new(SystemConfig::baseline_exclusive().with_catch());
        let silent = system.run_st(trace.clone());

        let sink = Arc::new(Mutex::new(VecSink::new()));
        let obs = Obs::attached(sink.clone(), EventClass::ALL);
        let observed = system.run_st_obs(trace, &obs);
        drop(obs);

        // Observation must not perturb the simulation.
        assert_eq!(silent.ipc(), observed.ipc());
        assert_eq!(silent.core, observed.core);

        let events = sink.lock().expect("sink lock").take();
        assert!(!events.is_empty());
        for class in [
            EventClass::CORE,
            EventClass::OCCUPANCY,
            EventClass::CACHE,
            EventClass::DRAM,
            EventClass::CRIT,
        ] {
            assert!(
                events.iter().any(|e| e.class() == class),
                "no events of class {:?}",
                class
            );
        }
        // Cycle stamps are present and plausible.
        assert!(events.iter().any(|e| e.cycle > 0));
    }

    #[test]
    fn mp_run_completes_all_cores() {
        let spec = suite::by_name("linpack_like").unwrap();
        let traces = [
            spec.generate(3_000, 1),
            spec.generate(3_000, 2),
            spec.generate(3_000, 3),
            spec.generate(3_000, 4),
        ];
        let result = System::new(SystemConfig::baseline_exclusive().with_cores(4)).run_mp(traces);
        assert_eq!(result.per_core.len(), 4);
        for r in &result.per_core {
            assert!(r.ipc() > 0.05);
        }
    }
}
