//! Resumable design-space sweep engine (ROADMAP item 2).
//!
//! A [`SweepSpec`] is a declarative grid over the design axes the paper's
//! Section VI-E trade-off argument cares about — LLC capacity ×
//! hierarchy organisation (exclusive / inclusive / two-level) × CATCH
//! on/off × LLC latency delta × baseline-prefetcher mix — expanded by
//! [`expand`] into one [`SweepPoint`] (a full [`SystemConfig`]) per grid
//! cell. [`run_sweep`] evaluates every point over the spec's workload
//! list:
//!
//! * **Work-stealing frontier** — the (point × workload) jobs flatten
//!   onto the registry's parallel [`Runner`]; workers pull jobs from the
//!   shared atomic cursor, so a slow point never convoys the sweep.
//! * **Run-cache composition** — every simulation resolves through the
//!   process-wide [`RunCache`](crate::RunCache), so points shared with
//!   registry experiments (or an earlier sweep at the same scale) cost
//!   nothing, and `eval.sample` buys sampled fidelity per point.
//! * **Checkpoint journal** — with [`SweepOptions::checkpoint`] set,
//!   each point's aggregate metrics are appended to a line-oriented
//!   journal the moment its last workload retires; a later invocation
//!   resumes from the journal with **zero recompute** of journaled
//!   points and a final report byte-identical to an uninterrupted run
//!   (asserted by the `sweep` suite in `catch-tests`).
//! * **Pareto reports** — the report ranks the non-dominated frontier
//!   over (perf ↑, energy ↓, area ↓) using the existing
//!   [`energy`](crate::energy) and [`area`](crate::area) models.
//!
//! The engine is reachable from the CLI (`run_experiment sweep[:grid]`,
//! `--checkpoint`, `--points`) and from `catch-server` (the same
//! `sweep[:grid]` ids drain through the daemon's sweep priority class).

mod journal;
mod pareto;

use crate::area::{hierarchy_area, AreaConstants};
use crate::energy::{energy_of, EnergyConstants};
use crate::experiments::{run_one, EvalConfig, Runner, GOLDEN_WORKLOADS};
use crate::metrics::try_geomean;
use crate::report::ExperimentReport;
use crate::runcache::{fp128, Fingerprint, SCHEMA_VERSION};
use crate::system::{System, SystemConfig};
use catch_cache::{CacheConfig, Level};
use catch_workloads::WorkloadSpec;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Hierarchy organisation axis of a sweep grid.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Org {
    /// Private 1 MB L2 + shared exclusive LLC (Skylake-server-like).
    Excl3,
    /// Private 256 KB L2 + shared inclusive LLC (Skylake-client-like).
    Incl3,
    /// No L2: private L1s in front of the shared LLC (CATCH two-level).
    NoL2,
}

impl Org {
    fn label(self) -> &'static str {
        match self {
            Org::Excl3 => "excl3",
            Org::Incl3 => "incl3",
            Org::NoL2 => "noL2",
        }
    }
}

/// Declarative grid over the design axes. The cross product of every
/// axis is the point set; [`expand`] materialises it in a fixed,
/// deterministic order (org-major, then LLC size, CATCH, latency,
/// prefetchers).
#[derive(Clone, Debug, PartialEq)]
pub struct SweepSpec {
    /// LLC capacities in KiB. Each must divide into whole sets for one
    /// of the supported associativities (multiples of 704 KiB always
    /// work at 11 ways; powers of two at 16/8 ways).
    pub llc_kb: Vec<u64>,
    /// Hierarchy organisations.
    pub orgs: Vec<Org>,
    /// CATCH mechanisms off/on.
    pub catch: Vec<bool>,
    /// Extra LLC hit-latency cycles (0 = nominal; the Figure 15 axis).
    pub llc_extra_latency: Vec<u64>,
    /// Baseline prefetchers off/on (the prefetcher-mix axis).
    pub baseline_prefetchers: Vec<bool>,
    /// Core count used for chip-area accounting (simulation itself is
    /// single-core; the LLC is shared, so area is reported for a chip
    /// of this size — the paper's four-core arithmetic).
    pub chip_cores: usize,
    /// Workloads each point is evaluated over (perf is the geomean IPC
    /// ratio vs the exclusive baseline across these).
    pub workloads: Vec<String>,
}

impl SweepSpec {
    /// Small grid for examples, smoke gates and tests: 12 points over
    /// two organisations, three LLC sizes and CATCH on/off.
    pub fn quick() -> Self {
        SweepSpec {
            llc_kb: vec![4224, 5632, 9728],
            orgs: vec![Org::Excl3, Org::NoL2],
            catch: vec![false, true],
            llc_extra_latency: vec![0],
            baseline_prefetchers: vec![true],
            chip_cores: 4,
            workloads: GOLDEN_WORKLOADS.iter().map(|w| w.to_string()).collect(),
        }
    }

    /// The full published grid: 600 points over ten LLC capacities,
    /// all three organisations, CATCH on/off, five LLC latency deltas
    /// and both prefetcher mixes.
    pub fn paper() -> Self {
        SweepSpec {
            llc_kb: vec![2816, 3520, 4224, 4928, 5632, 7040, 8448, 9856, 11264, 14080],
            orgs: vec![Org::Excl3, Org::Incl3, Org::NoL2],
            catch: vec![false, true],
            llc_extra_latency: vec![0, 4, 8, 16, 24],
            baseline_prefetchers: vec![true, false],
            chip_cores: 4,
            workloads: GOLDEN_WORKLOADS.iter().map(|w| w.to_string()).collect(),
        }
    }

    /// Looks a named grid preset up (`"quick"` or `"paper"`).
    pub fn by_name(name: &str) -> Option<SweepSpec> {
        match name {
            "quick" => Some(SweepSpec::quick()),
            "paper" => Some(SweepSpec::paper()),
            _ => None,
        }
    }

    /// Number of grid points the spec expands to.
    pub fn point_count(&self) -> usize {
        self.orgs.len()
            * self.llc_kb.len()
            * self.catch.len()
            * self.llc_extra_latency.len()
            * self.baseline_prefetchers.len()
    }
}

/// Resolves a protocol/CLI request id to a grid: `"sweep"` is the quick
/// grid, `"sweep:<name>"` a named preset. `None` for non-sweep ids.
pub fn by_request_id(id: &str) -> Option<SweepSpec> {
    match id {
        "sweep" => Some(SweepSpec::quick()),
        _ => id.strip_prefix("sweep:").and_then(SweepSpec::by_name),
    }
}

/// One expanded grid cell: the runnable configuration plus the capacity
/// and area facts the energy/area models need.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Systematic point label (also the report row label).
    pub name: String,
    /// Full machine configuration (single-core; see
    /// [`SweepSpec::chip_cores`]).
    pub config: SystemConfig,
    /// Per-core L2 capacity (0 for two-level points).
    pub l2_bytes: u64,
    /// Shared LLC capacity.
    pub llc_bytes: u64,
    /// Chip area at [`SweepSpec::chip_cores`] cores (mm²).
    pub area_mm2: f64,
}

/// Smallest supported associativity that divides `lines` into whole
/// sets (the cache model indexes by mask for power-of-two set counts
/// and by modulo otherwise, so any divisor is valid).
fn pick_ways(lines: u64) -> usize {
    [11usize, 16, 8, 4, 2, 1]
        .into_iter()
        .find(|&w| lines.is_multiple_of(w as u64))
        .expect("1 divides everything")
}

fn build_point(
    spec: &SweepSpec,
    org: Org,
    llc_kb: u64,
    catch: bool,
    extra: u64,
    prefetchers: bool,
) -> SweepPoint {
    let llc_bytes = llc_kb << 10;
    let mut config = match org {
        Org::Excl3 => SystemConfig::baseline_exclusive(),
        Org::Incl3 => SystemConfig::baseline_inclusive(),
        Org::NoL2 => SystemConfig::baseline_exclusive().without_l2(llc_bytes),
    };
    if org != Org::NoL2 {
        let llc = &config.hierarchy.llc;
        let lines = llc_bytes / catch_trace::LINE_BYTES;
        config.hierarchy.llc =
            CacheConfig::with_repl("LLC", llc_bytes, pick_ways(lines), llc.latency, llc.repl)
                .expect("sweep axis produced an invalid LLC geometry");
    }
    config.core.baseline_prefetchers = prefetchers;
    if catch {
        config = config.with_catch();
    }
    if extra > 0 {
        config = config.with_extra_latency(Level::Llc, extra);
    }
    let mut name = format!("{}-{}KB", org.label(), llc_kb);
    if extra > 0 {
        name.push_str(&format!("+lat{extra}"));
    }
    if !prefetchers {
        name.push_str("-nopf");
    }
    if catch {
        name.push_str("+CATCH");
    }
    let config = config.named(name.clone());
    let l2_bytes = if config.hierarchy.has_l2() {
        config.hierarchy.l2.bytes
    } else {
        0
    };
    let mut chip = config.hierarchy.clone();
    chip.cores = spec.chip_cores;
    let area_mm2 = hierarchy_area(&chip, &AreaConstants::nm14()).total_mm2();
    SweepPoint {
        name,
        config,
        l2_bytes,
        llc_bytes,
        area_mm2,
    }
}

/// Materialises the grid in its fixed order (org-major, then LLC size,
/// CATCH, latency delta, prefetcher mix).
pub fn expand(spec: &SweepSpec) -> Vec<SweepPoint> {
    let mut points = Vec::with_capacity(spec.point_count());
    for &org in &spec.orgs {
        for &llc_kb in &spec.llc_kb {
            for &catch in &spec.catch {
                for &extra in &spec.llc_extra_latency {
                    for &pf in &spec.baseline_prefetchers {
                        points.push(build_point(spec, org, llc_kb, catch, extra, pf));
                    }
                }
            }
        }
    }
    points
}

/// Structural fingerprint of the whole sweep (grid spec + evaluation
/// scale + schema). The checkpoint journal is keyed by this: a journal
/// written for a different grid or scale can never resume a sweep.
pub fn sweep_fingerprint(spec: &SweepSpec, eval: &EvalConfig) -> Fingerprint {
    fp128(&format!("sweep|schema{SCHEMA_VERSION}|{spec:?}|{eval:?}"))
}

/// Structural fingerprint of one grid point under one evaluation scale
/// (the journal's per-point key). The display name is a report label and
/// is stripped, exactly like the run cache's keys.
pub fn point_fingerprint(
    config: &SystemConfig,
    eval: &EvalConfig,
    workloads: &[String],
) -> Fingerprint {
    let mut anon = config.clone();
    anon.name = String::new();
    fp128(&format!(
        "sweeppoint|schema{SCHEMA_VERSION}|{anon:?}|{eval:?}|{workloads:?}"
    ))
}

/// Execution knobs for one [`run_sweep`] invocation.
#[derive(Clone, Debug, Default)]
pub struct SweepOptions {
    /// Worker count (`None` defers to [`Runner::from_env`]).
    pub jobs: Option<usize>,
    /// Checkpoint journal path. When set, completed points are appended
    /// as they finish and already-journaled points are never recomputed.
    pub checkpoint: Option<PathBuf>,
    /// Evaluate at most this many *new* points this invocation, leaving
    /// the rest pending in the journal (the cooperative interruption
    /// hook behind resumability tests and budgeted sweeps).
    pub limit: Option<usize>,
}

/// Aggregate metrics of one completed point.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct PointMetrics {
    /// Geomean IPC ratio vs the exclusive baseline (NaN when the ratio
    /// set was degenerate — see [`try_geomean`]).
    pub perf: f64,
    /// Total energy over the workload list (µJ).
    pub energy_uj: f64,
    /// Chip area (mm²).
    pub area_mm2: f64,
}

/// What one [`run_sweep`] invocation did.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// The Pareto report over every completed point.
    pub report: ExperimentReport,
    /// Grid size.
    pub total: usize,
    /// Points restored from the checkpoint journal (zero recompute).
    pub resumed: usize,
    /// Points evaluated by this invocation.
    pub computed: usize,
    /// Points still pending (non-zero only under [`SweepOptions::limit`]).
    pub remaining: usize,
    /// Completed points whose perf aggregate was degenerate (excluded
    /// from the frontier).
    pub degenerate: usize,
}

// Per-point accumulation slot: a retired-workload counter plus the
// per-workload (ipc, energy) measurements awaiting aggregation.
type PointSlot = (AtomicUsize, Mutex<Vec<Option<(f64, f64)>>>);

/// Runs (or resumes) a sweep. See the module docs for the execution
/// model; the returned report is deterministic — byte-identical across
/// worker counts, cache modes and interrupt/resume splits.
///
/// # Errors
///
/// Fails on an empty grid, an unknown workload name, or a checkpoint
/// journal that is unreadable or was written for a different sweep.
pub fn run_sweep(
    spec: &SweepSpec,
    eval: &EvalConfig,
    opts: &SweepOptions,
) -> Result<SweepOutcome, String> {
    let points = expand(spec);
    let total = points.len();
    if total == 0 {
        return Err("sweep grid is empty (every axis needs at least one value)".to_string());
    }
    if spec.workloads.is_empty() {
        return Err("sweep workload list is empty".to_string());
    }
    let specs: Vec<WorkloadSpec> = spec
        .workloads
        .iter()
        .map(|name| {
            catch_workloads::suite::by_name(name)
                .map_err(|_| format!("unknown sweep workload '{name}'"))
        })
        .collect::<Result<_, _>>()?;
    let runner = match opts.jobs {
        Some(n) => Runner::with_jobs(n),
        None => Runner::from_env()?,
    };

    let sweep_fp = sweep_fingerprint(spec, eval);
    let point_fps: Vec<Fingerprint> = points
        .iter()
        .map(|p| point_fingerprint(&p.config, eval, &spec.workloads))
        .collect();

    let state = match &opts.checkpoint {
        Some(path) => journal::load(path, sweep_fp)?,
        None => journal::State::default(),
    };

    // Per-workload baseline IPCs: restored bit-exactly from the journal
    // header when resuming, computed through the run cache otherwise.
    let baseline: Vec<f64> = match &state.baseline {
        Some(stored) => spec
            .workloads
            .iter()
            .map(|w| {
                stored
                    .iter()
                    .find(|(name, _)| name == w)
                    .map(|(_, ipc)| *ipc)
                    .ok_or_else(|| format!("checkpoint header lacks baseline IPC for '{w}'"))
            })
            .collect::<Result<_, _>>()?,
        None => {
            let base = System::new(SystemConfig::baseline_exclusive());
            runner.run(&specs, |_, w| run_one(&base, eval, w).ipc())
        }
    };

    let writer = match &opts.checkpoint {
        Some(path) => Some(journal::Writer::open(
            path,
            sweep_fp,
            total,
            state.baseline.is_none().then(|| {
                spec.workloads
                    .iter()
                    .cloned()
                    .zip(baseline.iter().copied())
                    .collect::<Vec<_>>()
            }),
        )?),
        None => None,
    };

    // Split the grid into journaled and pending points; honour the
    // cooperative interruption limit on the pending side.
    let mut metrics: Vec<Option<PointMetrics>> = vec![None; total];
    let mut resumed = 0usize;
    for (i, fp) in point_fps.iter().enumerate() {
        if let Some(m) = state.points.get(&fp.0) {
            metrics[i] = Some(*m);
            resumed += 1;
        }
    }
    let pending: Vec<usize> = (0..total).filter(|&i| metrics[i].is_none()).collect();
    let scheduled: Vec<usize> = match opts.limit {
        Some(k) => pending.iter().copied().take(k).collect(),
        None => pending.clone(),
    };
    let remaining = pending.len() - scheduled.len();

    // The frontier: flatten (point × workload) jobs point-major onto the
    // work-stealing Runner. The worker that retires a point's last
    // workload aggregates and journals it immediately, so an interrupted
    // process loses at most its in-flight points.
    let systems: Vec<System> = scheduled
        .iter()
        .map(|&i| System::new(points[i].config.clone()))
        .collect();
    let wl = specs.len();
    let jobs: Vec<(usize, usize, usize)> = scheduled
        .iter()
        .enumerate()
        .flat_map(|(s, &i)| (0..wl).map(move |w| (s, i, w)))
        .collect();
    let slots: Vec<PointSlot> = scheduled
        .iter()
        .map(|_| (AtomicUsize::new(0), Mutex::new(vec![None; wl])))
        .collect();
    let computed: Mutex<Vec<(usize, PointMetrics)>> = Mutex::new(Vec::new());
    let constants = EnergyConstants::paper_like();

    runner.run(&jobs, |_, &(s, i, w)| {
        let point = &points[i];
        let result = run_one(&systems[s], eval, &specs[w]);
        let energy = energy_of(&result, &constants, point.l2_bytes, point.llc_bytes).total_uj();
        {
            let mut slot = slots[s].1.lock().expect("sweep slot poisoned");
            slot[w] = Some((result.ipc(), energy));
        }
        let done = slots[s].0.fetch_add(1, Ordering::AcqRel) + 1;
        if done == wl {
            // Last workload of this point: aggregate in fixed workload
            // order (determinism) and journal before anything else can
            // interrupt.
            let slot = slots[s].1.lock().expect("sweep slot poisoned");
            let ratios: Vec<f64> = slot
                .iter()
                .zip(&baseline)
                .map(|(cell, &base)| cell.expect("all workloads retired").0 / base)
                .collect();
            let energy_uj: f64 = slot
                .iter()
                .map(|cell| cell.expect("all workloads retired").1)
                .sum();
            let perf = match try_geomean(&ratios) {
                Some(p) => p,
                None => {
                    eprintln!(
                        "warning: sweep point '{}' has a degenerate perf aggregate \
                         (empty or non-positive ratio set); excluded from the frontier",
                        point.name
                    );
                    f64::NAN
                }
            };
            let m = PointMetrics {
                perf,
                energy_uj,
                area_mm2: point.area_mm2,
            };
            if let Some(w) = &writer {
                w.append(point_fps[i], &point.name, m);
            }
            computed
                .lock()
                .expect("sweep results poisoned")
                .push((i, m));
        }
    });

    let computed = computed.into_inner().expect("sweep results poisoned");
    let computed_count = computed.len();
    for (i, m) in computed {
        metrics[i] = Some(m);
    }
    let degenerate = metrics
        .iter()
        .flatten()
        .filter(|m| !m.perf.is_finite())
        .count();

    let report = pareto::report(spec, &points, &metrics, remaining, degenerate);
    Ok(SweepOutcome {
        report,
        total,
        resumed,
        computed: computed_count,
        remaining,
        degenerate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_expands_to_unique_valid_points() {
        let spec = SweepSpec::quick();
        let points = expand(&spec);
        assert_eq!(points.len(), spec.point_count());
        assert_eq!(points.len(), 12);
        let eval = EvalConfig::quick();
        let mut fps = Vec::new();
        for p in &points {
            // Every point must be a buildable machine...
            assert!(p.config.hierarchy.llc.sets().is_ok(), "{}", p.name);
            assert!(p.area_mm2 > 0.0);
            // ...with a unique structural key.
            let fp = point_fingerprint(&p.config, &eval, &spec.workloads);
            assert!(!fps.contains(&fp), "duplicate point {}", p.name);
            fps.push(fp);
        }
    }

    #[test]
    fn paper_grid_reaches_five_hundred_points() {
        let spec = SweepSpec::paper();
        assert!(spec.point_count() >= 500, "{}", spec.point_count());
        let points = expand(&spec);
        for p in &points {
            assert!(p.config.hierarchy.llc.sets().is_ok(), "{}", p.name);
        }
    }

    #[test]
    fn request_ids_resolve_presets() {
        assert_eq!(by_request_id("sweep"), Some(SweepSpec::quick()));
        assert_eq!(by_request_id("sweep:quick"), Some(SweepSpec::quick()));
        assert_eq!(by_request_id("sweep:paper"), Some(SweepSpec::paper()));
        assert_eq!(by_request_id("sweep:bogus"), None);
        assert_eq!(by_request_id("fig10"), None);
    }

    #[test]
    fn sweep_fingerprint_covers_grid_and_scale() {
        let eval = EvalConfig::quick();
        let reference = sweep_fingerprint(&SweepSpec::quick(), &eval);
        let mut grown = SweepSpec::quick();
        grown.llc_kb.push(11264);
        assert_ne!(sweep_fingerprint(&grown, &eval), reference);
        let mut bigger = eval;
        bigger.ops += 1;
        assert_ne!(sweep_fingerprint(&SweepSpec::quick(), &bigger), reference);
    }

    #[test]
    fn point_fingerprint_ignores_display_name() {
        let spec = SweepSpec::quick();
        let eval = EvalConfig::quick();
        let point = expand(&spec).remove(0);
        let renamed = point.config.clone().named("something-else");
        assert_eq!(
            point_fingerprint(&point.config, &eval, &spec.workloads),
            point_fingerprint(&renamed, &eval, &spec.workloads),
        );
    }

    #[test]
    fn pick_ways_prefers_supported_geometries() {
        assert_eq!(pick_ways((5632u64 << 10) / 64), 11);
        assert_eq!(pick_ways((8192u64 << 10) / 64), 16);
        assert_eq!(pick_ways(7), 1);
    }
}
