//! Resumable design-space sweep engine (ROADMAP item 2).
//!
//! A [`SweepSpec`] is a declarative grid over the design axes the paper's
//! Section VI-E trade-off argument cares about — LLC capacity ×
//! hierarchy organisation (exclusive / inclusive / two-level) × CATCH
//! on/off × LLC latency delta × baseline-prefetcher mix — expanded by
//! [`expand`] into one [`SweepPoint`] (a full [`SystemConfig`]) per grid
//! cell. [`run_sweep`] evaluates every point over the spec's workload
//! list:
//!
//! * **Work-stealing frontier** — the (point × workload) jobs flatten
//!   onto the registry's parallel [`Runner`]; workers pull jobs from the
//!   shared atomic cursor, so a slow point never convoys the sweep.
//! * **Run-cache composition** — every simulation resolves through the
//!   process-wide [`RunCache`](crate::RunCache), so points shared with
//!   registry experiments (or an earlier sweep at the same scale) cost
//!   nothing, and `eval.sample` buys sampled fidelity per point.
//! * **Checkpoint journal** — with [`SweepOptions::checkpoint`] set,
//!   each point's aggregate metrics are appended to a line-oriented
//!   journal the moment its last workload retires; a later invocation
//!   resumes from the journal with **zero recompute** of journaled
//!   points and a final report byte-identical to an uninterrupted run
//!   (asserted by the `sweep` suite in `catch-tests`).
//! * **Pareto reports** — the report ranks the non-dominated frontier
//!   over (perf ↑, energy ↓, area ↓) using the existing
//!   [`energy`](crate::energy) and [`area`](crate::area) models.
//! * **Fidelity ladder** — when `eval.fidelity` selects a cheap rung
//!   (fast or timing-lite), the grid is *screened*: every point runs on
//!   that rung at the reduced [`EvalConfig::screened`] scale, and the
//!   OOO reference is spent only where it matters. A sparse spot-check
//!   pass (every [`SweepOptions::spot_stride`]-th point) seeds the
//!   **stratified calibration**: rung→reference scale factors per
//!   objective are fitted per grid *family* (a point's axis combination
//!   minus the capacity axis), falling back to the CATCH stratum and
//!   then the whole-grid fit where a family has no validated pair yet.
//!   Each stratum's margin is its own observed worst-case residual — no
//!   a-priori floor or cap — so a family whose rung ratios are exact
//!   gets an exact (zero-slack) mapping while an uncovered family
//!   inherits the loose cross-family bound. Frontier validation then
//!   runs in waves to a fixpoint, **refitting the calibration after
//!   every wave** as validated pairs accumulate: a wave re-runs the
//!   unvalidated points that are non-dominated under
//!   calibrated-optimistic metrics, and converges when every unvalidated
//!   point is dominated by a validated one even with its stratum's
//!   margin granted in its favour. Validated points carry reference
//!   numbers in the report and the rest are lifted through the final
//!   calibrated mapping, so every frontier row is reference-fidelity by
//!   construction; the `ladder_validation` suite asserts frontier
//!   identity on the quick grid and the `ladder` experiment measures the
//!   rung error itself. In the worst case (useless calibration) the
//!   waves simply validate every point — all-OOO cost, never a mirage
//!   frontier. Rung and OOO evaluations journal under distinct
//!   fingerprints (`eval.fidelity` and the screen scale are structural),
//!   and the journal header records the fidelity plan so a resume under
//!   a different plan is rejected by name.
//!
//! The engine is reachable from the CLI (`run_experiment sweep[:grid]`,
//! `--fidelity`, `--checkpoint`, `--points`) and from `catch-server`
//! (the same `sweep[:grid]` ids drain through the daemon's sweep
//! priority class).

mod journal;
mod pareto;

use crate::area::{hierarchy_area, AreaConstants};
use crate::energy::{energy_of, EnergyConstants};
use crate::experiments::{run_one, EvalConfig, Fidelity, Runner, GOLDEN_WORKLOADS};
use crate::metrics::try_geomean;
use crate::report::ExperimentReport;
use crate::runcache::{fp128, Fingerprint, SCHEMA_VERSION};
use crate::system::{System, SystemConfig};
use catch_cache::{CacheConfig, Level};
use catch_workloads::WorkloadSpec;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Hierarchy organisation axis of a sweep grid.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Org {
    /// Private 1 MB L2 + shared exclusive LLC (Skylake-server-like).
    Excl3,
    /// Private 256 KB L2 + shared inclusive LLC (Skylake-client-like).
    Incl3,
    /// No L2: private L1s in front of the shared LLC (CATCH two-level).
    NoL2,
}

impl Org {
    fn label(self) -> &'static str {
        match self {
            Org::Excl3 => "excl3",
            Org::Incl3 => "incl3",
            Org::NoL2 => "noL2",
        }
    }
}

/// Declarative grid over the design axes. The cross product of every
/// axis is the point set; [`expand`] materialises it in a fixed,
/// deterministic order (org-major, then LLC size, CATCH, latency,
/// prefetchers).
#[derive(Clone, Debug, PartialEq)]
pub struct SweepSpec {
    /// LLC capacities in KiB. Each must divide into whole sets for one
    /// of the supported associativities (multiples of 704 KiB always
    /// work at 11 ways; powers of two at 16/8 ways).
    pub llc_kb: Vec<u64>,
    /// Hierarchy organisations.
    pub orgs: Vec<Org>,
    /// CATCH mechanisms off/on.
    pub catch: Vec<bool>,
    /// Extra LLC hit-latency cycles (0 = nominal; the Figure 15 axis).
    pub llc_extra_latency: Vec<u64>,
    /// Baseline prefetchers off/on (the prefetcher-mix axis).
    pub baseline_prefetchers: Vec<bool>,
    /// Core count used for chip-area accounting (simulation itself is
    /// single-core; the LLC is shared, so area is reported for a chip
    /// of this size — the paper's four-core arithmetic).
    pub chip_cores: usize,
    /// Workloads each point is evaluated over (perf is the geomean IPC
    /// ratio vs the exclusive baseline across these).
    pub workloads: Vec<String>,
}

impl SweepSpec {
    /// Small grid for examples, smoke gates and tests: 12 points over
    /// two organisations, three LLC sizes and CATCH on/off.
    pub fn quick() -> Self {
        SweepSpec {
            llc_kb: vec![4224, 5632, 9728],
            orgs: vec![Org::Excl3, Org::NoL2],
            catch: vec![false, true],
            llc_extra_latency: vec![0],
            baseline_prefetchers: vec![true],
            chip_cores: 4,
            workloads: GOLDEN_WORKLOADS.iter().map(|w| w.to_string()).collect(),
        }
    }

    /// The full published grid: 600 points over ten LLC capacities,
    /// all three organisations, CATCH on/off, five LLC latency deltas
    /// and both prefetcher mixes.
    pub fn paper() -> Self {
        SweepSpec {
            llc_kb: vec![2816, 3520, 4224, 4928, 5632, 7040, 8448, 9856, 11264, 14080],
            orgs: vec![Org::Excl3, Org::Incl3, Org::NoL2],
            catch: vec![false, true],
            llc_extra_latency: vec![0, 4, 8, 16, 24],
            baseline_prefetchers: vec![true, false],
            chip_cores: 4,
            workloads: GOLDEN_WORKLOADS.iter().map(|w| w.to_string()).collect(),
        }
    }

    /// Looks a named grid preset up (`"quick"` or `"paper"`).
    pub fn by_name(name: &str) -> Option<SweepSpec> {
        match name {
            "quick" => Some(SweepSpec::quick()),
            "paper" => Some(SweepSpec::paper()),
            _ => None,
        }
    }

    /// Number of grid points the spec expands to.
    pub fn point_count(&self) -> usize {
        self.orgs.len()
            * self.llc_kb.len()
            * self.catch.len()
            * self.llc_extra_latency.len()
            * self.baseline_prefetchers.len()
    }
}

/// Resolves a protocol/CLI request id to a grid: `"sweep"` is the quick
/// grid, `"sweep:<name>"` a named preset. `None` for non-sweep ids.
pub fn by_request_id(id: &str) -> Option<SweepSpec> {
    match id {
        "sweep" => Some(SweepSpec::quick()),
        _ => id.strip_prefix("sweep:").and_then(SweepSpec::by_name),
    }
}

/// One expanded grid cell: the runnable configuration plus the capacity
/// and area facts the energy/area models need.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Systematic point label (also the report row label).
    pub name: String,
    /// Calibration stratum: the point's axis combination minus the
    /// capacity axis (`org`+`latency`+`prefetchers`+`CATCH`). Points of
    /// one family differ only in LLC capacity, which in practice leaves
    /// the rung→reference error almost perfectly correlated — the
    /// ladder's stratified calibration leans on exactly that.
    pub family: String,
    /// True when the point runs the CATCH mechanisms (the middle rung of
    /// the calibration fallback: family → CATCH stratum → whole grid).
    pub catch: bool,
    /// Full machine configuration (single-core; see
    /// [`SweepSpec::chip_cores`]).
    pub config: SystemConfig,
    /// Per-core L2 capacity (0 for two-level points).
    pub l2_bytes: u64,
    /// Shared LLC capacity.
    pub llc_bytes: u64,
    /// Chip area at [`SweepSpec::chip_cores`] cores (mm²).
    pub area_mm2: f64,
}

/// Smallest supported associativity that divides `lines` into whole
/// sets (the cache model indexes by mask for power-of-two set counts
/// and by modulo otherwise, so any divisor is valid).
fn pick_ways(lines: u64) -> usize {
    [11usize, 16, 8, 4, 2, 1]
        .into_iter()
        .find(|&w| lines.is_multiple_of(w as u64))
        .expect("1 divides everything")
}

fn build_point(
    spec: &SweepSpec,
    org: Org,
    llc_kb: u64,
    catch: bool,
    extra: u64,
    prefetchers: bool,
) -> SweepPoint {
    let llc_bytes = llc_kb << 10;
    let mut config = match org {
        Org::Excl3 => SystemConfig::baseline_exclusive(),
        Org::Incl3 => SystemConfig::baseline_inclusive(),
        Org::NoL2 => SystemConfig::baseline_exclusive().without_l2(llc_bytes),
    };
    if org != Org::NoL2 {
        let llc = &config.hierarchy.llc;
        let lines = llc_bytes / catch_trace::LINE_BYTES;
        config.hierarchy.llc =
            CacheConfig::with_repl("LLC", llc_bytes, pick_ways(lines), llc.latency, llc.repl)
                .expect("sweep axis produced an invalid LLC geometry");
    }
    config.core.baseline_prefetchers = prefetchers;
    if catch {
        config = config.with_catch();
    }
    if extra > 0 {
        config = config.with_extra_latency(Level::Llc, extra);
    }
    let mut family = String::from(org.label());
    if extra > 0 {
        family.push_str(&format!("+lat{extra}"));
    }
    if !prefetchers {
        family.push_str("-nopf");
    }
    if catch {
        family.push_str("+CATCH");
    }
    let mut name = format!("{}-{}KB", org.label(), llc_kb);
    name.push_str(
        family
            .strip_prefix(org.label())
            .expect("family leads with the org"),
    );
    let config = config.named(name.clone());
    let l2_bytes = if config.hierarchy.has_l2() {
        config.hierarchy.l2.bytes
    } else {
        0
    };
    let mut chip = config.hierarchy.clone();
    chip.cores = spec.chip_cores;
    let area_mm2 = hierarchy_area(&chip, &AreaConstants::nm14()).total_mm2();
    SweepPoint {
        name,
        family,
        catch,
        config,
        l2_bytes,
        llc_bytes,
        area_mm2,
    }
}

/// Materialises the grid in its fixed order (org-major, then LLC size,
/// CATCH, latency delta, prefetcher mix).
pub fn expand(spec: &SweepSpec) -> Vec<SweepPoint> {
    let mut points = Vec::with_capacity(spec.point_count());
    for &org in &spec.orgs {
        for &llc_kb in &spec.llc_kb {
            for &catch in &spec.catch {
                for &extra in &spec.llc_extra_latency {
                    for &pf in &spec.baseline_prefetchers {
                        points.push(build_point(spec, org, llc_kb, catch, extra, pf));
                    }
                }
            }
        }
    }
    points
}

/// Structural fingerprint of the whole sweep (grid spec + evaluation
/// scale + schema). The checkpoint journal is keyed by this: a journal
/// written for a different grid or scale can never resume a sweep. For
/// ladder sweeps the derived screen scale is part of the key, so a
/// journal written under a different screen derivation is foreign
/// rather than silently mixed.
pub fn sweep_fingerprint(spec: &SweepSpec, eval: &EvalConfig) -> Fingerprint {
    if eval.fidelity != Fidelity::Ooo {
        let screen = eval.screened();
        fp128(&format!(
            "sweep|schema{SCHEMA_VERSION}|{spec:?}|{eval:?}|screen{screen:?}"
        ))
    } else {
        fp128(&format!("sweep|schema{SCHEMA_VERSION}|{spec:?}|{eval:?}"))
    }
}

/// Structural fingerprint of one grid point under one evaluation scale
/// (the journal's per-point key). The display name is a report label and
/// is stripped, exactly like the run cache's keys.
pub fn point_fingerprint(
    config: &SystemConfig,
    eval: &EvalConfig,
    workloads: &[String],
) -> Fingerprint {
    let mut anon = config.clone();
    anon.name = String::new();
    fp128(&format!(
        "sweeppoint|schema{SCHEMA_VERSION}|{anon:?}|{eval:?}|{workloads:?}"
    ))
}

/// Default ladder-mode spot-check stride: one OOO reference run per
/// this many grid points (every grid gets at least the first point as a
/// seed). Spots only *seed* the calibration — the wave loop refits it
/// from every validated pair as validation accumulates, and the waves
/// themselves land one pair per surviving family — so extra spots
/// mostly duplicate reference runs the waves would spend better;
/// empirically a denser spot set *raises* the total validation count.
pub const DEFAULT_SPOT_STRIDE: usize = 1000;

/// One fitted calibration stratum: scale factors taking rung metrics
/// onto the reference scale (geomean of the per-pair ratios) plus that
/// stratum's observed worst-case deviation after rescaling. The margins
/// are *empirical* — a stratum whose pairs rescale exactly earns a
/// zero-slack mapping (which is what lets a validated point prune its
/// perf-tied capacity siblings), while a noisy stratum honestly carries
/// a wide one.
#[derive(Copy, Clone, Debug)]
struct Stratum {
    /// Multiplier taking rung perf onto the reference scale.
    s_perf: f64,
    /// Same for energy (absorbs the screen's shorter measured region).
    s_energy: f64,
    /// Worst perf deviation (fraction) of the stratum's pairs after
    /// rescaling.
    m_perf: f64,
    /// Worst energy deviation (fraction) after rescaling.
    m_energy: f64,
}

fn fit_stratum(pairs: &[(PointMetrics, PointMetrics)]) -> Stratum {
    let geomean_ratio = |f: fn(&PointMetrics) -> f64| -> f64 {
        let sum: f64 = pairs
            .iter()
            .map(|(rung, refm)| (f(refm) / f(rung)).ln())
            .sum();
        (sum / pairs.len() as f64).exp()
    };
    let s_perf = geomean_ratio(|m| m.perf);
    let s_energy = geomean_ratio(|m| m.energy_uj);
    let worst = |f: fn(&PointMetrics) -> f64, s: f64| {
        pairs
            .iter()
            .map(|(rung, refm)| (f(refm) / (f(rung) * s) - 1.0).abs())
            .fold(0.0f64, f64::max)
    };
    Stratum {
        s_perf,
        s_energy,
        m_perf: worst(|m| m.perf, s_perf),
        m_energy: worst(|m| m.energy_uj, s_energy),
    }
}

/// Stratified rung→reference calibration, fitted from every validated
/// (rung, reference) pair and refitted after each validation wave. A
/// point resolves its stratum hierarchically: its grid *family*
/// ([`SweepPoint::family`]) when that family has a validated pair, else
/// its CATCH stratum, else the whole-grid fit. `None` until the first
/// pair exists (then nothing can be pruned and the first wave simply
/// validates the rung-frontier).
struct Calibration {
    families: crate::FxHashMap<String, Stratum>,
    catch: [Option<Stratum>; 2],
    global: Option<Stratum>,
}

impl Calibration {
    /// Fits all strata from the validated pair set. `pair(i)` yields the
    /// (rung, reference) metrics of validated point `i`.
    fn fit(
        points: &[SweepPoint],
        pair_idx: &[usize],
        pair: impl Fn(usize) -> (PointMetrics, PointMetrics),
    ) -> Self {
        let usable: Vec<usize> = pair_idx
            .iter()
            .copied()
            .filter(|&i| {
                let (rung, refm) = pair(i);
                rung.perf.is_finite()
                    && refm.perf.is_finite()
                    && rung.perf > 0.0
                    && refm.perf > 0.0
                    && rung.energy_uj > 0.0
                    && refm.energy_uj > 0.0
            })
            .collect();
        let collect = |idx: &[usize]| -> Vec<(PointMetrics, PointMetrics)> {
            idx.iter().map(|&i| pair(i)).collect()
        };
        let mut families = crate::FxHashMap::default();
        let mut by_family: crate::FxHashMap<&str, Vec<usize>> = crate::FxHashMap::default();
        for &i in &usable {
            by_family
                .entry(points[i].family.as_str())
                .or_default()
                .push(i);
        }
        for (fam, idx) in by_family {
            families.insert(fam.to_string(), fit_stratum(&collect(&idx)));
        }
        let catch = [false, true].map(|flag| {
            let idx: Vec<usize> = usable
                .iter()
                .copied()
                .filter(|&i| points[i].catch == flag)
                .collect();
            (!idx.is_empty()).then(|| fit_stratum(&collect(&idx)))
        });
        let global = (!usable.is_empty()).then(|| fit_stratum(&collect(&usable)));
        Calibration {
            families,
            catch,
            global,
        }
    }

    /// The stratum point `i` calibrates through (family → CATCH stratum
    /// → whole grid), or `None` when no pair exists at all.
    fn stratum(&self, p: &SweepPoint) -> Option<Stratum> {
        self.families
            .get(&p.family)
            .copied()
            .or(self.catch[p.catch as usize])
            .or(self.global)
    }

    /// Rung metrics mapped onto the reference scale (identity before the
    /// first calibration pair exists).
    fn mapped(&self, p: &SweepPoint, m: &PointMetrics) -> PointMetrics {
        let s = self.stratum(p).unwrap_or(Stratum {
            s_perf: 1.0,
            s_energy: 1.0,
            m_perf: 0.0,
            m_energy: 0.0,
        });
        PointMetrics {
            perf: m.perf * s.s_perf,
            energy_uj: m.energy_uj * s.s_energy,
            area_mm2: m.area_mm2,
        }
    }

    /// Mapped metrics with the stratum's residual margins granted in the
    /// point's favour — what a point must present to escape pruning.
    /// `None` when no stratum applies yet (nothing may be pruned).
    fn optimistic(&self, p: &SweepPoint, m: &PointMetrics) -> Option<PointMetrics> {
        let s = self.stratum(p)?;
        Some(PointMetrics {
            perf: m.perf * s.s_perf * (1.0 + s.m_perf),
            energy_uj: m.energy_uj * s.s_energy * (1.0 - s.m_energy),
            area_mm2: m.area_mm2,
        })
    }
}

/// Execution knobs for one [`run_sweep`] invocation.
#[derive(Clone, Debug, Default)]
pub struct SweepOptions {
    /// Worker count (`None` defers to [`Runner::from_env`]).
    pub jobs: Option<usize>,
    /// Checkpoint journal path. When set, completed points are appended
    /// as they finish and already-journaled points are never recomputed.
    pub checkpoint: Option<PathBuf>,
    /// Evaluate at most this many *new* points this invocation, leaving
    /// the rest pending in the journal (the cooperative interruption
    /// hook behind resumability tests and budgeted sweeps).
    pub limit: Option<usize>,
    /// Ladder mode only: OOO spot-check stride (`None` =
    /// [`DEFAULT_SPOT_STRIDE`]). Like `limit`, this is a coverage knob,
    /// not part of the sweep's structural fingerprint — changing it
    /// only changes how many extra validations the journal accumulates.
    pub spot_stride: Option<usize>,
}

/// Aggregate metrics of one completed point.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct PointMetrics {
    /// Geomean IPC ratio vs the exclusive baseline (NaN when the ratio
    /// set was degenerate — see [`try_geomean`]).
    pub perf: f64,
    /// Total energy over the workload list (µJ).
    pub energy_uj: f64,
    /// Chip area (mm²).
    pub area_mm2: f64,
}

/// What one [`run_sweep`] invocation did.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// The Pareto report over every completed point.
    pub report: ExperimentReport,
    /// Grid size.
    pub total: usize,
    /// Points restored from the checkpoint journal (zero recompute).
    pub resumed: usize,
    /// Points evaluated by this invocation.
    pub computed: usize,
    /// Points still pending (non-zero only under [`SweepOptions::limit`]).
    pub remaining: usize,
    /// Completed points whose perf aggregate was degenerate (excluded
    /// from the frontier).
    pub degenerate: usize,
    /// Ladder mode: points whose reported metrics come from an OOO
    /// reference run (spot checks + frontier candidates). Zero for
    /// plain OOO sweeps.
    pub validated: usize,
}

// Per-point accumulation slot: a retired-workload counter plus the
// per-workload (ipc, energy) measurements awaiting aggregation.
type PointSlot = (AtomicUsize, Mutex<Vec<Option<(f64, f64)>>>);

/// Runs (or resumes) a sweep. See the module docs for the execution
/// model; the returned report is deterministic — byte-identical across
/// worker counts, cache modes and interrupt/resume splits.
///
/// # Errors
///
/// Fails on an empty grid, an unknown workload name, or a checkpoint
/// journal that is unreadable or was written for a different sweep.
pub fn run_sweep(
    spec: &SweepSpec,
    eval: &EvalConfig,
    opts: &SweepOptions,
) -> Result<SweepOutcome, String> {
    let points = expand(spec);
    let total = points.len();
    if total == 0 {
        return Err("sweep grid is empty (every axis needs at least one value)".to_string());
    }
    if spec.workloads.is_empty() {
        return Err("sweep workload list is empty".to_string());
    }
    let specs: Vec<WorkloadSpec> = spec
        .workloads
        .iter()
        .map(|name| {
            catch_workloads::suite::by_name(name)
                .map_err(|_| format!("unknown sweep workload '{name}'"))
        })
        .collect::<Result<_, _>>()?;
    let runner = match opts.jobs {
        Some(n) => Runner::with_jobs(n),
        None => Runner::from_env()?,
    };

    let ladder = eval.fidelity != Fidelity::Ooo;
    let ooo_eval = eval.with_fidelity(Fidelity::Ooo);
    // Ladder grids are *screened*: the rung pass runs at the reduced
    // [`EvalConfig::screened`] scale (identity for small evals), and the
    // spot checks calibrate the screen against the OOO reference before
    // any frontier decision is made. The reference validations always
    // run at the caller's full scale.
    let rung_eval = if ladder { eval.screened() } else { *eval };

    let sweep_fp = sweep_fingerprint(spec, eval);
    let point_fps: Vec<Fingerprint> = points
        .iter()
        .map(|p| point_fingerprint(&p.config, &rung_eval, &spec.workloads))
        .collect();
    // In ladder mode each point has a second structural key for its OOO
    // validation run — rung and reference results never share a journal
    // line or a cache shard.
    let ooo_fps: Vec<Fingerprint> = if ladder {
        points
            .iter()
            .map(|p| point_fingerprint(&p.config, &ooo_eval, &spec.workloads))
            .collect()
    } else {
        Vec::new()
    };

    let state = match &opts.checkpoint {
        Some(path) => journal::load(path, sweep_fp, eval.fidelity.label())?,
        None => journal::State::default(),
    };

    // Per-workload baseline IPCs: restored bit-exactly from the journal
    // header when resuming, computed through the run cache otherwise.
    let restore_baseline = |stored: &Vec<(String, f64)>| -> Result<Vec<f64>, String> {
        spec.workloads
            .iter()
            .map(|w| {
                stored
                    .iter()
                    .find(|(name, _)| name == w)
                    .map(|(_, ipc)| *ipc)
                    .ok_or_else(|| format!("checkpoint header lacks baseline IPC for '{w}'"))
            })
            .collect()
    };
    // The rung baseline runs at the same (screened) scale as the rung
    // grid pass, so per-workload ratios cancel the screen's systematic
    // scale bias instead of inheriting it.
    let baseline: Vec<f64> = match &state.baseline {
        Some(stored) => restore_baseline(stored)?,
        None => {
            let base = System::new(SystemConfig::baseline_exclusive());
            runner.run(&specs, |_, w| run_one(&base, &rung_eval, w).ipc())
        }
    };
    // Validation runs aggregate against OOO denominators, so ladder
    // perf ratios are comparable across rungs of the same point.
    let baseline_ooo: Option<Vec<f64>> = if ladder {
        Some(match &state.baseline_ooo {
            Some(stored) => restore_baseline(stored)?,
            None => {
                let base = System::new(SystemConfig::baseline_exclusive());
                runner.run(&specs, |_, w| run_one(&base, &ooo_eval, w).ipc())
            }
        })
    } else {
        None
    };

    let writer = match &opts.checkpoint {
        Some(path) => Some(journal::Writer::open(
            path,
            sweep_fp,
            total,
            state.baseline.is_none().then(|| {
                let named = |ipcs: &[f64]| {
                    spec.workloads
                        .iter()
                        .cloned()
                        .zip(ipcs.iter().copied())
                        .collect::<Vec<_>>()
                };
                journal::HeaderInfo {
                    fidelity: eval.fidelity.label(),
                    baseline: named(&baseline),
                    baseline_ooo: baseline_ooo.as_deref().map(named),
                }
            }),
        )?),
        None => None,
    };

    // Split the grid into journaled and pending points; honour the
    // cooperative interruption limit on the pending side.
    let mut metrics: Vec<Option<PointMetrics>> = vec![None; total];
    let mut resumed = 0usize;
    for (i, fp) in point_fps.iter().enumerate() {
        if let Some(m) = state.points.get(&fp.0) {
            metrics[i] = Some(*m);
            resumed += 1;
        }
    }
    let pending: Vec<usize> = (0..total).filter(|&i| metrics[i].is_none()).collect();
    let scheduled: Vec<usize> = match opts.limit {
        Some(k) => pending.iter().copied().take(k).collect(),
        None => pending.clone(),
    };
    let remaining = pending.len() - scheduled.len();

    // Evaluate one index set at one fidelity: flatten (point × workload)
    // jobs point-major onto the work-stealing Runner. The worker that
    // retires a point's last workload aggregates and journals it
    // immediately, so an interrupted process loses at most its in-flight
    // points. The rung pass and the ladder's OOO validation passes are
    // the same machinery with a different eval/baseline/fingerprint set.
    let constants = EnergyConstants::paper_like();
    let evaluate = |indices: &[usize],
                    eval: &EvalConfig,
                    baseline: &[f64],
                    fps: &[Fingerprint]|
     -> Vec<(usize, PointMetrics)> {
        let systems: Vec<System> = indices
            .iter()
            .map(|&i| System::new(points[i].config.clone()))
            .collect();
        let wl = specs.len();
        let jobs: Vec<(usize, usize, usize)> = indices
            .iter()
            .enumerate()
            .flat_map(|(s, &i)| (0..wl).map(move |w| (s, i, w)))
            .collect();
        let slots: Vec<PointSlot> = indices
            .iter()
            .map(|_| (AtomicUsize::new(0), Mutex::new(vec![None; wl])))
            .collect();
        let computed: Mutex<Vec<(usize, PointMetrics)>> = Mutex::new(Vec::new());

        runner.run(&jobs, |_, &(s, i, w)| {
            let point = &points[i];
            let result = run_one(&systems[s], eval, &specs[w]);
            let energy = energy_of(&result, &constants, point.l2_bytes, point.llc_bytes).total_uj();
            {
                let mut slot = slots[s].1.lock().expect("sweep slot poisoned");
                slot[w] = Some((result.ipc(), energy));
            }
            let done = slots[s].0.fetch_add(1, Ordering::AcqRel) + 1;
            if done == wl {
                // Last workload of this point: aggregate in fixed
                // workload order (determinism) and journal before
                // anything else can interrupt.
                let slot = slots[s].1.lock().expect("sweep slot poisoned");
                let ratios: Vec<f64> = slot
                    .iter()
                    .zip(baseline)
                    .map(|(cell, &base)| cell.expect("all workloads retired").0 / base)
                    .collect();
                let energy_uj: f64 = slot
                    .iter()
                    .map(|cell| cell.expect("all workloads retired").1)
                    .sum();
                let perf = match try_geomean(&ratios) {
                    Some(p) => p,
                    None => {
                        eprintln!(
                            "warning: sweep point '{}' has a degenerate perf aggregate \
                             (empty or non-positive ratio set); excluded from the frontier",
                            point.name
                        );
                        f64::NAN
                    }
                };
                let m = PointMetrics {
                    perf,
                    energy_uj,
                    area_mm2: point.area_mm2,
                };
                if let Some(w) = &writer {
                    w.append(fps[i], &point.name, m);
                }
                computed
                    .lock()
                    .expect("sweep results poisoned")
                    .push((i, m));
            }
        });

        computed.into_inner().expect("sweep results poisoned")
    };

    let rung_computed = evaluate(&scheduled, &rung_eval, &baseline, &point_fps);
    let computed_count = rung_computed.len();
    for (i, m) in rung_computed {
        metrics[i] = Some(m);
    }

    // Ladder mode: spend the OOO reference where it matters.
    //
    // 1. Periodic spot checks re-run every `spot_stride`-th point at the
    //    reference; the (rung, reference) pairs *calibrate* the screen —
    //    a fitted scale factor per objective plus a residual margin.
    // 2. Frontier validation runs in waves to a fixpoint: each wave
    //    re-runs exactly the unvalidated points that are non-dominated
    //    under calibrated-optimistic metrics, and the reference numbers
    //    it brings back prune the next wave. At the fixpoint every
    //    unvalidated point is dominated by a validated one even with the
    //    margin granted in its favour, so — provided the rung's residual
    //    error stays below the margin — no true frontier member can be
    //    lost, and the frontier table is reference-fidelity only.
    // 3. If the calibration residual blows through the cap, the screen
    //    is not trusted and every completed point is validated (all-OOO
    //    cost, never a mirage frontier).
    let mut validated = 0usize;
    if ladder {
        let baseline_ooo = baseline_ooo.as_deref().expect("ladder has an OOO baseline");
        let mut ooo_metrics: Vec<Option<PointMetrics>> = vec![None; total];
        for (i, fp) in ooo_fps.iter().enumerate() {
            if let Some(m) = state.points.get(&fp.0) {
                ooo_metrics[i] = Some(*m);
            }
        }
        let stride = opts.spot_stride.unwrap_or(DEFAULT_SPOT_STRIDE).max(1);
        let spot: Vec<usize> = (0..total)
            .step_by(stride)
            .filter(|&i| metrics[i].is_some() && ooo_metrics[i].is_none())
            .collect();
        for (i, m) in evaluate(&spot, &ooo_eval, baseline_ooo, &ooo_fps) {
            ooo_metrics[i] = Some(m);
        }

        // The calibration refits after every wave from all validated
        // pairs; the loop below therefore converges on *both* fronts at
        // once — pruning what the current fit can prove dominated and
        // tightening the fit with what it cannot.
        let pair_indices = |ooo_metrics: &[Option<PointMetrics>]| -> Vec<usize> {
            (0..total)
                .filter(|&i| metrics[i].is_some() && ooo_metrics[i].is_some())
                .collect()
        };
        let refit = |ooo_metrics: &[Option<PointMetrics>]| -> Calibration {
            Calibration::fit(&points, &pair_indices(ooo_metrics), |i| {
                (
                    metrics[i].expect("pair has rung metrics"),
                    ooo_metrics[i].expect("pair has reference metrics"),
                )
            })
        };

        let mut cal = refit(&ooo_metrics);
        let mut waves = 0usize;
        loop {
            let optimistic = |i: usize, cal: &Calibration| -> Option<PointMetrics> {
                cal.optimistic(&points[i], &metrics[i].expect("candidate is complete"))
            };
            let candidates: Vec<usize> = (0..total)
                .filter(|&i| {
                    let Some(rung) = metrics[i] else { return false };
                    if ooo_metrics[i].is_some() || !rung.perf.is_finite() {
                        return false;
                    }
                    let Some(opt) = optimistic(i, &cal) else {
                        // No calibration pair exists yet: nothing can be
                        // pruned, everything stays a candidate.
                        return true;
                    };
                    !ooo_metrics
                        .iter()
                        .flatten()
                        .any(|v| v.perf.is_finite() && pareto::dominates(v, &opt))
                })
                .collect();
            if candidates.is_empty() {
                break;
            }
            // One wave: the candidates maximal among themselves under
            // their optimistic metrics — the frontier of the unvalidated
            // survivors. (Before the first pair exists the optimistic
            // mapping is identity-with-zero-margin, i.e. raw rung
            // metrics, which ranks the first wave correctly enough to
            // seed the calibration.)
            let opt_or_raw = |i: usize| -> PointMetrics {
                optimistic(i, &cal).unwrap_or_else(|| metrics[i].expect("candidate is complete"))
            };
            let maximal: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&i| {
                    let opt_i = opt_or_raw(i);
                    !candidates
                        .iter()
                        .any(|&j| j != i && pareto::dominates(&opt_or_raw(j), &opt_i))
                })
                .collect();
            let wave = if maximal.is_empty() {
                candidates
            } else {
                maximal
            };
            for (i, m) in evaluate(&wave, &ooo_eval, baseline_ooo, &ooo_fps) {
                ooo_metrics[i] = Some(m);
            }
            waves += 1;
            cal = refit(&ooo_metrics);
        }

        if let Some(g) = cal.global {
            eprintln!(
                "sweep calibration: {} pairs over {} families in {} waves; \
                 global s_perf {:.4} (±{:.2}%), s_energy {:.4} (±{:.2}%)",
                pair_indices(&ooo_metrics).len(),
                cal.families.len(),
                waves,
                g.s_perf,
                g.m_perf * 100.0,
                g.s_energy,
                g.m_energy * 100.0
            );
        }

        for i in 0..total {
            if metrics[i].is_none() {
                continue;
            }
            if ooo_metrics[i].is_some() {
                metrics[i] = ooo_metrics[i];
                validated += 1;
            } else {
                // Screen-scale numbers never reach the report raw: the
                // final calibration lifts them onto the reference scale
                // (and the fixpoint above guarantees they stay off the
                // frontier).
                metrics[i] = metrics[i].map(|m| cal.mapped(&points[i], &m));
            }
        }
    }

    let degenerate = metrics
        .iter()
        .flatten()
        .filter(|m| !m.perf.is_finite())
        .count();

    let report = pareto::report(
        spec,
        &points,
        &metrics,
        remaining,
        degenerate,
        ladder.then(|| (eval.fidelity.label(), validated)),
    );
    Ok(SweepOutcome {
        report,
        total,
        resumed,
        computed: computed_count,
        remaining,
        degenerate,
        validated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_expands_to_unique_valid_points() {
        let spec = SweepSpec::quick();
        let points = expand(&spec);
        assert_eq!(points.len(), spec.point_count());
        assert_eq!(points.len(), 12);
        let eval = EvalConfig::quick();
        let mut fps = Vec::new();
        for p in &points {
            // Every point must be a buildable machine...
            assert!(p.config.hierarchy.llc.sets().is_ok(), "{}", p.name);
            assert!(p.area_mm2 > 0.0);
            // ...with a unique structural key.
            let fp = point_fingerprint(&p.config, &eval, &spec.workloads);
            assert!(!fps.contains(&fp), "duplicate point {}", p.name);
            fps.push(fp);
        }
    }

    #[test]
    fn paper_grid_reaches_five_hundred_points() {
        let spec = SweepSpec::paper();
        assert!(spec.point_count() >= 500, "{}", spec.point_count());
        let points = expand(&spec);
        for p in &points {
            assert!(p.config.hierarchy.llc.sets().is_ok(), "{}", p.name);
        }
    }

    #[test]
    fn request_ids_resolve_presets() {
        assert_eq!(by_request_id("sweep"), Some(SweepSpec::quick()));
        assert_eq!(by_request_id("sweep:quick"), Some(SweepSpec::quick()));
        assert_eq!(by_request_id("sweep:paper"), Some(SweepSpec::paper()));
        assert_eq!(by_request_id("sweep:bogus"), None);
        assert_eq!(by_request_id("fig10"), None);
    }

    #[test]
    fn sweep_fingerprint_covers_grid_and_scale() {
        let eval = EvalConfig::quick();
        let reference = sweep_fingerprint(&SweepSpec::quick(), &eval);
        let mut grown = SweepSpec::quick();
        grown.llc_kb.push(11264);
        assert_ne!(sweep_fingerprint(&grown, &eval), reference);
        let mut bigger = eval;
        bigger.ops += 1;
        assert_ne!(sweep_fingerprint(&SweepSpec::quick(), &bigger), reference);
    }

    #[test]
    fn point_fingerprint_ignores_display_name() {
        let spec = SweepSpec::quick();
        let eval = EvalConfig::quick();
        let point = expand(&spec).remove(0);
        let renamed = point.config.clone().named("something-else");
        assert_eq!(
            point_fingerprint(&point.config, &eval, &spec.workloads),
            point_fingerprint(&renamed, &eval, &spec.workloads),
        );
    }

    #[test]
    fn pick_ways_prefers_supported_geometries() {
        assert_eq!(pick_ways((5632u64 << 10) / 64), 11);
        assert_eq!(pick_ways((8192u64 << 10) / 64), 16);
        assert_eq!(pick_ways(7), 1);
    }
}
