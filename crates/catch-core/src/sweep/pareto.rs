//! Pareto frontier extraction and report assembly for sweeps.
//!
//! A point is **dominated** when some other completed point is at least
//! as good on every objective — perf (higher better), energy (lower
//! better), area (lower better) — and strictly better on one. The
//! frontier is everything that survives; it is the Section VI-E
//! trade-off argument run over the whole grid instead of hand-picked
//! configurations. Points whose perf aggregate was degenerate (NaN from
//! [`try_geomean`](crate::metrics::try_geomean)) are reported in the
//! coverage table but can neither dominate nor join the frontier.
//!
//! The report is a pure function of the completed metrics in grid
//! order, so an interrupted-then-resumed sweep renders byte-identically
//! to an uninterrupted one.

use super::{PointMetrics, SweepPoint, SweepSpec};
use crate::report::{ExperimentReport, Table, ValueKind};
use std::cmp::Ordering;

/// Grids up to this many points get an exhaustive per-point table in
/// addition to the frontier (quick grids read well in full; the paper
/// grid would drown the report).
const FULL_TABLE_LIMIT: usize = 32;

pub(super) fn dominates(a: &PointMetrics, b: &PointMetrics) -> bool {
    a.perf >= b.perf
        && a.energy_uj <= b.energy_uj
        && a.area_mm2 <= b.area_mm2
        && (a.perf > b.perf || a.energy_uj < b.energy_uj || a.area_mm2 < b.area_mm2)
}

/// Indices (into `completed`) of the non-dominated, non-degenerate
/// points, sorted best-perf first (ties: lower energy, then name).
fn frontier_of(completed: &[(&str, PointMetrics)]) -> Vec<usize> {
    let mut frontier: Vec<usize> = (0..completed.len())
        .filter(|&i| {
            let (_, m) = completed[i];
            m.perf.is_finite()
                && completed.iter().enumerate().all(|(j, (_, other))| {
                    j == i || !other.perf.is_finite() || !dominates(other, &m)
                })
        })
        .collect();
    frontier.sort_by(|&a, &b| {
        let (na, ma) = completed[a];
        let (nb, mb) = completed[b];
        mb.perf
            .partial_cmp(&ma.perf)
            .unwrap_or(Ordering::Equal)
            .then(
                ma.energy_uj
                    .partial_cmp(&mb.energy_uj)
                    .unwrap_or(Ordering::Equal),
            )
            .then_with(|| na.cmp(nb))
    });
    frontier
}

fn metrics_row(m: &PointMetrics) -> Vec<f64> {
    let per_area = if m.area_mm2 > 0.0 {
        m.perf / m.area_mm2
    } else {
        f64::NAN
    };
    vec![m.perf, m.energy_uj, m.area_mm2, per_area]
}

fn metric_columns() -> Vec<String> {
    ["perf (x)", "energy (uJ)", "area (mm2)", "perf/mm2"]
        .map(String::from)
        .to_vec()
}

/// Assembles the sweep report from the completed metrics (in grid
/// order; `None` = still pending under a point limit). In ladder mode
/// `validated` carries (rung label, OOO-validated point count) and the
/// metrics slice already holds OOO numbers for every validated point,
/// so the frontier table renders from reference-fidelity data only.
pub(super) fn report(
    spec: &SweepSpec,
    points: &[SweepPoint],
    metrics: &[Option<PointMetrics>],
    remaining: usize,
    degenerate: usize,
    validated: Option<(&str, usize)>,
) -> ExperimentReport {
    let completed: Vec<(&str, PointMetrics)> = points
        .iter()
        .zip(metrics)
        .filter_map(|(p, m)| m.map(|m| (p.name.as_str(), m)))
        .collect();
    let frontier = frontier_of(&completed);

    let mut tables = Vec::new();
    let mut t = Table::new(
        "Pareto frontier (perf ↑, energy ↓, area ↓)",
        metric_columns(),
        ValueKind::Precise,
    );
    for &i in &frontier {
        let (name, m) = completed[i];
        t.push_row(name, metrics_row(&m));
    }
    tables.push(t);

    if points.len() <= FULL_TABLE_LIMIT {
        let mut t = Table::new("All completed points", metric_columns(), ValueKind::Precise);
        for (name, m) in &completed {
            t.push_row(*name, metrics_row(m));
        }
        tables.push(t);
    }

    let mut t = Table::new("Coverage", vec!["count".to_string()], ValueKind::Raw);
    t.push_row("grid points", vec![points.len() as f64]);
    t.push_row("completed", vec![completed.len() as f64]);
    t.push_row("frontier", vec![frontier.len() as f64]);
    t.push_row(
        "dominated",
        vec![(completed.len() - frontier.len() - degenerate) as f64],
    );
    t.push_row("degenerate", vec![degenerate as f64]);
    if let Some((_, n)) = validated {
        t.push_row("ooo-validated", vec![n as f64]);
    }
    tables.push(t);

    let mut notes = vec![
        format!(
            "perf = geomean IPC ratio vs the exclusive baseline over {} workloads; \
             energy = total dynamic+static energy over the same runs (paper-like \
             constants); area = {}-core chip cache+coherence area at 14nm.",
            spec.workloads.len(),
            spec.chip_cores
        ),
        "A point is on the frontier iff no completed point is at least as good on \
         all three objectives and strictly better on one."
            .to_string(),
    ];
    if remaining > 0 {
        notes.push(format!(
            "partial sweep: {} of {} points evaluated; rerun with the same \
             checkpoint to complete the grid.",
            completed.len(),
            points.len()
        ));
    }
    if let Some((rung, n)) = validated {
        notes.push(format!(
            "fidelity ladder: grid screened on the '{rung}' rung with {n} points \
             re-run at the OOO reference (stratified calibration refit each wave, \
             frontier validation to a fixpoint); all frontier rows above are \
             OOO-measured and unvalidated rows are calibration-mapped."
        ));
    }

    ExperimentReport {
        id: "sweep".to_string(),
        title: format!("Design-space sweep ({} points)", points.len()),
        tables,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(perf: f64, energy_uj: f64, area_mm2: f64) -> PointMetrics {
        PointMetrics {
            perf,
            energy_uj,
            area_mm2,
        }
    }

    #[test]
    fn frontier_keeps_only_non_dominated_points() {
        let completed = vec![
            ("fast-big", m(1.2, 100.0, 30.0)),
            ("dominated", m(1.0, 120.0, 30.0)), // beaten by fast-big on all
            ("frugal", m(0.9, 60.0, 20.0)),     // trades perf for energy+area
            ("broken", m(f64::NAN, 10.0, 1.0)), // degenerate: excluded
        ];
        let f = frontier_of(&completed);
        let names: Vec<&str> = f.iter().map(|&i| completed[i].0).collect();
        assert_eq!(names, vec!["fast-big", "frugal"]);
    }

    #[test]
    fn equal_points_all_survive() {
        // Mutual weak domination without strict improvement: no kill.
        let completed = vec![("a", m(1.0, 50.0, 10.0)), ("b", m(1.0, 50.0, 10.0))];
        assert_eq!(frontier_of(&completed).len(), 2);
    }

    #[test]
    fn frontier_orders_by_perf_then_energy() {
        let completed = vec![
            ("slow-frugal", m(0.8, 10.0, 5.0)),
            ("fast", m(1.5, 90.0, 9.0)),
            ("mid", m(1.1, 50.0, 7.0)),
        ];
        let f = frontier_of(&completed);
        let names: Vec<&str> = f.iter().map(|&i| completed[i].0).collect();
        assert_eq!(names, vec!["fast", "mid", "slow-frugal"]);
    }
}
