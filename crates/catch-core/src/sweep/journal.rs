//! Checkpoint journal: crash-safe resumability for sweeps.
//!
//! The journal is a line-oriented file in the workspace's restricted
//! JSON subset (objects / strings / unsigned integers — the same
//! grammar [`crate::report::json::parse`] reads for the run cache).
//! Floats are stored as their IEEE-754 bit patterns
//! ([`f64::to_bits`]) so every metric round-trips **bit-exactly** —
//! the property behind the byte-identical-resume guarantee.
//!
//! Line 1 is the header, written once when a sweep first touches the
//! file:
//!
//! ```json
//! {"sweep": "<fp hex>", "schema": 1, "points": 12, "fidelity": "lite",
//!  "baseline": {"xalanc_like": 4606281698874543104, ...},
//!  "baseline_ooo": {"xalanc_like": ...}}
//! ```
//!
//! `sweep` is the [`sweep_fingerprint`](super::sweep_fingerprint) of
//! (grid spec, eval, schema): a journal can only ever resume the exact
//! sweep that wrote it. `fidelity` records the sweep's fidelity plan
//! explicitly; it is checked *before* the fingerprint so a resume after
//! a fidelity-config change is rejected with a diagnostic naming the
//! plan change rather than the generic foreign-sweep error (the
//! fingerprint would catch it too — `eval.fidelity` is structural —
//! but "grid changed" would mislead). `baseline` pins the per-workload
//! baseline IPCs so a resumed run aggregates against the same
//! denominators without recomputation; `baseline_ooo` rides along in
//! ladder mode, pinning the OOO-reference denominators the spot-check
//! and frontier-revalidation points aggregate against. Every later line
//! is one completed point, appended by the worker that retires its last
//! workload (in ladder mode, rung and OOO evaluations of the same grid
//! cell are separate lines under their own fingerprints — rungs never
//! mix):
//!
//! ```json
//! {"point": "<fp hex>", "name": "excl3-5632KB", "perf": ...,
//!  "energy": ..., "area": ...}
//! ```
//!
//! Appends are serialized by a mutex and flushed per line, so a killed
//! process loses at most its in-flight points; a torn final line from a
//! hard kill fails to parse and is skipped on load (that point simply
//! reruns). Unknown but well-formed lines are skipped too, which keeps
//! old journals readable if later schemas add line kinds.

use super::PointMetrics;
use crate::report::json;
use crate::runcache::{Fingerprint, SCHEMA_VERSION};
use crate::FxHashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write as _};
use std::path::Path;
use std::sync::Mutex;

/// Everything a prior invocation left in the journal.
#[derive(Debug, Default)]
pub(super) struct State {
    /// Baseline per-workload IPCs from the header, if one was written.
    pub baseline: Option<Vec<(String, f64)>>,
    /// OOO-reference baseline IPCs (ladder-mode headers only).
    pub baseline_ooo: Option<Vec<(String, f64)>>,
    /// Completed points keyed by point fingerprint.
    pub points: FxHashMap<u128, PointMetrics>,
}

/// Header payload for a fresh journal (see the module docs).
pub(super) struct HeaderInfo {
    /// Fidelity plan label ([`Fidelity::label`](crate::experiments::Fidelity::label)).
    pub fidelity: &'static str,
    /// Per-workload rung baseline IPCs.
    pub baseline: Vec<(String, f64)>,
    /// Per-workload OOO baseline IPCs (ladder mode only).
    pub baseline_ooo: Option<Vec<(String, f64)>>,
}

fn parse_hex_fp(s: &str) -> Option<u128> {
    (s.len() == 32).then(|| u128::from_str_radix(s, 16).ok())?
}

fn field_f64(v: &json::JsonValue, key: &str) -> Option<f64> {
    Some(f64::from_bits(v.get(key)?.as_num()?))
}

/// Reads a journal back. A missing file is an empty state (fresh
/// sweep); a present file must lead with a header whose fidelity plan,
/// `sweep` fingerprint and schema match, otherwise the checkpoint
/// belongs to a different sweep and resuming would silently mix grids
/// or rungs. The fidelity check runs first so a plan change gets its
/// own diagnostic (see the module docs).
pub(super) fn load(path: &Path, sweep_fp: Fingerprint, fidelity: &str) -> Result<State, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(State::default()),
        Err(e) => return Err(format!("cannot read checkpoint {}: {e}", path.display())),
    };
    let mut state = State::default();
    let mut saw_header = false;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Ok(value) = json::parse(line) else {
            // Torn tail from a hard kill: drop the line, rerun the point.
            continue;
        };
        if let Some(fp) = value.get("sweep").and_then(|v| v.as_str()) {
            if !saw_header {
                // Only the first header is authoritative. Fidelity
                // first: the fingerprint covers it too, but the generic
                // foreign-sweep error would point at the grid.
                if let Some(plan) = value.get("fidelity").and_then(|v| v.as_str()) {
                    if plan != fidelity {
                        return Err(format!(
                            "checkpoint {} was written under fidelity plan '{plan}' \
                             but this sweep runs '{fidelity}'; a resumed sweep must \
                             keep its fidelity configuration — delete the checkpoint \
                             or pick another path",
                            path.display()
                        ));
                    }
                }
                if parse_hex_fp(fp) != Some(sweep_fp.0) {
                    return Err(format!(
                        "checkpoint {} was written by a different sweep \
                         (grid, eval scale or schema changed); delete it or \
                         pick another path",
                        path.display()
                    ));
                }
                if value.get("schema").and_then(|v| v.as_num()) != Some(SCHEMA_VERSION) {
                    return Err(format!(
                        "checkpoint {} has an incompatible schema",
                        path.display()
                    ));
                }
                let baseline = value
                    .get("baseline")
                    .and_then(|v| v.as_obj())
                    .ok_or_else(|| {
                        format!("checkpoint {} header lacks baselines", path.display())
                    })?;
                state.baseline = Some(
                    baseline
                        .iter()
                        .filter_map(|(k, v)| Some((k.clone(), f64::from_bits(v.as_num()?))))
                        .collect(),
                );
                state.baseline_ooo = value.get("baseline_ooo").and_then(|v| v.as_obj()).map(|b| {
                    b.iter()
                        .filter_map(|(k, v)| Some((k.clone(), f64::from_bits(v.as_num()?))))
                        .collect()
                });
                saw_header = true;
            }
            continue;
        }
        if !saw_header {
            return Err(format!(
                "checkpoint {} does not start with a sweep header",
                path.display()
            ));
        }
        let Some(fp) = value
            .get("point")
            .and_then(|v| v.as_str())
            .and_then(parse_hex_fp)
        else {
            continue;
        };
        let (Some(perf), Some(energy_uj), Some(area_mm2)) = (
            field_f64(&value, "perf"),
            field_f64(&value, "energy"),
            field_f64(&value, "area"),
        ) else {
            continue;
        };
        state.points.insert(
            fp,
            PointMetrics {
                perf,
                energy_uj,
                area_mm2,
            },
        );
    }
    Ok(state)
}

/// Append handle shared by the sweep workers. One mutex serializes
/// whole-line writes; each line is flushed before the lock drops.
pub(super) struct Writer {
    file: Mutex<BufWriter<File>>,
}

impl Writer {
    /// Opens `path` for appending, creating parent directories as
    /// needed, and writes the header iff `header` carries the baseline
    /// (i.e. the file had none — fresh or headerless journal).
    pub(super) fn open(
        path: &Path,
        sweep_fp: Fingerprint,
        total: usize,
        header: Option<HeaderInfo>,
    ) -> Result<Writer, String> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("cannot open checkpoint {}: {e}", path.display()))?;
        let writer = Writer {
            file: Mutex::new(BufWriter::new(file)),
        };
        if let Some(h) = header {
            let obj = |pairs: &[(String, f64)]| {
                let fields: Vec<String> = pairs
                    .iter()
                    .map(|(name, ipc)| format!("\"{}\": {}", json::escape(name), ipc.to_bits()))
                    .collect();
                format!("{{{}}}", fields.join(", "))
            };
            let ooo = h
                .baseline_ooo
                .as_deref()
                .map(|b| format!(", \"baseline_ooo\": {}", obj(b)))
                .unwrap_or_default();
            writer.write_line(&format!(
                "{{\"sweep\": \"{sweep_fp}\", \"schema\": {SCHEMA_VERSION}, \
                 \"points\": {total}, \"fidelity\": \"{}\", \"baseline\": {}{ooo}}}",
                h.fidelity,
                obj(&h.baseline)
            ))?;
        }
        Ok(writer)
    }

    /// Appends one completed point.
    pub(super) fn append(&self, fp: Fingerprint, name: &str, m: PointMetrics) {
        // A full disk mid-sweep should not take the in-memory results
        // down with it; the line is simply lost and the point reruns.
        let _ = self.write_line(&format!(
            "{{\"point\": \"{fp}\", \"name\": \"{}\", \"perf\": {}, \
             \"energy\": {}, \"area\": {}}}",
            json::escape(name),
            m.perf.to_bits(),
            m.energy_uj.to_bits(),
            m.area_mm2.to_bits()
        ));
    }

    fn write_line(&self, line: &str) -> Result<(), String> {
        let mut file = self.file.lock().expect("journal writer poisoned");
        writeln!(file, "{line}")
            .and_then(|()| file.flush())
            .map_err(|e| format!("checkpoint write failed: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runcache::fp128;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("catch-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trips_header_and_points_bit_exactly() {
        let path = tmp("roundtrip.journal");
        let _ = std::fs::remove_file(&path);
        let sweep = fp128("journal-test-sweep");
        let baseline = vec![("astar_like".to_string(), 0.1234567891234)];
        let baseline_ooo = vec![("astar_like".to_string(), 0.9876543219876)];
        let header = HeaderInfo {
            fidelity: "lite",
            baseline: baseline.clone(),
            baseline_ooo: Some(baseline_ooo.clone()),
        };
        let w = Writer::open(&path, sweep, 3, Some(header)).unwrap();
        let p1 = fp128("p1");
        let m1 = PointMetrics {
            perf: 1.0372819,
            energy_uj: 8123.4567,
            area_mm2: 21.5,
        };
        w.append(p1, "excl3-5632KB", m1);
        w.append(
            fp128("p2"),
            "weird \"name\"\n",
            PointMetrics {
                perf: f64::NAN,
                energy_uj: 0.0,
                area_mm2: 1.5,
            },
        );
        drop(w);

        let state = load(&path, sweep, "lite").unwrap();
        assert_eq!(state.baseline, Some(baseline));
        assert_eq!(state.baseline_ooo, Some(baseline_ooo));
        assert_eq!(state.points.len(), 2);
        assert_eq!(state.points[&p1.0], m1);
        // NaN survives as NaN (bit pattern, not text).
        assert!(state.points[&fp128("p2").0].perf.is_nan());
        // A fidelity-plan change is rejected with its own diagnostic,
        // ahead of (and more specific than) the fingerprint check.
        let err = load(&path, sweep, "ooo").expect_err("plan change rejected");
        assert!(err.contains("fidelity plan 'lite'"), "got: {err}");
        assert!(err.contains("runs 'ooo'"), "got: {err}");
    }

    #[test]
    fn rejects_foreign_sweeps_and_tolerates_torn_tails() {
        let path = tmp("torn.journal");
        let _ = std::fs::remove_file(&path);
        let sweep = fp128("owner");
        let header = HeaderInfo {
            fidelity: "ooo",
            baseline: vec![("x".into(), 1.0)],
            baseline_ooo: None,
        };
        let w = Writer::open(&path, sweep, 1, Some(header)).unwrap();
        w.append(
            fp128("done"),
            "a",
            PointMetrics {
                perf: 1.0,
                energy_uj: 2.0,
                area_mm2: 3.0,
            },
        );
        drop(w);
        // Simulate a hard kill mid-append: garbage tail line.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{{\"point\": \"deadbeef").unwrap();
        }
        let state = load(&path, sweep, "ooo").unwrap();
        assert_eq!(state.points.len(), 1);
        assert!(
            state.baseline_ooo.is_none(),
            "plain headers carry no OOO baseline"
        );
        // A different sweep must refuse to resume from this file.
        assert!(load(&path, fp128("intruder"), "ooo").is_err());
        // Missing file: clean empty state.
        let fresh = load(&tmp("never-written.journal"), sweep, "ooo").unwrap();
        assert!(fresh.baseline.is_none() && fresh.points.is_empty());
    }
}
