//! Energy model (Figure 16).
//!
//! Analytical per-event model in the spirit of CACTI (cache access
//! energy), Orion (ring-interconnect message energy) and the Micron DRAM
//! power calculator, since those tools are not redistributable. Only the
//! *relative* energy between configurations matters for Figure 16; the
//! constants below are in picojoules per event with capacity scaling
//! lifted from published CACTI 6.0 sweeps.

use crate::metrics::RunResult;

/// Per-event energy constants (picojoules).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct EnergyConstants {
    /// L1 access (32 KB, 8-way).
    pub l1_access_pj: f64,
    /// L2 access per MB of capacity (scaled by sqrt of size).
    pub cache_access_pj_per_sqrt_mb: f64,
    /// One interconnect (ring) message.
    pub ring_message_pj: f64,
    /// One DRAM access (activate amortised + IO).
    pub dram_access_pj: f64,
    /// Cache leakage per MB per nanosecond.
    pub leak_pj_per_mb_ns: f64,
    /// Core clock in GHz (cycles → ns).
    pub core_ghz: f64,
}

impl EnergyConstants {
    /// Defaults documented in DESIGN.md.
    pub fn paper_like() -> Self {
        EnergyConstants {
            l1_access_pj: 15.0,
            cache_access_pj_per_sqrt_mb: 250.0,
            ring_message_pj: 60.0,
            dram_access_pj: 15_000.0,
            // Large SRAM arrays are leakage-dominated; this term also
            // rewards configurations that simply finish sooner.
            leak_pj_per_mb_ns: 12.0,
            core_ghz: 3.2,
        }
    }
}

impl Default for EnergyConstants {
    fn default() -> Self {
        EnergyConstants::paper_like()
    }
}

/// Energy breakdown of one run, in microjoules.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// L1 dynamic energy.
    pub l1_uj: f64,
    /// L2 dynamic energy.
    pub l2_uj: f64,
    /// LLC dynamic energy.
    pub llc_uj: f64,
    /// Interconnect dynamic energy.
    pub ring_uj: f64,
    /// DRAM energy.
    pub dram_uj: f64,
    /// Cache leakage energy.
    pub leak_uj: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total_uj(&self) -> f64 {
        self.l1_uj + self.l2_uj + self.llc_uj + self.ring_uj + self.dram_uj + self.leak_uj
    }
}

/// Computes the energy of a run given the cache capacities of its
/// configuration.
pub fn energy_of(
    result: &RunResult,
    constants: &EnergyConstants,
    l2_bytes_per_core: u64,
    llc_bytes: u64,
) -> EnergyBreakdown {
    let pj_to_uj = 1e-6;
    let h = &result.hierarchy;

    let l1_activity: u64 = h.l1i.iter().chain(h.l1d.iter()).map(|s| s.activity()).sum();
    let l2_activity: u64 = h.l2.iter().map(|s| s.activity()).sum();
    let llc_activity = h.llc.activity();

    let l2_mb = l2_bytes_per_core as f64 / (1 << 20) as f64;
    let llc_mb = llc_bytes as f64 / (1 << 20) as f64;

    let l2_access_pj = constants.cache_access_pj_per_sqrt_mb * l2_mb.max(0.0).sqrt();
    let llc_access_pj = constants.cache_access_pj_per_sqrt_mb * llc_mb.max(0.0).sqrt();

    let ring_msgs = h.traffic.interconnect_messages();
    let dram = h.traffic.dram_accesses();

    let ns = result.core.cycles as f64 / constants.core_ghz;
    let cores = h.l1d.len().max(1) as f64;
    let total_cache_mb = llc_mb + cores * (l2_mb + 64.0 / 1024.0);

    EnergyBreakdown {
        l1_uj: l1_activity as f64 * constants.l1_access_pj * pj_to_uj,
        l2_uj: l2_activity as f64 * l2_access_pj * pj_to_uj,
        llc_uj: llc_activity as f64 * llc_access_pj * pj_to_uj,
        ring_uj: ring_msgs as f64 * constants.ring_message_pj * pj_to_uj,
        dram_uj: dram as f64 * constants.dram_access_pj * pj_to_uj,
        leak_uj: total_cache_mb * ns * constants.leak_pj_per_mb_ns * pj_to_uj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catch_cache::{CacheStats, HierarchyStats, TrafficStats};
    use catch_cpu::CoreStats;
    use catch_trace::Category;

    fn result_with(hier: HierarchyStats, cycles: u64) -> RunResult {
        let core = CoreStats {
            instructions: 1000,
            cycles,
            ..Default::default()
        };
        RunResult {
            workload: "w".into(),
            category: Category::Hpc,
            config: "c".into(),
            core,
            hierarchy: hier,
            dram: None,
        }
    }

    fn stats(accesses: u64) -> CacheStats {
        CacheStats {
            accesses,
            ..Default::default()
        }
    }

    #[test]
    fn dram_dominates_when_traffic_is_memory_bound() {
        let hier = HierarchyStats {
            l1d: vec![stats(1000)],
            l1i: vec![stats(100)],
            l2: vec![stats(500)],
            llc: stats(400),
            traffic: TrafficStats {
                dram_reads: 300,
                ..Default::default()
            },
            ..Default::default()
        };
        let e = energy_of(
            &result_with(hier, 10_000),
            &EnergyConstants::paper_like(),
            1 << 20,
            5632 << 10,
        );
        assert!(e.dram_uj > e.l2_uj + e.llc_uj + e.l1_uj);
        assert!(e.total_uj() > 0.0);
    }

    #[test]
    fn removing_l2_removes_its_dynamic_energy() {
        let with_l2 = HierarchyStats {
            l1d: vec![stats(1000)],
            l2: vec![stats(800)],
            llc: stats(100),
            ..Default::default()
        };
        let without_l2 = HierarchyStats {
            l1d: vec![stats(1000)],
            l2: vec![],
            llc: stats(900),
            ..Default::default()
        };
        let c = EnergyConstants::paper_like();
        let a = energy_of(&result_with(with_l2, 1000), &c, 1 << 20, 5632 << 10);
        let b = energy_of(&result_with(without_l2, 1000), &c, 0, 9728 << 10);
        assert_eq!(b.l2_uj, 0.0);
        assert!(b.llc_uj > a.llc_uj);
    }

    #[test]
    fn leakage_scales_with_time() {
        let hier = HierarchyStats {
            l1d: vec![stats(0)],
            ..Default::default()
        };
        let c = EnergyConstants::paper_like();
        let short = energy_of(&result_with(hier.clone(), 1_000), &c, 1 << 20, 5632 << 10);
        let long = energy_of(&result_with(hier, 10_000), &c, 1 << 20, 5632 << 10);
        assert!(long.leak_uj > 5.0 * short.leak_uj);
    }
}
