//! Minimal JSON emission for experiment results.
//!
//! The workspace builds fully offline, so instead of an external
//! serialisation crate we carry a small writer: enough to render counter
//! maps, run results and bench summaries as stable, human-diffable JSON.
//! Output is deterministic — insertion-ordered keys, two-space indent,
//! `\n` separators — because the golden-stats regression test compares it
//! byte-for-byte against a committed snapshot.
//!
//! There is deliberately no parser: nothing in the workspace reads JSON
//! back, and emit-only keeps the surface trivially auditable.

use catch_trace::counters::{CounterVec, Counters};

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a flat counter list as a JSON object, keys in list order,
/// indented by `indent` two-space levels.
pub fn counters_to_json(counters: &CounterVec, indent: usize) -> String {
    let pad = "  ".repeat(indent);
    let inner = "  ".repeat(indent + 1);
    if counters.is_empty() {
        return "{}".to_string();
    }
    let body: Vec<String> = counters
        .iter()
        .map(|(k, v)| format!("{inner}\"{}\": {v}", escape(k)))
        .collect();
    format!("{{\n{}\n{pad}}}", body.join(",\n"))
}

/// Renders one [`RunResult`](crate::RunResult) as a JSON object carrying
/// its identity fields plus every counter.
pub fn run_result_to_json(result: &crate::RunResult, indent: usize) -> String {
    let pad = "  ".repeat(indent);
    let inner = "  ".repeat(indent + 1);
    let counters = result.counters("");
    format!(
        "{{\n{inner}\"workload\": \"{}\",\n{inner}\"category\": \"{}\",\n\
         {inner}\"config\": \"{}\",\n{inner}\"counters\": {}\n{pad}}}",
        escape(&result.workload),
        escape(result.category.label()),
        escape(&result.config),
        counters_to_json(&counters, indent + 1),
    )
}

/// Renders a slice of run results as a JSON array (the golden-snapshot
/// format; ends with a trailing newline so the file is POSIX-clean).
pub fn run_results_to_json(results: &[crate::RunResult]) -> String {
    if results.is_empty() {
        return "[]\n".to_string();
    }
    let body: Vec<String> = results
        .iter()
        .map(|r| format!("  {}", run_result_to_json(r, 1)))
        .collect();
    format!("[\n{}\n]\n", body.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn counters_render_in_order() {
        let counters = vec![("b.x".to_string(), 2u64), ("a".to_string(), 1u64)];
        let json = counters_to_json(&counters, 0);
        let bx = json.find("b.x").expect("b.x present");
        let a = json.find("\"a\"").expect("a present");
        assert!(bx < a, "insertion order must be preserved");
        assert_eq!(counters_to_json(&Vec::new(), 0), "{}");
    }

    #[test]
    fn empty_results_render_as_empty_array() {
        assert_eq!(run_results_to_json(&[]), "[]\n");
    }
}
