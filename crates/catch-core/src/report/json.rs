//! Minimal JSON emission for experiment results.
//!
//! The workspace builds fully offline, so instead of an external
//! serialisation crate we carry a small writer: enough to render counter
//! maps, run results and bench summaries as stable, human-diffable JSON.
//! Output is deterministic — insertion-ordered keys, two-space indent,
//! `\n` separators — because the golden-stats regression test compares it
//! byte-for-byte against a committed snapshot.
//!
//! The only reader is the on-disk run cache ([`parse`]): a strict
//! recursive-descent parser over the exact subset the writer emits
//! (objects, strings, unsigned integers). Anything else — floats,
//! arrays, booleans, duplicate laxness — is a parse error, which the
//! cache treats as a miss. Keeping reader and writer to the same tiny
//! grammar keeps the surface trivially auditable.

use catch_trace::counters::{CounterVec, Counters};

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a flat counter list as a JSON object, keys in list order,
/// indented by `indent` two-space levels.
pub fn counters_to_json(counters: &CounterVec, indent: usize) -> String {
    let pad = "  ".repeat(indent);
    let inner = "  ".repeat(indent + 1);
    if counters.is_empty() {
        return "{}".to_string();
    }
    let body: Vec<String> = counters
        .iter()
        .map(|(k, v)| format!("{inner}\"{}\": {v}", escape(k)))
        .collect();
    format!("{{\n{}\n{pad}}}", body.join(",\n"))
}

/// Renders one [`RunResult`](crate::RunResult) as a JSON object carrying
/// its identity fields plus every counter.
pub fn run_result_to_json(result: &crate::RunResult, indent: usize) -> String {
    let pad = "  ".repeat(indent);
    let inner = "  ".repeat(indent + 1);
    let counters = result.counters("");
    format!(
        "{{\n{inner}\"workload\": \"{}\",\n{inner}\"category\": \"{}\",\n\
         {inner}\"config\": \"{}\",\n{inner}\"counters\": {}\n{pad}}}",
        escape(&result.workload),
        escape(result.category.label()),
        escape(&result.config),
        counters_to_json(&counters, indent + 1),
    )
}

/// Renders a slice of run results as a JSON array (the golden-snapshot
/// format; ends with a trailing newline so the file is POSIX-clean).
pub fn run_results_to_json(results: &[crate::RunResult]) -> String {
    if results.is_empty() {
        return "[]\n".to_string();
    }
    let body: Vec<String> = results
        .iter()
        .map(|r| format!("  {}", run_result_to_json(r, 1)))
        .collect();
    format!("[\n{}\n]\n", body.join(",\n"))
}

/// A parsed JSON value, restricted to what [`run_result_to_json`] and the
/// run-cache envelope emit: objects with string keys, string leaves and
/// unsigned-integer leaves.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JsonValue {
    /// A string literal.
    Str(String),
    /// A non-negative integer (every counter is a `u64`).
    Num(u64),
    /// An object; insertion-ordered, as written.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up `key` in an object (None for non-objects or absent keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is a number.
    pub fn as_num(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The entry list, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(entries) => Some(entries),
            _ => None,
        }
    }
}

/// Parses `text` as a single JSON value in the writer's subset
/// (object / string / unsigned integer). Trailing content, floats,
/// arrays, booleans and nulls are errors — a cache file that fails to
/// parse is simply recomputed.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\n' || b == b'\r' || b == b'\t' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'0'..=b'9') => Ok(JsonValue::Num(self.number()?)),
            other => Err(format!(
                "unexpected {:?} at byte {} (writer subset: object/string/uint)",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        self.skip_ws();
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(entries));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ASCII \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                            // The writer only emits \u for control chars;
                            // reject surrogates rather than pair them.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid codepoint \\u{hex}"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!("bad escape {:?}", other.map(|c| c as char)));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar (input is &str, so
                    // slicing at char boundaries is safe via chars()).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().expect("non-empty");
                    if (c as u32) < 0x20 {
                        return Err("raw control character in string".to_string());
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        if text.len() > 1 && text.starts_with('0') {
            return Err(format!("leading zero in number at byte {start}"));
        }
        text.parse::<u64>()
            .map_err(|e| format!("bad number '{text}': {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn counters_render_in_order() {
        let counters = vec![("b.x".to_string(), 2u64), ("a".to_string(), 1u64)];
        let json = counters_to_json(&counters, 0);
        let bx = json.find("b.x").expect("b.x present");
        let a = json.find("\"a\"").expect("a present");
        assert!(bx < a, "insertion order must be preserved");
        assert_eq!(counters_to_json(&Vec::new(), 0), "{}");
    }

    #[test]
    fn empty_results_render_as_empty_array() {
        assert_eq!(run_results_to_json(&[]), "[]\n");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let counters = vec![
            ("core.cycles".to_string(), 42u64),
            ("esc\"aped\n".to_string(), 0u64),
        ];
        let json = format!(
            "{{\n  \"name\": \"a\\\\b\\u0001\",\n  \"counters\": {}\n}}",
            counters_to_json(&counters, 1)
        );
        let v = parse(&json).expect("writer output must parse");
        assert_eq!(v.get("name").and_then(JsonValue::as_str), Some("a\\b\u{1}"));
        let c = v.get("counters").expect("counters present");
        assert_eq!(c.get("core.cycles").and_then(JsonValue::as_num), Some(42));
        assert_eq!(c.get("esc\"aped\n").and_then(JsonValue::as_num), Some(0));
        assert_eq!(c.as_obj().map(<[_]>::len), Some(2));
    }

    #[test]
    fn parse_rejects_out_of_subset_input() {
        for bad in [
            "",
            "{",
            "{}x",
            "[1]",
            "true",
            "-1",
            "1.5",
            "01",
            "{\"a\"}",
            "{\"a\": }",
            "{\"a\": 1,}",
            "\"\\q\"",
            "\"unterminated",
            "18446744073709551616", // u64::MAX + 1
        ] {
            assert!(parse(bad).is_err(), "'{bad}' must not parse");
        }
        assert_eq!(parse(" { } ").expect("ok"), JsonValue::Obj(Vec::new()));
        assert_eq!(
            parse("18446744073709551615").expect("ok").as_num(),
            Some(u64::MAX)
        );
    }
}
