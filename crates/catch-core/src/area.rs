//! Chip-area model for cache hierarchies (paper Section VI narrative).
//!
//! The paper estimates, from die plots of contemporary processors, that
//! removing a 1 MB L2 from each of four cores shrinks the
//! caches-plus-core area by roughly 30%. This module provides an
//! analytical SRAM-area model (mm² at a 14 nm-class node) so the
//! design-space example and tests can reproduce that arithmetic.

use catch_cache::{HierarchyConfig, HierarchyKind};

/// Area constants (mm²) for a 14 nm-class process.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct AreaConstants {
    /// SRAM plus tag/periphery per MB of cache.
    pub mm2_per_mb: f64,
    /// Fixed overhead per distinct cache array (controllers, queues).
    pub mm2_per_array: f64,
    /// A core excluding its caches.
    pub core_mm2: f64,
    /// Snoop filter / coherence directory required by an exclusive LLC
    /// (paper §II: "moving to an exclusive LLC also requires a separate
    /// snoop filter or coherence directory that also adds area").
    pub snoop_filter_mm2_per_core: f64,
}

impl AreaConstants {
    /// Defaults calibrated so the paper's "~30% lower area without the
    /// L2s (for the cache + uncore portion)" arithmetic holds.
    pub fn nm14() -> Self {
        AreaConstants {
            mm2_per_mb: 1.9,
            mm2_per_array: 0.15,
            core_mm2: 6.0,
            snoop_filter_mm2_per_core: 0.25,
        }
    }
}

impl Default for AreaConstants {
    fn default() -> Self {
        AreaConstants::nm14()
    }
}

/// Area breakdown of a hierarchy configuration (mm²).
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct AreaBreakdown {
    /// All private L1 arrays.
    pub l1_mm2: f64,
    /// All private L2 arrays.
    pub l2_mm2: f64,
    /// The shared LLC.
    pub llc_mm2: f64,
    /// Coherence tracking (snoop filter for exclusive organisations).
    pub coherence_mm2: f64,
    /// Cores (excluding caches).
    pub cores_mm2: f64,
}

impl AreaBreakdown {
    /// Total area.
    pub fn total_mm2(&self) -> f64 {
        self.l1_mm2 + self.l2_mm2 + self.llc_mm2 + self.coherence_mm2 + self.cores_mm2
    }

    /// Cache-only area (the portion the paper's "30% lower" refers to,
    /// plus coherence).
    pub fn cache_mm2(&self) -> f64 {
        self.l1_mm2 + self.l2_mm2 + self.llc_mm2 + self.coherence_mm2
    }
}

/// Computes the area of a hierarchy configuration.
pub fn hierarchy_area(config: &HierarchyConfig, constants: &AreaConstants) -> AreaBreakdown {
    let mb = |bytes: u64| bytes as f64 / (1 << 20) as f64;
    let cores = config.cores as f64;
    let array = constants.mm2_per_array;
    let l1_mm2 = cores
        * (mb(config.l1i.bytes) * constants.mm2_per_mb
            + mb(config.l1d.bytes) * constants.mm2_per_mb
            + 2.0 * array);
    let l2_mm2 = if config.has_l2() {
        cores * (mb(config.l2.bytes) * constants.mm2_per_mb + array)
    } else {
        0.0
    };
    let llc_mm2 = mb(config.llc.bytes) * constants.mm2_per_mb + array;
    let coherence_mm2 = match config.kind {
        HierarchyKind::ThreeLevelExclusive => cores * constants.snoop_filter_mm2_per_core,
        // Inclusive LLC tracks sharers in its own tags; two-level keeps
        // the (smaller) filter for the L1s.
        HierarchyKind::ThreeLevelInclusive => 0.0,
        HierarchyKind::TwoLevelNoL2 => cores * constants.snoop_filter_mm2_per_core * 0.5,
    };
    AreaBreakdown {
        l1_mm2,
        l2_mm2,
        llc_mm2,
        coherence_mm2,
        cores_mm2: cores * constants.core_mm2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removing_l2_saves_about_30_percent_of_cache_area() {
        let constants = AreaConstants::nm14();
        let base = hierarchy_area(&HierarchyConfig::skylake_server(4), &constants);
        let no_l2 = hierarchy_area(
            &HierarchyConfig::skylake_server(4).without_l2(5632 << 10),
            &constants,
        );
        let saving = 1.0 - no_l2.cache_mm2() / base.cache_mm2();
        assert!(
            (0.2..0.45).contains(&saving),
            "cache-area saving {saving:.2} should be ~30%"
        );
    }

    #[test]
    fn iso_area_configuration_really_is_iso_area() {
        // NoL2 + 9.5MB LLC should be close to baseline area: 4 MB of L2
        // moves into the LLC (5.5 + 4 = 9.5 MB).
        let constants = AreaConstants::nm14();
        let base = hierarchy_area(&HierarchyConfig::skylake_server(4), &constants);
        let iso = hierarchy_area(
            &HierarchyConfig::skylake_server(4).without_l2(9728 << 10),
            &constants,
        );
        let ratio = iso.total_mm2() / base.total_mm2();
        assert!(
            (0.95..1.02).contains(&ratio),
            "iso-area ratio {ratio:.3} should be ~1"
        );
    }

    #[test]
    fn breakdown_sums() {
        let constants = AreaConstants::nm14();
        let a = hierarchy_area(&HierarchyConfig::skylake_client(2), &constants);
        let sum = a.l1_mm2 + a.l2_mm2 + a.llc_mm2 + a.coherence_mm2 + a.cores_mm2;
        assert!((a.total_mm2() - sum).abs() < 1e-9);
        assert!(a.l2_mm2 > 0.0);
    }
}
