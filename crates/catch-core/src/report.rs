//! Plain-text rendering of experiment reports.

pub mod json;

use std::fmt;

/// How a table's values should be formatted.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ValueKind {
    /// Percent deltas ("+8.41%").
    PercentDelta,
    /// Plain ratios ("1.084").
    Ratio,
    /// Raw numbers ("123.4").
    Raw,
    /// Percentages of a whole ("85.0%").
    Percent,
    /// High-precision raw numbers ("5.0000") — Pareto metrics, where
    /// three digits would alias nearby frontier points.
    Precise,
}

/// One table of an experiment report.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers (row label column excluded).
    pub columns: Vec<String>,
    /// Rows: label + one value per column.
    pub rows: Vec<(String, Vec<f64>)>,
    /// Formatting of values.
    pub kind: ValueKind,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: Vec<String>, kind: ValueKind) -> Self {
        Table {
            title: title.into(),
            columns,
            rows: Vec::new(),
            kind,
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the column count.
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row width mismatch");
        self.rows.push((label.into(), values));
    }

    fn format_value(&self, v: f64) -> String {
        match self.kind {
            ValueKind::PercentDelta => format!("{:+.2}%", v),
            ValueKind::Ratio => format!("{:.3}", v),
            ValueKind::Raw => format!("{:.1}", v),
            ValueKind::Percent => format!("{:.1}%", v),
            ValueKind::Precise => format!("{:.4}", v),
        }
    }
}

impl Table {
    /// Renders the table as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("**{}**\n\n", self.title));
        out.push_str("| |");
        for c in &self.columns {
            out.push_str(&format!(" {c} |"));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &self.columns {
            out.push_str("---|");
        }
        out.push('\n');
        for (label, values) in &self.rows {
            out.push_str(&format!("| {label} |"));
            for v in values {
                out.push_str(&format!(" {} |", self.format_value(*v)));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "— {} —", self.title)?;
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain([8])
            .max()
            .unwrap_or(8);
        let col_w = self
            .columns
            .iter()
            .map(|c| c.len())
            .chain([9])
            .max()
            .unwrap_or(9);
        write!(f, "{:label_w$}", "")?;
        for c in &self.columns {
            write!(f, " {c:>col_w$}")?;
        }
        writeln!(f)?;
        for (label, values) in &self.rows {
            write!(f, "{label:label_w$}")?;
            for v in values {
                write!(f, " {:>col_w$}", self.format_value(*v))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// A full experiment report (one paper figure or table).
#[derive(Clone, Debug)]
pub struct ExperimentReport {
    /// Stable experiment id ("fig10", "tab1", ...).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Result tables.
    pub tables: Vec<Table>,
    /// Free-form notes (expected shape, caveats).
    pub notes: Vec<String>,
}

impl ExperimentReport {
    /// Renders the whole report as markdown (for EXPERIMENTS.md-style
    /// documents).
    pub fn to_markdown(&self) -> String {
        let mut out = format!("## {} — {}\n\n", self.id, self.title);
        for t in &self.tables {
            out.push_str(&t.to_markdown());
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("> {n}\n"));
        }
        out
    }
}

impl fmt::Display for ExperimentReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "==== {} — {} ====", self.id, self.title)?;
        for t in &self.tables {
            writeln!(f, "{t}")?;
        }
        for n in &self.notes {
            writeln!(f, "note: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(
            "demo",
            vec!["a".into(), "b".into()],
            ValueKind::PercentDelta,
        );
        t.push_row("row1", vec![1.0, -2.5]);
        let s = t.to_string();
        assert!(s.contains("+1.00%"));
        assert!(s.contains("-2.50%"));
        assert!(s.contains("demo"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", vec!["a".into()], ValueKind::Raw);
        t.push_row("r", vec![1.0, 2.0]);
    }

    #[test]
    fn value_kinds_format() {
        for (kind, needle) in [
            (ValueKind::PercentDelta, "+5.00%"),
            (ValueKind::Ratio, "5.000"),
            (ValueKind::Raw, "5.0"),
            (ValueKind::Percent, "5.0%"),
            (ValueKind::Precise, "5.0000"),
        ] {
            let mut t = Table::new("t", vec!["c".into()], kind);
            t.push_row("r", vec![5.0]);
            assert!(t.to_string().contains(needle), "{kind:?}");
        }
    }

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new("demo", vec!["x".into()], ValueKind::Ratio);
        t.push_row("row", vec![1.5]);
        let md = t.to_markdown();
        assert!(md.contains("| row | 1.500 |"));
        assert!(md.contains("|---|---|"));
        let r = ExperimentReport {
            id: "figX".into(),
            title: "demo".into(),
            tables: vec![t],
            notes: vec!["hello".into()],
        };
        let md = r.to_markdown();
        assert!(md.starts_with("## figX"));
        assert!(md.contains("> hello"));
    }

    #[test]
    fn report_renders_notes() {
        let r = ExperimentReport {
            id: "fig1".into(),
            title: "t".into(),
            tables: vec![],
            notes: vec!["hello".into()],
        };
        assert!(r.to_string().contains("note: hello"));
    }
}
