//! Heuristic criticality marking (the alternative the paper argues
//! against).
//!
//! Prior proposals (Tune et al. PACT'02, Subramaniam et al. HPCA'09)
//! detect critical loads from observable *symptoms* rather than the
//! dependence graph: loads in the shadow of a branch mispredict, loads
//! with long observed latency, loads feeding other loads. The paper notes
//! such heuristics "often flag many more PCs than are truly critical" —
//! e.g. a mispredicted branch in the shadow of an unrelated load miss
//! still tags that load.
//!
//! [`HeuristicDetector`] implements that family over the same retired
//! stream the graph detector consumes, so the two can be swapped under
//! CATCH and compared (the `heuristic_detector` bench target).

use crate::config::DetectorConfig;
use crate::detector::DetectorStats;
use crate::graph::RetiredInst;
use crate::table::CriticalLoadTable;
use catch_obs::{Event, EventClass, EventKind, Obs};
use catch_trace::Pc;
use std::collections::VecDeque;

/// Tuning knobs of the heuristic detector.
#[derive(Clone, Debug, PartialEq)]
pub struct HeuristicConfig {
    /// Retired ops scanned backwards from a mispredicted branch
    /// ("shadow" window).
    pub shadow_window: usize,
    /// Dependence levels followed from the branch when flagging its
    /// producer loads.
    pub dep_depth: usize,
    /// Loads with at least this observed latency are flagged outright.
    pub latency_threshold: u64,
}

impl Default for HeuristicConfig {
    fn default() -> Self {
        HeuristicConfig {
            shadow_window: 8,
            dep_depth: 2,
            latency_threshold: 30,
        }
    }
}

struct WindowEntry {
    seq: u64,
    inst: RetiredInst,
}

/// Symptom-based critical-load marking with the same table interface as
/// the graph detector.
pub struct HeuristicDetector {
    detector_config: DetectorConfig,
    config: HeuristicConfig,
    table: CriticalLoadTable,
    window: VecDeque<WindowEntry>,
    next_seq: u64,
    stats: DetectorStats,
    retired_since_relearn: u64,
    obs: Obs,
    obs_core: u32,
}

impl std::fmt::Debug for HeuristicDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeuristicDetector")
            .field("window", &self.window.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl HeuristicDetector {
    /// Creates a heuristic detector sharing the graph detector's table
    /// geometry, tracked levels and re-learn cadence.
    pub fn new(detector_config: DetectorConfig, config: HeuristicConfig) -> Self {
        let table =
            CriticalLoadTable::new(detector_config.table_entries, detector_config.table_ways);
        HeuristicDetector {
            detector_config,
            config,
            table,
            window: VecDeque::with_capacity(64),
            next_seq: 0,
            stats: DetectorStats::default(),
            retired_since_relearn: 0,
            obs: Obs::off(),
            obs_core: 0,
        }
    }

    /// Attaches an observability handle; table insertions/evictions emit
    /// criticality-class events attributed to `core`. Detached by default.
    pub fn set_obs(&mut self, obs: Obs, core: u32) {
        self.obs = obs;
        self.obs_core = core;
    }

    /// Counters (walks stay zero: no graph is maintained).
    pub fn stats(&self) -> DetectorStats {
        self.stats
    }

    /// Sequence number the next retired instruction receives.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    fn tracked(&self, inst: &RetiredInst) -> bool {
        inst.is_load
            && inst
                .hit_level
                .map(|l| self.detector_config.track_levels.contains(&l))
                .unwrap_or(false)
    }

    fn flag(&mut self, pc: Pc, cycle: u64) {
        self.stats.critical_load_observations += 1;
        let evicted = self.table.insert(pc);
        self.obs.emit(EventClass::CRIT, || Event {
            cycle,
            core: self.obs_core,
            kind: EventKind::CritInsert { pc: pc.get() },
        });
        if let Some(victim) = evicted {
            self.obs.emit(EventClass::CRIT, || Event {
                cycle,
                core: self.obs_core,
                kind: EventKind::CritEvict { pc: victim.get() },
            });
        }
    }

    /// Observes one retired instruction.
    pub fn on_retire(&mut self, inst: RetiredInst) {
        self.on_retire_at(inst, 0);
    }

    /// Cycle-stamped variant of [`HeuristicDetector::on_retire`]; the
    /// cycle only feeds attached event sinks and never alters detection.
    pub fn on_retire_at(&mut self, inst: RetiredInst, cycle: u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.retired += 1;
        self.retired_since_relearn += 1;

        // Symptom 1: long observed latency.
        if self.tracked(&inst) && inst.exec_latency >= self.config.latency_threshold {
            self.flag(inst.pc, cycle);
        }

        // Symptom 2: mispredicted branch — flag its producer loads (up to
        // dep_depth) and every tracked load in its shadow window.
        if inst.mispredicted_branch {
            // Producer closure.
            let mut frontier: Vec<u64> = inst.src_producers.iter().flatten().copied().collect();
            for _ in 0..self.config.dep_depth {
                let mut next = Vec::new();
                for p in frontier.drain(..) {
                    if let Some(e) = self.window.iter().find(|e| e.seq == p) {
                        let einst = e.inst;
                        next.extend(einst.src_producers.iter().flatten().copied());
                        if self.tracked(&einst) {
                            self.flag(einst.pc, cycle);
                        }
                    }
                }
                frontier = next;
            }
            // Shadow window: recent tracked loads, related or not — the
            // over-flagging the paper warns about.
            let shadow: Vec<Pc> = self
                .window
                .iter()
                .rev()
                .take(self.config.shadow_window)
                .filter(|e| self.tracked(&e.inst))
                .map(|e| e.inst.pc)
                .collect();
            for pc in shadow {
                self.flag(pc, cycle);
            }
        }

        self.window.push_back(WindowEntry { seq, inst });
        if self.window.len() > 64 {
            self.window.pop_front();
        }

        if self.retired_since_relearn >= self.detector_config.confidence_reset_interval {
            self.retired_since_relearn = 0;
            self.stats.relearns += 1;
            self.table.relearn();
        }
    }

    /// True if `pc` is currently flagged with full confidence.
    pub fn is_critical(&self, pc: Pc) -> bool {
        self.table.is_critical(pc)
    }

    /// Currently flagged PCs.
    pub fn critical_pcs(&self) -> Vec<Pc> {
        self.table.critical_pcs()
    }
}

/// Either detection mechanism behind one interface, so the core model can
/// swap them per configuration.
#[derive(Debug)]
pub enum AnyDetector {
    /// The paper's buffered-DDG detector.
    Graph(crate::detector::CriticalityDetector),
    /// The symptom-heuristic alternative.
    Heuristic(HeuristicDetector),
}

impl AnyDetector {
    /// Observes a retired instruction.
    pub fn on_retire(&mut self, inst: RetiredInst) {
        match self {
            AnyDetector::Graph(d) => d.on_retire(inst),
            AnyDetector::Heuristic(d) => d.on_retire(inst),
        }
    }

    /// Cycle-stamped variant of [`AnyDetector::on_retire`] for
    /// observability; the cycle never alters detection.
    pub fn on_retire_at(&mut self, inst: RetiredInst, cycle: u64) {
        match self {
            AnyDetector::Graph(d) => d.on_retire_at(inst, cycle),
            AnyDetector::Heuristic(d) => d.on_retire_at(inst, cycle),
        }
    }

    /// Attaches an observability handle to whichever detector is active.
    pub fn set_obs(&mut self, obs: Obs, core: u32) {
        match self {
            AnyDetector::Graph(d) => d.set_obs(obs, core),
            AnyDetector::Heuristic(d) => d.set_obs(obs, core),
        }
    }

    /// True if `pc` is currently flagged critical.
    pub fn is_critical(&self, pc: Pc) -> bool {
        match self {
            AnyDetector::Graph(d) => d.is_critical(pc),
            AnyDetector::Heuristic(d) => d.is_critical(pc),
        }
    }

    /// Currently flagged PCs.
    pub fn critical_pcs(&self) -> Vec<Pc> {
        match self {
            AnyDetector::Graph(d) => d.critical_pcs(),
            AnyDetector::Heuristic(d) => d.critical_pcs(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> DetectorStats {
        match self {
            AnyDetector::Graph(d) => d.stats(),
            AnyDetector::Heuristic(d) => d.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catch_cache::Level;

    fn pc(n: u64) -> Pc {
        Pc::new(0x1000 + n * 4)
    }

    fn detector() -> HeuristicDetector {
        HeuristicDetector::new(DetectorConfig::paper(), HeuristicConfig::default())
    }

    #[test]
    fn long_latency_loads_are_flagged() {
        let mut d = detector();
        for _ in 0..3 {
            d.on_retire(RetiredInst::new(pc(1), 40).as_load(Level::L2));
        }
        assert!(d.is_critical(pc(1)));
        // Short-latency load stays unflagged.
        for _ in 0..3 {
            d.on_retire(RetiredInst::new(pc(2), 10).as_load(Level::L2));
        }
        assert!(!d.is_critical(pc(2)));
    }

    #[test]
    fn shadow_of_mispredict_overflags_unrelated_loads() {
        let mut d = detector();
        for _ in 0..3 {
            // An L2-hit load completely unrelated to the branch...
            let seq = d.next_seq();
            d.on_retire(RetiredInst::new(pc(5), 15).as_load(Level::L2));
            // ...an independent producer for the branch...
            d.on_retire(RetiredInst::new(pc(6), 1));
            // ...and a mispredicted branch depending only on the ALU.
            d.on_retire(RetiredInst::compute(pc(7), 1, &[seq + 1]).as_mispredicted_branch());
        }
        // The heuristic flags the unrelated load anyway — the
        // over-flagging the paper criticises (a graph walk would not).
        assert!(d.is_critical(pc(5)));
    }

    #[test]
    fn producer_loads_of_mispredicted_branch_are_flagged() {
        let mut d = detector();
        for _ in 0..3 {
            let load_seq = d.next_seq();
            d.on_retire(RetiredInst::new(pc(1), 15).as_load(Level::Llc));
            d.on_retire(RetiredInst::compute(pc(2), 1, &[load_seq]).as_mispredicted_branch());
        }
        assert!(d.is_critical(pc(1)));
    }

    #[test]
    fn untracked_levels_never_flag() {
        let mut d = detector(); // tracks L2/LLC only
        for _ in 0..5 {
            d.on_retire(RetiredInst::new(pc(3), 100).as_load(Level::L1));
        }
        assert!(!d.is_critical(pc(3)));
    }

    #[test]
    fn any_detector_dispatches_both_kinds() {
        let mut graph = AnyDetector::Graph(crate::detector::CriticalityDetector::new(
            DetectorConfig::paper(),
        ));
        let mut heur = AnyDetector::Heuristic(detector());
        for d in [&mut graph, &mut heur] {
            d.on_retire(RetiredInst::new(pc(1), 40).as_load(Level::L2));
            let _ = d.is_critical(pc(1));
            let _ = d.critical_pcs();
            assert_eq!(d.stats().retired, 1);
        }
    }
}
