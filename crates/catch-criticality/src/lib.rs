//! Hardware-style program-criticality detection (CATCH, Section IV-A).
//!
//! The CATCH paper detects critical instructions by buffering a compact
//! representation of the data-dependence graph (DDG) of Fields et al.
//! (ISCA'01) in hardware and walking its longest (critical) path:
//!
//! * Every retired instruction contributes three nodes — **D** (allocate),
//!   **E** (dispatch to execution) and **C** (writeback) — connected by
//!   in-order edges (D-D, C-C), intra-instruction edges (D-E, E-C), data
//!   dependences (E-E), the ROB-depth edge (C-D) and the bad-speculation
//!   edge (E-D).
//! * On insertion each node computes its longest distance from the start
//!   of the buffered window (its *node cost*) by relaxing only its
//!   immediate incoming edges, and remembers which edge won (*prev-node*)
//!   — the paper's incremental method; no depth-first search is needed.
//! * Once 2× the ROB size has been buffered, a backward walk along the
//!   prev-node pointers enumerates the critical path. PCs of critical
//!   *loads* that hit in configured cache levels (L2/LLC by default) are
//!   recorded in a small set-associative [`CriticalLoadTable`] with 2-bit
//!   confidence counters, periodically re-learned.
//!
//! The [`area`] module reproduces the paper's Table I storage accounting
//! (~3 KB total).
//!
//! # Example
//!
//! ```
//! use catch_criticality::{CriticalityDetector, DetectorConfig, RetiredInst};
//! use catch_trace::Pc;
//!
//! let mut det = CriticalityDetector::new(DetectorConfig::default());
//! // Feed retired instructions from the core model...
//! let inst = RetiredInst::new(Pc::new(0x40), 5);
//! det.on_retire(inst);
//! assert!(!det.is_critical(Pc::new(0x40))); // not enough history yet
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
mod config;
mod detector;
mod graph;
mod heuristic;
mod table;

pub use config::DetectorConfig;
pub use detector::{CriticalityDetector, DetectorStats};
pub use graph::{DdgGraph, GraphNode, NodeKind, PathStep, RetiredInst};
pub use heuristic::{AnyDetector, HeuristicConfig, HeuristicDetector};
pub use table::CriticalLoadTable;
