//! The buffered data-dependence graph and its incremental critical path.

use crate::config::DetectorConfig;
use catch_cache::Level;
use catch_trace::Pc;
use std::collections::VecDeque;

/// A retired instruction as observed by the criticality hardware.
///
/// Producers are identified by *retirement sequence numbers* (a monotonic
/// counter maintained by the core); the graph ignores producers that have
/// already left the buffered window.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RetiredInst {
    /// Program counter.
    pub pc: Pc,
    /// True for loads.
    pub is_load: bool,
    /// Where a load hit (None for non-loads).
    pub hit_level: Option<Level>,
    /// Dispatch-to-writeback latency in cycles.
    pub exec_latency: u64,
    /// Sequence numbers of register producers.
    pub src_producers: [Option<u64>; 3],
    /// Sequence number of a forwarding store, if any.
    pub mem_producer: Option<u64>,
    /// True if this is a branch that was mispredicted (adds an E→D edge to
    /// the next instruction).
    pub mispredicted_branch: bool,
}

impl RetiredInst {
    /// Creates a plain instruction with the given execution latency.
    pub fn new(pc: Pc, exec_latency: u64) -> Self {
        RetiredInst {
            pc,
            is_load: false,
            hit_level: None,
            exec_latency,
            src_producers: [None; 3],
            mem_producer: None,
            mispredicted_branch: false,
        }
    }

    /// Shorthand for a compute op depending on up to three producers.
    pub fn compute(pc: Pc, exec_latency: u64, producers: &[u64]) -> Self {
        RetiredInst::new(pc, exec_latency).with_producers(producers)
    }

    /// Sets register producers (at most 3).
    pub fn with_producers(mut self, producers: &[u64]) -> Self {
        assert!(producers.len() <= 3, "at most 3 register producers");
        for (slot, &p) in self.src_producers.iter_mut().zip(producers) {
            *slot = Some(p);
        }
        self
    }

    /// Sets a store-forwarding producer.
    pub fn with_mem_producer(mut self, seq: u64) -> Self {
        self.mem_producer = Some(seq);
        self
    }

    /// Marks this instruction as a load that hit at `level`.
    pub fn as_load(mut self, level: Level) -> Self {
        self.is_load = true;
        self.hit_level = Some(level);
        self
    }

    /// Marks this instruction as a mispredicted branch.
    pub fn as_mispredicted_branch(mut self) -> Self {
        self.mispredicted_branch = true;
        self
    }
}

/// Which of the three Fields nodes a path step refers to.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum NodeKind {
    /// D: allocation into the OOO.
    Dispatch,
    /// E: dispatch to the execution units.
    Execute,
    /// C: writeback.
    Commit,
}

/// One step of the enumerated critical path.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct PathStep {
    /// Retirement sequence number of the instruction.
    pub seq: u64,
    /// Node within the instruction.
    pub kind: NodeKind,
}

/// How a D node obtained its longest distance.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum DFrom {
    Start,
    PrevD,
    BadSpec(u64),
    Depth(u64),
}

/// One instruction's nodes, costs and prev-node pointers.
#[derive(Copy, Clone, Debug)]
pub struct GraphNode {
    seq: u64,
    /// PC of the instruction (hardware stores a hashed PC; we keep the full
    /// PC and account the hashed width in the area model).
    pub pc: Pc,
    /// True for loads.
    pub is_load: bool,
    /// Load hit level.
    pub hit_level: Option<Level>,
    lat: u64,
    d_cost: u64,
    e_cost: u64,
    c_cost: u64,
    d_from: DFrom,
    /// E reached through this producer's E node (else through own D).
    e_from_producer: Option<u64>,
    /// C reached from own E (else from previous C).
    c_from_e: bool,
}

impl GraphNode {
    /// Longest distance of the E node from the window start.
    pub fn e_cost(&self) -> u64 {
        self.e_cost
    }

    /// Quantized execution latency used for edge weights.
    pub fn latency(&self) -> u64 {
        self.lat
    }
}

/// The buffered DDG with incremental longest-path computation.
///
/// Mirrors the hardware: a circular buffer of `2.5 × ROB` instruction
/// entries; each insertion relaxes only the new instruction's incoming
/// edges; a walk over the prev-node pointers enumerates the critical path
/// of the buffered window.
///
/// # Worked example (paper Figure 6)
///
/// The paper walks through six instructions — `R0 = [R1]` (a 20-cycle
/// load), `CMP R0,8`, `JLE`, an independent `R3 = [R4]`, `R5 = [R0]`,
/// and `R0 = R5 + R3` — showing how each insertion relaxes only its
/// incoming edges. With exact (unquantised) latencies and zero rename
/// latency the same incremental node costs fall out here:
///
/// ```
/// use catch_cache::Level;
/// use catch_criticality::{DdgGraph, DetectorConfig, RetiredInst};
/// use catch_trace::Pc;
///
/// let config = DetectorConfig {
///     quantize_shift: 0,
///     rename_latency: 0,
///     ..DetectorConfig::paper()
/// };
/// let mut g = DdgGraph::new(config);
/// let pc = |n: u64| Pc::new(0x400 + n * 4);
///
/// let i1 = g.push(RetiredInst::new(pc(1), 20).as_load(Level::L2)); // R0 = [R1]
/// let i2 = g.push(RetiredInst::compute(pc(2), 4, &[i1]));          // CMP R0, 8
/// let i3 = g.push(RetiredInst::compute(pc(3), 4, &[i2]));          // JLE
/// let i4 = g.push(RetiredInst::new(pc(4), 10).as_load(Level::L2)); // R3 = [R4]
/// let i5 = g.push(RetiredInst::compute(pc(5), 10, &[i1]).as_load(Level::L2)); // R5 = [R0]
/// let i6 = g.push(RetiredInst::compute(pc(6), 4, &[i4, i5]));      // R0 = R5 + R3
///
/// // E-node costs: the dependent chain through the 20-cycle load wins.
/// assert_eq!(g.node(i2).unwrap().e_cost(), 20); // waits for R0
/// assert_eq!(g.node(i4).unwrap().e_cost(), 0);  // independent load
/// assert_eq!(g.node(i5).unwrap().e_cost(), 20); // also waits for R0
/// assert_eq!(g.node(i6).unwrap().e_cost(), 30); // R5 arrives at 30
///
/// // Only the loads on the critical path are reported: the chain head
/// // (i1) and the dependent load (i5) — not the independent i4.
/// let critical: Vec<_> = g.critical_loads().iter().map(|(pc, _)| *pc).collect();
/// assert!(critical.contains(&pc(1)));
/// assert!(critical.contains(&pc(5)));
/// assert!(!critical.contains(&pc(4)));
/// # let _ = i3;
/// ```
#[derive(Debug)]
pub struct DdgGraph {
    config: DetectorConfig,
    nodes: VecDeque<GraphNode>,
    next_seq: u64,
    /// Set when the previously inserted instruction was a mispredicted
    /// branch (its E→D edge applies to the next insertion).
    pending_bad_spec: Option<u64>,
    overflows: u64,
}

impl DdgGraph {
    /// Creates an empty graph.
    pub fn new(config: DetectorConfig) -> Self {
        let cap = config.buffer_capacity();
        DdgGraph {
            config,
            nodes: VecDeque::with_capacity(cap),
            next_seq: 0,
            pending_bad_spec: None,
            overflows: 0,
        }
    }

    /// Number of buffered instructions.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Times the buffer overflowed and was discarded.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// True once enough instructions are buffered to walk.
    pub fn ready_to_walk(&self) -> bool {
        self.nodes.len() >= self.config.walk_threshold()
    }

    /// Sequence number the next insertion will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    fn get(&self, seq: u64) -> Option<&GraphNode> {
        let front = self.nodes.front()?.seq;
        if seq < front {
            return None;
        }
        self.nodes.get((seq - front) as usize)
    }

    /// Inserts a retired instruction, relaxing its incoming edges.
    /// Returns the sequence number assigned.
    pub fn push(&mut self, inst: RetiredInst) -> u64 {
        if self.nodes.len() >= self.config.buffer_capacity() {
            // Hardware discards and starts afresh on overflow.
            self.nodes.clear();
            self.pending_bad_spec = None;
            self.overflows += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let lat = self.config.quantize(inst.exec_latency);

        // --- D node: D-D, C-D (depth) and E-D (bad speculation) edges.
        let mut d_cost = 0;
        let mut d_from = DFrom::Start;
        if let Some(prev) = self.nodes.back() {
            // In-order allocation.
            if prev.d_cost > d_cost {
                d_cost = prev.d_cost;
                d_from = DFrom::PrevD;
            }
        }
        if seq >= self.config.rob_size as u64 {
            // Finite ROB: allocation waits for (seq - rob) to commit.
            if let Some(older) = self.get(seq - self.config.rob_size as u64) {
                if older.c_cost > d_cost {
                    d_cost = older.c_cost;
                    d_from = DFrom::Depth(older.seq);
                }
            }
        }
        if let Some(branch_seq) = self.pending_bad_spec.take() {
            if let Some(branch) = self.get(branch_seq) {
                let cost = branch.e_cost + branch.lat + self.config.redirect_penalty;
                if cost > d_cost {
                    d_cost = cost;
                    d_from = DFrom::BadSpec(branch_seq);
                }
            }
        }

        // --- E node: D-E (rename) and E-E (data/memory dependences).
        let mut e_cost = d_cost + self.config.rename_latency;
        let mut e_from_producer = None;
        for producer in inst
            .src_producers
            .iter()
            .flatten()
            .chain(inst.mem_producer.iter())
        {
            if let Some(p) = self.get(*producer) {
                let cost = p.e_cost + p.lat;
                if cost > e_cost {
                    e_cost = cost;
                    e_from_producer = Some(p.seq);
                }
            }
        }

        // --- C node: E-C (execution latency) and C-C (in-order commit).
        let mut c_cost = e_cost + lat;
        let mut c_from_e = true;
        if let Some(prev) = self.nodes.back() {
            if prev.c_cost > c_cost {
                c_cost = prev.c_cost;
                c_from_e = false;
            }
        }

        if inst.mispredicted_branch {
            self.pending_bad_spec = Some(seq);
        }

        self.nodes.push_back(GraphNode {
            seq,
            pc: inst.pc,
            is_load: inst.is_load,
            hit_level: inst.hit_level,
            lat,
            d_cost,
            e_cost,
            c_cost,
            d_from,
            e_from_producer,
            c_from_e,
        });
        seq
    }

    /// Walks the critical path backwards from the youngest C node,
    /// returning the steps youngest-first.
    pub fn walk_critical_path(&self) -> Vec<PathStep> {
        let Some(back) = self.nodes.back() else {
            return Vec::new();
        };
        let front_seq = self.nodes.front().expect("non-empty").seq;
        let mut steps = Vec::new();
        let mut cursor = PathStep {
            seq: back.seq,
            kind: NodeKind::Commit,
        };
        // Bounded by 3 nodes per buffered instruction.
        let bound = self.nodes.len() * 3 + 3;
        for _ in 0..bound {
            steps.push(cursor);
            let Some(node) = self.get(cursor.seq) else {
                break;
            };
            let next = match cursor.kind {
                NodeKind::Commit => {
                    if node.c_from_e {
                        Some(PathStep {
                            seq: node.seq,
                            kind: NodeKind::Execute,
                        })
                    } else if node.seq > front_seq {
                        Some(PathStep {
                            seq: node.seq - 1,
                            kind: NodeKind::Commit,
                        })
                    } else {
                        None
                    }
                }
                NodeKind::Execute => match node.e_from_producer {
                    Some(p) => Some(PathStep {
                        seq: p,
                        kind: NodeKind::Execute,
                    }),
                    None => Some(PathStep {
                        seq: node.seq,
                        kind: NodeKind::Dispatch,
                    }),
                },
                NodeKind::Dispatch => match node.d_from {
                    DFrom::Start => None,
                    DFrom::PrevD => (node.seq > front_seq).then(|| PathStep {
                        seq: node.seq - 1,
                        kind: NodeKind::Dispatch,
                    }),
                    DFrom::BadSpec(b) => Some(PathStep {
                        seq: b,
                        kind: NodeKind::Execute,
                    }),
                    DFrom::Depth(c) => Some(PathStep {
                        seq: c,
                        kind: NodeKind::Commit,
                    }),
                },
            };
            match next {
                Some(step) => cursor = step,
                None => break,
            }
        }
        steps
    }

    /// Returns the critical *load* PCs (with their hit level) on the
    /// current critical path — the E nodes the paper records.
    pub fn critical_loads(&self) -> Vec<(Pc, Level)> {
        self.walk_critical_path()
            .into_iter()
            .filter(|s| s.kind == NodeKind::Execute)
            .filter_map(|s| {
                let node = self.get(s.seq)?;
                if node.is_load {
                    node.hit_level.map(|l| (node.pc, l))
                } else {
                    None
                }
            })
            .collect()
    }

    /// Looks up a buffered node by sequence number.
    pub fn node(&self, seq: u64) -> Option<&GraphNode> {
        self.get(seq)
    }

    /// Clears the buffer (the hardware resets its read pointer after a
    /// walk).
    pub fn flush(&mut self) {
        self.nodes.clear();
        self.pending_bad_spec = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> DetectorConfig {
        DetectorConfig {
            rob_size: 8,
            quantize_shift: 0, // exact latencies for test readability
            rename_latency: 0,
            redirect_penalty: 10,
            ..DetectorConfig::paper()
        }
    }

    fn pc(n: u64) -> Pc {
        Pc::new(n * 4)
    }

    #[test]
    fn dependence_chain_dominates_path() {
        let mut g = DdgGraph::new(config());
        // load (200 cycles, LLC miss-like) -> alu -> alu ; plus an
        // independent cheap alu that must not be critical.
        let s0 = g.push(RetiredInst::new(pc(0), 200).as_load(Level::Memory));
        let s1 = g.push(RetiredInst::compute(pc(1), 1, &[s0]));
        let _i = g.push(RetiredInst::new(pc(2), 1)); // independent
        let s3 = g.push(RetiredInst::compute(pc(3), 1, &[s1]));
        let path = g.walk_critical_path();
        let on_path: Vec<u64> = path
            .iter()
            .filter(|s| s.kind == NodeKind::Execute)
            .map(|s| s.seq)
            .collect();
        assert!(on_path.contains(&s0));
        assert!(on_path.contains(&s1));
        assert!(on_path.contains(&s3));
        assert!(!on_path.contains(&2));
    }

    #[test]
    fn critical_loads_reports_pc_and_level() {
        let mut g = DdgGraph::new(config());
        let s0 = g.push(RetiredInst::new(pc(0), 40).as_load(Level::Llc));
        g.push(RetiredInst::compute(pc(1), 1, &[s0]));
        let loads = g.critical_loads();
        assert_eq!(loads, vec![(pc(0), Level::Llc)]);
    }

    #[test]
    fn short_chains_hidden_by_window_are_not_critical() {
        // Two parallel chains; the long one wins, the short one's loads are
        // not on the path.
        let mut g = DdgGraph::new(config());
        let a0 = g.push(RetiredInst::new(pc(0), 100).as_load(Level::Llc));
        let b0 = g.push(RetiredInst::new(pc(10), 5).as_load(Level::L2));
        let a1 = g.push(RetiredInst::compute(pc(1), 1, &[a0]));
        let _b1 = g.push(RetiredInst::compute(pc(11), 1, &[b0]));
        let _a2 = g.push(RetiredInst::compute(pc(2), 1, &[a1]));
        let loads = g.critical_loads();
        assert_eq!(loads.len(), 1);
        assert_eq!(loads[0].0, pc(0));
    }

    #[test]
    fn mispredicted_branch_extends_path_through_e_d_edge() {
        let mut g = DdgGraph::new(config());
        // A branch dependent on a slow load mispredicts; the next
        // instruction's D hangs off the branch's E.
        let s0 = g.push(RetiredInst::new(pc(0), 25).as_load(Level::Llc));
        let _b = g.push(RetiredInst::compute(pc(1), 1, &[s0]).as_mispredicted_branch());
        let s2 = g.push(RetiredInst::new(pc(2), 1));
        let node2 = g.node(s2).unwrap();
        // d_cost = e_cost(branch) + lat(branch) + redirect = 25 + 1 + 10.
        assert_eq!(node2.d_cost, 36);
        let path = g.walk_critical_path();
        assert!(path.contains(&PathStep {
            seq: s0,
            kind: NodeKind::Execute
        }));
    }

    #[test]
    fn rob_depth_edge_limits_allocation() {
        let cfg = config(); // rob 8
        let mut g = DdgGraph::new(cfg);
        // One slow instruction, then enough cheap independent ones that the
        // ROB-depth C->D edge matters for instruction 8.
        g.push(RetiredInst::new(pc(0), 30));
        for i in 1..=8 {
            g.push(RetiredInst::new(pc(i), 1));
        }
        // Instruction 8 allocates only after instruction 0 commits.
        let n8 = g.node(8).unwrap();
        assert!(n8.d_cost >= 30, "d_cost {} must include C0", n8.d_cost);
    }

    #[test]
    fn overflow_discards_and_counts() {
        let mut cfg = config();
        cfg.rob_size = 4;
        cfg.buffer_factor_x10 = 10; // capacity 4
        let mut g = DdgGraph::new(cfg);
        for i in 0..5 {
            g.push(RetiredInst::new(pc(i), 1));
        }
        assert_eq!(g.overflows(), 1);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn walk_terminates_on_empty_graph() {
        let g = DdgGraph::new(config());
        assert!(g.walk_critical_path().is_empty());
        assert!(g.critical_loads().is_empty());
    }

    #[test]
    fn flush_resets_window_but_not_seq() {
        let mut g = DdgGraph::new(config());
        g.push(RetiredInst::new(pc(0), 1));
        let next = g.next_seq();
        g.flush();
        assert!(g.is_empty());
        assert_eq!(g.next_seq(), next);
        // Producers from before the flush are ignored gracefully.
        let s = g.push(RetiredInst::compute(pc(1), 1, &[0]));
        assert!(g.node(s).unwrap().e_from_producer.is_none());
    }

    #[test]
    fn figure2_style_example() {
        // Mirrors the paper's Figure 2 narrative: three loads hit L2/LLC;
        // only the one feeding the long chain is critical.
        let mut g = DdgGraph::new(config());
        let ld_crit = g.push(RetiredInst::new(pc(0), 30).as_load(Level::Llc));
        let ld_nc1 = g.push(RetiredInst::new(pc(1), 11).as_load(Level::L2));
        let dep = g.push(RetiredInst::compute(pc(2), 20, &[ld_crit]));
        let _nc2 = g.push(RetiredInst::compute(pc(3), 1, &[ld_nc1]));
        let _tail = g.push(RetiredInst::compute(pc(4), 20, &[dep]));
        let loads = g.critical_loads();
        assert_eq!(loads.len(), 1);
        assert_eq!(loads[0], (pc(0), Level::Llc));
    }
}
