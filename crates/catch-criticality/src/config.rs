//! Detector configuration.

use catch_cache::Level;

/// Configuration of the criticality detector.
#[derive(Clone, Debug, PartialEq)]
pub struct DetectorConfig {
    /// Reorder-buffer size of the core (224 in the paper's Skylake-like
    /// configuration).
    pub rob_size: usize,
    /// Graph capacity as a multiple of ROB size ×10 (paper: 2.5× ⇒ 25).
    /// Retirement continues while the walk happens, so the buffer is
    /// larger than the walked window.
    pub buffer_factor_x10: usize,
    /// Window walked, as a multiple of ROB size ×10 (paper: 2× ⇒ 20).
    pub walk_factor_x10: usize,
    /// Entries in the critical-load table (paper: 32).
    pub table_entries: usize,
    /// Associativity of the critical-load table (paper: 8).
    pub table_ways: usize,
    /// Confidence counters of unsaturated entries are reset every this
    /// many retired instructions (paper: 100 000).
    pub confidence_reset_interval: u64,
    /// Execution latencies are right-shifted by this amount before being
    /// stored in a 5-bit saturating counter (paper: ÷8 ⇒ 3).
    pub quantize_shift: u32,
    /// Weight of the E→D bad-speculation edge (front-end redirect).
    pub redirect_penalty: u64,
    /// Weight of the D→E edge (rename/dispatch).
    pub rename_latency: u64,
    /// Which hit levels qualify a critical load for the table.
    /// Default: L2 and LLC (the loads CATCH wants served from L1).
    pub track_levels: Vec<Level>,
}

impl DetectorConfig {
    /// Paper defaults for a 224-entry-ROB core.
    pub fn paper() -> Self {
        DetectorConfig {
            rob_size: 224,
            buffer_factor_x10: 25,
            walk_factor_x10: 20,
            table_entries: 32,
            table_ways: 8,
            confidence_reset_interval: 100_000,
            quantize_shift: 3,
            redirect_penalty: 15,
            rename_latency: 1,
            track_levels: vec![Level::L2, Level::Llc],
        }
    }

    /// Returns a copy tracking a different set of hit levels (used by the
    /// Figure 4 per-level oracles).
    pub fn with_track_levels(mut self, levels: &[Level]) -> Self {
        self.track_levels = levels.to_vec();
        self
    }

    /// Returns a copy with a different table size, keeping 8-way
    /// associativity when possible (Figure 5 sweep).
    pub fn with_table_entries(mut self, entries: usize) -> Self {
        self.table_entries = entries;
        self.table_ways = self.table_ways.min(entries).max(1);
        self
    }

    /// Graph buffer capacity in instructions.
    pub fn buffer_capacity(&self) -> usize {
        self.rob_size * self.buffer_factor_x10 / 10
    }

    /// Number of buffered instructions that triggers a walk.
    pub fn walk_threshold(&self) -> usize {
        self.rob_size * self.walk_factor_x10 / 10
    }

    /// Maximum quantized latency value (5-bit saturating counter).
    pub fn quantized_max(&self) -> u64 {
        31
    }

    /// Quantizes an execution latency the way the hardware stores it,
    /// returning the cost the graph uses (re-scaled).
    pub fn quantize(&self, latency: u64) -> u64 {
        (latency >> self.quantize_shift).min(self.quantized_max()) << self.quantize_shift
    }
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = DetectorConfig::paper();
        assert_eq!(c.rob_size, 224);
        assert_eq!(c.buffer_capacity(), 560);
        assert_eq!(c.walk_threshold(), 448);
        assert_eq!(c.table_entries, 32);
    }

    #[test]
    fn quantize_saturates_at_5_bits() {
        let c = DetectorConfig::paper();
        assert_eq!(c.quantize(7), 0);
        assert_eq!(c.quantize(8), 8);
        assert_eq!(c.quantize(17), 16);
        assert_eq!(c.quantize(10_000), 31 << 3);
    }

    #[test]
    fn with_table_entries_keeps_ways_sane() {
        let c = DetectorConfig::paper().with_table_entries(4);
        assert_eq!(c.table_entries, 4);
        assert_eq!(c.table_ways, 4);
        let big = DetectorConfig::paper().with_table_entries(2048);
        assert_eq!(big.table_ways, 8);
    }
}
