//! The critical-load table (32-entry, 8-way, 2-bit confidence).

use catch_trace::Pc;

#[derive(Copy, Clone, Debug)]
struct TableEntry {
    pc: Pc,
    confidence: u8,
    last_use: u64,
}

const CONFIDENCE_MAX: u8 = 3;

/// Set-associative table of critical load PCs.
///
/// A PC is *reported* critical only when present with a saturated 2-bit
/// confidence counter. Unsaturated entries are periodically reset by the
/// detector so stale criticality decays (the paper's 100 K-instruction
/// re-learn).
#[derive(Debug)]
pub struct CriticalLoadTable {
    sets: usize,
    ways: usize,
    entries: Vec<Option<TableEntry>>,
    tick: u64,
    inserts: u64,
    evictions: u64,
}

impl CriticalLoadTable {
    /// Creates a table with `entries` total slots and `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a multiple of `ways` or either is zero.
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(entries > 0 && ways > 0, "table must have capacity");
        assert!(
            entries.is_multiple_of(ways),
            "entries ({entries}) must divide into {ways}-way sets"
        );
        CriticalLoadTable {
            sets: entries / ways,
            ways,
            entries: vec![None; entries],
            tick: 0,
            inserts: 0,
            evictions: 0,
        }
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// PCs inserted (including repeats).
    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    /// Entries displaced by allocation.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    fn set_of(&self, pc: Pc) -> usize {
        (pc.get() / 4 % self.sets as u64) as usize
    }

    fn slot_range(&self, set: usize) -> std::ops::Range<usize> {
        set * self.ways..(set + 1) * self.ways
    }

    /// Records an observation of `pc` on the critical path: bumps its
    /// confidence, allocating (LRU) if absent. Returns the PC evicted to
    /// make room, if the allocation displaced a live entry.
    pub fn insert(&mut self, pc: Pc) -> Option<Pc> {
        self.tick += 1;
        self.inserts += 1;
        let set = self.set_of(pc);
        let range = self.slot_range(set);
        // Hit: bump confidence.
        for i in range.clone() {
            if let Some(e) = self.entries[i].as_mut() {
                if e.pc == pc {
                    e.confidence = (e.confidence + 1).min(CONFIDENCE_MAX);
                    e.last_use = self.tick;
                    return None;
                }
            }
        }
        // Allocate: empty way, else LRU victim.
        let victim = range
            .clone()
            .find(|&i| self.entries[i].is_none())
            .unwrap_or_else(|| {
                range
                    .min_by_key(|&i| self.entries[i].map(|e| e.last_use).unwrap_or(0))
                    .expect("sets have at least one way")
            });
        let displaced = self.entries[victim].map(|e| e.pc);
        if displaced.is_some() {
            self.evictions += 1;
        }
        self.entries[victim] = Some(TableEntry {
            pc,
            confidence: 1,
            last_use: self.tick,
        });
        displaced
    }

    /// True if `pc` is present with saturated confidence.
    pub fn is_critical(&self, pc: Pc) -> bool {
        let set = self.set_of(pc);
        self.slot_range(set).any(|i| {
            self.entries[i]
                .map(|e| e.pc == pc && e.confidence >= CONFIDENCE_MAX)
                .unwrap_or(false)
        })
    }

    /// All PCs currently reported critical.
    pub fn critical_pcs(&self) -> Vec<Pc> {
        self.entries
            .iter()
            .flatten()
            .filter(|e| e.confidence >= CONFIDENCE_MAX)
            .map(|e| e.pc)
            .collect()
    }

    /// Number of occupied slots (any confidence).
    pub fn occupancy(&self) -> usize {
        self.entries.iter().flatten().count()
    }

    /// Resets the confidence of unsaturated entries (the periodic
    /// re-learn). Saturated entries keep their status.
    pub fn relearn(&mut self) {
        for e in self.entries.iter_mut().flatten() {
            if e.confidence < CONFIDENCE_MAX {
                e.confidence = 0;
            }
        }
    }

    /// Clears the table entirely.
    pub fn clear(&mut self) {
        self.entries.fill(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pc(n: u64) -> Pc {
        Pc::new(n * 4)
    }

    #[test]
    fn needs_saturation_to_report_critical() {
        let mut t = CriticalLoadTable::new(32, 8);
        t.insert(pc(1));
        t.insert(pc(1));
        assert!(!t.is_critical(pc(1)));
        t.insert(pc(1));
        assert!(t.is_critical(pc(1)));
    }

    #[test]
    fn lru_eviction_in_full_set() {
        // 1 set, 2 ways: three distinct PCs mapping to the same set.
        let mut t = CriticalLoadTable::new(2, 2);
        t.insert(pc(1));
        t.insert(pc(2));
        t.insert(pc(1)); // pc1 more recent
        t.insert(pc(3)); // evicts pc2
        for _ in 0..3 {
            t.insert(pc(1));
            t.insert(pc(3));
        }
        assert!(t.is_critical(pc(1)));
        assert!(t.is_critical(pc(3)));
        assert!(!t.is_critical(pc(2)));
        assert_eq!(t.evictions(), 1);
    }

    #[test]
    fn relearn_resets_unsaturated_only() {
        let mut t = CriticalLoadTable::new(32, 8);
        for _ in 0..3 {
            t.insert(pc(1));
        }
        t.insert(pc(2)); // confidence 1
        t.relearn();
        assert!(t.is_critical(pc(1)));
        // pc2 must now re-earn all confidence.
        t.insert(pc(2));
        t.insert(pc(2));
        assert!(!t.is_critical(pc(2)));
        t.insert(pc(2));
        assert!(t.is_critical(pc(2)));
    }

    #[test]
    fn critical_pcs_lists_saturated() {
        let mut t = CriticalLoadTable::new(32, 8);
        for _ in 0..3 {
            t.insert(pc(1));
            t.insert(pc(9));
        }
        t.insert(pc(5));
        let mut pcs = t.critical_pcs();
        pcs.sort();
        assert_eq!(pcs, vec![pc(1), pc(9)]);
        assert_eq!(t.occupancy(), 3);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn rejects_bad_geometry() {
        let _ = CriticalLoadTable::new(10, 4);
    }

    #[test]
    fn clear_empties_table() {
        let mut t = CriticalLoadTable::new(8, 4);
        for _ in 0..3 {
            t.insert(pc(1));
        }
        t.clear();
        assert!(!t.is_critical(pc(1)));
        assert_eq!(t.occupancy(), 0);
    }
}
