//! The complete detector: graph + table + re-learn cadence.

use crate::config::DetectorConfig;
use crate::graph::{DdgGraph, RetiredInst};
use crate::table::CriticalLoadTable;
use catch_obs::{Event, EventClass, EventKind, Obs};
use catch_trace::Pc;

/// Counters exposed by the detector.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct DetectorStats {
    /// Instructions observed at retirement.
    pub retired: u64,
    /// Critical-path walks performed.
    pub walks: u64,
    /// Critical load observations recorded into the table.
    pub critical_load_observations: u64,
    /// Total critical-path steps walked (the hardware walk occupies the
    /// graph for roughly this many cycles; the 2.5× buffer absorbs
    /// retirement during walks, per Section IV-A).
    pub walk_steps: u64,
    /// Confidence re-learn events.
    pub relearns: u64,
    /// Graph overflows (buffer discarded).
    pub overflows: u64,
}

impl catch_trace::counters::Counters for DetectorStats {
    fn counters_into(&self, prefix: &str, out: &mut catch_trace::counters::CounterVec) {
        use catch_trace::counters::push_counter;
        push_counter(out, prefix, "retired", self.retired);
        push_counter(out, prefix, "walks", self.walks);
        push_counter(
            out,
            prefix,
            "critical_load_observations",
            self.critical_load_observations,
        );
        push_counter(out, prefix, "walk_steps", self.walk_steps);
        push_counter(out, prefix, "relearns", self.relearns);
        push_counter(out, prefix, "overflows", self.overflows);
    }
}

impl catch_trace::counters::FromCounters for DetectorStats {
    fn from_counters(
        prefix: &str,
        src: &mut catch_trace::counters::CounterSource,
    ) -> Result<Self, String> {
        Ok(DetectorStats {
            retired: src.take(prefix, "retired")?,
            walks: src.take(prefix, "walks")?,
            critical_load_observations: src.take(prefix, "critical_load_observations")?,
            walk_steps: src.take(prefix, "walk_steps")?,
            relearns: src.take(prefix, "relearns")?,
            overflows: src.take(prefix, "overflows")?,
        })
    }
}

/// Hardware-style criticality detector (paper Section IV-A).
///
/// Feed every retired instruction to [`CriticalityDetector::on_retire`];
/// query [`CriticalityDetector::is_critical`] at dispatch time to decide
/// whether a load PC deserves TACT prefetching.
#[derive(Debug)]
pub struct CriticalityDetector {
    config: DetectorConfig,
    graph: DdgGraph,
    table: CriticalLoadTable,
    stats: DetectorStats,
    retired_since_relearn: u64,
    obs: Obs,
    obs_core: u32,
}

impl CriticalityDetector {
    /// Creates a detector.
    pub fn new(config: DetectorConfig) -> Self {
        let table = CriticalLoadTable::new(config.table_entries, config.table_ways);
        let graph = DdgGraph::new(config.clone());
        CriticalityDetector {
            config,
            graph,
            table,
            stats: DetectorStats::default(),
            retired_since_relearn: 0,
            obs: Obs::off(),
            obs_core: 0,
        }
    }

    /// Attaches an observability handle; graph walks and table
    /// insertions/evictions emit criticality-class events attributed to
    /// `core`. Detached by default.
    pub fn set_obs(&mut self, obs: Obs, core: u32) {
        self.obs = obs;
        self.obs_core = core;
    }

    /// Configuration in use.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Counters.
    pub fn stats(&self) -> DetectorStats {
        DetectorStats {
            overflows: self.graph.overflows(),
            ..self.stats
        }
    }

    /// Sequence number that will be assigned to the next retired
    /// instruction; the core uses these to describe producers.
    pub fn next_seq(&self) -> u64 {
        self.graph.next_seq()
    }

    /// Observes a retired instruction; walks and flushes the graph when
    /// the window threshold is reached.
    pub fn on_retire(&mut self, inst: RetiredInst) {
        self.on_retire_at(inst, 0);
    }

    /// Cycle-stamped variant of [`CriticalityDetector::on_retire`]; the
    /// cycle only feeds attached event sinks and never alters detection.
    pub fn on_retire_at(&mut self, inst: RetiredInst, cycle: u64) {
        self.stats.retired += 1;
        self.retired_since_relearn += 1;
        self.graph.push(inst);

        if self.graph.ready_to_walk() {
            self.stats.walks += 1;
            let path = self.graph.walk_critical_path();
            self.stats.walk_steps += path.len() as u64;
            let mut observed = 0u32;
            for (pc, level) in self.graph.critical_loads() {
                if self.config.track_levels.contains(&level) {
                    self.stats.critical_load_observations += 1;
                    observed += 1;
                    let evicted = self.table.insert(pc);
                    self.obs.emit(EventClass::CRIT, || Event {
                        cycle,
                        core: self.obs_core,
                        kind: EventKind::CritInsert { pc: pc.get() },
                    });
                    if let Some(victim) = evicted {
                        self.obs.emit(EventClass::CRIT, || Event {
                            cycle,
                            core: self.obs_core,
                            kind: EventKind::CritEvict { pc: victim.get() },
                        });
                    }
                }
            }
            self.obs.emit(EventClass::CRIT, || Event {
                cycle,
                core: self.obs_core,
                kind: EventKind::CritWalk {
                    path_len: path.len() as u32,
                    critical_loads: observed,
                },
            });
            self.graph.flush();
        }

        if self.retired_since_relearn >= self.config.confidence_reset_interval {
            self.retired_since_relearn = 0;
            self.stats.relearns += 1;
            self.table.relearn();
        }
    }

    /// True if `pc` is currently flagged critical with full confidence.
    pub fn is_critical(&self, pc: Pc) -> bool {
        self.table.is_critical(pc)
    }

    /// Currently flagged critical PCs.
    pub fn critical_pcs(&self) -> Vec<Pc> {
        self.table.critical_pcs()
    }

    /// Access to the underlying table (diagnostics, examples).
    pub fn table(&self) -> &CriticalLoadTable {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catch_cache::Level;

    fn small_config() -> DetectorConfig {
        DetectorConfig {
            rob_size: 8,
            quantize_shift: 0,
            rename_latency: 0,
            confidence_reset_interval: 1000,
            ..DetectorConfig::paper()
        }
    }

    fn pc(n: u64) -> Pc {
        Pc::new(0x1000 + n * 4)
    }

    /// Feeds a repeating pattern: a critical L2-hitting load feeding a
    /// dependence chain, plus independent noise loads that hit L1.
    fn feed_pattern(det: &mut CriticalityDetector, repetitions: usize) {
        for _ in 0..repetitions {
            let seq = det.next_seq();
            det.on_retire(RetiredInst::new(pc(0), 15).as_load(Level::L2));
            det.on_retire(RetiredInst::compute(pc(1), 10, &[seq]));
            det.on_retire(RetiredInst::compute(pc(2), 10, &[seq + 1]));
            // Noise: independent fast L1 load.
            det.on_retire(RetiredInst::new(pc(3), 5).as_load(Level::L1));
        }
    }

    #[test]
    fn detects_recurring_critical_load() {
        let mut det = CriticalityDetector::new(small_config());
        feed_pattern(&mut det, 40); // enough for several walks
        assert!(det.stats().walks > 0);
        assert!(det.is_critical(pc(0)), "L2-hit chain head must be critical");
        assert!(
            !det.is_critical(pc(3)),
            "L1-hit noise load must not be tracked (level filter)"
        );
    }

    #[test]
    fn level_filter_follows_config() {
        let cfg = small_config().with_track_levels(&[Level::L1]);
        let mut det = CriticalityDetector::new(cfg);
        feed_pattern(&mut det, 40);
        // Now only L1-hitting critical loads qualify; the L2 chain head is
        // excluded even though it is on the path.
        assert!(!det.is_critical(pc(0)));
    }

    #[test]
    fn relearn_happens_at_interval() {
        let mut cfg = small_config();
        cfg.confidence_reset_interval = 100;
        let mut det = CriticalityDetector::new(cfg);
        feed_pattern(&mut det, 100);
        assert!(det.stats().relearns >= 3);
        // Recurring critical load survives re-learn.
        assert!(det.is_critical(pc(0)));
    }

    #[test]
    fn critical_pcs_nonempty_after_training() {
        let mut det = CriticalityDetector::new(small_config());
        feed_pattern(&mut det, 40);
        let pcs = det.critical_pcs();
        assert!(pcs.contains(&pc(0)));
    }

    #[test]
    fn no_walk_before_threshold() {
        let mut det = CriticalityDetector::new(small_config());
        det.on_retire(RetiredInst::new(pc(0), 15).as_load(Level::L2));
        assert_eq!(det.stats().walks, 0);
        assert_eq!(det.stats().retired, 1);
    }
}
