//! Storage accounting for the detector hardware (paper Table I).
//!
//! The paper argues the whole mechanism costs about 3 KB: ~2.3 KB for the
//! graph buffer (per-instruction edge storage for a 2×-ROB window) plus
//! ~1 KB of 10-bit hashed PCs for the 2.5×-ROB buffer. This module encodes
//! those numbers so they can be asserted in tests and printed by the
//! `tab1_area` bench target.

/// Bits of storage per instruction for each edge class (Table I).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct EdgeBits {
    /// D-D, C-C, D-E, C-D: implicit edges, no storage.
    pub implicit: u32,
    /// E-C: 5-bit quantized execution latency.
    pub execution_latency: u32,
    /// E-E: three register sources + one memory dependence, 9-bit node
    /// numbers each.
    pub data_dependence: u32,
    /// E-D: one bit to signify bad speculation.
    pub bad_speculation: u32,
}

/// Table I of the paper.
pub const EDGE_BITS: EdgeBits = EdgeBits {
    implicit: 0,
    execution_latency: 5,
    data_dependence: 9 * 3 + 9,
    bad_speculation: 1,
};

impl EdgeBits {
    /// Total stored bits per buffered instruction for edges.
    pub const fn per_instruction(&self) -> u32 {
        self.implicit + self.execution_latency + self.data_dependence + self.bad_speculation
    }
}

/// Area summary of the full mechanism.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct AreaBudget {
    /// ROB size of the core.
    pub rob_size: usize,
    /// Bytes for the edge/cost storage of the walked (2× ROB) window.
    pub graph_bytes: u64,
    /// Bytes for hashed PCs over the full (2.5× ROB) buffer.
    pub pc_bytes: u64,
    /// Bytes for the 32-entry critical-load table.
    pub table_bytes: u64,
}

/// Bits of a hashed PC stored per instruction.
pub const HASHED_PC_BITS: u64 = 10;

/// Extra per-instruction bookkeeping: prev-node pointer (9 bits, enough
/// for a 2.5×224 window) plus a node cost (~16 bits saturating).
pub const BOOKKEEPING_BITS: u64 = 9 + 16;

impl AreaBudget {
    /// Computes the budget for a given ROB size with the paper's constants.
    pub fn for_rob(rob_size: usize) -> Self {
        let walked = 2 * rob_size as u64;
        let buffered = 5 * rob_size as u64 / 2;
        let per_inst_bits = EDGE_BITS.per_instruction() as u64 + BOOKKEEPING_BITS;
        let graph_bytes = (walked * per_inst_bits).div_ceil(8);
        let pc_bytes = (buffered * HASHED_PC_BITS).div_ceil(8);
        // 32 entries × (hashed tag 10b + confidence 2b + LRU ~3b).
        let table_bytes = (32 * (10 + 2 + 3u64)).div_ceil(8);
        AreaBudget {
            rob_size,
            graph_bytes,
            pc_bytes,
            table_bytes,
        }
    }

    /// Total bytes.
    pub fn total_bytes(&self) -> u64 {
        self.graph_bytes + self.pc_bytes + self.table_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_bits_match_table_one() {
        assert_eq!(EDGE_BITS.implicit, 0);
        assert_eq!(EDGE_BITS.execution_latency, 5);
        assert_eq!(EDGE_BITS.data_dependence, 36);
        assert_eq!(EDGE_BITS.bad_speculation, 1);
        assert_eq!(EDGE_BITS.per_instruction(), 42);
    }

    #[test]
    fn total_area_is_about_3_kb() {
        let budget = AreaBudget::for_rob(224);
        // Paper: ~2.3 KB graph + ~1 KB PCs ≈ 3 KB total.
        let total_kb = budget.total_bytes() as f64 / 1024.0;
        assert!(
            (2.5..4.5).contains(&total_kb),
            "total {total_kb:.2} KB should be about 3 KB"
        );
        let graph_kb = budget.graph_bytes as f64 / 1024.0;
        assert!(
            (2.0..4.0).contains(&graph_kb),
            "graph {graph_kb:.2} KB should be about 2.3 KB"
        );
        let pc_kb = budget.pc_bytes as f64 / 1024.0;
        assert!((0.5..1.0).contains(&pc_kb), "PCs {pc_kb:.2} KB ~ 0.7 KB");
    }

    #[test]
    fn budget_scales_with_rob() {
        let small = AreaBudget::for_rob(128);
        let big = AreaBudget::for_rob(512);
        assert!(big.total_bytes() > small.total_bytes());
    }
}
