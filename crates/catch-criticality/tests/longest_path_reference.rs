//! Gold-model check: the hardware's *incremental* longest-path
//! computation must agree with a brute-force dynamic-programming pass
//! over the same dependence graph, for arbitrary random instruction
//! windows.
//!
//! Properties run on the in-repo deterministic case driver
//! ([`catch_trace::rng::Cases`]); a failing case prints the seed that
//! reproduces it.

use catch_cache::Level;
use catch_criticality::{DdgGraph, DetectorConfig, NodeKind, RetiredInst};
use catch_trace::rng::{Cases, SplitMix64};
use catch_trace::Pc;

/// A compact random instruction for graph generation.
#[derive(Clone, Debug)]
struct GenInst {
    latency: u64,
    /// Producer offsets (1 = previous instruction), 0 = none.
    dep1: u64,
    dep2: u64,
    is_load: bool,
    mispredict: bool,
}

fn config(rob: usize) -> DetectorConfig {
    DetectorConfig {
        rob_size: rob,
        quantize_shift: 0,
        rename_latency: 1,
        redirect_penalty: 10,
        ..DetectorConfig::paper()
    }
}

/// Brute-force reference: compute D/E/C node costs with a full DP over
/// the entire window using the same edge rules as the hardware model.
fn reference_costs(insts: &[GenInst], cfg: &DetectorConfig) -> Vec<(u64, u64, u64)> {
    let n = insts.len();
    let mut costs = vec![(0u64, 0u64, 0u64); n];
    // Quantized latency.
    let lat: Vec<u64> = insts.iter().map(|i| cfg.quantize(i.latency)).collect();
    for i in 0..n {
        let mut d = 0u64;
        if i > 0 {
            d = d.max(costs[i - 1].0); // D-D
        }
        if i >= cfg.rob_size {
            d = d.max(costs[i - cfg.rob_size].2); // C-D
        }
        if i > 0 && insts[i - 1].mispredict {
            d = d.max(costs[i - 1].1 + lat[i - 1] + cfg.redirect_penalty); // E-D
        }
        let mut e = d + cfg.rename_latency; // D-E
        for dep in [insts[i].dep1, insts[i].dep2] {
            if dep != 0 && dep as usize <= i {
                let p = i - dep as usize;
                e = e.max(costs[p].1 + lat[p]); // E-E
            }
        }
        let mut c = e + lat[i]; // E-C
        if i > 0 {
            c = c.max(costs[i - 1].2); // C-C
        }
        costs[i] = (d, e, c);
    }
    costs
}

fn gen_inst(rng: &mut SplitMix64) -> GenInst {
    GenInst {
        latency: rng.gen_range(1u64..31),
        dep1: rng.gen_range(0u64..4),
        dep2: rng.gen_range(0u64..8),
        is_load: rng.gen_bool(0.5),
        mispredict: rng.gen_bool(0.1),
    }
}

fn gen_insts(rng: &mut SplitMix64, min: usize, max: usize) -> Vec<GenInst> {
    let n = rng.gen_range(min..max);
    (0..n).map(|_| gen_inst(rng)).collect()
}

#[test]
fn incremental_costs_match_brute_force() {
    Cases::new(128).run(|rng| {
        let insts = gen_insts(rng, 2, 40);
        let rob = rng.gen_range(16usize..48);
        let cfg = config(rob);
        // Stay within the buffer so nothing is discarded mid-test.
        if insts.len() > cfg.buffer_capacity() {
            return;
        }
        let mut graph = DdgGraph::new(cfg.clone());
        for (i, inst) in insts.iter().enumerate() {
            let mut ri = RetiredInst::new(Pc::new(0x1000 + i as u64 * 4), inst.latency);
            let mut producers = Vec::new();
            for dep in [inst.dep1, inst.dep2] {
                if dep != 0 && dep as usize <= i {
                    producers.push((i - dep as usize) as u64);
                }
            }
            ri = ri.with_producers(&producers);
            if inst.is_load {
                ri = ri.as_load(Level::L2);
            }
            if inst.mispredict {
                ri = ri.as_mispredicted_branch();
            }
            graph.push(ri);
        }

        let reference = reference_costs(&insts, &cfg);
        // E-node costs must match exactly for every instruction.
        for (i, &(_, e_ref, _)) in reference.iter().enumerate() {
            let node = graph.node(i as u64).expect("buffered");
            assert_eq!(
                node.e_cost(),
                e_ref,
                "E cost mismatch at instruction {i} (rob {rob})"
            );
        }
    });
}

/// The enumerated critical path must (a) start at the youngest C node,
/// (b) only step to nodes with non-increasing cost, and (c) contain
/// every load the graph reports as critical.
#[test]
fn walk_is_consistent() {
    Cases::new(128).run(|rng| {
        let insts = gen_insts(rng, 2, 100);
        let cfg = config(64); // buffer capacity 160 > max window here
        let mut graph = DdgGraph::new(cfg);
        for (i, inst) in insts.iter().enumerate() {
            let mut ri = RetiredInst::new(Pc::new(0x1000 + i as u64 * 4), inst.latency);
            if inst.dep1 != 0 && inst.dep1 as usize <= i {
                ri = ri.with_producers(&[(i - inst.dep1 as usize) as u64]);
            }
            if inst.is_load {
                ri = ri.as_load(Level::Llc);
            }
            graph.push(ri);
        }
        let path = graph.walk_critical_path();
        assert!(!path.is_empty());
        assert_eq!(path[0].seq, insts.len() as u64 - 1);
        assert_eq!(path[0].kind, NodeKind::Commit);
        // Sequence numbers never increase along the backward walk by more
        // than the window (sanity) and the path ends at the window start
        // or a D node.
        for w in path.windows(2) {
            assert!(w[1].seq <= w[0].seq);
        }
        // Critical loads are E-nodes of loads on the path.
        let critical = graph.critical_loads();
        for (pc, _) in critical {
            let on_path = path.iter().any(|s| {
                s.kind == NodeKind::Execute && graph.node(s.seq).map(|n| n.pc) == Some(pc)
            });
            assert!(on_path, "critical load {pc} not on walked path");
        }
    });
}
