//! Cache DAO: read-side access to the on-disk run-cache shards.
//!
//! The run cache (`catch_core::runcache`) persists one JSON shard per
//! structural fingerprint under `CATCH_RUN_CACHE=<dir>`. Simulation
//! correctness never depends on this module — loads and stores go
//! through the cache itself — but the daemon's `/stats` response and the
//! `run_experiment cache-stats` subcommand need an inventory: how many
//! shards exist, how big they are, and how stale. That is this module's
//! whole job, so cache-directory layout knowledge stays in one place.

use std::io;
use std::path::Path;
use std::time::SystemTime;

/// Aggregate statistics over one cache directory.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Persisted result shards (`<fingerprint>.json` files).
    pub entries: u64,
    /// Total bytes across all shards.
    pub bytes: u64,
    /// Age of the oldest shard in seconds (0 when empty).
    pub oldest_secs: u64,
    /// Age of the newest shard in seconds (0 when empty).
    pub newest_secs: u64,
}

/// True for a committed shard file name: `<32 hex chars>.json`.
/// In-flight temporaries (`.<fp>.tmp.<pid>`) and foreign files are not
/// shards and are excluded from every statistic.
fn is_shard_name(name: &str) -> bool {
    name.strip_suffix(".json")
        .map(|stem| stem.len() == 32 && stem.bytes().all(|b| b.is_ascii_hexdigit()))
        .unwrap_or(false)
}

/// Scans `dir` and aggregates shard statistics. A missing directory is
/// an empty cache, not an error (the cache creates it lazily on the
/// first store); other IO failures propagate.
pub fn scan(dir: &Path) -> io::Result<ShardStats> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(ShardStats::default()),
        Err(e) => return Err(e),
    };
    let now = SystemTime::now();
    let mut stats = ShardStats::default();
    let mut oldest: Option<u64> = None;
    let mut newest: Option<u64> = None;
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else {
            continue;
        };
        if !is_shard_name(name) {
            continue;
        }
        let meta = entry.metadata()?;
        if !meta.is_file() {
            continue;
        }
        stats.entries += 1;
        stats.bytes += meta.len();
        let age = meta
            .modified()
            .ok()
            .and_then(|m| now.duration_since(m).ok())
            .map(|d| d.as_secs())
            .unwrap_or(0);
        oldest = Some(oldest.map_or(age, |o| o.max(age)));
        newest = Some(newest.map_or(age, |n| n.min(age)));
    }
    stats.oldest_secs = oldest.unwrap_or(0);
    stats.newest_secs = newest.unwrap_or(0);
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "catch-cachedao-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn missing_directory_is_an_empty_cache() {
        let dir = std::env::temp_dir().join("catch-cachedao-does-not-exist");
        assert_eq!(scan(&dir).expect("missing dir ok"), ShardStats::default());
    }

    #[test]
    fn counts_only_committed_shards() {
        let dir = temp_dir("filter");
        let shard = "0123456789abcdef0123456789abcdef.json";
        std::fs::write(dir.join(shard), b"{\"schema\": 1}\n").expect("write shard");
        // Things that must NOT count: temporaries, foreign files,
        // wrong-length stems, non-hex stems.
        std::fs::write(dir.join(".deadbeef.tmp.123"), b"x").expect("write tmp");
        std::fs::write(dir.join("README.md"), b"x").expect("write foreign");
        std::fs::write(dir.join("abc.json"), b"x").expect("write short");
        std::fs::write(dir.join("zzzz456789abcdef0123456789abcdef.json"), b"x")
            .expect("write non-hex");
        let stats = scan(&dir).expect("scan");
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.bytes, 14);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scans_real_cache_output() {
        use catch_core::{CacheMode, RunCache, System, SystemConfig};
        let dir = temp_dir("real");
        let cache = RunCache::new(CacheMode::Disk(dir.clone()));
        let spec = catch_workloads::suite::by_name("linpack_like").expect("known");
        let eval = catch_core::experiments::EvalConfig {
            ops: 400,
            warmup: 100,
            seed: 1,
            sample: None,
            fidelity: catch_core::experiments::Fidelity::Ooo,
        };
        let config = SystemConfig::baseline_exclusive();
        let trace = cache.trace(&spec, eval.ops, eval.seed);
        cache.run_result(&config, &eval, spec.name, || {
            System::new(config.clone()).run_st((*trace).clone())
        });
        let stats = scan(&dir).expect("scan");
        assert_eq!(stats.entries, 1, "one simulation, one shard");
        assert!(stats.bytes > 100, "shard carries the counter map");
        assert!(stats.oldest_secs >= stats.newest_secs);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
