//! The scheduler core: priority classes + per-client fair share.
//!
//! The daemon keeps one [`Scheduler`] shared by every connection thread
//! (producers) and every worker thread (consumers). A job is one
//! experiment request; identical requests coalesce onto one job at
//! admission (see [`crate::admission`]), so the queue only ever holds
//! unique work.
//!
//! **Dispatch policy** (deterministic, asserted by the unit tests):
//!
//! 1. **Strict priority classes** — among queued jobs, only the best
//!    present class (interactive > sweep > background) is eligible.
//! 2. **Fair share within the class** — among eligible jobs, pick the
//!    one whose submitting client has the smallest cumulative dispatched
//!    cost (micro-ops). A client that just ran a big sweep sinks below a
//!    client that has run nothing.
//! 3. **Deterministic tie-breaks** — equal shares break by client name
//!    (lexicographic), then by arrival order.
//!
//! Shares are charged to the client that *caused admission*; clients
//! that coalesce onto an existing job ride free — that is the incentive
//! to dedup, and it cannot starve anyone because the work would have run
//! for the first client anyway.
//!
//! **Cost reconciliation**: dispatch charges the job's *nominal* cost
//! (`eval.ops`) so an in-flight job keeps weighing on its client, but
//! the nominal figure over-bills work the run cache served warm — a
//! client replaying a fully cached sweep would be billed as if it had
//! simulated everything and starve behind fresh clients. Workers
//! therefore measure what actually ran (run-cache miss delta) and pass
//! it to [`Scheduler::complete`], which replaces the nominal charge
//! with the measured one. `None` keeps the nominal charge (callers with
//! no measurement, e.g. unit tests driving the queue directly).
//!
//! **Drain semantics**: [`Scheduler::drain`] rejects every queued job
//! with a retryable error, lets running jobs finish and deliver, and
//! makes [`Scheduler::next_job`] return `None` so workers exit. New
//! submissions after drain are rejected as [`Admission::Draining`].
//!
//! Deliveries (report and error frames alike) always happen *outside*
//! the scheduler lock: a slow or dead client can block its own socket
//! write, never the scheduler.

use crate::admission::{request_fingerprint, Admission};
use crate::protocol::{Priority, Response, RunRequest, SchedulerStats};
use catch_core::experiments::EvalConfig;
use catch_core::FxHashMap;
use catch_obs::{Event, EventClass, EventKind, Obs};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Delivers one response frame to the requester (typically a closure
/// over a connection's shared write half).
pub type Deliver = Box<dyn FnOnce(Response) + Send>;

/// One admitted request waiting for its job's result.
struct Waiter {
    seq: u64,
    deliver: Deliver,
}

/// One unique unit of queued or running work.
struct Job {
    job: u64,
    id: String,
    eval: EvalConfig,
    /// Client charged for the job (the first submitter).
    client: String,
    priority: Priority,
    arrival: u64,
    running: bool,
    /// Nominal cost charged at dispatch, reconciled at completion.
    charged: u64,
    waiters: Vec<Waiter>,
}

/// A dispatched job as handed to a worker thread.
#[derive(Clone, Debug)]
pub struct RunnableJob {
    /// Daemon-assigned job id.
    pub job: u64,
    /// Admission fingerprint (the completion key).
    pub fp: u128,
    /// Experiment id to run.
    pub id: String,
    /// Evaluation scale.
    pub eval: EvalConfig,
}

#[derive(Default)]
struct Counters {
    admitted: u64,
    coalesced: u64,
    rejected: u64,
    completed: u64,
}

struct Inner {
    /// Every queued or running job, keyed by admission fingerprint.
    jobs: FxHashMap<u128, Job>,
    /// Cumulative dispatched cost (micro-ops) per client.
    shares: BTreeMap<String, u64>,
    next_job_id: u64,
    arrivals: u64,
    draining: bool,
    counters: Counters,
}

/// The shared job queue (see the module docs for the policy).
pub struct Scheduler {
    inner: Mutex<Inner>,
    ready: Condvar,
    max_queue: usize,
    obs: Obs,
    obs_seq: AtomicU64,
}

impl Scheduler {
    /// An empty scheduler admitting at most `max_queue` queued jobs,
    /// emitting [`EventClass::SERVER`] events to `obs`.
    pub fn new(max_queue: usize, obs: Obs) -> Self {
        Scheduler {
            inner: Mutex::new(Inner {
                jobs: FxHashMap::default(),
                shares: BTreeMap::new(),
                next_job_id: 1,
                arrivals: 0,
                draining: false,
                counters: Counters::default(),
            }),
            ready: Condvar::new(),
            max_queue,
            obs,
            obs_seq: AtomicU64::new(0),
        }
    }

    fn emit(&self, kind: EventKind) {
        self.obs.emit(EventClass::SERVER, || Event {
            cycle: self.obs_seq.fetch_add(1, Ordering::Relaxed),
            core: 0,
            kind,
        });
    }

    /// Admits, coalesces or rejects `req`. The `deliver` callback
    /// receives exactly one response frame: the job's report (or
    /// execution error) on admission/coalescing, a retryable error on
    /// rejection. Rejection errors are delivered before this returns.
    pub fn submit(&self, req: RunRequest, deliver: Deliver) -> Admission {
        let fp = request_fingerprint(&req.id, &req.eval);
        let (decision, reject): (Admission, Option<Waiter>) = {
            let mut inner = self.inner.lock().expect("scheduler poisoned");
            if inner.draining {
                inner.counters.rejected += 1;
                (
                    Admission::Draining,
                    Some(Waiter {
                        seq: req.seq,
                        deliver,
                    }),
                )
            } else if let Some(job) = inner.jobs.get_mut(&fp) {
                job.waiters.push(Waiter {
                    seq: req.seq,
                    deliver,
                });
                let (job_id, waiters) = (job.job, job.waiters.len() as u32);
                inner.counters.coalesced += 1;
                self.emit(EventKind::ServerCoalesce {
                    job: job_id,
                    waiters,
                });
                (Admission::Coalesced { job: job_id }, None)
            } else if inner.jobs.values().filter(|j| !j.running).count() >= self.max_queue {
                inner.counters.rejected += 1;
                let depth = inner.jobs.values().filter(|j| !j.running).count() as u32;
                self.emit(EventKind::ServerReject { depth });
                (
                    Admission::QueueFull,
                    Some(Waiter {
                        seq: req.seq,
                        deliver,
                    }),
                )
            } else {
                let job_id = inner.next_job_id;
                inner.next_job_id += 1;
                inner.arrivals += 1;
                let arrival = inner.arrivals;
                inner.jobs.insert(
                    fp,
                    Job {
                        job: job_id,
                        id: req.id,
                        eval: req.eval,
                        client: req.client,
                        priority: req.priority,
                        arrival,
                        running: false,
                        charged: 0,
                        waiters: vec![Waiter {
                            seq: req.seq,
                            deliver,
                        }],
                    },
                );
                inner.counters.admitted += 1;
                let depth = inner.jobs.values().filter(|j| !j.running).count() as u32;
                self.emit(EventKind::ServerAdmit { job: job_id, depth });
                self.ready.notify_one();
                (Admission::New { job: job_id }, None)
            }
        };
        if let Some(w) = reject {
            (w.deliver)(Response::Error {
                seq: w.seq,
                retryable: true,
                message: decision.reject_message(),
            });
        }
        decision
    }

    /// Picks the best queued job under the dispatch policy, or `None`
    /// when nothing is queued.
    fn pick(inner: &mut Inner) -> Option<u128> {
        let best = inner
            .jobs
            .iter()
            .filter(|(_, j)| !j.running)
            .min_by_key(|(_, j)| {
                (
                    j.priority.rank(),
                    inner.shares.get(&j.client).copied().unwrap_or(0),
                    j.client.clone(),
                    j.arrival,
                )
            })
            .map(|(fp, _)| *fp)?;
        Some(best)
    }

    fn dispatch(&self, inner: &mut Inner, fp: u128) -> RunnableJob {
        let job = inner.jobs.get_mut(&fp).expect("picked job exists");
        job.running = true;
        // Charge the nominal share at dispatch, not completion: a client
        // with a long job in flight must not look idle to the fairness
        // rule. The charge is reconciled against the measured cost in
        // `complete` (a warm cache hit costs ~nothing).
        let cost = job.eval.ops as u64;
        job.charged = cost;
        let runnable = RunnableJob {
            job: job.job,
            fp,
            id: job.id.clone(),
            eval: job.eval,
        };
        let client = job.client.clone();
        *inner.shares.entry(client).or_insert(0) += cost;
        let depth = inner.jobs.values().filter(|j| !j.running).count() as u32;
        self.emit(EventKind::ServerDispatch {
            job: runnable.job,
            depth,
        });
        runnable
    }

    /// Blocks until a job is available (returning it marked running) or
    /// the scheduler is draining with an empty queue (returning `None`,
    /// the worker's signal to exit).
    pub fn next_job(&self) -> Option<RunnableJob> {
        let mut inner = self.inner.lock().expect("scheduler poisoned");
        loop {
            if let Some(fp) = Self::pick(&mut inner) {
                return Some(self.dispatch(&mut inner, fp));
            }
            if inner.draining {
                return None;
            }
            inner = self.ready.wait(inner).expect("scheduler poisoned");
        }
    }

    /// Non-blocking [`Scheduler::next_job`] (tests and opportunistic
    /// polling).
    pub fn try_next(&self) -> Option<RunnableJob> {
        let mut inner = self.inner.lock().expect("scheduler poisoned");
        let fp = Self::pick(&mut inner)?;
        Some(self.dispatch(&mut inner, fp))
    }

    /// Completes a dispatched job, delivering `outcome` to every waiter:
    /// `Ok(report)` becomes a report frame, `Err(msg)` a non-retryable
    /// error frame (the execution panicked — resubmitting identical work
    /// would panic identically).
    ///
    /// `actual_cost` is the measured cost of the job in micro-ops
    /// (typically run-cache misses × `eval.ops`): `Some(actual)`
    /// replaces the nominal charge taken at dispatch, so warm cache
    /// replays bill ~zero and cold jobs bill what they really simulated;
    /// `None` keeps the nominal charge.
    pub fn complete(&self, fp: u128, outcome: Result<String, String>, actual_cost: Option<u64>) {
        let (id, waiters) = {
            let mut inner = self.inner.lock().expect("scheduler poisoned");
            let job = inner
                .jobs
                .remove(&fp)
                .expect("completed job was dispatched");
            if let Some(actual) = actual_cost {
                let share = inner.shares.entry(job.client.clone()).or_insert(0);
                *share = share.saturating_sub(job.charged).saturating_add(actual);
            }
            inner.counters.completed += 1;
            self.emit(EventKind::ServerComplete {
                job: job.job,
                waiters: job.waiters.len() as u32,
            });
            (job.id, job.waiters)
        };
        for w in waiters {
            let response = match &outcome {
                Ok(report) => Response::Report {
                    seq: w.seq,
                    id: id.clone(),
                    report: report.clone(),
                },
                Err(msg) => Response::Error {
                    seq: w.seq,
                    retryable: false,
                    message: msg.clone(),
                },
            };
            (w.deliver)(response);
        }
    }

    /// Begins draining: every queued job's waiters get a retryable
    /// error, running jobs keep running, workers wake and exit once the
    /// queue is empty, and later submissions are rejected.
    pub fn drain(&self) {
        let rejected: Vec<Waiter> = {
            let mut inner = self.inner.lock().expect("scheduler poisoned");
            inner.draining = true;
            let queued: Vec<u128> = inner
                .jobs
                .iter()
                .filter(|(_, j)| !j.running)
                .map(|(fp, _)| *fp)
                .collect();
            let mut all = Vec::new();
            for fp in queued {
                let job = inner.jobs.remove(&fp).expect("listed job exists");
                inner.counters.rejected += job.waiters.len() as u64;
                all.extend(job.waiters);
            }
            self.emit(EventKind::ServerDrain {
                rejected: all.len() as u32,
            });
            self.ready.notify_all();
            all
        };
        for w in rejected {
            (w.deliver)(Response::Error {
                seq: w.seq,
                retryable: true,
                message: "server draining; queued job rejected".to_string(),
            });
        }
    }

    /// True once [`Scheduler::drain`] has run.
    pub fn is_draining(&self) -> bool {
        self.inner.lock().expect("scheduler poisoned").draining
    }

    /// Snapshot of the scheduler-side statistics for a `stats` response.
    pub fn stats(&self) -> SchedulerStats {
        let inner = self.inner.lock().expect("scheduler poisoned");
        SchedulerStats {
            queue_depth: inner.jobs.values().filter(|j| !j.running).count() as u64,
            running: inner.jobs.values().filter(|j| j.running).count() as u64,
            admitted: inner.counters.admitted,
            coalesced: inner.counters.coalesced,
            rejected: inner.counters.rejected,
            completed: inner.counters.completed,
            shares: inner.shares.iter().map(|(c, n)| (c.clone(), *n)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn req(id: &str, client: &str, priority: Priority, seq: u64) -> RunRequest {
        RunRequest {
            seq,
            client: client.to_string(),
            priority,
            id: id.to_string(),
            eval: EvalConfig::quick(),
        }
    }

    fn collector() -> (Deliver, mpsc::Receiver<Response>) {
        let (tx, rx) = mpsc::channel();
        (
            Box::new(move |r| {
                let _ = tx.send(r);
            }),
            rx,
        )
    }

    /// Distinct eval scales make distinct fingerprints for one id.
    fn distinct(id: &str, client: &str, priority: Priority, ops_bump: usize) -> RunRequest {
        let mut r = req(id, client, priority, 1);
        r.eval.ops += ops_bump;
        r
    }

    #[test]
    fn strict_priority_between_classes() {
        let s = Scheduler::new(16, Obs::off());
        let order = [
            distinct("fig1", "zed", Priority::Background, 0),
            distinct("fig1", "zed", Priority::Sweep, 1),
            distinct("fig1", "zed", Priority::Interactive, 2),
        ];
        for r in order {
            let (d, _rx) = collector();
            assert!(matches!(s.submit(r, d), Admission::New { .. }));
        }
        let picked: Vec<usize> = (0..3)
            .map(|_| {
                let j = s.try_next().expect("job available");
                s.complete(j.fp, Ok(String::new()), None);
                j.eval.ops - EvalConfig::quick().ops
            })
            .collect();
        assert_eq!(picked, vec![2, 1, 0], "interactive > sweep > background");
    }

    #[test]
    fn fair_share_alternates_between_clients() {
        let s = Scheduler::new(16, Obs::off());
        // alice floods the queue first; bob submits after. With naive
        // FIFO bob would wait behind all of alice's jobs.
        for i in 0..3 {
            let (d, _rx) = collector();
            s.submit(distinct("fig1", "alice", Priority::Sweep, i), d);
        }
        for i in 0..3 {
            let (d, _rx) = collector();
            s.submit(distinct("fig1", "bob", Priority::Sweep, 10 + i), d);
        }
        let mut order = Vec::new();
        while let Some(j) = s.try_next() {
            // Recover the client from the share table delta is clumsy;
            // encode it in ops instead: bob's bumps are >= 10.
            order.push(if j.eval.ops - EvalConfig::quick().ops >= 10 {
                "bob"
            } else {
                "alice"
            });
            s.complete(j.fp, Ok(String::new()), None);
        }
        assert_eq!(
            order,
            vec!["alice", "bob", "alice", "bob", "alice", "bob"],
            "equal-share clients alternate (tie-break: name, then arrival)"
        );
    }

    #[test]
    fn coalesced_requests_share_one_job_and_all_get_the_report() {
        let s = Scheduler::new(16, Obs::off());
        let (d1, rx1) = collector();
        let (d2, rx2) = collector();
        assert!(matches!(
            s.submit(req("fig10", "alice", Priority::Sweep, 1), d1),
            Admission::New { .. }
        ));
        assert!(matches!(
            s.submit(req("fig10", "bob", Priority::Sweep, 2), d2),
            Admission::Coalesced { .. }
        ));
        let j = s.try_next().expect("one job");
        assert!(s.try_next().is_none(), "only one job was queued");
        s.complete(j.fp, Ok("REPORT".to_string()), None);
        for (rx, seq) in [(rx1, 1), (rx2, 2)] {
            match rx.try_recv().expect("delivered") {
                Response::Report {
                    seq: got, report, ..
                } => {
                    assert_eq!(got, seq);
                    assert_eq!(report, "REPORT");
                }
                other => panic!("wrong response {other:?}"),
            }
        }
        let stats = s.stats();
        assert_eq!((stats.admitted, stats.coalesced), (1, 1));
        assert_eq!(
            stats.shares,
            vec![("alice".to_string(), EvalConfig::quick().ops as u64)],
            "coalesced bob rides free; alice is charged"
        );
    }

    #[test]
    fn queue_full_rejects_with_retryable_error() {
        let s = Scheduler::new(1, Obs::off());
        let (d1, _rx1) = collector();
        s.submit(distinct("fig1", "a", Priority::Sweep, 0), d1);
        let (d2, rx2) = collector();
        let decision = s.submit(distinct("fig1", "a", Priority::Sweep, 1), d2);
        assert_eq!(decision, Admission::QueueFull);
        match rx2.try_recv().expect("rejection delivered synchronously") {
            Response::Error {
                retryable, message, ..
            } => {
                assert!(retryable);
                assert!(message.contains("queue full"));
            }
            other => panic!("wrong response {other:?}"),
        }
    }

    #[test]
    fn drain_rejects_queued_lets_running_finish_and_stops_workers() {
        let s = Scheduler::new(16, Obs::off());
        let (d1, rx1) = collector();
        let (d2, rx2) = collector();
        s.submit(distinct("fig1", "a", Priority::Sweep, 0), d1);
        s.submit(distinct("fig1", "a", Priority::Sweep, 1), d2);
        let running = s.try_next().expect("first job dispatched");
        s.drain();
        // The queued job was rejected with a retryable error...
        match rx2.try_recv().expect("queued job rejected") {
            Response::Error { retryable, .. } => assert!(retryable),
            other => panic!("wrong response {other:?}"),
        }
        // ...the running job still completes and delivers...
        assert!(rx1.try_recv().is_err(), "running job not rejected");
        s.complete(running.fp, Ok("DONE".to_string()), None);
        assert!(matches!(
            rx1.try_recv().expect("running job delivered"),
            Response::Report { .. }
        ));
        // ...workers see end-of-queue, and new submissions bounce.
        assert!(s.next_job().is_none(), "drained queue ends the workers");
        let (d3, rx3) = collector();
        assert_eq!(
            s.submit(distinct("fig1", "a", Priority::Sweep, 2), d3),
            Admission::Draining
        );
        assert!(matches!(
            rx3.try_recv().expect("rejected"),
            Response::Error {
                retryable: true,
                ..
            }
        ));
    }

    #[test]
    fn failed_jobs_deliver_non_retryable_errors() {
        let s = Scheduler::new(16, Obs::off());
        let (d, rx) = collector();
        s.submit(req("fig10", "a", Priority::Sweep, 5), d);
        let j = s.try_next().expect("dispatched");
        s.complete(j.fp, Err("simulation panicked".to_string()), None);
        match rx.try_recv().expect("delivered") {
            Response::Error {
                seq,
                retryable,
                message,
            } => {
                assert_eq!(seq, 5);
                assert!(!retryable);
                assert!(message.contains("panicked"));
            }
            other => panic!("wrong response {other:?}"),
        }
    }

    #[test]
    fn completion_reconciles_share_to_measured_cost() {
        let s = Scheduler::new(16, Obs::off());
        let nominal = EvalConfig::quick().ops as u64;

        // alice's job ran fully warm: the run cache served everything,
        // so her measured cost is zero and the nominal dispatch charge
        // must be refunded — not billed as if she simulated it all.
        let (d, _rx) = collector();
        s.submit(distinct("fig1", "alice", Priority::Sweep, 0), d);
        let j = s.try_next().expect("dispatched");
        let mid = s.stats();
        assert_eq!(
            mid.shares,
            vec![("alice".to_string(), nominal)],
            "in-flight job carries the nominal charge"
        );
        s.complete(j.fp, Ok(String::new()), Some(0));

        // bob's job ran cold and simulated five evaluations' worth.
        let (d, _rx) = collector();
        s.submit(distinct("fig1", "bob", Priority::Sweep, 0), d);
        let j = s.try_next().expect("dispatched");
        s.complete(j.fp, Ok(String::new()), Some(5 * nominal));

        let stats = s.stats();
        assert_eq!(
            stats.shares,
            vec![("alice".to_string(), 0), ("bob".to_string(), 5 * nominal)],
            "warm replay reconciles to zero; cold work bills what it ran"
        );

        // Fairness consequence: with equal queues, warm-replaying alice
        // now outranks bob instead of starving behind her own cache hits.
        let (d, _rx) = collector();
        s.submit(distinct("fig1", "bob", Priority::Sweep, 1), d);
        let (d, _rx) = collector();
        s.submit(distinct("fig1", "alice", Priority::Sweep, 2), d);
        let next = s.try_next().expect("dispatched");
        let stats = s.stats();
        assert_eq!(
            stats.shares.iter().find(|(c, _)| c == "alice").unwrap().1,
            next.eval.ops as u64,
            "alice (share 0) was picked over bob despite arriving later"
        );
        assert_eq!(next.eval.ops, EvalConfig::quick().ops + 2, "alice's job");
        s.complete(next.fp, Ok(String::new()), None);
    }

    #[test]
    fn server_events_are_emitted() {
        use catch_obs::VecSink;
        use std::sync::{Arc, Mutex};
        let sink = Arc::new(Mutex::new(VecSink::new()));
        let obs = Obs::attached(sink.clone(), EventClass::SERVER);
        let s = Scheduler::new(16, obs);
        let (d1, _r1) = collector();
        let (d2, _r2) = collector();
        s.submit(req("fig10", "a", Priority::Sweep, 1), d1);
        s.submit(req("fig10", "b", Priority::Sweep, 2), d2);
        let j = s.try_next().expect("dispatched");
        s.complete(j.fp, Ok(String::new()), None);
        s.drain();
        let names: Vec<&'static str> = sink
            .lock()
            .expect("sink")
            .events()
            .iter()
            .map(|e| e.name())
            .collect();
        assert_eq!(
            names,
            vec![
                "server.admit",
                "server.coalesce",
                "server.dispatch",
                "server.complete",
                "server.drain"
            ]
        );
    }
}
