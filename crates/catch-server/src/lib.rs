//! Simulation as a service: a thread-pool daemon for the CATCH
//! experiment registry.
//!
//! `catch-server` turns the local `run_experiment` workflow into a
//! long-lived daemon that accepts experiment requests over a unix
//! domain socket, dedups them against in-flight jobs and the
//! content-addressed run cache, and schedules them across a worker pool
//! with per-client fair share and strict priority classes. Results are
//! byte-identical to a local `catch_core::experiments::run` — the
//! daemon renders the same `Report` through the same `Display` path and
//! ships the text through the same JSON writer/parser pair the run
//! cache persists with.
//!
//! The crate is layered bottom-up, one module per concern:
//!
//! * [`protocol`] — wire format: newline-delimited JSON frames,
//!   request/response types, the frame-size cap.
//! * [`admission`] — policy: request fingerprints, dedup decisions,
//!   queue caps, id validation.
//! * [`scheduler`] — mechanism: the job table, priority + fair-share
//!   dispatch order, coalesced waiters, drain semantics.
//! * [`cachedao`] — read-side access to the on-disk run-cache shards
//!   (inventory for `/stats` and `cache-stats`).
//! * [`server`] — the daemon itself: accept loop, connection threads,
//!   worker pool, graceful shutdown.
//! * [`client`] — a synchronous client used by the CLI's `--server`
//!   mode and the test suites.
//!
//! Everything is plain `std` threads and blocking IO — no async
//! runtime, no new dependencies (see DESIGN.md §12 for the protocol
//! grammar and scheduling policy).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod cachedao;
pub mod client;
pub mod protocol;
pub mod scheduler;
pub mod server;

pub use admission::{request_fingerprint, Admission, DEFAULT_MAX_QUEUE};
pub use cachedao::ShardStats;
pub use client::{Client, ClientError};
pub use protocol::{Priority, Request, Response, RunRequest, SchedulerStats, MAX_FRAME_BYTES};
pub use scheduler::Scheduler;
pub use server::{Server, ServerConfig, ServerHandle};
