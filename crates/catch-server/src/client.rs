//! A small synchronous client for the daemon.
//!
//! One [`Client`] owns one connection with one outstanding request at a
//! time (seq-correlated, so interleavings from a buggy server are caught
//! rather than mis-delivered). The CLI's `--server` mode and the test
//! suites are both built on this type; anything speaking the protocol
//! from Rust should be too.

use crate::cachedao::ShardStats;
use crate::protocol::{Priority, Request, Response, RunRequest, SchedulerStats};
use catch_core::experiments::EvalConfig;
use catch_core::CacheSummary;
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The connection broke (daemon gone, socket missing, ...).
    Io(io::Error),
    /// The daemon answered, but not with the frame we expected.
    Protocol(String),
    /// The daemon rejected the request with an error response.
    Server {
        /// Whether resubmitting later can succeed (queue full, draining).
        retryable: bool,
        /// Daemon-supplied reason.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server { retryable, message } => {
                let kind = if *retryable { "retryable" } else { "permanent" };
                write!(f, "server error ({kind}): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// True when resubmitting the same request later can succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ClientError::Server {
                retryable: true,
                ..
            }
        )
    }
}

/// One connection to a running daemon.
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
    name: String,
    priority: Priority,
    seq: u64,
}

impl Client {
    /// Connects to the daemon at `sock`. The default identity is
    /// `anon-<pid>` at [`Priority::Interactive`]; override with
    /// [`Client::with_identity`].
    pub fn connect(sock: &Path) -> io::Result<Client> {
        let stream = UnixStream::connect(sock)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            name: format!("anon-{}", std::process::id()),
            priority: Priority::Interactive,
            seq: 0,
        })
    }

    /// Sets the fair-share identity and scheduling class for subsequent
    /// run requests.
    pub fn with_identity(mut self, name: &str, priority: Priority) -> Client {
        self.name = name.to_string();
        self.priority = priority;
        self
    }

    fn round_trip(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.writer.write_all(request.encode().as_bytes())?;
        self.writer.flush()?;
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "daemon closed the connection",
                )));
            }
            if line.trim().is_empty() {
                continue;
            }
            return Response::decode(&line).map_err(ClientError::Protocol);
        }
    }

    fn expect_seq(&self, response: &Response, want: u64) -> Result<(), ClientError> {
        let got = match response {
            Response::Report { seq, .. } | Response::Ok { seq } | Response::Stats { seq, .. } => {
                *seq
            }
            // Frame-level errors carry seq 0; accept both.
            Response::Error { seq, .. } => {
                return if *seq == want || *seq == 0 {
                    Ok(())
                } else {
                    Err(ClientError::Protocol(format!(
                        "response for seq {seq}, expected {want}"
                    )))
                }
            }
        };
        if got == want {
            Ok(())
        } else {
            Err(ClientError::Protocol(format!(
                "response for seq {got}, expected {want}"
            )))
        }
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Runs one experiment on the daemon and returns the rendered report
    /// text (byte-identical to a local `experiments::run`).
    pub fn run(&mut self, id: &str, eval: &EvalConfig) -> Result<String, ClientError> {
        let seq = self.next_seq();
        let request = Request::Run(RunRequest {
            seq,
            client: self.name.clone(),
            priority: self.priority,
            id: id.to_string(),
            eval: *eval,
        });
        let response = self.round_trip(&request)?;
        self.expect_seq(&response, seq)?;
        match response {
            Response::Report { report, .. } => Ok(report),
            Response::Error {
                retryable, message, ..
            } => Err(ClientError::Server { retryable, message }),
            other => Err(ClientError::Protocol(format!(
                "expected a report, got {other:?}"
            ))),
        }
    }

    /// Fetches scheduler, run-cache and disk-shard statistics.
    pub fn stats(&mut self) -> Result<(SchedulerStats, CacheSummary, ShardStats), ClientError> {
        let seq = self.next_seq();
        let response = self.round_trip(&Request::Stats { seq })?;
        self.expect_seq(&response, seq)?;
        match response {
            Response::Stats {
                sched,
                cache,
                shards,
                ..
            } => Ok((sched, cache, shards)),
            Response::Error {
                retryable, message, ..
            } => Err(ClientError::Server { retryable, message }),
            other => Err(ClientError::Protocol(format!(
                "expected stats, got {other:?}"
            ))),
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let seq = self.next_seq();
        let response = self.round_trip(&Request::Ping { seq })?;
        self.expect_seq(&response, seq)?;
        match response {
            Response::Ok { .. } => Ok(()),
            Response::Error {
                retryable, message, ..
            } => Err(ClientError::Server { retryable, message }),
            other => Err(ClientError::Protocol(format!("expected ok, got {other:?}"))),
        }
    }

    /// Asks the daemon to drain and exit. The acknowledgement arrives
    /// before the drain starts, so a subsequent `wait` on the server
    /// handle observes a clean exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let seq = self.next_seq();
        let response = self.round_trip(&Request::Shutdown { seq })?;
        self.expect_seq(&response, seq)?;
        match response {
            Response::Ok { .. } => Ok(()),
            Response::Error {
                retryable, message, ..
            } => Err(ClientError::Server { retryable, message }),
            other => Err(ClientError::Protocol(format!("expected ok, got {other:?}"))),
        }
    }

    /// Sends a raw pre-encoded line (test hook for malformed/oversized
    /// frames) and returns the next response frame.
    pub fn send_raw(&mut self, line: &str) -> Result<Response, ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut buf = String::new();
        let n = self.reader.read_line(&mut buf)?;
        if n == 0 {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            )));
        }
        Response::decode(&buf).map_err(ClientError::Protocol)
    }
}
