//! The wire protocol: newline-delimited JSON frames over a unix socket.
//!
//! One frame is one line, one line is one JSON object in the same
//! restricted grammar the run cache already persists (objects, strings,
//! unsigned integers — see [`catch_core::report::json`]). Reusing that
//! reader/writer pair keeps the protocol surface trivially auditable and
//! the workspace dependency-free: the server parses requests with
//! [`json::parse`] and the client parses responses with it too, so the
//! report text a client prints is byte-identical to what the daemon
//! rendered (escaping round-trips through the same code).
//!
//! Grammar (all fields required unless noted; see DESIGN.md §12):
//!
//! ```text
//! request  = run | stats | ping | shutdown
//! run      = {"type":"run","seq":u64,"client":str,"priority":prio,
//!             "id":str,"ops":u64,"warmup":u64,"seed":u64,"sample":u64,
//!             "fidelity":fid}
//!             ; sample = 0 means full-detail execution
//!             ; fidelity is optional on decode (default "ooo") so
//!             ; pre-ladder clients stay compatible; always encoded
//! fid      = "fast" | "lite" | "ooo"
//! stats    = {"type":"stats","seq":u64}
//! ping     = {"type":"ping","seq":u64}
//! shutdown = {"type":"shutdown","seq":u64}
//! prio     = "interactive" | "sweep" | "background"
//!
//! response = report | stats' | ok | error
//! report   = {"type":"report","seq":u64,"id":str,"report":str}
//! ok       = {"type":"ok","seq":u64}
//! error    = {"type":"error","seq":u64,"retryable":0|1,"message":str}
//! stats'   = {"type":"stats","seq":u64, ...counters, "shares":{client:cost},
//!             "cache":{...}, "shards":{...}}
//! ```
//!
//! A frame over [`MAX_FRAME_BYTES`] is rejected and the connection
//! closed; a malformed frame gets a non-retryable error reply and the
//! connection stays usable (asserted by the `server_protocol` suite).

use crate::cachedao::ShardStats;
use catch_core::experiments::{EvalConfig, Fidelity};
use catch_core::report::json::{self, escape, JsonValue};
use catch_core::CacheSummary;

/// Hard cap on one request frame (newline included). Requests are a few
/// hundred bytes; anything larger is a protocol violation, not a job.
pub const MAX_FRAME_BYTES: usize = 16 * 1024;

/// Scheduling class of a request. Classes are strict: a queued
/// interactive job always dispatches before any sweep job, which always
/// dispatches before any background job. Fair share applies *within* a
/// class (see [`crate::scheduler`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// A user is waiting at a prompt.
    Interactive,
    /// Design-space sweeps: bulk but wanted soon.
    Sweep,
    /// Backfill: runs when nothing else is queued.
    Background,
}

impl Priority {
    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Sweep => "sweep",
            Priority::Background => "background",
        }
    }

    /// Dispatch rank (lower dispatches first).
    pub fn rank(self) -> u8 {
        match self {
            Priority::Interactive => 0,
            Priority::Sweep => 1,
            Priority::Background => 2,
        }
    }

    /// Parses a wire label.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "interactive" => Ok(Priority::Interactive),
            "sweep" => Ok(Priority::Sweep),
            "background" => Ok(Priority::Background),
            other => Err(format!(
                "unknown priority '{other}' (interactive|sweep|background)"
            )),
        }
    }
}

/// One experiment-run request as it travels on the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunRequest {
    /// Client-chosen correlation number, echoed on the response.
    pub seq: u64,
    /// Client identity for fair-share accounting.
    pub client: String,
    /// Scheduling class.
    pub priority: Priority,
    /// Experiment id (see `catch_core::experiments::all_ids`).
    pub id: String,
    /// Evaluation scale the experiment runs at.
    pub eval: EvalConfig,
}

/// A decoded client→server frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Run one experiment and return its rendered report.
    Run(RunRequest),
    /// Return scheduler + cache statistics.
    Stats {
        /// Correlation number.
        seq: u64,
    },
    /// Liveness check.
    Ping {
        /// Correlation number.
        seq: u64,
    },
    /// Begin a graceful drain: in-flight jobs finish, queued jobs are
    /// rejected with a retryable error, then the daemon exits.
    Shutdown {
        /// Correlation number.
        seq: u64,
    },
}

/// Scheduler-side numbers reported by a `stats` response (the cache and
/// shard numbers ride alongside as separate objects).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Jobs waiting for a worker.
    pub queue_depth: u64,
    /// Jobs currently executing.
    pub running: u64,
    /// Requests admitted as new jobs (lifetime).
    pub admitted: u64,
    /// Requests coalesced onto in-flight jobs (lifetime).
    pub coalesced: u64,
    /// Requests rejected by admission control (lifetime).
    pub rejected: u64,
    /// Jobs completed (lifetime).
    pub completed: u64,
    /// Per-client cumulative dispatched cost (micro-ops).
    pub shares: Vec<(String, u64)>,
}

/// A decoded server→client frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// A finished experiment report (rendered text, byte-identical to a
    /// local run).
    Report {
        /// Correlation number of the request this answers.
        seq: u64,
        /// Experiment id.
        id: String,
        /// Rendered report text.
        report: String,
    },
    /// Request acknowledged (ping/shutdown).
    Ok {
        /// Correlation number.
        seq: u64,
    },
    /// Request failed. `retryable` distinguishes transient admission
    /// rejections (queue full, draining) from protocol errors.
    Error {
        /// Correlation number (0 when the request could not be parsed).
        seq: u64,
        /// Whether resubmitting later can succeed.
        retryable: bool,
        /// Human-readable reason.
        message: String,
    },
    /// Scheduler, run-cache and disk-shard statistics.
    Stats {
        /// Correlation number.
        seq: u64,
        /// Scheduler-side counters.
        sched: SchedulerStats,
        /// Run-cache activity snapshot.
        cache: CacheSummary,
        /// On-disk shard statistics (zeroed when persistence is off).
        shards: ShardStats,
    },
}

fn get_num(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_num)
        .ok_or_else(|| format!("missing or non-integer field '{key}'"))
}

fn get_str<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("missing or non-string field '{key}'"))
}

impl Request {
    /// Decodes one request line. Errors are protocol violations — the
    /// server replies with a non-retryable error naming the problem.
    pub fn decode(line: &str) -> Result<Request, String> {
        let v = json::parse(line.trim_end()).map_err(|e| format!("malformed frame: {e}"))?;
        let seq = get_num(&v, "seq")?;
        match get_str(&v, "type")? {
            "run" => {
                let sample = get_num(&v, "sample")?;
                let ops = get_num(&v, "ops")?;
                if ops == 0 {
                    return Err("'ops' must be positive".to_string());
                }
                // Absent fidelity means the OOO reference: frames from
                // pre-ladder clients keep their exact old meaning. A
                // present-but-unknown label is a protocol violation.
                let fidelity = match v.get("fidelity") {
                    Some(f) => {
                        let label = f.as_str().ok_or("non-string field 'fidelity'")?;
                        Fidelity::parse(label)?
                    }
                    None => Fidelity::Ooo,
                };
                let mut eval = EvalConfig {
                    ops: ops as usize,
                    warmup: get_num(&v, "warmup")? as usize,
                    seed: get_num(&v, "seed")?,
                    sample: None,
                    fidelity,
                };
                if sample > 0 {
                    eval.sample = Some(sample as usize);
                }
                Ok(Request::Run(RunRequest {
                    seq,
                    client: get_str(&v, "client")?.to_string(),
                    priority: Priority::parse(get_str(&v, "priority")?)?,
                    id: get_str(&v, "id")?.to_string(),
                    eval,
                }))
            }
            "stats" => Ok(Request::Stats { seq }),
            "ping" => Ok(Request::Ping { seq }),
            "shutdown" => Ok(Request::Shutdown { seq }),
            other => Err(format!("unknown request type '{other}'")),
        }
    }

    /// Encodes the request as one newline-terminated frame.
    pub fn encode(&self) -> String {
        match self {
            Request::Run(r) => format!(
                "{{\"type\":\"run\",\"seq\":{},\"client\":\"{}\",\"priority\":\"{}\",\
                 \"id\":\"{}\",\"ops\":{},\"warmup\":{},\"seed\":{},\"sample\":{},\
                 \"fidelity\":\"{}\"}}\n",
                r.seq,
                escape(&r.client),
                r.priority.label(),
                escape(&r.id),
                r.eval.ops,
                r.eval.warmup,
                r.eval.seed,
                r.eval.sample.unwrap_or(0),
                r.eval.fidelity.label(),
            ),
            Request::Stats { seq } => format!("{{\"type\":\"stats\",\"seq\":{seq}}}\n"),
            Request::Ping { seq } => format!("{{\"type\":\"ping\",\"seq\":{seq}}}\n"),
            Request::Shutdown { seq } => format!("{{\"type\":\"shutdown\",\"seq\":{seq}}}\n"),
        }
    }
}

fn cache_to_json(c: &CacheSummary) -> String {
    format!(
        "{{\"hits\":{},\"misses\":{},\"trace_hits\":{},\"trace_misses\":{},\
         \"disk_hits\":{},\"disk_stores\":{},\"disk_warnings\":{},\
         \"bytes_read\":{},\"bytes_written\":{}}}",
        c.hits,
        c.misses,
        c.trace_hits,
        c.trace_misses,
        c.disk_hits,
        c.disk_stores,
        c.disk_warnings,
        c.bytes_read,
        c.bytes_written
    )
}

fn cache_from_json(v: &JsonValue) -> Result<CacheSummary, String> {
    Ok(CacheSummary {
        hits: get_num(v, "hits")?,
        misses: get_num(v, "misses")?,
        trace_hits: get_num(v, "trace_hits")?,
        trace_misses: get_num(v, "trace_misses")?,
        disk_hits: get_num(v, "disk_hits")?,
        disk_stores: get_num(v, "disk_stores")?,
        disk_warnings: get_num(v, "disk_warnings")?,
        bytes_read: get_num(v, "bytes_read")?,
        bytes_written: get_num(v, "bytes_written")?,
    })
}

fn shards_to_json(s: &ShardStats) -> String {
    format!(
        "{{\"entries\":{},\"bytes\":{},\"oldest_secs\":{},\"newest_secs\":{}}}",
        s.entries, s.bytes, s.oldest_secs, s.newest_secs
    )
}

fn shards_from_json(v: &JsonValue) -> Result<ShardStats, String> {
    Ok(ShardStats {
        entries: get_num(v, "entries")?,
        bytes: get_num(v, "bytes")?,
        oldest_secs: get_num(v, "oldest_secs")?,
        newest_secs: get_num(v, "newest_secs")?,
    })
}

impl Response {
    /// Encodes the response as one newline-terminated frame.
    pub fn encode(&self) -> String {
        match self {
            Response::Report { seq, id, report } => format!(
                "{{\"type\":\"report\",\"seq\":{seq},\"id\":\"{}\",\"report\":\"{}\"}}\n",
                escape(id),
                escape(report)
            ),
            Response::Ok { seq } => format!("{{\"type\":\"ok\",\"seq\":{seq}}}\n"),
            Response::Error {
                seq,
                retryable,
                message,
            } => format!(
                "{{\"type\":\"error\",\"seq\":{seq},\"retryable\":{},\"message\":\"{}\"}}\n",
                u64::from(*retryable),
                escape(message)
            ),
            Response::Stats {
                seq,
                sched,
                cache,
                shards,
            } => {
                let shares = if sched.shares.is_empty() {
                    "{}".to_string()
                } else {
                    let body: Vec<String> = sched
                        .shares
                        .iter()
                        .map(|(c, n)| format!("\"{}\":{n}", escape(c)))
                        .collect();
                    format!("{{{}}}", body.join(","))
                };
                format!(
                    "{{\"type\":\"stats\",\"seq\":{seq},\"queue_depth\":{},\"running\":{},\
                     \"admitted\":{},\"coalesced\":{},\"rejected\":{},\"completed\":{},\
                     \"shares\":{shares},\"cache\":{},\"shards\":{}}}\n",
                    sched.queue_depth,
                    sched.running,
                    sched.admitted,
                    sched.coalesced,
                    sched.rejected,
                    sched.completed,
                    cache_to_json(cache),
                    shards_to_json(shards),
                )
            }
        }
    }

    /// Decodes one response line (the client side of [`Response::encode`]).
    pub fn decode(line: &str) -> Result<Response, String> {
        let v = json::parse(line.trim_end()).map_err(|e| format!("malformed response: {e}"))?;
        let seq = get_num(&v, "seq")?;
        match get_str(&v, "type")? {
            "report" => Ok(Response::Report {
                seq,
                id: get_str(&v, "id")?.to_string(),
                report: get_str(&v, "report")?.to_string(),
            }),
            "ok" => Ok(Response::Ok { seq }),
            "error" => Ok(Response::Error {
                seq,
                retryable: get_num(&v, "retryable")? != 0,
                message: get_str(&v, "message")?.to_string(),
            }),
            "stats" => {
                let shares = v
                    .get("shares")
                    .and_then(JsonValue::as_obj)
                    .ok_or("missing 'shares' object")?
                    .iter()
                    .map(|(c, n)| {
                        n.as_num()
                            .map(|n| (c.clone(), n))
                            .ok_or_else(|| format!("non-integer share for '{c}'"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Response::Stats {
                    seq,
                    sched: SchedulerStats {
                        queue_depth: get_num(&v, "queue_depth")?,
                        running: get_num(&v, "running")?,
                        admitted: get_num(&v, "admitted")?,
                        coalesced: get_num(&v, "coalesced")?,
                        rejected: get_num(&v, "rejected")?,
                        completed: get_num(&v, "completed")?,
                        shares,
                    },
                    cache: cache_from_json(v.get("cache").ok_or("missing 'cache' object")?)?,
                    shards: shards_from_json(v.get("shards").ok_or("missing 'shards' object")?)?,
                })
            }
            other => Err(format!("unknown response type '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_req() -> RunRequest {
        RunRequest {
            seq: 7,
            client: "ali\"ce".to_string(),
            priority: Priority::Sweep,
            id: "fig10".to_string(),
            eval: EvalConfig {
                ops: 8000,
                warmup: 2000,
                seed: 42,
                sample: Some(500),
                fidelity: Fidelity::Lite,
            },
        }
    }

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Run(run_req()),
            Request::Stats { seq: 1 },
            Request::Ping { seq: 2 },
            Request::Shutdown { seq: 3 },
        ] {
            let line = req.encode();
            assert!(line.ends_with('\n') && !line[..line.len() - 1].contains('\n'));
            assert_eq!(Request::decode(&line).expect("round trip"), req);
        }
    }

    #[test]
    fn sample_zero_means_full_detail() {
        let mut req = run_req();
        req.eval.sample = None;
        let decoded = Request::decode(&Request::Run(req.clone()).encode()).expect("ok");
        assert_eq!(decoded, Request::Run(req));
    }

    #[test]
    fn absent_fidelity_decodes_as_the_ooo_reference() {
        // A pre-ladder client frame (no fidelity field) must keep its
        // exact old meaning.
        let legacy = "{\"type\":\"run\",\"seq\":1,\"client\":\"a\",\"priority\":\"sweep\",\
                      \"id\":\"fig10\",\"ops\":100,\"warmup\":0,\"seed\":1,\"sample\":0}";
        match Request::decode(legacy).expect("legacy frame decodes") {
            Request::Run(r) => assert_eq!(r.eval.fidelity, Fidelity::Ooo),
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn responses_round_trip() {
        let report_text = "==== fig10 ====\nline \"two\"\t\n".to_string();
        for resp in [
            Response::Report {
                seq: 7,
                id: "fig10".to_string(),
                report: report_text,
            },
            Response::Ok { seq: 1 },
            Response::Error {
                seq: 0,
                retryable: true,
                message: "queue full".to_string(),
            },
            Response::Stats {
                seq: 9,
                sched: SchedulerStats {
                    queue_depth: 1,
                    running: 2,
                    admitted: 3,
                    coalesced: 4,
                    rejected: 5,
                    completed: 6,
                    shares: vec![("alice".to_string(), 16000), ("bob".to_string(), 0)],
                },
                cache: CacheSummary {
                    hits: 10,
                    misses: 11,
                    ..CacheSummary::default()
                },
                shards: ShardStats {
                    entries: 12,
                    bytes: 13,
                    oldest_secs: 14,
                    newest_secs: 15,
                },
            },
        ] {
            let line = resp.encode();
            assert!(line.ends_with('\n') && !line[..line.len() - 1].contains('\n'));
            assert_eq!(Response::decode(&line).expect("round trip"), resp);
        }
    }

    #[test]
    fn report_text_survives_byte_identically() {
        // Every byte class the renderer can produce: quotes, backslashes,
        // tabs, newlines, control chars, non-ASCII.
        let nasty = "a\"b\\c\nd\te\u{1}f µ—≥\r\n".to_string();
        let line = Response::Report {
            seq: 1,
            id: "x".to_string(),
            report: nasty.clone(),
        }
        .encode();
        match Response::decode(&line).expect("decodes") {
            Response::Report { report, .. } => assert_eq!(report, nasty),
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn decode_rejects_malformed_frames() {
        for bad in [
            "",
            "not json",
            "{}",
            "{\"type\":\"run\",\"seq\":1}",
            "{\"type\":\"nope\",\"seq\":1}",
            "{\"type\":\"run\",\"seq\":1,\"client\":\"a\",\"priority\":\"urgent\",\
             \"id\":\"fig10\",\"ops\":1,\"warmup\":0,\"seed\":1,\"sample\":0}",
            "{\"type\":\"run\",\"seq\":1,\"client\":\"a\",\"priority\":\"sweep\",\
             \"id\":\"fig10\",\"ops\":0,\"warmup\":0,\"seed\":1,\"sample\":0}",
            "{\"type\":\"run\",\"seq\":1,\"client\":\"a\",\"priority\":\"sweep\",\
             \"id\":\"fig10\",\"ops\":1,\"warmup\":0,\"seed\":1,\"sample\":0,\
             \"fidelity\":\"atomic\"}",
        ] {
            assert!(Request::decode(bad).is_err(), "'{bad}' must not decode");
        }
    }

    #[test]
    fn priority_ranks_are_strict() {
        assert!(Priority::Interactive.rank() < Priority::Sweep.rank());
        assert!(Priority::Sweep.rank() < Priority::Background.rank());
        for p in [Priority::Interactive, Priority::Sweep, Priority::Background] {
            assert_eq!(Priority::parse(p.label()), Ok(p));
        }
    }
}
