//! The daemon: unix-socket accept loop, connection threads, worker pool.
//!
//! Thread model (all plain `std::thread`, no async runtime):
//!
//! * **accept thread** — polls a non-blocking [`UnixListener`], spawning
//!   one reader thread per connection; exits when shutdown is flagged.
//! * **connection threads** — frame-decode requests and answer
//!   stats/ping inline; run requests go through admission into the
//!   shared [`Scheduler`]. The write half of each socket lives behind a
//!   mutex so worker threads can deliver results directly.
//! * **worker threads** — pull jobs off the scheduler (fair-share order)
//!   and execute them through the ordinary experiment registry, which
//!   means every simulation resolves through the process-wide
//!   [`RunCache`]: repeated or concurrent
//!   identical work is single-flight *below* the job layer too.
//!
//! Shutdown is cooperative: a `shutdown` request flags the accept loop,
//! drains the scheduler (queued jobs rejected with a retryable error,
//! running jobs finish and deliver), and [`ServerHandle::wait`] then
//! joins every thread, closes lingering connections and unlinks the
//! socket — a clean exit 0, asserted by the `server-smoke` CI gate.

use crate::admission::{self, DEFAULT_MAX_QUEUE};
use crate::cachedao;
use crate::protocol::{Request, Response, MAX_FRAME_BYTES};
use crate::scheduler::Scheduler;
use catch_core::{experiments, sweep, CacheMode, RunCache};
use catch_obs::Obs;
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads executing jobs (each job may itself parallelise
    /// its suite across the experiment registry's own `Runner`).
    pub workers: usize,
    /// Admission cap on queued jobs.
    pub max_queue: usize,
    /// Event sink for [`catch_obs::EventClass::SERVER`] events.
    pub obs: Obs,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            max_queue: DEFAULT_MAX_QUEUE,
            obs: Obs::off(),
        }
    }
}

/// A bound, running daemon. Dropping the handle does **not** stop the
/// daemon; call [`ServerHandle::wait`] (after a protocol `shutdown` or
/// [`ServerHandle::begin_drain`]) for a clean exit.
pub struct Server;

impl Server {
    /// Binds `path` and starts the accept loop and `config.workers`
    /// worker threads. A stale socket file at `path` is removed first
    /// (the daemon owns its socket path).
    pub fn bind(path: &Path, config: ServerConfig) -> io::Result<ServerHandle> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;

        let scheduler = Arc::new(Scheduler::new(config.max_queue, config.obs.clone()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<UnixStream>>> = Arc::new(Mutex::new(Vec::new()));
        let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let scheduler = scheduler.clone();
                std::thread::spawn(move || worker_loop(&scheduler))
            })
            .collect();

        let accept = {
            let scheduler = scheduler.clone();
            let shutdown = shutdown.clone();
            let conns = conns.clone();
            let conn_threads = conn_threads.clone();
            std::thread::spawn(move || {
                accept_loop(&listener, &scheduler, &shutdown, &conns, &conn_threads)
            })
        };

        Ok(ServerHandle {
            path: path.to_path_buf(),
            scheduler,
            shutdown,
            accept,
            workers,
            conns,
            conn_threads,
        })
    }
}

/// Join/control handle for a running daemon (see [`Server::bind`]).
pub struct ServerHandle {
    path: PathBuf,
    scheduler: Arc<Scheduler>,
    shutdown: Arc<AtomicBool>,
    accept: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<UnixStream>>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The socket path the daemon is serving.
    pub fn socket(&self) -> &Path {
        &self.path
    }

    /// Triggers the same graceful drain a protocol `shutdown` request
    /// does (idempotent).
    pub fn begin_drain(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.scheduler.drain();
    }

    /// Blocks until the daemon has fully drained: accept loop stopped,
    /// in-flight jobs delivered, workers exited, connections closed,
    /// socket unlinked. Returns only after a drain was triggered (by a
    /// protocol `shutdown` or [`ServerHandle::begin_drain`]).
    pub fn wait(self) -> io::Result<()> {
        self.accept
            .join()
            .map_err(|_| io::Error::other("accept thread panicked"))?;
        for w in self.workers {
            w.join()
                .map_err(|_| io::Error::other("worker thread panicked"))?;
        }
        // Workers have delivered everything they ever will; unblock any
        // reader still parked on a silent client and join it.
        for stream in self.conns.lock().expect("conns poisoned").drain(..) {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        let threads: Vec<_> = {
            let mut guard = self.conn_threads.lock().expect("conn threads poisoned");
            guard.drain(..).collect()
        };
        for t in threads {
            t.join()
                .map_err(|_| io::Error::other("connection thread panicked"))?;
        }
        let _ = std::fs::remove_file(&self.path);
        Ok(())
    }
}

fn accept_loop(
    listener: &UnixListener,
    scheduler: &Arc<Scheduler>,
    shutdown: &Arc<AtomicBool>,
    conns: &Arc<Mutex<Vec<UnixStream>>>,
    conn_threads: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if let Ok(clone) = stream.try_clone() {
                    conns.lock().expect("conns poisoned").push(clone);
                }
                let scheduler = scheduler.clone();
                let shutdown = shutdown.clone();
                let handle =
                    std::thread::spawn(move || connection_loop(stream, &scheduler, &shutdown));
                conn_threads
                    .lock()
                    .expect("conn threads poisoned")
                    .push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
}

/// One decoded read attempt off a connection.
enum Frame {
    /// A complete line (newline stripped).
    Line(String),
    /// The frame exceeded [`MAX_FRAME_BYTES`]; the connection is closed
    /// after an error reply (resynchronising inside an oversized frame
    /// is not worth the ambiguity).
    Oversized,
    /// Clean end of stream between frames.
    Eof,
    /// The peer vanished mid-frame (bytes read, no newline).
    Truncated,
}

/// Reads one newline-delimited frame with a hard byte cap. The cap is
/// enforced *while reading*, so an attacker cannot buffer unbounded
/// bytes by never sending a newline.
fn read_frame<R: BufRead>(reader: &mut R, cap: usize) -> io::Result<Frame> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = match reader.fill_buf() {
            Ok(c) => c,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if chunk.is_empty() {
            return Ok(if buf.is_empty() {
                Frame::Eof
            } else {
                Frame::Truncated
            });
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(i) => {
                if buf.len() + i >= cap {
                    reader.consume(i + 1);
                    return Ok(Frame::Oversized);
                }
                buf.extend_from_slice(&chunk[..i]);
                reader.consume(i + 1);
                return Ok(match String::from_utf8(buf) {
                    Ok(line) => Frame::Line(line),
                    // Invalid UTF-8 is a malformed frame with an intact
                    // boundary; surface it as a line the decoder rejects.
                    Err(_) => Frame::Line("\u{fffd}".to_string()),
                });
            }
            None => {
                let n = chunk.len();
                if buf.len() + n >= cap {
                    reader.consume(n);
                    return Ok(Frame::Oversized);
                }
                buf.extend_from_slice(chunk);
                reader.consume(n);
            }
        }
    }
}

/// Sends one response frame over the shared write half. Delivery is
/// best-effort: a vanished client just loses its reply.
fn send(writer: &Arc<Mutex<UnixStream>>, response: &Response) {
    let mut stream = writer.lock().expect("connection writer poisoned");
    let _ = stream.write_all(response.encode().as_bytes());
    let _ = stream.flush();
}

fn connection_loop(stream: UnixStream, scheduler: &Arc<Scheduler>, shutdown: &Arc<AtomicBool>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new(write_half));
    let mut reader = BufReader::new(stream);
    while let Ok(frame) = read_frame(&mut reader, MAX_FRAME_BYTES) {
        let line = match frame {
            Frame::Line(line) => line,
            Frame::Oversized => {
                send(
                    &writer,
                    &Response::Error {
                        seq: 0,
                        retryable: false,
                        message: format!("frame exceeds {MAX_FRAME_BYTES} bytes"),
                    },
                );
                break;
            }
            Frame::Eof | Frame::Truncated => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let request = match Request::decode(&line) {
            Ok(r) => r,
            Err(message) => {
                send(
                    &writer,
                    &Response::Error {
                        seq: 0,
                        retryable: false,
                        message,
                    },
                );
                continue;
            }
        };
        match request {
            Request::Ping { seq } => send(&writer, &Response::Ok { seq }),
            Request::Stats { seq } => {
                let cache = RunCache::global().summary();
                let shards = match RunCache::global().mode() {
                    CacheMode::Disk(dir) => cachedao::scan(&dir).unwrap_or_default(),
                    _ => cachedao::ShardStats::default(),
                };
                send(
                    &writer,
                    &Response::Stats {
                        seq,
                        sched: scheduler.stats(),
                        cache,
                        shards,
                    },
                );
            }
            Request::Shutdown { seq } => {
                send(&writer, &Response::Ok { seq });
                shutdown.store(true, Ordering::SeqCst);
                scheduler.drain();
            }
            Request::Run(req) => {
                if let Err(message) = admission::validate(&req) {
                    send(
                        &writer,
                        &Response::Error {
                            seq: req.seq,
                            retryable: false,
                            message,
                        },
                    );
                    continue;
                }
                let writer = writer.clone();
                scheduler.submit(req, Box::new(move |response| send(&writer, &response)));
            }
        }
    }
    // Close the whole connection (every clone, including the one the
    // accept loop registered for shutdown) so the peer observes EOF as
    // soon as this side stops serving it, not at daemon exit.
    let _ = reader.get_ref().shutdown(std::net::Shutdown::Both);
}

/// Executes one job's body: sweep ids route into the sweep engine
/// (checkpoint-less server-side — the run cache is what makes repeats
/// warm), everything else through the experiment registry. Panics on
/// sweep setup errors so the worker's catch_unwind turns them into a
/// non-retryable error frame like any other execution failure.
fn run_server_job(id: &str, eval: &catch_core::experiments::EvalConfig) -> String {
    if let Some(spec) = sweep::by_request_id(id) {
        match sweep::run_sweep(&spec, eval, &sweep::SweepOptions::default()) {
            Ok(outcome) => outcome.report.to_string(),
            Err(e) => panic!("sweep failed: {e}"),
        }
    } else {
        experiments::run(id, eval).to_string()
    }
}

fn worker_loop(scheduler: &Arc<Scheduler>) {
    while let Some(job) = scheduler.next_job() {
        // Measure what the job actually simulated: the run-cache miss
        // delta across its execution. Warm (fully cached) jobs measure
        // zero and get their nominal fair-share charge refunded; cold
        // suite jobs bill every simulation they really ran. With
        // several workers in flight the windows overlap and misses may
        // be attributed to a concurrent job — an approximation that
        // errs by at most the concurrency, never by the cache-warmth
        // cliff the nominal charge gets wrong.
        let misses_before = RunCache::global().summary().misses;
        let outcome =
            std::panic::catch_unwind(AssertUnwindSafe(|| run_server_job(&job.id, &job.eval)))
                .map_err(|panic| {
                    let msg = panic
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "unknown panic".to_string());
                    format!("experiment '{}' panicked: {msg}", job.id)
                });
        let miss_delta = RunCache::global()
            .summary()
            .misses
            .saturating_sub(misses_before);
        let actual = miss_delta.saturating_mul(job.eval.ops as u64);
        scheduler.complete(job.fp, outcome, Some(actual));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn read_frame_handles_lines_eof_and_truncation() {
        let mut r = Cursor::new(b"one\ntwo\npartial".to_vec());
        assert!(matches!(read_frame(&mut r, 64).expect("ok"), Frame::Line(l) if l == "one"));
        assert!(matches!(read_frame(&mut r, 64).expect("ok"), Frame::Line(l) if l == "two"));
        assert!(matches!(
            read_frame(&mut r, 64).expect("ok"),
            Frame::Truncated
        ));
        assert!(matches!(read_frame(&mut r, 64).expect("ok"), Frame::Eof));
    }

    #[test]
    fn read_frame_caps_oversized_lines_without_buffering() {
        // A 1 MiB line with a tiny cap must come back Oversized without
        // the reader ever holding the whole line.
        let big = vec![b'x'; 1 << 20];
        let mut r = Cursor::new(big);
        assert!(matches!(
            read_frame(&mut r, 128).expect("ok"),
            Frame::Oversized
        ));
    }

    #[test]
    fn read_frame_replaces_invalid_utf8() {
        let mut r = Cursor::new(b"\xff\xfe\n".to_vec());
        match read_frame(&mut r, 64).expect("ok") {
            Frame::Line(l) => assert_eq!(l, "\u{fffd}"),
            _ => panic!("expected a line"),
        }
    }
}
