//! Admission control: request fingerprints, dedup decisions, queue caps.
//!
//! Admission is the policy layer between the protocol and the
//! scheduler: it decides, for each decoded [`RunRequest`], whether the
//! request becomes a **new job**, **coalesces** onto an in-flight job
//! with the same structural fingerprint (socket-level single-flight —
//! the second client waits on the first client's job instead of queuing
//! a duplicate), or is **rejected** with a retryable error (queue full,
//! or the daemon is draining).
//!
//! The fingerprint is deliberately *coarser* than the run cache's
//! per-simulation keys: it identifies a whole experiment request
//! (id + evaluation scale), so two clients asking for `fig10` at the
//! same scale share one job. Below that, the process-wide
//! [`RunCache`](catch_core::RunCache) still dedups the individual
//! (config, workload) simulations across *different* experiments — the
//! two layers compose (see DESIGN.md §12).

use crate::protocol::RunRequest;
use catch_core::experiments::EvalConfig;
use catch_trace::hash::FxHasher;
use std::hash::Hasher;

/// Default cap on queued (admitted, not yet running) jobs.
pub const DEFAULT_MAX_QUEUE: usize = 256;

/// Structural fingerprint of one experiment request: two independent
/// 64-bit Fx passes over `id` + the `EvalConfig` debug rendering (the
/// same double-hash construction the run cache uses). The client name,
/// priority and seq are delivery metadata and deliberately excluded —
/// identical work from different clients must share one fingerprint.
pub fn request_fingerprint(id: &str, eval: &EvalConfig) -> u128 {
    let payload = format!("request|{id}|{eval:?}");
    let half = |tag: u8| {
        let mut h = FxHasher::default();
        h.write_u8(tag);
        h.write(payload.as_bytes());
        h.finish()
    };
    ((half(0x5E) as u128) << 64) | half(0xA7) as u128
}

/// What admission decided for one request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Admitted as a new job with this daemon-assigned id.
    New {
        /// Daemon-assigned job id.
        job: u64,
    },
    /// Attached as a waiter to an in-flight job with the same
    /// fingerprint; no new work was queued.
    Coalesced {
        /// Job the request attached to.
        job: u64,
    },
    /// Rejected: the queue is at capacity. Retryable.
    QueueFull,
    /// Rejected: the daemon is draining. Retryable (against the next
    /// daemon instance).
    Draining,
}

impl Admission {
    /// True for the rejection variants (both are retryable).
    pub fn is_rejection(&self) -> bool {
        matches!(self, Admission::QueueFull | Admission::Draining)
    }

    /// The retryable-error message for a rejection (panics otherwise).
    pub fn reject_message(&self) -> String {
        match self {
            Admission::QueueFull => "queue full; retry later".to_string(),
            Admission::Draining => "server draining; retry against a new instance".to_string(),
            other => panic!("reject_message on non-rejection {other:?}"),
        }
    }
}

/// Validates the experiment id against the registry (or the sweep grid
/// presets, `sweep[:name]`) before any queue state is touched: an
/// unknown id is a client bug (non-retryable), not an admission
/// decision.
pub fn validate(req: &RunRequest) -> Result<(), String> {
    if catch_core::experiments::all_ids().contains(&req.id.as_str())
        || catch_core::sweep::by_request_id(&req.id).is_some()
    {
        Ok(())
    } else {
        Err(format!(
            "unknown experiment id '{}' (see `run_experiment` with no arguments for the list)",
            req.id
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Priority;

    fn req(id: &str, client: &str) -> RunRequest {
        RunRequest {
            seq: 1,
            client: client.to_string(),
            priority: Priority::Interactive,
            id: id.to_string(),
            eval: EvalConfig::quick(),
        }
    }

    #[test]
    fn fingerprint_ignores_delivery_metadata() {
        let a = req("fig10", "alice");
        let mut b = req("fig10", "bob");
        b.seq = 99;
        b.priority = Priority::Background;
        assert_eq!(
            request_fingerprint(&a.id, &a.eval),
            request_fingerprint(&b.id, &b.eval),
            "identical work from different clients must share a fingerprint"
        );
    }

    #[test]
    fn fingerprint_separates_work() {
        let base = req("fig10", "alice");
        let fp = request_fingerprint(&base.id, &base.eval);
        assert_ne!(request_fingerprint("fig12", &base.eval), fp);
        let mut eval = base.eval;
        eval.ops += 1;
        assert_ne!(request_fingerprint(&base.id, &eval), fp);
        let sampled = base.eval.with_sample(1000);
        assert_ne!(request_fingerprint(&base.id, &sampled), fp);
        // Fidelity is structural: a lite request must never coalesce
        // onto an in-flight OOO job for the same experiment (or vice
        // versa) — the reports differ.
        for f in catch_core::experiments::Fidelity::ALL {
            if f != base.eval.fidelity {
                let retagged = base.eval.with_fidelity(f);
                assert_ne!(request_fingerprint(&base.id, &retagged), fp);
            }
        }
    }

    #[test]
    fn validate_checks_the_registry() {
        assert!(validate(&req("fig10", "a")).is_ok());
        assert!(validate(&req("all", "a")).is_err(), "'all' is client-side");
        let err = validate(&req("fig99", "a")).expect_err("unknown id");
        assert!(err.contains("fig99"));
    }

    #[test]
    fn validate_accepts_sweep_grids() {
        assert!(validate(&req("sweep", "a")).is_ok());
        assert!(validate(&req("sweep:quick", "a")).is_ok());
        assert!(validate(&req("sweep:paper", "a")).is_ok());
        assert!(validate(&req("sweep:bogus", "a")).is_err());
    }
}
