//! Sampling plans: clustering intervals and picking weighted
//! representatives.

use crate::features::{self, interval_bounds};
use crate::kmeans::{self, dist};
use catch_trace::Trace;

/// Configuration for a sampled simulation run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SampleConfig {
    /// Nominal interval size in micro-ops (the tail merges into the last
    /// interval).
    pub interval_ops: usize,
    /// Maximum number of k-means clusters over the non-pinned intervals.
    /// Setting this to at least the interval count makes every interval
    /// its own singleton cluster, which degenerates the sampled run into
    /// a bit-identical full run.
    pub max_clusters: usize,
    /// Seed for k-means++ initialisation.
    pub seed: u64,
    /// Lloyd-iteration cap for k-means.
    pub kmeans_iters: usize,
    /// Detailed (cycle-accurate but unmeasured) micro-ops simulated
    /// immediately before each measured representative that follows a
    /// fast-forwarded gap. Functional warmup keeps cache tags and the
    /// branch predictor current but cannot re-fill the pipeline or
    /// re-train prefetchers and the criticality detector; this short
    /// detailed ramp does, which is what keeps the per-interval IPC
    /// honest. It never runs in the all-singleton (bit-identical)
    /// configuration because no gaps exist there.
    pub warmup_ops: usize,
}

impl SampleConfig {
    /// Defaults: 8 clusters, a fixed seed, 32 Lloyd iterations, and a
    /// detailed warmup of half the interval size.
    pub fn new(interval_ops: usize) -> Self {
        let interval_ops = interval_ops.max(1);
        SampleConfig {
            interval_ops,
            max_clusters: 8,
            seed: 0xCA7C_5A3B,
            kmeans_iters: 32,
            warmup_ops: interval_ops / 2,
        }
    }

    /// Overrides the cluster cap.
    pub fn with_max_clusters(mut self, max_clusters: usize) -> Self {
        self.max_clusters = max_clusters.max(1);
        self
    }

    /// Overrides the clustering seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the detailed-warmup length before each measured
    /// representative.
    pub fn with_warmup_ops(mut self, warmup_ops: usize) -> Self {
        self.warmup_ops = warmup_ops;
        self
    }
}

/// One trace interval in a [`SamplePlan`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Interval index in trace order.
    pub index: usize,
    /// First op index (inclusive).
    pub start: usize,
    /// Last op index (exclusive).
    pub end: usize,
    /// Cluster this interval belongs to.
    pub cluster: usize,
    /// Reconstruction weight: the cluster's member count if this interval
    /// is the cluster representative, `0` if it is skipped (fast-forwarded).
    pub weight: u64,
}

/// A complete sampling plan for one trace.
///
/// Two kinds of intervals are *pinned* to singleton clusters and always
/// simulated in detail with weight 1, because no other interval can
/// represent them:
///
/// * interval 0 — it alone observes the cold-start (compulsory-miss)
///   transient, which a warmed-up representative would erase;
/// * an oversized tail interval (present when the trace length is not a
///   multiple of the interval size) — its op count differs from every
///   other interval's, so weighting it as a peer would skew totals.
///
/// The remaining intervals are clustered by feature vector and each
/// cluster elects the member closest to its centroid as representative,
/// weighted by the cluster's member count.
#[derive(Clone, Debug)]
pub struct SamplePlan {
    /// All intervals in trace order.
    pub intervals: Vec<Interval>,
    /// Total number of clusters (k-means clusters plus pinned singletons).
    pub clusters: usize,
    /// Per-cluster centroid in feature space (a pinned interval's
    /// centroid is its own feature vector).
    pub centroids: Vec<Vec<f64>>,
    /// Per-cluster RMS distance of members to the centroid (0 for
    /// singletons).
    pub dispersion: Vec<f64>,
    /// Per-cluster member count.
    pub members: Vec<u64>,
}

impl SamplePlan {
    /// Profiles `trace` and builds the sampling plan.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn build(trace: &Trace, config: &SampleConfig) -> SamplePlan {
        let bounds = interval_bounds(trace.len(), config.interval_ops);
        let feats = features::profile(trace, &bounds);
        let n = bounds.len();

        // Pinned intervals: cold-start, plus an irregular-sized tail.
        let tail_oversized = n > 1 && (bounds[n - 1].1 - bounds[n - 1].0) != config.interval_ops;
        let pinned = |i: usize| i == 0 || (tail_oversized && i == n - 1);
        let free: Vec<usize> = (0..n).filter(|&i| !pinned(i)).collect();

        let k = config.max_clusters.min(free.len()).max(1);
        let clustering = if free.is_empty() {
            None
        } else {
            let pts: Vec<Vec<f64>> = free.iter().map(|&i| feats[i].clone()).collect();
            Some(kmeans::kmeans(&pts, k, config.seed, config.kmeans_iters))
        };

        let free_clusters = clustering.as_ref().map_or(0, |c| c.centroids.len());
        let mut centroids: Vec<Vec<f64>> = clustering
            .as_ref()
            .map_or_else(Vec::new, |c| c.centroids.clone());
        let mut cluster_of = vec![usize::MAX; n];
        if let Some(c) = &clustering {
            for (slot, &i) in free.iter().enumerate() {
                cluster_of[i] = c.assign[slot];
            }
        }
        let mut next = free_clusters;
        for i in 0..n {
            if pinned(i) {
                cluster_of[i] = next;
                centroids.push(feats[i].clone());
                next += 1;
            }
        }
        let clusters = next;

        let mut members = vec![0u64; clusters];
        for &c in &cluster_of {
            members[c] += 1;
        }

        // Representative: the member closest to the centroid (ties toward
        // the earliest interval).
        let mut rep = vec![usize::MAX; clusters];
        let mut rep_dist = vec![f64::INFINITY; clusters];
        for i in 0..n {
            let c = cluster_of[i];
            let d = dist(&feats[i], &centroids[c]);
            if d < rep_dist[c] {
                rep_dist[c] = d;
                rep[c] = i;
            }
        }

        let mut dispersion = vec![0.0f64; clusters];
        for i in 0..n {
            let c = cluster_of[i];
            let d = dist(&feats[i], &centroids[c]);
            dispersion[c] += d * d;
        }
        for c in 0..clusters {
            dispersion[c] = (dispersion[c] / members[c] as f64).sqrt();
        }

        let intervals = bounds
            .iter()
            .enumerate()
            .map(|(i, &(start, end))| {
                let cluster = cluster_of[i];
                Interval {
                    index: i,
                    start,
                    end,
                    cluster,
                    weight: if rep[cluster] == i {
                        members[cluster]
                    } else {
                        0
                    },
                }
            })
            .collect();

        SamplePlan {
            intervals,
            clusters,
            centroids,
            dispersion,
            members,
        }
    }

    /// Number of intervals.
    pub fn interval_count(&self) -> usize {
        self.intervals.len()
    }

    /// The representative intervals (weight > 0), in trace order.
    pub fn representatives(&self) -> impl Iterator<Item = &Interval> {
        self.intervals.iter().filter(|iv| iv.weight > 0)
    }

    /// Heuristic a-priori bound on the relative IPC reconstruction error,
    /// in percent, from cluster geometry and the representatives' IPCs.
    ///
    /// `rep_ipc[c]` is the measured IPC of cluster `c`'s representative.
    /// The model assumes IPC varies smoothly in feature space and
    /// estimates its sensitivity from the observed data: a least-squares
    /// through-origin fit of `|ΔIPC|` against centroid distance over all
    /// cluster pairs (`slope = Σ|ΔIPC|·d / Σd²`). The fit is robust to
    /// the steep-but-local pairs a max-ratio estimator latches onto
    /// (e.g. adjacent warmup-ramp segments whose centroids differ only
    /// by a sliver of trace position). Each cluster then contributes
    /// `slope × dispersion` of potential per-interval error; clusters
    /// are combined as a member-weighted RMS and normalised by the
    /// weighted-mean IPC.
    ///
    /// The estimate is exactly 0 when every cluster is a singleton (all
    /// dispersions are 0 — the bit-identical configuration), and also
    /// when all representatives report the same IPC: the estimator is
    /// empirical, so zero observed sensitivity predicts zero error.
    pub fn ipc_error_bound_pct(&self, rep_ipc: &[f64]) -> f64 {
        assert_eq!(rep_ipc.len(), self.clusters, "one IPC per cluster");
        let total: u64 = self.members.iter().sum();
        let mean_ipc: f64 = (0..self.clusters)
            .map(|c| rep_ipc[c] * self.members[c] as f64)
            .sum::<f64>()
            / total as f64;
        if mean_ipc <= 0.0 {
            return 0.0;
        }

        const EPS: f64 = 1e-9;
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for a in 0..self.clusters {
            for b in (a + 1)..self.clusters {
                let d = dist(&self.centroids[a], &self.centroids[b]);
                if d > EPS {
                    num += (rep_ipc[a] - rep_ipc[b]).abs() * d;
                    den += d * d;
                }
            }
        }
        let slope = if den > EPS { num / den } else { 0.0 };
        let mse: f64 = (0..self.clusters)
            .map(|c| {
                let e = slope * self.dispersion[c];
                e * e * self.members[c] as f64
            })
            .sum::<f64>()
            / total as f64;
        100.0 * mse.sqrt() / mean_ipc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catch_trace::{Addr, ArchReg, TraceBuilder};

    fn trace(ops: usize) -> Trace {
        let mut b = TraceBuilder::new("t");
        let r = ArchReg::new(1);
        for i in 0..ops {
            b.load(r, Addr::new(64 * (i as u64 % 512)), 0);
        }
        b.build()
    }

    #[test]
    fn weights_partition_the_trace() {
        let t = trace(10_500);
        let plan = SamplePlan::build(&t, &SampleConfig::new(1_000));
        assert_eq!(plan.interval_count(), 10);
        let weighted: u64 = plan.intervals.iter().map(|iv| iv.weight).sum();
        assert_eq!(weighted, 10, "weights must sum to the interval count");
        let covered: usize = plan.intervals.iter().map(|iv| iv.end - iv.start).sum();
        assert_eq!(covered, t.len());
    }

    #[test]
    fn cold_start_interval_is_pinned_singleton() {
        let t = trace(10_000);
        let plan = SamplePlan::build(&t, &SampleConfig::new(1_000).with_max_clusters(2));
        let first = &plan.intervals[0];
        assert_eq!(first.weight, 1, "interval 0 must represent itself");
        assert_eq!(plan.members[first.cluster], 1);
    }

    #[test]
    fn oversized_tail_is_pinned_singleton() {
        let t = trace(10_500);
        let plan = SamplePlan::build(&t, &SampleConfig::new(1_000).with_max_clusters(2));
        let last = plan.intervals.last().expect("intervals");
        assert_eq!(last.end - last.start, 1_500);
        assert_eq!(last.weight, 1, "oversized tail must represent itself");
        assert_eq!(plan.members[last.cluster], 1);
    }

    #[test]
    fn exact_tail_is_not_pinned() {
        let t = trace(10_000);
        let plan = SamplePlan::build(&t, &SampleConfig::new(1_000).with_max_clusters(1));
        // 10 intervals: interval 0 pinned, the other 9 share one cluster.
        assert_eq!(plan.clusters, 2);
        assert_eq!(plan.representatives().count(), 2);
    }

    #[test]
    fn max_clusters_at_interval_count_gives_all_singletons() {
        let t = trace(10_000);
        let plan = SamplePlan::build(&t, &SampleConfig::new(1_000).with_max_clusters(10));
        assert_eq!(plan.clusters, 10);
        assert!(plan.intervals.iter().all(|iv| iv.weight == 1));
        assert!(plan.dispersion.iter().all(|&d| d == 0.0));
        let ipcs = vec![1.0; plan.clusters];
        assert_eq!(plan.ipc_error_bound_pct(&ipcs), 0.0);
    }

    #[test]
    fn error_bound_tracks_observed_ipc_sensitivity() {
        let t = trace(20_000);
        let plan = SamplePlan::build(&t, &SampleConfig::new(1_000).with_max_clusters(4));
        // Zero observed IPC sensitivity predicts zero error.
        let flat = vec![1.0; plan.clusters];
        assert_eq!(plan.ipc_error_bound_pct(&flat), 0.0);
        // An IPC spread across clusters yields a finite positive bound
        // (the clustered intervals have non-zero dispersion).
        let spread: Vec<f64> = (0..plan.clusters).map(|i| 0.5 + i as f64 * 0.5).collect();
        let b = plan.ipc_error_bound_pct(&spread);
        assert!(b.is_finite() && b > 0.0, "bound was {b}");
    }

    #[test]
    fn plan_is_deterministic() {
        let t = trace(20_000);
        let cfg = SampleConfig::new(1_000).with_max_clusters(4);
        let a = SamplePlan::build(&t, &cfg);
        let b = SamplePlan::build(&t, &cfg);
        assert_eq!(a.intervals, b.intervals);
    }

    #[test]
    fn single_interval_trace_is_fully_detailed() {
        let t = trace(500);
        let plan = SamplePlan::build(&t, &SampleConfig::new(1_000));
        assert_eq!(plan.interval_count(), 1);
        assert_eq!(plan.intervals[0].weight, 1);
    }
}
