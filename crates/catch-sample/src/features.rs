//! Interval splitting and per-interval feature vectors.
//!
//! The profiling pass is purely functional over the trace: no simulator
//! state is consulted, so profiling cost is a single linear scan. Each
//! interval is summarised by a fixed-length vector combining:
//!
//! * a basic-block-style signature — a histogram of hashed PCs
//!   ([`BBV_BUCKETS`] buckets), the classic SimPoint BBV compressed to a
//!   fixed width,
//! * the op-class mix (load / store / branch / FP fractions),
//! * a load stride-delta histogram plus its normalised entropy, which
//!   separates streaming phases from pointer-chasing phases,
//! * working-set footprint: distinct lines and pages touched, normalised
//!   by interval length,
//! * the interval's normalised position in the trace (appended by
//!   [`profile`], weighted by [`POSITION_WEIGHT`]).
//!
//! All components are normalised to interval-length-independent fractions
//! so the oversized tail interval (see [`interval_bounds`]) clusters with
//! its regular-sized peers.
//!
//! The position feature deserves a word: a stationary loop kernel emits
//! near-identical content features for every interval, yet its measured
//! IPC still ramps as caches and predictors fill — a purely
//! *microarchitectural* phase no trace-content feature can see. Folding
//! the interval's temporal position into the vector makes k-means fall
//! back to contiguous segmentation exactly in that situation (identical
//! content ⇒ distance is dominated by position), so the warmup ramp is
//! approximated piecewise instead of being collapsed into one
//! unrepresentative interval. When content features *do* differ (real
//! phase changes), they dominate the distance and clustering behaves like
//! classic SimPoint.

use catch_trace::{MicroOp, OpClass, Trace};
use std::collections::HashSet;

/// Number of hashed-PC buckets in the basic-block signature.
pub const BBV_BUCKETS: usize = 16;

/// Number of buckets in the load stride-delta histogram.
pub const STRIDE_BUCKETS: usize = 5;

/// Dimensionality of the content features computed by [`feature_vector`]
/// (excludes the position feature appended by [`profile`]).
pub const FEATURE_DIM: usize = BBV_BUCKETS + 4 + STRIDE_BUCKETS + 1 + 2;

/// Dimensionality of the profiled per-interval vectors ([`FEATURE_DIM`]
/// content features plus the trace-position feature).
pub const PROFILE_DIM: usize = FEATURE_DIM + 1;

/// Weight of the temporal-position feature appended by [`profile`].
/// Content features are normalised fractions, so a weight of 1 makes a
/// full-trace position difference comparable to a complete change of op
/// mix — position dominates only when content features are nearly
/// identical (see the module docs).
pub const POSITION_WEIGHT: f64 = 1.0;

/// Splits `trace_len` ops into fixed-size intervals of `interval_ops`,
/// returning `(start, end)` op-index ranges. The remainder (fewer than
/// `interval_ops` trailing ops) is merged into the last interval, so the
/// tail interval holds between `interval_ops` and `2 * interval_ops - 1`
/// ops. A trace shorter than one interval yields a single interval.
pub fn interval_bounds(trace_len: usize, interval_ops: usize) -> Vec<(usize, usize)> {
    assert!(interval_ops > 0, "interval_ops must be positive");
    assert!(trace_len > 0, "cannot split an empty trace");
    let n = (trace_len / interval_ops).max(1);
    (0..n)
        .map(|i| {
            let start = i * interval_ops;
            let end = if i == n - 1 {
                trace_len
            } else {
                start + interval_ops
            };
            (start, end)
        })
        .collect()
}

/// Computes the feature vector for one slice of micro-ops.
pub fn feature_vector(ops: &[MicroOp]) -> Vec<f64> {
    assert!(!ops.is_empty(), "feature_vector needs at least one op");
    let mut v = vec![0.0; FEATURE_DIM];
    let total = ops.len() as f64;

    let (mut loads, mut stores, mut branches, mut fp) = (0u64, 0u64, 0u64, 0u64);
    let mut strides = [0u64; STRIDE_BUCKETS];
    let mut prev_load_line: Option<u64> = None;
    let mut lines = HashSet::new();
    let mut pages = HashSet::new();

    for op in ops {
        v[bbv_bucket(op)] += 1.0;
        match op.class {
            OpClass::Load => loads += 1,
            OpClass::Store => stores += 1,
            OpClass::Branch => branches += 1,
            OpClass::FpAdd | OpClass::FpMul => fp += 1,
            _ => {}
        }
        if let Some(mem) = op.mem {
            lines.insert(mem.addr.line());
            pages.insert(mem.addr.page());
            if op.class == OpClass::Load {
                let line = mem.addr.line().get();
                if let Some(prev) = prev_load_line {
                    strides[stride_bucket(line.wrapping_sub(prev) as i64)] += 1;
                }
                prev_load_line = Some(line);
            }
        }
    }

    for b in v.iter_mut().take(BBV_BUCKETS) {
        *b /= total;
    }
    let mix = BBV_BUCKETS;
    v[mix] = loads as f64 / total;
    v[mix + 1] = stores as f64 / total;
    v[mix + 2] = branches as f64 / total;
    v[mix + 3] = fp as f64 / total;

    let stride_base = mix + 4;
    let stride_total: u64 = strides.iter().sum();
    if stride_total > 0 {
        for (slot, &count) in strides.iter().enumerate() {
            v[stride_base + slot] = count as f64 / stride_total as f64;
        }
    }
    v[stride_base + STRIDE_BUCKETS] = entropy(&v[stride_base..stride_base + STRIDE_BUCKETS]);

    let foot = stride_base + STRIDE_BUCKETS + 1;
    v[foot] = lines.len() as f64 / total;
    v[foot + 1] = pages.len() as f64 / total;
    v
}

/// Profiles a trace: one [`PROFILE_DIM`]-length vector per
/// `(start, end)` interval — the content features of the slice plus the
/// weighted normalised interval position.
pub fn profile(trace: &Trace, bounds: &[(usize, usize)]) -> Vec<Vec<f64>> {
    let n = bounds.len();
    bounds
        .iter()
        .enumerate()
        .map(|(i, &(start, end))| {
            let mut v = feature_vector(&trace.ops()[start..end]);
            let position = if n > 1 {
                i as f64 / (n - 1) as f64
            } else {
                0.0
            };
            v.push(POSITION_WEIGHT * position);
            v
        })
        .collect()
}

fn bbv_bucket(op: &MicroOp) -> usize {
    debug_assert!(BBV_BUCKETS.is_power_of_two());
    op.pc.hashed(BBV_BUCKETS.trailing_zeros()) as usize
}

/// Buckets a line-granular load stride: sequential (0), unit (±1), small
/// (|d| ≤ 8), medium (|d| ≤ 64), large/irregular.
fn stride_bucket(delta: i64) -> usize {
    match delta.unsigned_abs() {
        0 => 0,
        1 => 1,
        2..=8 => 2,
        9..=64 => 3,
        _ => 4,
    }
}

/// Shannon entropy of a discrete distribution, normalised to `[0, 1]` by
/// the maximum (uniform) entropy for its bucket count.
fn entropy(p: &[f64]) -> f64 {
    let h: f64 = p.iter().filter(|&&x| x > 0.0).map(|&x| -x * x.log2()).sum();
    h / (p.len() as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use catch_trace::{Addr, ArchReg, TraceBuilder};

    fn streaming_trace(ops: usize) -> Trace {
        let mut b = TraceBuilder::new("stream");
        let r = ArchReg::new(1);
        for i in 0..ops {
            b.load(r, Addr::new(64 * i as u64), 0);
        }
        b.build()
    }

    #[test]
    fn bounds_merge_tail_into_last_interval() {
        let b = interval_bounds(1050, 100);
        assert_eq!(b.len(), 10);
        assert_eq!(b[0], (0, 100));
        assert_eq!(b[9], (900, 1050));
        let total: usize = b.iter().map(|(s, e)| e - s).sum();
        assert_eq!(total, 1050);
    }

    #[test]
    fn short_trace_is_one_interval() {
        assert_eq!(interval_bounds(37, 100), vec![(0, 37)]);
    }

    #[test]
    fn exact_split_has_no_tail() {
        let b = interval_bounds(400, 100);
        assert_eq!(b.len(), 4);
        assert!(b.iter().all(|(s, e)| e - s == 100));
    }

    #[test]
    fn feature_vector_has_fixed_dimension_and_is_normalised() {
        let t = streaming_trace(500);
        let v = feature_vector(t.ops());
        assert_eq!(v.len(), FEATURE_DIM);
        let bbv_sum: f64 = v[..BBV_BUCKETS].iter().sum();
        assert!((bbv_sum - 1.0).abs() < 1e-9, "BBV must sum to 1");
        assert!(v.iter().all(|&x| (0.0..=1.0 + 1e-9).contains(&x)));
        // Pure load stream: load fraction 1, unit-line stride dominates.
        assert!((v[BBV_BUCKETS] - 1.0).abs() < 1e-9);
        assert!(v[BBV_BUCKETS + 4 + 1] > 0.99, "unit stride bucket");
    }

    #[test]
    fn streaming_and_random_phases_are_separable() {
        let mut b = TraceBuilder::new("mixed");
        let r = ArchReg::new(1);
        for i in 0..200u64 {
            b.load(r, Addr::new(64 * i), 0);
        }
        let mut x = 12345u64;
        for _ in 0..200 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            b.load(r, Addr::new(x % (1 << 30)), 0);
        }
        let t = b.build();
        let a = feature_vector(&t.ops()[..200]);
        let c = feature_vector(&t.ops()[200..]);
        let dist: f64 = a
            .iter()
            .zip(&c)
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 0.5, "phases should be far apart, got {dist}");
    }

    #[test]
    fn profile_is_deterministic() {
        let t = streaming_trace(1000);
        let bounds = interval_bounds(t.len(), 100);
        assert_eq!(profile(&t, &bounds), profile(&t, &bounds));
    }

    #[test]
    fn profile_appends_normalised_position() {
        let t = streaming_trace(1000);
        let bounds = interval_bounds(t.len(), 100);
        let feats = profile(&t, &bounds);
        assert!(feats.iter().all(|f| f.len() == PROFILE_DIM));
        assert_eq!(feats[0][FEATURE_DIM], 0.0, "first interval at position 0");
        assert!(
            (feats[9][FEATURE_DIM] - POSITION_WEIGHT).abs() < 1e-12,
            "last interval at full position weight"
        );
        // Positions are strictly increasing even when content features
        // are identical, so a stationary trace still segments temporally.
        for w in feats.windows(2) {
            assert!(w[0][FEATURE_DIM] < w[1][FEATURE_DIM]);
        }
    }

    #[test]
    fn entropy_normalised() {
        assert_eq!(entropy(&[1.0, 0.0, 0.0, 0.0]), 0.0);
        let uniform = [0.25; 4];
        assert!((entropy(&uniform) - 1.0).abs() < 1e-12);
    }
}
