//! Deterministic, seeded k-means for interval feature vectors.
//!
//! Standard Lloyd iterations with k-means++ seeding, driven entirely by
//! the workspace's first-party [`SplitMix64`] generator so clustering is
//! bit-reproducible across platforms and runs. Ties (equidistant points,
//! equally-far reseed candidates) break toward the lowest index, which
//! keeps the assignment independent of iteration order.

use catch_trace::rng::SplitMix64;

/// Result of one clustering run.
#[derive(Clone, Debug)]
pub struct Clustering {
    /// `assign[i]` is the cluster id (`0..k`) of point `i`.
    pub assign: Vec<usize>,
    /// Cluster centroids, indexed by cluster id.
    pub centroids: Vec<Vec<f64>>,
}

/// Squared Euclidean distance.
fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance.
pub fn dist(a: &[f64], b: &[f64]) -> f64 {
    dist2(a, b).sqrt()
}

/// Clusters `points` into `k` groups.
///
/// With `k >= points.len()` every point becomes its own cluster (identity
/// assignment, no iteration) — the degenerate configuration used to prove
/// bit-identity of sampled and full simulation runs.
///
/// # Panics
///
/// Panics if `points` is empty or `k` is zero.
pub fn kmeans(points: &[Vec<f64>], k: usize, seed: u64, max_iters: usize) -> Clustering {
    assert!(!points.is_empty(), "kmeans needs at least one point");
    assert!(k > 0, "kmeans needs at least one cluster");
    let n = points.len();
    if k >= n {
        return Clustering {
            assign: (0..n).collect(),
            centroids: points.to_vec(),
        };
    }

    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut centroids = seed_plus_plus(points, k, &mut rng);
    let mut assign = vec![0usize; n];

    for _ in 0..max_iters.max(1) {
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = nearest_centroid(p, &centroids);
            if assign[i] != best {
                assign[i] = best;
                changed = true;
            }
        }
        recompute_centroids(points, &assign, &mut centroids);
        if !changed {
            break;
        }
    }
    Clustering { assign, centroids }
}

/// Index of the nearest centroid (ties toward the lowest id).
fn nearest_centroid(p: &[f64], centroids: &[Vec<f64>]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (c, centroid) in centroids.iter().enumerate() {
        let d = dist2(p, centroid);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

/// k-means++ seeding: the first centroid is a uniform draw, each later
/// one is drawn with probability proportional to its squared distance
/// from the nearest already-chosen centroid.
fn seed_plus_plus(points: &[Vec<f64>], k: usize, rng: &mut SplitMix64) -> Vec<Vec<f64>> {
    let n = points.len();
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..n)].clone());
    let mut d2: Vec<f64> = points.iter().map(|p| dist2(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with a centroid; any pick is equivalent.
            rng.gen_range(0..n)
        } else {
            let mut r = rng.gen_f64() * total;
            let mut pick = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                if r < w {
                    pick = i;
                    break;
                }
                r -= w;
            }
            pick
        };
        centroids.push(points[next].clone());
        for (i, p) in points.iter().enumerate() {
            d2[i] = d2[i].min(dist2(p, centroids.last().expect("just pushed")));
        }
    }
    centroids
}

/// Recomputes each centroid as the mean of its members. An emptied
/// cluster is reseeded to the point farthest from its current centroid
/// (deterministic: ties toward the lowest index).
fn recompute_centroids(points: &[Vec<f64>], assign: &[usize], centroids: &mut [Vec<f64>]) {
    let dim = points[0].len();
    let k = centroids.len();
    let mut sums = vec![vec![0.0; dim]; k];
    let mut counts = vec![0usize; k];
    for (p, &c) in points.iter().zip(assign) {
        counts[c] += 1;
        for (s, x) in sums[c].iter_mut().zip(p) {
            *s += x;
        }
    }
    for c in 0..k {
        if counts[c] == 0 {
            let far = points
                .iter()
                .enumerate()
                .max_by(|(ia, a), (ib, b)| {
                    dist2(a, &centroids[c])
                        .partial_cmp(&dist2(b, &centroids[c]))
                        .expect("finite distances")
                        // On ties, prefer the lower index.
                        .then(ib.cmp(ia))
                })
                .map(|(i, _)| i)
                .expect("non-empty points");
            centroids[c] = points[far].clone();
        } else {
            for (s, slot) in sums[c].iter().zip(centroids[c].iter_mut()) {
                *slot = s / counts[c] as f64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f64>> {
        // Two well-separated 2-D blobs of 5 points each.
        let mut pts = Vec::new();
        for i in 0..5 {
            pts.push(vec![0.0 + 0.01 * i as f64, 0.0]);
        }
        for i in 0..5 {
            pts.push(vec![10.0 + 0.01 * i as f64, 10.0]);
        }
        pts
    }

    #[test]
    fn separates_obvious_blobs() {
        let c = kmeans(&blobs(), 2, 42, 32);
        let first = c.assign[0];
        assert!(c.assign[..5].iter().all(|&a| a == first));
        let second = c.assign[5];
        assert_ne!(first, second);
        assert!(c.assign[5..].iter().all(|&a| a == second));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = kmeans(&blobs(), 2, 7, 32);
        let b = kmeans(&blobs(), 2, 7, 32);
        assert_eq!(a.assign, b.assign);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn k_at_least_n_is_identity() {
        let pts = blobs();
        for k in [pts.len(), pts.len() + 3, usize::MAX] {
            let c = kmeans(&pts, k, 1, 32);
            assert_eq!(c.assign, (0..pts.len()).collect::<Vec<_>>());
            assert_eq!(c.centroids, pts);
        }
    }

    #[test]
    fn identical_points_collapse_cleanly() {
        let pts = vec![vec![1.0, 2.0]; 6];
        let c = kmeans(&pts, 3, 9, 16);
        assert_eq!(c.assign.len(), 6);
        for &a in &c.assign {
            assert!(c.centroids[a].iter().zip(&pts[0]).all(|(x, y)| x == y));
        }
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let pts = vec![vec![0.0], vec![2.0], vec![4.0]];
        let c = kmeans(&pts, 1, 5, 16);
        assert!(c.assign.iter().all(|&a| a == 0));
        assert!((c.centroids[0][0] - 2.0).abs() < 1e-12);
    }
}
