//! SimPoint-style sampled simulation support for the CATCH simulator.
//!
//! Simulating every micro-op of a long trace is the dominant cost of the
//! experiment suite. This crate implements the classic remedy (Sherwood
//! et al.'s SimPoint, applied to cache studies by Bueno et al., see
//! PAPERS.md): split the trace into fixed-size intervals, summarise each
//! interval with a cheap feature vector ([`features`]), cluster the
//! vectors with a deterministic seeded k-means ([`mod@kmeans`]), and simulate
//! only one *representative* interval per cluster in detail, weighting
//! its statistics by the cluster's member count ([`SamplePlan`]).
//!
//! The crate is purely analytical — it never runs the simulator. The
//! execution side (functional warmup between representatives, weighted
//! stat reconstruction) lives in `catch-cpu`, `catch-cache` and
//! `catch-core::System::run_sampled`.
//!
//! Determinism is a hard requirement everywhere: clustering uses the
//! workspace's SplitMix64 with a seed carried in [`SampleConfig`], and
//! all tie-breaks resolve toward the lowest index, so a plan is a pure
//! function of `(trace, config)`.
//!
//! # Example
//!
//! ```
//! use catch_sample::{SampleConfig, SamplePlan};
//! use catch_trace::{Addr, ArchReg, TraceBuilder};
//!
//! let mut b = TraceBuilder::new("demo");
//! for i in 0..4_000u64 {
//!     b.load(ArchReg::new(1), Addr::new(64 * i), 0);
//! }
//! let trace = b.build();
//! let plan = SamplePlan::build(&trace, &SampleConfig::new(1_000));
//! assert_eq!(plan.interval_count(), 4);
//! // Weights always sum back to the interval count.
//! let total: u64 = plan.intervals.iter().map(|iv| iv.weight).sum();
//! assert_eq!(total, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod features;
pub mod kmeans;
mod plan;

pub use features::{
    feature_vector, interval_bounds, profile, FEATURE_DIM, POSITION_WEIGHT, PROFILE_DIM,
};
pub use kmeans::{kmeans, Clustering};
pub use plan::{Interval, SampleConfig, SamplePlan};
