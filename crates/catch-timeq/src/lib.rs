//! Event-queue engine core (`timeq`) for the CATCH simulator.
//!
//! The tick engine walks the clock one cycle at a time (with stall
//! skip-ahead recomputing "who could wake next" from scratch on every
//! idle tick). This crate provides the machinery for the event-driven
//! alternative: components post [`ServiceRequest`]s — cycle-stamped wake
//! reservations — into a [`CalendarQueue`], and the engine jumps the
//! clock directly between event timestamps.
//!
//! The correctness contract is deliberately weak, which is what makes a
//! bit-identical engine swap possible (see `DESIGN.md` §11):
//!
//! * every posted request is a **lower bound** on when its source can
//!   next make architectural progress, and
//! * whenever the machine is idle, some pending request is at or before
//!   the true next-progress cycle.
//!
//! Under those two rules the engine may wake early (the probe tick is
//! idle and bit-reproducible) but can never wake late, so any surplus of
//! conservative tickets costs only probe ticks — never correctness.
//! Sources that can *never* gate core progress (prefetch arrivals) are
//! accounted but not scheduled; see [`Source::gating`].
//!
//! # Structure
//!
//! * [`CalendarQueue`] — a bucketed timing wheel ([`WHEEL_SLOTS`] one-
//!   cycle buckets) backed by a [`HiBitSet`] occupancy mask for O(1)
//!   next-event scans, with an overflow min-heap for events beyond the
//!   horizon. Requests at the same cycle coalesce into one bucket and
//!   replay in post (FIFO) order.
//! * [`Ticket`] — the admission receipt: the scheduled cycle plus a
//!   monotone sequence number that fixes same-cycle ordering.
//! * [`Backpressure`] — the rejection: a request into the past cannot be
//!   admitted; the caller re-posts at `retry_at` (the queue's current
//!   horizon), which models a zero-delay self-wake.
//! * [`HiBitSet`] — a two-level hierarchical bitmask (word summary over
//!   bit words) used for the wheel occupancy and exported for ready-set
//!   style scans.
//! * [`WakeBuf`] — the component-side posting surface: cache levels,
//!   DRAM and the TACT prefetchers deposit hints while servicing an
//!   access; the core drains the buffer into its queue after each tick.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated time, in core cycles.
pub type Cycle = u64;

/// Wheel size in one-cycle buckets. Covers every common wake distance
/// (DRAM round trips are ~300 cycles); anything further spills to the
/// overflow heap. Must be a power of two.
pub const WHEEL_SLOTS: usize = 1024;

/// Which component posted a request. Used for accounting and for the
/// gating policy ([`Source::gating`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Source {
    /// Core scheduler: an issued µop's completion (wakes retirement and
    /// dependants).
    Exec,
    /// Front end: an I-cache stall ends or a redirect resume lands.
    Frontend,
    /// L1D MSHR file: a rejected (MSHR-full) load's re-post.
    Mshr,
    /// A cache level: demand miss fill ready.
    Cache,
    /// DRAM: demand access leaves the memory system (bank timing).
    Dram,
    /// TACT prefetcher: a prefetch arrives. Never gates core progress.
    Tact,
}

/// Number of [`Source`] variants (per-source accounting arrays).
pub const SOURCE_COUNT: usize = 6;

impl Source {
    /// All variants, indexable by [`Source::index`].
    pub const ALL: [Source; SOURCE_COUNT] = [
        Source::Exec,
        Source::Frontend,
        Source::Mshr,
        Source::Cache,
        Source::Dram,
        Source::Tact,
    ];

    /// Dense index for accounting arrays.
    pub fn index(self) -> usize {
        match self {
            Source::Exec => 0,
            Source::Frontend => 1,
            Source::Mshr => 2,
            Source::Cache => 3,
            Source::Dram => 4,
            Source::Tact => 5,
        }
    }

    /// Whether events from this source can gate core progress. A
    /// prefetch arrival changes cache state that future accesses will
    /// observe, but no pipeline stage waits on it, so scheduling a probe
    /// for it would only burn an idle tick. Non-gating hints are counted
    /// ([`QueueStats::suppressed`]) but not enqueued.
    pub fn gating(self) -> bool {
        !matches!(self, Source::Tact)
    }
}

/// A cycle-stamped wake reservation a component posts into the queue.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ServiceRequest {
    /// The cycle at which the posting component's event lands (a lower
    /// bound on its next possible progress).
    pub at: Cycle,
    /// The posting component.
    pub source: Source,
}

impl ServiceRequest {
    /// Creates a request for `source` at cycle `at`.
    pub fn new(at: Cycle, source: Source) -> Self {
        ServiceRequest { at, source }
    }
}

/// Admission receipt for a posted [`ServiceRequest`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Ticket {
    /// The admitted cycle.
    pub at: Cycle,
    /// Global admission sequence number; same-cycle requests replay in
    /// ascending `seq` (FIFO) order.
    pub seq: u64,
}

/// Rejection of a request into the past. The queue's clock only moves
/// forward, so a component that raced the engine re-posts at `retry_at`
/// — the current horizon — which the engine services before advancing
/// (a zero-delay self-wake).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Backpressure {
    /// Earliest admissible cycle (the queue's current time).
    pub retry_at: Cycle,
}

/// Queue accounting, cheap enough to keep always-on.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Requests admitted, total.
    pub posted: u64,
    /// Admitted requests that coalesced into an already-occupied cycle.
    pub coalesced: u64,
    /// Requests admitted via the overflow heap (beyond the wheel).
    pub overflow: u64,
    /// Requests rejected with [`Backpressure`].
    pub rejected: u64,
    /// Stale entries dropped (the clock advanced past them during
    /// progress ticks).
    pub stale_dropped: u64,
    /// Non-gating hints accounted but not enqueued, per [`Source`].
    pub suppressed: [u64; SOURCE_COUNT],
    /// Admitted requests per [`Source`].
    pub by_source: [u64; SOURCE_COUNT],
}

/// A two-level hierarchical bitmask: one summary word where bit `w`
/// means "word `w` has a set bit", over a flat array of 64-bit words.
/// Capacity is fixed at construction, up to `64 * 64 = 4096` bits —
/// enough for the wheel, a scheduler window or an MSHR file. `find`
/// operations cost two `trailing_zeros`, independent of population.
#[derive(Clone, Debug)]
pub struct HiBitSet {
    summary: u64,
    words: Vec<u64>,
    bits: usize,
}

impl HiBitSet {
    /// Creates an empty set over `bits` positions.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or exceeds 4096 (one summary word).
    pub fn new(bits: usize) -> Self {
        assert!(bits > 0 && bits <= 64 * 64, "HiBitSet capacity 1..=4096");
        HiBitSet {
            summary: 0,
            words: vec![0; bits.div_ceil(64)],
            bits,
        }
    }

    /// Capacity in bits.
    pub fn capacity(&self) -> usize {
        self.bits
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.summary == 0
    }

    /// Sets bit `i`. Returns whether it was previously clear.
    pub fn set(&mut self, i: usize) -> bool {
        debug_assert!(i < self.bits, "bit {i} out of range {}", self.bits);
        let (w, b) = (i / 64, i % 64);
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        self.summary |= 1 << w;
        fresh
    }

    /// Clears bit `i`.
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.bits, "bit {i} out of range {}", self.bits);
        let (w, b) = (i / 64, i % 64);
        self.words[w] &= !(1 << b);
        if self.words[w] == 0 {
            self.summary &= !(1 << w);
        }
    }

    /// Tests bit `i`.
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.bits, "bit {i} out of range {}", self.bits);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Clears every bit.
    pub fn clear_all(&mut self) {
        self.summary = 0;
        self.words.fill(0);
    }

    /// Lowest set bit at or after `from`, if any.
    pub fn next_set_at_or_after(&self, from: usize) -> Option<usize> {
        if from >= self.bits {
            return None;
        }
        let (w0, b0) = (from / 64, from % 64);
        // Tail of the word `from` lands in.
        let tail = self.words[w0] & (!0u64 << b0);
        if tail != 0 {
            return Some(w0 * 64 + tail.trailing_zeros() as usize);
        }
        // Later words via the summary.
        let later = if w0 + 1 >= 64 {
            0
        } else {
            self.summary & (!0u64 << (w0 + 1))
        };
        if later == 0 {
            return None;
        }
        let w = later.trailing_zeros() as usize;
        Some(w * 64 + self.words[w].trailing_zeros() as usize)
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Shifts every bit down one position (bit `i+1` moves to `i`; bit 0
    /// falls off). Keeps a position-indexed set aligned with a deque
    /// after a head pop.
    pub fn shift_down_one(&mut self) {
        if self.summary == 0 {
            return;
        }
        let n = self.words.len();
        for w in 0..n {
            let carry = if w + 1 < n {
                self.words[w + 1] << 63
            } else {
                0
            };
            self.words[w] = (self.words[w] >> 1) | carry;
            if self.words[w] == 0 {
                self.summary &= !(1 << w);
            } else {
                self.summary |= 1 << w;
            }
        }
    }
}

/// One wheel bucket: the cycle it currently holds plus the requests for
/// that cycle in admission order. The payload vector keeps its capacity
/// across reuse, so steady-state posting allocates nothing.
#[derive(Clone, Debug, Default)]
struct Slot {
    cycle: Cycle,
    entries: Vec<(u64, Source)>,
}

/// A cycle-stamped calendar queue: a timing wheel of [`WHEEL_SLOTS`]
/// one-cycle buckets with a [`HiBitSet`] occupancy mask, plus an
/// overflow min-heap for requests beyond the horizon.
///
/// Time (`now`) only moves forward, via [`CalendarQueue::peek_next`] /
/// [`CalendarQueue::take_due`] observing a caller-provided clock.
/// Entries the caller's clock has passed (their events were absorbed by
/// ordinary progress ticks) are dropped lazily during scans.
#[derive(Clone, Debug)]
pub struct CalendarQueue {
    /// Pruning floor: entries strictly below are stale.
    now: Cycle,
    slots: Vec<Slot>,
    occupied: HiBitSet,
    /// Requests at `>= now + WHEEL_SLOTS` when posted: `(cycle, seq,
    /// source)` min-heap.
    overflow: BinaryHeap<Reverse<(Cycle, u64, Source)>>,
    next_seq: u64,
    stats: QueueStats,
}

impl Default for CalendarQueue {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

impl CalendarQueue {
    /// Creates an empty queue at cycle 0.
    pub fn new() -> Self {
        CalendarQueue {
            now: 0,
            slots: vec![Slot::default(); WHEEL_SLOTS],
            occupied: HiBitSet::new(WHEEL_SLOTS),
            overflow: BinaryHeap::new(),
            next_seq: 0,
            stats: QueueStats::default(),
        }
    }

    /// The queue's current time (pruning floor).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Accounting counters.
    pub fn stats(&self) -> &QueueStats {
        &self.stats
    }

    /// Pending request count (stale entries included until pruned).
    pub fn len(&self) -> usize {
        let wheel: usize = self.slots.iter().map(|s| s.entries.len()).sum();
        wheel + self.overflow.len()
    }

    /// True when nothing is pending (stale entries included).
    pub fn is_empty(&self) -> bool {
        self.occupied.is_empty() && self.overflow.is_empty()
    }

    /// Posts a request. Requests at or after the queue's current time
    /// are admitted (same-cycle requests coalesce, preserving post
    /// order); a request strictly into the past is rejected with
    /// [`Backpressure`] naming the earliest admissible cycle. Non-gating
    /// sources ([`Source::gating`]) are accounted and acknowledged but
    /// not scheduled — their ticket carries the cycle yet never produces
    /// a wake.
    pub fn post(&mut self, req: ServiceRequest) -> Result<Ticket, Backpressure> {
        if req.at < self.now {
            self.stats.rejected += 1;
            return Err(Backpressure { retry_at: self.now });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        if !req.source.gating() {
            self.stats.suppressed[req.source.index()] += 1;
            return Ok(Ticket { at: req.at, seq });
        }
        self.stats.posted += 1;
        self.stats.by_source[req.source.index()] += 1;
        if req.at >= self.now + WHEEL_SLOTS as Cycle {
            self.stats.overflow += 1;
            self.overflow.push(Reverse((req.at, seq, req.source)));
            return Ok(Ticket { at: req.at, seq });
        }
        let idx = (req.at % WHEEL_SLOTS as Cycle) as usize;
        let slot = &mut self.slots[idx];
        if self.occupied.contains(idx) {
            if slot.cycle == req.at {
                self.stats.coalesced += 1;
            } else {
                // The slot holds a stale cycle from a previous wheel
                // rotation; the live window is one wheel long, so two
                // distinct in-window cycles can never share a slot.
                debug_assert!(slot.cycle < self.now, "wheel slot aliasing");
                self.stats.stale_dropped += slot.entries.len() as u64;
                slot.entries.clear();
                slot.cycle = req.at;
            }
        } else {
            self.occupied.set(idx);
            slot.cycle = req.at;
        }
        slot.entries.push((seq, req.source));
        Ok(Ticket { at: req.at, seq })
    }

    /// Earliest pending cycle at or after `clock`, pruning everything
    /// the caller's clock has passed. Advances the queue's time to
    /// `clock` (posts below it will then backpressure). Returns `None`
    /// when the queue is empty.
    pub fn peek_next(&mut self, clock: Cycle) -> Option<Cycle> {
        if clock > self.now {
            self.now = clock;
        }
        let wheel = self.prune_and_scan_wheel();
        let heap = self.prune_and_peek_overflow();
        match (wheel, heap) {
            (Some(w), Some(h)) => Some(w.min(h)),
            (w, h) => w.or(h),
        }
    }

    /// Removes and returns the requests stamped exactly `cycle`, in
    /// admission (FIFO) order. Requests for that cycle may live in the
    /// wheel and the overflow heap simultaneously (posted under
    /// different horizons); the merge is by sequence number, so storage
    /// never leaks into ordering.
    pub fn take_due(&mut self, cycle: Cycle) -> Vec<(u64, Source)> {
        if cycle > self.now {
            self.now = cycle;
        }
        let mut due: Vec<(u64, Source)> = Vec::new();
        let idx = (cycle % WHEEL_SLOTS as Cycle) as usize;
        if self.occupied.contains(idx) && self.slots[idx].cycle == cycle {
            due.append(&mut self.slots[idx].entries);
            self.occupied.clear(idx);
        }
        while let Some(Reverse((at, seq, source))) = self.overflow.peek().copied() {
            if at > cycle {
                break;
            }
            self.overflow.pop();
            if at == cycle {
                due.push((seq, source));
            } else {
                self.stats.stale_dropped += 1;
            }
        }
        due.sort_unstable_by_key(|&(seq, _)| seq);
        due
    }

    /// Drops every pending request (fast-forward hygiene); time and
    /// accounting are kept.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            slot.entries.clear();
        }
        self.occupied.clear_all();
        self.overflow.clear();
    }

    /// Scans the wheel ring from `now`'s slot for the earliest live
    /// cycle, dropping stale buckets as it passes them.
    fn prune_and_scan_wheel(&mut self) -> Option<Cycle> {
        loop {
            if self.occupied.is_empty() {
                return None;
            }
            let start = (self.now % WHEEL_SLOTS as Cycle) as usize;
            // Ring order from `now`'s slot is cycle order for live
            // entries (they all lie in [now, now + WHEEL_SLOTS)); a
            // stale bucket anywhere is cleared and the scan restarts.
            let hit = self
                .occupied
                .next_set_at_or_after(start)
                .or_else(|| self.occupied.next_set_at_or_after(0));
            let idx = hit?;
            let slot = &mut self.slots[idx];
            if slot.cycle < self.now {
                self.stats.stale_dropped += slot.entries.len() as u64;
                slot.entries.clear();
                self.occupied.clear(idx);
                continue;
            }
            return Some(slot.cycle);
        }
    }

    /// Pops stale overflow entries and returns the earliest live one.
    fn prune_and_peek_overflow(&mut self) -> Option<Cycle> {
        while let Some(Reverse((at, _, _))) = self.overflow.peek() {
            if *at >= self.now {
                return Some(*at);
            }
            self.overflow.pop();
            self.stats.stale_dropped += 1;
        }
        None
    }
}

/// The component-side posting surface: a buffer that cache levels, DRAM
/// and prefetchers fill with wake hints while servicing a call from the
/// engine, drained into the engine's [`CalendarQueue`] after the tick.
/// Disabled (the default) it is a single predictable branch per hint,
/// so the tick engine pays nothing for the plumbing.
#[derive(Clone, Debug, Default)]
pub struct WakeBuf {
    enabled: bool,
    hints: Vec<ServiceRequest>,
}

impl WakeBuf {
    /// Creates a disabled buffer.
    pub fn new() -> Self {
        WakeBuf::default()
    }

    /// Enables hint capture (the timeq engine is driving).
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// True when capture is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Deposits a hint: `source`'s service completes at `at`.
    #[inline]
    pub fn post_hint(&mut self, at: Cycle, source: Source) {
        if self.enabled {
            self.hints.push(ServiceRequest::new(at, source));
        }
    }

    /// Moves every pending hint out through `sink` (the engine posts
    /// them; a hint the clock has passed is simply dropped — its event
    /// was absorbed by the tick that generated it).
    #[inline]
    pub fn drain_into(&mut self, sink: &mut impl FnMut(ServiceRequest)) {
        for hint in self.hints.drain(..) {
            sink(hint);
        }
    }

    /// True when no hints are pending (the common case; lets callers
    /// skip the drain entirely).
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.hints.is_empty()
    }
}

/// Which cycle engine drives a run. Captured from `CATCH_ENGINE` at
/// configuration time (like `CATCH_NO_SKIP`), so every run path — tests,
/// benches, experiments — obeys one toggle.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum Engine {
    /// The reference model: per-cycle tick loop with stall skip-ahead
    /// recomputing the next event by scanning.
    Tick,
    /// The event-queue engine: wakes come from the [`CalendarQueue`].
    #[default]
    TimeQ,
}

impl Engine {
    /// Parses an engine name (`"tick"` / `"timeq"`).
    pub fn parse(s: &str) -> Result<Engine, String> {
        match s {
            "tick" => Ok(Engine::Tick),
            "timeq" => Ok(Engine::TimeQ),
            other => Err(format!(
                "invalid engine '{other}': expected 'tick' or 'timeq'"
            )),
        }
    }

    /// Resolves the engine from `CATCH_ENGINE` (default: [`Engine::TimeQ`]).
    ///
    /// # Panics
    ///
    /// Panics on an invalid value — a mis-spelled engine silently
    /// falling back would invalidate a parity run.
    pub fn from_env() -> Engine {
        match std::env::var("CATCH_ENGINE") {
            Ok(v) => Engine::parse(&v).unwrap_or_else(|e| panic!("CATCH_ENGINE: {e}")),
            Err(_) => Engine::default(),
        }
    }

    /// The engine's canonical name.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Tick => "tick",
            Engine::TimeQ => "timeq",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> CalendarQueue {
        CalendarQueue::new()
    }

    #[test]
    fn post_and_peek_in_order() {
        let mut q = q();
        q.post(ServiceRequest::new(50, Source::Exec)).unwrap();
        q.post(ServiceRequest::new(10, Source::Exec)).unwrap();
        q.post(ServiceRequest::new(30, Source::Frontend)).unwrap();
        assert_eq!(q.peek_next(0), Some(10));
        assert_eq!(q.take_due(10).len(), 1);
        assert_eq!(q.peek_next(10), Some(30));
        assert_eq!(q.peek_next(31), Some(50));
    }

    #[test]
    fn same_cycle_requests_are_fifo_by_post_order() {
        let mut q = q();
        let a = q.post(ServiceRequest::new(7, Source::Exec)).unwrap();
        let b = q.post(ServiceRequest::new(7, Source::Frontend)).unwrap();
        let c = q.post(ServiceRequest::new(7, Source::Mshr)).unwrap();
        assert!(a.seq < b.seq && b.seq < c.seq);
        let due = q.take_due(7);
        let sources: Vec<Source> = due.iter().map(|&(_, s)| s).collect();
        assert_eq!(sources, vec![Source::Exec, Source::Frontend, Source::Mshr]);
        assert_eq!(q.stats().coalesced, 2);
    }

    #[test]
    fn past_posts_backpressure_with_retry_at_now() {
        let mut q = q();
        assert_eq!(q.peek_next(100), None);
        let err = q.post(ServiceRequest::new(99, Source::Exec)).unwrap_err();
        assert_eq!(err.retry_at, 100);
        // The re-post at retry_at is a zero-delay self-wake: admitted
        // and immediately due.
        q.post(ServiceRequest::new(err.retry_at, Source::Mshr))
            .unwrap();
        assert_eq!(q.peek_next(100), Some(100));
        assert_eq!(q.stats().rejected, 1);
    }

    #[test]
    fn zero_delay_self_wake_at_current_cycle() {
        let mut q = q();
        q.peek_next(42);
        q.post(ServiceRequest::new(42, Source::Exec)).unwrap();
        assert_eq!(q.peek_next(42), Some(42));
        assert_eq!(q.take_due(42).len(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_heap_beyond_wheel_horizon() {
        let mut q = q();
        let far = WHEEL_SLOTS as Cycle * 3 + 17;
        q.post(ServiceRequest::new(far, Source::Dram)).unwrap();
        q.post(ServiceRequest::new(5, Source::Exec)).unwrap();
        assert_eq!(q.stats().overflow, 1);
        assert_eq!(q.peek_next(0), Some(5));
        assert_eq!(q.peek_next(6), Some(far));
        assert_eq!(
            q.take_due(far).iter().map(|&(_, s)| s).collect::<Vec<_>>(),
            vec![Source::Dram]
        );
    }

    #[test]
    fn wheel_rollover_reuses_slots() {
        let mut q = q();
        let n = WHEEL_SLOTS as Cycle;
        q.post(ServiceRequest::new(3, Source::Exec)).unwrap();
        assert_eq!(q.take_due(3).len(), 1);
        // Same slot, next rotation.
        q.peek_next(n);
        q.post(ServiceRequest::new(n + 3, Source::Exec)).unwrap();
        assert_eq!(q.peek_next(n), Some(n + 3));
    }

    #[test]
    fn stale_entries_dropped_when_clock_passes_them() {
        let mut q = q();
        q.post(ServiceRequest::new(10, Source::Exec)).unwrap();
        q.post(ServiceRequest::new(20, Source::Exec)).unwrap();
        // The engine made progress through cycle 15 without consuming
        // the cycle-10 ticket: the scan skips straight to the live one.
        assert_eq!(q.peek_next(15), Some(20));
        assert_eq!(q.take_due(20).len(), 1);
        // Pruning is lazy — the stale bucket is reaped when a later scan
        // wraps past it, and the queue then reads as empty.
        assert_eq!(q.peek_next(21), None);
        assert_eq!(q.stats().stale_dropped, 1);
        assert!(q.is_empty());
    }

    #[test]
    fn non_gating_sources_acknowledged_but_not_scheduled() {
        let mut q = q();
        let t = q.post(ServiceRequest::new(30, Source::Tact)).unwrap();
        assert_eq!(t.at, 30);
        assert_eq!(q.peek_next(0), None, "prefetch arrivals never wake");
        assert_eq!(q.stats().suppressed[Source::Tact.index()], 1);
        assert_eq!(q.stats().posted, 0);
    }

    #[test]
    fn hibitset_set_clear_scan() {
        let mut s = HiBitSet::new(300);
        assert!(s.is_empty());
        assert!(s.set(5));
        assert!(!s.set(5), "double set reports not-fresh");
        s.set(64);
        s.set(299);
        assert_eq!(s.next_set_at_or_after(0), Some(5));
        assert_eq!(s.next_set_at_or_after(6), Some(64));
        assert_eq!(s.next_set_at_or_after(65), Some(299));
        assert_eq!(s.next_set_at_or_after(300), None);
        assert_eq!(s.count(), 3);
        s.clear(64);
        assert_eq!(s.next_set_at_or_after(6), Some(299));
        s.clear_all();
        assert!(s.is_empty());
    }

    #[test]
    fn hibitset_shift_down_crosses_words() {
        let mut s = HiBitSet::new(200);
        s.set(0);
        s.set(64);
        s.set(130);
        s.shift_down_one();
        assert!(!s.contains(0), "bit 0 falls off");
        assert!(s.contains(63), "bit 64 crosses into word 0");
        assert!(s.contains(129));
        assert_eq!(s.count(), 2);
        for _ in 0..129 {
            s.shift_down_one();
        }
        assert_eq!(s.next_set_at_or_after(1), None);
        assert!(s.contains(0));
    }

    #[test]
    fn wakebuf_disabled_captures_nothing() {
        let mut b = WakeBuf::new();
        b.post_hint(10, Source::Cache);
        assert!(b.is_idle());
        b.enable();
        b.post_hint(11, Source::Dram);
        assert!(!b.is_idle());
        let mut got = Vec::new();
        b.drain_into(&mut |r| got.push(r));
        assert_eq!(got, vec![ServiceRequest::new(11, Source::Dram)]);
        assert!(b.is_idle());
    }

    #[test]
    fn engine_parse_and_names() {
        assert_eq!(Engine::parse("tick"), Ok(Engine::Tick));
        assert_eq!(Engine::parse("timeq"), Ok(Engine::TimeQ));
        assert!(Engine::parse("fast").is_err());
        assert_eq!(Engine::TimeQ.name(), "timeq");
        assert_eq!(Engine::default(), Engine::TimeQ);
    }
}
