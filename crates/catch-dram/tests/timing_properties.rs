//! Property tests over the DDR4 timing model.
//!
//! Properties run on the in-repo deterministic case driver
//! ([`catch_trace::rng::Cases`]); a failing case prints the seed that
//! reproduces it.

use catch_cache::MemoryBackend;
use catch_dram::{DramConfig, DramSystem};
use catch_trace::rng::{Cases, SplitMix64};
use catch_trace::LineAddr;

fn gen_lines(rng: &mut SplitMix64, max_line: u64, max_len: usize) -> Vec<u64> {
    let n = rng.gen_range(1usize..max_len);
    (0..n).map(|_| rng.gen_range(0u64..max_line)).collect()
}

fn gen_ops(rng: &mut SplitMix64, max_line: u64, max_len: usize) -> Vec<(u64, bool)> {
    let n = rng.gen_range(1usize..max_len);
    (0..n)
        .map(|_| (rng.gen_range(0u64..max_line), rng.gen_bool(0.5)))
        .collect()
}

/// Read latency is bounded below by CAS + burst and above by the
/// worst-case tRAS + tRP + tRCD + tCAS + burst plus accumulated queue
/// delay that cannot exceed the requests in front of it.
#[test]
fn read_latency_bounds() {
    Cases::new(96).run(|rng| {
        let lines = gen_lines(rng, 4096, 200);
        let config = DramConfig::ddr4_2400();
        let cas = config.scale(config.t_cas);
        let burst = config.scale(config.t_burst);
        let worst_single =
            config.scale(config.t_ras + config.t_rp + config.t_rcd + config.t_cas) + burst;
        let mut dram = DramSystem::new(config);
        let mut outstanding_bound = worst_single;
        for (cycle, &l) in lines.iter().enumerate() {
            let latency = dram.read(LineAddr::new(l), cycle as u64);
            assert!(latency >= cas + burst, "latency {latency} below CAS+burst");
            assert!(
                latency <= outstanding_bound,
                "latency {latency} above accumulated bound {outstanding_bound}"
            );
            // Closely-spaced requests can queue behind each other.
            outstanding_bound += worst_single;
        }
    });
}

/// With large gaps between requests, every access is independent and
/// bounded by a single worst-case access.
#[test]
fn spaced_reads_are_independent() {
    Cases::new(96).run(|rng| {
        let lines = gen_lines(rng, 65536, 100);
        let config = DramConfig::ddr4_2400();
        let worst = config.scale(config.t_ras + config.t_rp + config.t_rcd + config.t_cas)
            + config.scale(config.t_burst);
        let mut dram = DramSystem::new(config);
        let mut cycle = 0u64;
        for &l in &lines {
            let latency = dram.read(LineAddr::new(l), cycle);
            assert!(latency <= worst, "spaced read {latency} > worst {worst}");
            cycle += 10_000;
        }
    });
}

/// Row-buffer accounting: hits + empties + conflicts equals services
/// performed (reads plus drained writes).
#[test]
fn row_outcome_accounting() {
    Cases::new(96).run(|rng| {
        let ops = gen_ops(rng, 2048, 300);
        let mut dram = DramSystem::new(DramConfig::ddr4_2400());
        let mut cycle = 0u64;
        for &(l, write) in &ops {
            dram.access(LineAddr::new(l), cycle, write);
            cycle += 50;
        }
        let s = *dram.stats();
        let serviced = s.row_hits + s.row_empties + s.row_conflicts;
        // Reads are serviced immediately; writes only when their batch
        // drains (16 per channel, 2 channels -> up to 31 may be pending).
        assert!(serviced >= s.reads);
        assert!(serviced <= s.reads + s.writes);
        assert!(s.writes + s.reads == ops.len() as u64);
    });
}

/// Determinism: identical request sequences produce identical stats.
#[test]
fn model_is_deterministic() {
    Cases::new(96).run(|rng| {
        let ops = gen_ops(rng, 512, 150);
        let run = || {
            let mut dram = DramSystem::new(DramConfig::ddr4_2400());
            let mut cycle = 0u64;
            let mut total = 0u64;
            for &(l, write) in &ops {
                total += dram.access(LineAddr::new(l), cycle, write);
                cycle += 13;
            }
            (total, *dram.stats())
        };
        assert_eq!(run(), run());
    });
}

/// Deterministic unit check: sequential same-row reads settle into pure
/// row hits.
#[test]
fn steady_sequential_reads_are_row_hits() {
    let config = DramConfig::ddr4_2400();
    let mut dram = DramSystem::new(config);
    // Same channel (even lines), same bank (stride 2 × 16 banks), walk
    // within one row.
    for i in 0..8u64 {
        dram.read(LineAddr::new(i * 64), i * 500);
    }
    let s = dram.stats();
    assert!(s.row_hits >= 6, "row hits {} of 8", s.row_hits);
}
