//! DRAM configuration.

/// Geometry and timing of the memory system.
///
/// Timing fields are in *DRAM command-clock* cycles; [`DramConfig::scale`]
/// converts to core cycles (3.2 GHz core vs. 1200 MHz DDR4-2400 command
/// clock ⇒ ratio ≈ 2.67).
#[derive(Clone, Debug, PartialEq)]
pub struct DramConfig {
    /// Independent channels.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks: usize,
    /// Banks per rank.
    pub banks: usize,
    /// Row-buffer size in bytes.
    pub row_bytes: u64,
    /// CAS latency (column access) in DRAM cycles.
    pub t_cas: u64,
    /// RAS-to-CAS delay (activate) in DRAM cycles.
    pub t_rcd: u64,
    /// Row precharge in DRAM cycles.
    pub t_rp: u64,
    /// Minimum row-active time in DRAM cycles.
    pub t_ras: u64,
    /// Data-burst occupancy of the channel bus in DRAM cycles (BL8 on a
    /// 64-bit bus moves 64 B in 4 clocks).
    pub t_burst: u64,
    /// Core cycles per DRAM cycle (fixed-point ×100: 267 ⇒ 2.67).
    pub core_per_dram_x100: u64,
    /// Writes are drained in batches of this size.
    pub write_batch: usize,
}

impl DramConfig {
    /// The paper's configuration: DDR4-2400, 2 channels, 2 ranks, 8 banks,
    /// 2 KB rows, 15-15-15-39, 3.2 GHz core.
    pub fn ddr4_2400() -> Self {
        DramConfig {
            channels: 2,
            ranks: 2,
            banks: 8,
            row_bytes: 2048,
            t_cas: 15,
            t_rcd: 15,
            t_rp: 15,
            t_ras: 39,
            t_burst: 4,
            core_per_dram_x100: 267,
            write_batch: 16,
        }
    }

    /// Converts DRAM cycles to core cycles (rounding up).
    pub fn scale(&self, dram_cycles: u64) -> u64 {
        (dram_cycles * self.core_per_dram_x100).div_ceil(100)
    }

    /// Total banks across the system.
    pub fn total_banks(&self) -> usize {
        self.channels * self.ranks * self.banks
    }

    /// Cache lines per row buffer.
    pub fn lines_per_row(&self) -> u64 {
        self.row_bytes / catch_trace::LINE_BYTES
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig::ddr4_2400()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr4_2400_matches_paper() {
        let c = DramConfig::ddr4_2400();
        assert_eq!(
            (c.t_cas, c.t_rcd, c.t_rp, c.t_ras),
            (15, 15, 15, 39),
            "15-15-15-39"
        );
        assert_eq!(c.channels, 2);
        assert_eq!(c.total_banks(), 32);
        assert_eq!(c.lines_per_row(), 32);
    }

    #[test]
    fn scale_rounds_up() {
        let c = DramConfig::ddr4_2400();
        assert_eq!(c.scale(15), 41); // 15 * 2.67 = 40.05 -> 41
        assert_eq!(c.scale(0), 0);
    }
}
