//! Memory-system statistics.

use catch_obs::OccupancyHist;
use catch_trace::counters::monotonic_delta;
use std::fmt;

/// Counters for the DRAM system.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Read accesses.
    pub reads: u64,
    /// Write accesses (posted).
    pub writes: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Accesses to an idle (precharged) bank.
    pub row_empties: u64,
    /// Row-buffer conflicts.
    pub row_conflicts: u64,
    /// Sum of read latencies in core cycles (for averaging).
    pub total_read_latency: u64,
    /// Write batches drained.
    pub write_batches: u64,
    /// Busy-bank occupancy, sampled at every read arrival.
    pub bank_occ: OccupancyHist,
}

impl catch_trace::counters::Counters for DramStats {
    fn counters_into(&self, prefix: &str, out: &mut catch_trace::counters::CounterVec) {
        use catch_trace::counters::push_counter;
        push_counter(out, prefix, "reads", self.reads);
        push_counter(out, prefix, "writes", self.writes);
        push_counter(out, prefix, "row_hits", self.row_hits);
        push_counter(out, prefix, "row_empties", self.row_empties);
        push_counter(out, prefix, "row_conflicts", self.row_conflicts);
        push_counter(out, prefix, "total_read_latency", self.total_read_latency);
        push_counter(out, prefix, "write_batches", self.write_batches);
        self.bank_occ
            .counters_into(&catch_trace::counters::join_prefix(prefix, "bank_occ"), out);
    }
}

impl catch_trace::counters::FromCounters for DramStats {
    fn from_counters(
        prefix: &str,
        src: &mut catch_trace::counters::CounterSource,
    ) -> Result<Self, String> {
        use catch_trace::counters::join_prefix;
        Ok(DramStats {
            reads: src.take(prefix, "reads")?,
            writes: src.take(prefix, "writes")?,
            row_hits: src.take(prefix, "row_hits")?,
            row_empties: src.take(prefix, "row_empties")?,
            row_conflicts: src.take(prefix, "row_conflicts")?,
            total_read_latency: src.take(prefix, "total_read_latency")?,
            write_batches: src.take(prefix, "write_batches")?,
            bank_occ: OccupancyHist::from_counters(&join_prefix(prefix, "bank_occ"), src)?,
        })
    }
}

impl DramStats {
    /// Combines the scalar counters field-by-field with `f`; `bank_occ`
    /// is carried from `self` and combined by the callers.
    fn zip(&self, other: &Self, f: impl Fn(u64, u64) -> u64) -> Self {
        DramStats {
            reads: f(self.reads, other.reads),
            writes: f(self.writes, other.writes),
            row_hits: f(self.row_hits, other.row_hits),
            row_empties: f(self.row_empties, other.row_empties),
            row_conflicts: f(self.row_conflicts, other.row_conflicts),
            total_read_latency: f(self.total_read_latency, other.total_read_latency),
            write_batches: f(self.write_batches, other.write_batches),
            bank_occ: self.bank_occ,
        }
    }

    /// Per-counter difference against an `earlier` snapshot.
    ///
    /// Debug builds assert monotonicity: these counters only ever grow,
    /// so a shrinking counter is a bookkeeping bug that must not be
    /// masked by saturation (see `catch_trace::counters::monotonic_delta`).
    pub fn minus(&self, earlier: &Self) -> Self {
        let mut out = self.zip(earlier, monotonic_delta);
        out.bank_occ = self.bank_occ.minus(&earlier.bank_occ);
        out
    }

    /// Accumulates `weight` copies of `delta` into `self` (saturating).
    /// Used by sampled runs to reconstruct full-trace statistics from
    /// weighted per-interval deltas.
    pub fn add_scaled(&mut self, delta: &Self, weight: u64) {
        let mut occ = self.bank_occ;
        occ.add_scaled(&delta.bank_occ, weight);
        *self = self.zip(delta, |a, d| a.saturating_add(d.saturating_mul(weight)));
        self.bank_occ = occ;
    }

    /// Average read latency in core cycles.
    pub fn avg_read_latency(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.total_read_latency as f64 / self.reads as f64
        }
    }

    /// Row-buffer hit rate over all accesses.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_empties + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

impl fmt::Display for DramStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rd / {} wr, avg read {:.1} cyc, row-hit {:.1}%",
            self.reads,
            self.writes,
            self.avg_read_latency(),
            100.0 * self.row_hit_rate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_handle_zero() {
        let s = DramStats::default();
        assert_eq!(s.avg_read_latency(), 0.0);
        assert_eq!(s.row_hit_rate(), 0.0);
    }

    #[test]
    fn averages_compute() {
        let s = DramStats {
            reads: 4,
            total_read_latency: 400,
            row_hits: 3,
            row_conflicts: 1,
            ..Default::default()
        };
        assert!((s.avg_read_latency() - 100.0).abs() < 1e-9);
        assert!((s.row_hit_rate() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn minus_and_add_scaled_carry_bank_occupancy() {
        let mut early = DramStats::default();
        early.bank_occ.record(2, 32);
        let mut late = early;
        late.reads = 5;
        late.bank_occ.record(8, 32);
        let d = late.minus(&early);
        assert_eq!(d.reads, 5);
        assert_eq!(d.bank_occ.samples, 1);
        assert_eq!(d.bank_occ.sum, 8);
        let mut acc = DramStats::default();
        acc.add_scaled(&d, 4);
        assert_eq!(acc.reads, 20);
        assert_eq!(acc.bank_occ.samples, 4);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-monotonic")]
    fn minus_rejects_shrinking_dram_counters() {
        let early = DramStats {
            reads: 7,
            ..Default::default()
        };
        let _ = DramStats::default().minus(&early);
    }
}
