//! DDR4 main-memory timing model.
//!
//! Implements the paper's memory configuration: two DDR4-2400 channels,
//! two ranks per channel, eight banks per rank, 64-bit data bus per
//! channel, 2 KB row buffers and 15-15-15-39 (tCAS-tRCD-tRP-tRAS) timing,
//! with writes scheduled in batches to reduce bus turnarounds.
//!
//! The model answers the question the core simulator asks — *how many core
//! cycles does this access take?* — while tracking per-bank row-buffer
//! state, bank busy windows and channel data-bus occupancy. It implements
//! [`catch_cache::MemoryBackend`] so it plugs directly behind the LLC.
//!
//! # Example
//!
//! ```
//! use catch_dram::{DramConfig, DramSystem};
//! use catch_cache::MemoryBackend;
//! use catch_trace::LineAddr;
//!
//! let mut dram = DramSystem::new(DramConfig::ddr4_2400());
//! let first = dram.access(LineAddr::new(0), 0, false); // row miss
//! let second = dram.access(LineAddr::new(64), 10_000, false); // row hit
//! assert!(second < first);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bank;
mod config;
mod stats;
mod system;

pub use bank::{Bank, RowOutcome};
pub use config::DramConfig;
pub use stats::DramStats;
pub use system::DramSystem;
