//! The multi-channel DRAM system.

use crate::bank::{Bank, RowOutcome};
use crate::config::DramConfig;
use crate::stats::DramStats;
use catch_cache::MemoryBackend;
use catch_obs::{Event, EventClass, EventKind, Obs, ObsRowOutcome};
use catch_timeq::{Source, WakeBuf};
use catch_trace::LineAddr;

fn obs_outcome(outcome: RowOutcome) -> ObsRowOutcome {
    match outcome {
        RowOutcome::Hit => ObsRowOutcome::Hit,
        RowOutcome::Empty => ObsRowOutcome::Empty,
        RowOutcome::Conflict => ObsRowOutcome::Conflict,
    }
}

/// The complete memory system: channels × ranks × banks with per-channel
/// data buses and batched writes.
///
/// Writes are *posted*: the caller observes zero stall (the LLC/write
/// buffers hide them) but each write occupies its bank and bus when its
/// batch drains, delaying later reads — the paper's "writes are scheduled
/// in batches to reduce channel turn-arounds".
#[derive(Debug)]
pub struct DramSystem {
    config: DramConfig,
    banks: Vec<Bank>,
    /// Per-channel cycle until which the data bus is occupied.
    bus_free: Vec<u64>,
    /// Pending posted writes per channel.
    pending_writes: Vec<Vec<LineAddr>>,
    stats: DramStats,
    // Scaled (core-cycle) timing parameters.
    t_cas: u64,
    t_rcd: u64,
    t_rp: u64,
    t_ras: u64,
    t_burst: u64,
    obs: Obs,
    /// Bank-timing wake hints for the timeq engine: each read posts the
    /// cycle its data burst leaves the channel. Disabled (free) under
    /// the tick engine.
    wake: WakeBuf,
}

impl DramSystem {
    /// Builds the system from a configuration.
    pub fn new(config: DramConfig) -> Self {
        let banks = vec![Bank::new(); config.total_banks()];
        DramSystem {
            t_cas: config.scale(config.t_cas),
            t_rcd: config.scale(config.t_rcd),
            t_rp: config.scale(config.t_rp),
            t_ras: config.scale(config.t_ras),
            t_burst: config.scale(config.t_burst),
            bus_free: vec![0; config.channels],
            pending_writes: vec![Vec::new(); config.channels],
            banks,
            config,
            stats: DramStats::default(),
            obs: Obs::off(),
            wake: WakeBuf::new(),
        }
    }

    /// Attaches an observability handle; reads and write-batch drains
    /// emit DRAM-class events through it. Detached by default. DRAM
    /// events are system-level and attributed to core 0 (the backend
    /// does not see the requesting core).
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Resets statistics.
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }

    /// Maps a line to `(channel, global bank index, row)`.
    fn map(&self, line: LineAddr) -> (usize, usize, u64) {
        let l = line.get();
        let channel = (l % self.config.channels as u64) as usize;
        let within = l / self.config.channels as u64;
        let banks_per_channel = (self.config.ranks * self.config.banks) as u64;
        let bank_in_channel = (within % banks_per_channel) as usize;
        let row = within / banks_per_channel / self.config.lines_per_row();
        let bank = channel * banks_per_channel as usize + bank_in_channel;
        (channel, bank, row)
    }

    fn record_outcome(&mut self, outcome: RowOutcome) {
        match outcome {
            RowOutcome::Hit => self.stats.row_hits += 1,
            RowOutcome::Empty => self.stats.row_empties += 1,
            RowOutcome::Conflict => self.stats.row_conflicts += 1,
        }
    }

    fn service(&mut self, line: LineAddr, cycle: u64) -> (u64, RowOutcome, usize) {
        let (channel, bank, row) = self.map(line);
        let (ready, outcome) =
            self.banks[bank].access(row, cycle, self.t_cas, self.t_rcd, self.t_rp, self.t_ras);
        self.record_outcome(outcome);
        // Data burst needs the channel bus.
        let burst_start = ready.max(self.bus_free[channel]);
        self.bus_free[channel] = burst_start + self.t_burst;
        (burst_start + self.t_burst, outcome, bank)
    }

    fn drain_writes(&mut self, channel: usize, cycle: u64) {
        // Take the channel's buffer rather than draining into a fresh
        // allocation, and hand it back (cleared, capacity intact) after
        // servicing — drains are frequent enough that the churn showed up
        // in profiles.
        let mut batch = std::mem::take(&mut self.pending_writes[channel]);
        self.stats.write_batches += 1;
        self.obs.emit(EventClass::DRAM, || Event {
            cycle,
            core: 0,
            kind: EventKind::DramWriteBatch {
                count: batch.len() as u32,
            },
        });
        for &line in &batch {
            self.service(line, cycle);
        }
        batch.clear();
        self.pending_writes[channel] = batch;
    }

    /// Posts a write; drains the batch when full.
    pub fn write(&mut self, line: LineAddr, cycle: u64) {
        self.stats.writes += 1;
        let (channel, _, _) = self.map(line);
        self.pending_writes[channel].push(line);
        if self.pending_writes[channel].len() >= self.config.write_batch {
            self.drain_writes(channel, cycle);
        }
    }

    /// Performs a read, returning its latency in core cycles.
    pub fn read(&mut self, line: LineAddr, cycle: u64) -> u64 {
        self.stats.reads += 1;
        // Always-on bank-pressure sample at read arrival (before the
        // read itself occupies its bank).
        let busy = self.banks.iter().filter(|b| b.busy_until() > cycle).count() as u64;
        self.stats.bank_occ.record(busy, self.banks.len() as u64);
        self.obs.emit(EventClass::OCCUPANCY, || Event {
            cycle,
            core: 0,
            kind: EventKind::BankBusy {
                busy: busy as u32,
                cap: self.banks.len() as u32,
            },
        });
        let (done, outcome, bank) = self.service(line, cycle);
        // The bank+bus release the data at `done` — the memory-side
        // wake event behind the requester's completion reservation.
        self.wake.post_hint(done, Source::Dram);
        let latency = done - cycle;
        self.stats.total_read_latency += latency;
        self.obs.emit(EventClass::DRAM, || Event {
            cycle,
            core: 0,
            kind: EventKind::DramRead {
                outcome: obs_outcome(outcome),
                bank: bank as u32,
                latency,
            },
        });
        latency
    }
}

impl MemoryBackend for DramSystem {
    fn access(&mut self, line: LineAddr, cycle: u64, write: bool) -> u64 {
        if write {
            self.write(line, cycle);
            0
        } else {
            self.read(line, cycle)
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn reset_stats(&mut self) {
        DramSystem::reset_stats(self);
    }

    fn enable_wake_hints(&mut self) {
        self.wake.enable();
    }

    fn drain_wake_hints(&mut self, sink: &mut WakeBuf) {
        if !self.wake.is_idle() {
            self.wake
                .drain_into(&mut |req| sink.post_hint(req.at, req.source));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> DramSystem {
        DramSystem::new(DramConfig::ddr4_2400())
    }

    #[test]
    fn sequential_lines_hit_row_buffer() {
        let mut d = sys();
        // Lines 0 and 2 share channel 0, bank 0, row 0 (stride of 2 with
        // 2-channel interleave).
        let first = d.read(LineAddr::new(0), 0);
        let second = d.read(LineAddr::new(64), 100_000);
        assert!(second < first, "row hit {second} < activate {first}");
        assert_eq!(d.stats().row_hits, 1);
    }

    #[test]
    fn different_rows_conflict() {
        let mut d = sys();
        let lines_per_row = d.config().lines_per_row();
        let banks_per_channel = 16;
        d.read(LineAddr::new(0), 0);
        // Same channel (even), same bank, different row.
        let far = 2 * banks_per_channel * lines_per_row;
        d.read(LineAddr::new(far), 100_000);
        assert_eq!(d.stats().row_conflicts, 1);
    }

    #[test]
    fn channels_interleave_by_line() {
        let d = sys();
        let (c0, _, _) = d.map(LineAddr::new(0));
        let (c1, _, _) = d.map(LineAddr::new(1));
        assert_ne!(c0, c1);
    }

    #[test]
    fn writes_are_posted_and_batched() {
        let mut d = sys();
        for i in 0..15 {
            let latency = d.access(LineAddr::new(2 * i), 0, true);
            assert_eq!(latency, 0);
        }
        assert_eq!(d.stats().write_batches, 0);
        d.access(LineAddr::new(30), 0, true);
        assert_eq!(d.stats().write_batches, 1);
        assert_eq!(d.stats().writes, 16);
    }

    #[test]
    fn write_drain_delays_following_read() {
        let mut d = sys();
        // Read with idle banks:
        let base = d.read(LineAddr::new(0), 0);
        // Fresh system; fill a write batch on channel 0, then read behind it.
        let mut d2 = sys();
        for i in 0..16 {
            d2.write(LineAddr::new(2 * i), 0);
        }
        let delayed = d2.read(LineAddr::new(0), 0);
        assert!(
            delayed > base,
            "drain should delay reads: {delayed} vs {base}"
        );
    }

    #[test]
    fn read_latency_accumulates_in_stats() {
        let mut d = sys();
        let l1 = d.read(LineAddr::new(0), 0);
        let l2 = d.read(LineAddr::new(1), 0);
        assert_eq!(d.stats().total_read_latency, l1 + l2);
        assert!(d.stats().avg_read_latency() > 0.0);
    }

    #[test]
    fn bus_serialises_back_to_back_reads() {
        let mut d = sys();
        // Two reads to the same channel, different banks, same instant.
        let a = d.read(LineAddr::new(0), 0); // bank 0, channel 0
        let b = d.read(LineAddr::new(2), 0); // bank 1, channel 0
                                             // Bank access can overlap but the data bursts can't.
        assert!(b >= a || (a as i64 - b as i64).unsigned_abs() >= d.t_burst);
    }

    #[test]
    fn attached_sink_observes_dram_events() {
        use catch_obs::VecSink;
        use std::sync::{Arc, Mutex};
        let sink = Arc::new(Mutex::new(VecSink::new()));
        let mut d = sys();
        d.set_obs(Obs::attached(sink.clone(), EventClass::ALL));
        d.read(LineAddr::new(0), 0);
        for i in 0..16 {
            d.write(LineAddr::new(2 * i), 10);
        }
        let events = sink.lock().unwrap().take();
        let names: Vec<&str> = events.iter().map(|e| e.name()).collect();
        assert!(names.contains(&"dram.read"), "{names:?}");
        assert!(names.contains(&"dram.bank_busy"), "{names:?}");
        assert!(names.contains(&"dram.write_batch"), "{names:?}");
        assert_eq!(d.stats().bank_occ.samples, 1);
    }

    #[test]
    fn typical_latency_near_paper_ballpark() {
        let mut d = sys();
        // ~80 core cycles for activate+CAS+burst at 3.2 GHz.
        let lat = d.read(LineAddr::new(0), 0);
        assert!((60..160).contains(&lat), "cold read latency {lat}");
    }
}
