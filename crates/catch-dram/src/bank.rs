//! Per-bank row-buffer state machine.

/// Row-buffer outcome of an access.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum RowOutcome {
    /// The addressed row was already open.
    Hit,
    /// The bank was idle (precharged); only an activate was needed.
    Empty,
    /// A different row was open; precharge + activate required.
    Conflict,
}

/// One DRAM bank: open row, busy window and activate bookkeeping.
///
/// All times are in *core* cycles (the system scales DRAM-clock parameters
/// before calling in).
#[derive(Clone, Debug, Default)]
pub struct Bank {
    open_row: Option<u64>,
    busy_until: u64,
    activated_at: u64,
}

impl Bank {
    /// Creates an idle bank.
    pub fn new() -> Self {
        Bank::default()
    }

    /// The currently open row, if any.
    pub fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    /// Cycle until which the bank is command-busy.
    pub fn busy_until(&self) -> u64 {
        self.busy_until
    }

    /// Services an access to `row` arriving at `cycle`, given scaled
    /// timings, returning `(data_ready_cycle, outcome)`.
    ///
    /// `t_cas`, `t_rcd`, `t_rp`, `t_ras` are in core cycles.
    pub fn access(
        &mut self,
        row: u64,
        cycle: u64,
        t_cas: u64,
        t_rcd: u64,
        t_rp: u64,
        t_ras: u64,
    ) -> (u64, RowOutcome) {
        let start = cycle.max(self.busy_until);
        let (ready, outcome) = match self.open_row {
            Some(open) if open == row => (start + t_cas, RowOutcome::Hit),
            Some(_) => {
                // Precharge must respect tRAS from the last activate.
                let pre_start = start.max(self.activated_at + t_ras);
                let activate = pre_start + t_rp;
                self.activated_at = activate;
                (activate + t_rcd + t_cas, RowOutcome::Conflict)
            }
            None => {
                self.activated_at = start;
                (start + t_rcd + t_cas, RowOutcome::Empty)
            }
        };
        self.open_row = Some(row);
        self.busy_until = ready;
        (ready, outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAS: u64 = 40;
    const RCD: u64 = 40;
    const RP: u64 = 40;
    const RAS: u64 = 104;

    fn acc(bank: &mut Bank, row: u64, cycle: u64) -> (u64, RowOutcome) {
        bank.access(row, cycle, CAS, RCD, RP, RAS)
    }

    #[test]
    fn empty_bank_pays_activate_plus_cas() {
        let mut b = Bank::new();
        let (ready, out) = acc(&mut b, 3, 100);
        assert_eq!(out, RowOutcome::Empty);
        assert_eq!(ready, 100 + RCD + CAS);
        assert_eq!(b.open_row(), Some(3));
    }

    #[test]
    fn row_hit_pays_cas_only() {
        let mut b = Bank::new();
        let (first, _) = acc(&mut b, 3, 0);
        let (ready, out) = acc(&mut b, 3, first + 10);
        assert_eq!(out, RowOutcome::Hit);
        assert_eq!(ready, first + 10 + CAS);
    }

    #[test]
    fn conflict_pays_precharge_activate_cas_and_respects_tras() {
        let mut b = Bank::new();
        acc(&mut b, 3, 0); // activate at 0
                           // Conflict long after tRAS satisfied:
        let (ready, out) = acc(&mut b, 7, 1000);
        assert_eq!(out, RowOutcome::Conflict);
        assert_eq!(ready, 1000 + RP + RCD + CAS);
        // Conflict immediately after activate: precharge waits for tRAS.
        let mut b2 = Bank::new();
        acc(&mut b2, 3, 0); // activated_at = 0, busy till 80
        let (ready2, out2) = acc(&mut b2, 9, 80);
        assert_eq!(out2, RowOutcome::Conflict);
        // precharge cannot start before tRAS (104): 104+RP+RCD+CAS
        assert_eq!(ready2, RAS + RP + RCD + CAS);
    }

    #[test]
    fn busy_bank_queues_requests() {
        let mut b = Bank::new();
        let (first, _) = acc(&mut b, 1, 0);
        let (second, out) = acc(&mut b, 1, 0); // arrives while busy
        assert_eq!(out, RowOutcome::Hit);
        assert_eq!(second, first + CAS);
    }
}
