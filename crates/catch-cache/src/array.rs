//! The set-associative tag array.

use crate::config::CacheConfig;
use crate::replacement::ReplacementPolicy;
use crate::stats::CacheStats;
use catch_trace::LineAddr;

#[derive(Copy, Clone, Debug)]
struct Entry {
    line: LineAddr,
    dirty: bool,
}

/// A line evicted by a fill.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Victim {
    /// The evicted line.
    pub line: LineAddr,
    /// Whether it held modified data.
    pub dirty: bool,
}

/// A set-associative cache tag array with pluggable replacement.
///
/// The array tracks presence and dirtiness only — the simulator is
/// trace-driven, so no data payload is stored. All state updates
/// (recency, insertion, eviction) happen immediately at call time; timing
/// is handled by the hierarchy controller and the in-flight ledger.
#[derive(Debug)]
pub struct CacheArray {
    name: String,
    sets: usize,
    ways: usize,
    latency: u64,
    entries: Vec<Option<Entry>>,
    repl: Box<dyn ReplacementPolicy>,
    stats: CacheStats,
}

impl CacheArray {
    /// Builds an array from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config` has an invalid geometry (construct configs with
    /// [`CacheConfig::new`], which validates).
    pub fn new(config: &CacheConfig) -> Self {
        let sets = config
            .sets()
            .expect("CacheConfig::new validated the geometry");
        CacheArray {
            name: config.name.clone(),
            sets,
            ways: config.ways,
            latency: config.latency,
            entries: vec![None; sets * config.ways],
            repl: config.repl.build(sets, config.ways),
            stats: CacheStats::default(),
        }
    }

    /// Cache name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of sets.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn way_count(&self) -> usize {
        self.ways
    }

    /// Round-trip hit latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Adds `extra` cycles to the hit latency (latency-sensitivity studies).
    pub fn add_latency(&mut self, extra: u64) {
        self.latency += extra;
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (e.g. after warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn set_of(&self, line: LineAddr) -> usize {
        (line.get() % self.sets as u64) as usize
    }

    fn slot(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    fn find(&self, line: LineAddr) -> Option<(usize, usize)> {
        let set = self.set_of(line);
        (0..self.ways).find_map(|way| {
            let e = self.entries[self.slot(set, way)]?;
            (e.line == line).then_some((set, way))
        })
    }

    /// Looks the line up, updating recency and hit/miss statistics.
    pub fn lookup(&mut self, line: LineAddr) -> bool {
        self.stats.accesses += 1;
        if let Some((set, way)) = self.find(line) {
            self.stats.hits += 1;
            self.repl.on_hit(set, way);
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// Checks presence without disturbing replacement state or statistics.
    pub fn probe(&self, line: LineAddr) -> bool {
        self.find(line).is_some()
    }

    /// Inserts `line`; returns the evicted victim, if the set was full.
    ///
    /// Filling a line that is already present only upgrades its dirty bit
    /// and recency; no victim results.
    pub fn fill(&mut self, line: LineAddr, dirty: bool, prefetched: bool) -> Option<Victim> {
        self.stats.fills += 1;
        if let Some((set, way)) = self.find(line) {
            let slot = self.slot(set, way);
            let entry = self.entries[slot]
                .as_mut()
                .expect("find returned an occupied way");
            entry.dirty |= dirty;
            self.repl.on_hit(set, way);
            return None;
        }
        let set = self.set_of(line);
        let (way, victim) =
            match (0..self.ways).find(|&w| self.entries[self.slot(set, w)].is_none()) {
                Some(way) => (way, None),
                None => {
                    let way = self.repl.victim(set);
                    debug_assert!(way < self.ways, "policy returned an in-range way");
                    let slot = self.slot(set, way);
                    let old = self.entries[slot].expect("full set has no empty ways");
                    self.stats.evictions += 1;
                    if old.dirty {
                        self.stats.dirty_evictions += 1;
                    }
                    (
                        way,
                        Some(Victim {
                            line: old.line,
                            dirty: old.dirty,
                        }),
                    )
                }
            };
        let slot = self.slot(set, way);
        self.entries[slot] = Some(Entry { line, dirty });
        self.repl.on_fill(set, way, prefetched);
        victim
    }

    /// Removes `line` if present, returning whether it was dirty.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        let (set, way) = self.find(line)?;
        let slot = self.slot(set, way);
        let entry = self.entries[slot].take();
        self.stats.invalidations += 1;
        entry.map(|e| e.dirty)
    }

    /// Marks `line` dirty if present; returns whether it was found.
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        if let Some((set, way)) = self.find(line) {
            let slot = self.slot(set, way);
            if let Some(e) = self.entries[slot].as_mut() {
                e.dirty = true;
            }
            self.repl.on_hit(set, way);
            true
        } else {
            false
        }
    }

    /// Number of currently valid lines.
    pub fn occupancy(&self) -> usize {
        self.entries.iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;

    fn tiny() -> CacheArray {
        // 2 sets x 2 ways.
        CacheArray::new(&CacheConfig::new("t", 4 * 64, 2, 3).unwrap())
    }

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert!(!c.lookup(line(0)));
        assert!(c.fill(line(0), false, false).is_none());
        assert!(c.lookup(line(0)));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn eviction_returns_lru_victim() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (2 sets).
        c.fill(line(0), false, false);
        c.fill(line(2), true, false);
        c.lookup(line(0)); // 2 becomes LRU
        let v = c.fill(line(4), false, false).unwrap();
        assert_eq!(
            v,
            Victim {
                line: line(2),
                dirty: true
            }
        );
        assert!(c.probe(line(0)));
        assert!(c.probe(line(4)));
        assert!(!c.probe(line(2)));
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn refill_upgrades_dirty_without_victim() {
        let mut c = tiny();
        c.fill(line(0), false, false);
        c.fill(line(2), false, false);
        assert!(c.fill(line(0), true, false).is_none());
        c.lookup(line(0));
        let v = c.fill(line(4), false, false).unwrap();
        // line 2 is LRU; line 0 must still be present and dirty.
        assert_eq!(v.line, line(2));
        assert!(c.invalidate(line(0)).unwrap());
    }

    #[test]
    fn invalidate_absent_returns_none() {
        let mut c = tiny();
        assert!(c.invalidate(line(9)).is_none());
    }

    #[test]
    fn mark_dirty_only_when_present() {
        let mut c = tiny();
        assert!(!c.mark_dirty(line(1)));
        c.fill(line(1), false, false);
        assert!(c.mark_dirty(line(1)));
        assert_eq!(c.invalidate(line(1)), Some(true));
    }

    #[test]
    fn probe_does_not_touch_stats() {
        let mut c = tiny();
        c.fill(line(0), false, false);
        let before = c.stats().accesses;
        assert!(c.probe(line(0)));
        assert_eq!(c.stats().accesses, before);
    }

    #[test]
    fn occupancy_counts_valid_lines() {
        let mut c = tiny();
        assert_eq!(c.occupancy(), 0);
        c.fill(line(0), false, false);
        c.fill(line(1), false, false);
        assert_eq!(c.occupancy(), 2);
        c.invalidate(line(0));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn add_latency_applies() {
        let mut c = tiny();
        assert_eq!(c.latency(), 3);
        c.add_latency(2);
        assert_eq!(c.latency(), 5);
    }
}
