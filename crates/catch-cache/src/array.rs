//! The set-associative tag array.

use crate::config::CacheConfig;
use crate::replacement::AnyRepl;
use crate::stats::CacheStats;
use catch_trace::LineAddr;
use std::sync::Mutex;

/// Interns a cache name, so every array holds a `&'static str` instead of
/// cloning the config's `String`. The leak is bounded: the simulator uses
/// a handful of fixed names ("L1D", "L2", "LLC"...).
fn intern(name: &str) -> &'static str {
    static TABLE: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut table = TABLE.lock().expect("interner poisoned");
    if let Some(&hit) = table.iter().find(|&&t| t == name) {
        return hit;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    table.push(leaked);
    leaked
}

/// A line evicted by a fill.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Victim {
    /// The evicted line.
    pub line: LineAddr,
    /// Whether it held modified data.
    pub dirty: bool,
}

/// A set-associative cache tag array with pluggable replacement.
///
/// The array tracks presence and dirtiness only — the simulator is
/// trace-driven, so no data payload is stored. All state updates
/// (recency, insertion, eviction) happen immediately at call time; timing
/// is handled by the hierarchy controller and the in-flight ledger.
///
/// Tags are packed flat (`sets × ways`) with per-set valid/dirty
/// bitmasks, so a set probe walks a dense `LineAddr` slice guided by one
/// `u64` instead of chasing `Option<Entry>` discriminants.
#[derive(Debug)]
pub struct CacheArray {
    name: &'static str,
    sets: usize,
    /// `sets - 1` when the set count is a power of two (the common
    /// geometry), letting the index computation mask instead of divide;
    /// `None` falls back to `%`.
    set_mask: Option<u64>,
    ways: usize,
    latency: u64,
    /// Packed tags; slot `set * ways + way` is meaningful only when bit
    /// `way` of `valid[set]` is set.
    tags: Vec<LineAddr>,
    /// Per-set valid bitmask (bit `w` ⇒ way `w` holds a line).
    valid: Vec<u64>,
    /// Per-set dirty bitmask (subset of `valid`).
    dirty: Vec<u64>,
    repl: AnyRepl,
    stats: CacheStats,
}

impl CacheArray {
    /// Builds an array from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config` has an invalid geometry (construct configs with
    /// [`CacheConfig::new`], which validates) or more than 64 ways (the
    /// per-set bitmask width).
    pub fn new(config: &CacheConfig) -> Self {
        Self::with_policy(
            config,
            config.repl.build_any(
                config
                    .sets()
                    .expect("CacheConfig::new validated the geometry"),
                config.ways,
            ),
        )
    }

    /// Builds an array with an explicit (possibly custom) policy.
    ///
    /// # Panics
    ///
    /// Same conditions as [`CacheArray::new`].
    pub fn with_policy(config: &CacheConfig, repl: AnyRepl) -> Self {
        let sets = config
            .sets()
            .expect("CacheConfig::new validated the geometry");
        assert!(config.ways <= 64, "per-set bitmasks hold at most 64 ways");
        CacheArray {
            name: intern(&config.name),
            sets,
            set_mask: sets.is_power_of_two().then_some(sets as u64 - 1),
            ways: config.ways,
            latency: config.latency,
            tags: vec![LineAddr::new(0); sets * config.ways],
            valid: vec![0; sets],
            dirty: vec![0; sets],
            repl,
            stats: CacheStats::default(),
        }
    }

    /// Cache name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of sets.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn way_count(&self) -> usize {
        self.ways
    }

    /// Round-trip hit latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Adds `extra` cycles to the hit latency (latency-sensitivity studies).
    pub fn add_latency(&mut self, extra: u64) {
        self.latency += extra;
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (e.g. after warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn set_of(&self, line: LineAddr) -> usize {
        match self.set_mask {
            Some(mask) => (line.get() & mask) as usize,
            None => (line.get() % self.sets as u64) as usize,
        }
    }

    fn slot(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    fn find(&self, line: LineAddr) -> Option<(usize, usize)> {
        let set = self.set_of(line);
        let base = set * self.ways;
        let mut mask = self.valid[set];
        while mask != 0 {
            let way = mask.trailing_zeros() as usize;
            if self.tags[base + way] == line {
                return Some((set, way));
            }
            mask &= mask - 1;
        }
        None
    }

    /// Looks the line up, updating recency and hit/miss statistics.
    pub fn lookup(&mut self, line: LineAddr) -> bool {
        self.stats.accesses += 1;
        if let Some((set, way)) = self.find(line) {
            self.stats.hits += 1;
            self.repl.on_hit(set, way);
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// Checks presence without disturbing replacement state or statistics.
    pub fn probe(&self, line: LineAddr) -> bool {
        self.find(line).is_some()
    }

    /// Inserts `line`; returns the evicted victim, if the set was full.
    ///
    /// Filling a line that is already present only upgrades its dirty bit
    /// and recency; no victim results.
    pub fn fill(&mut self, line: LineAddr, dirty: bool, prefetched: bool) -> Option<Victim> {
        self.stats.fills += 1;
        if let Some((set, way)) = self.find(line) {
            if dirty {
                self.dirty[set] |= 1 << way;
            }
            self.repl.on_hit(set, way);
            return None;
        }
        let set = self.set_of(line);
        let full_mask = if self.ways == 64 {
            u64::MAX
        } else {
            (1u64 << self.ways) - 1
        };
        let free = !self.valid[set] & full_mask;
        let (way, victim) = if free != 0 {
            (free.trailing_zeros() as usize, None)
        } else {
            let way = self.repl.victim(set);
            debug_assert!(way < self.ways, "policy returned an in-range way");
            let old_dirty = self.dirty[set] & (1 << way) != 0;
            self.stats.evictions += 1;
            if old_dirty {
                self.stats.dirty_evictions += 1;
            }
            (
                way,
                Some(Victim {
                    line: self.tags[self.slot(set, way)],
                    dirty: old_dirty,
                }),
            )
        };
        let slot = self.slot(set, way);
        self.tags[slot] = line;
        self.valid[set] |= 1 << way;
        if dirty {
            self.dirty[set] |= 1 << way;
        } else {
            self.dirty[set] &= !(1 << way);
        }
        self.repl.on_fill(set, way, prefetched);
        victim
    }

    /// Removes `line` if present, returning whether it was dirty.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        let (set, way) = self.find(line)?;
        let was_dirty = self.dirty[set] & (1 << way) != 0;
        self.valid[set] &= !(1 << way);
        self.dirty[set] &= !(1 << way);
        self.stats.invalidations += 1;
        Some(was_dirty)
    }

    /// Marks `line` dirty if present; returns whether it was found.
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        if let Some((set, way)) = self.find(line) {
            self.dirty[set] |= 1 << way;
            self.repl.on_hit(set, way);
            true
        } else {
            false
        }
    }

    /// Number of currently valid lines.
    pub fn occupancy(&self) -> usize {
        self.valid.iter().map(|v| v.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;

    fn tiny() -> CacheArray {
        // 2 sets x 2 ways.
        CacheArray::new(&CacheConfig::new("t", 4 * 64, 2, 3).unwrap())
    }

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert!(!c.lookup(line(0)));
        assert!(c.fill(line(0), false, false).is_none());
        assert!(c.lookup(line(0)));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn eviction_returns_lru_victim() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (2 sets).
        c.fill(line(0), false, false);
        c.fill(line(2), true, false);
        c.lookup(line(0)); // 2 becomes LRU
        let v = c.fill(line(4), false, false).unwrap();
        assert_eq!(
            v,
            Victim {
                line: line(2),
                dirty: true
            }
        );
        assert!(c.probe(line(0)));
        assert!(c.probe(line(4)));
        assert!(!c.probe(line(2)));
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn refill_upgrades_dirty_without_victim() {
        let mut c = tiny();
        c.fill(line(0), false, false);
        c.fill(line(2), false, false);
        assert!(c.fill(line(0), true, false).is_none());
        c.lookup(line(0));
        let v = c.fill(line(4), false, false).unwrap();
        // line 2 is LRU; line 0 must still be present and dirty.
        assert_eq!(v.line, line(2));
        assert!(c.invalidate(line(0)).unwrap());
    }

    #[test]
    fn invalidate_absent_returns_none() {
        let mut c = tiny();
        assert!(c.invalidate(line(9)).is_none());
    }

    #[test]
    fn mark_dirty_only_when_present() {
        let mut c = tiny();
        assert!(!c.mark_dirty(line(1)));
        c.fill(line(1), false, false);
        assert!(c.mark_dirty(line(1)));
        assert_eq!(c.invalidate(line(1)), Some(true));
    }

    #[test]
    fn probe_does_not_touch_stats() {
        let mut c = tiny();
        c.fill(line(0), false, false);
        let before = c.stats().accesses;
        assert!(c.probe(line(0)));
        assert_eq!(c.stats().accesses, before);
    }

    #[test]
    fn occupancy_counts_valid_lines() {
        let mut c = tiny();
        assert_eq!(c.occupancy(), 0);
        c.fill(line(0), false, false);
        c.fill(line(1), false, false);
        assert_eq!(c.occupancy(), 2);
        c.invalidate(line(0));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn add_latency_applies() {
        let mut c = tiny();
        assert_eq!(c.latency(), 3);
        c.add_latency(2);
        assert_eq!(c.latency(), 5);
    }
}
