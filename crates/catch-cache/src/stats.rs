//! Statistics for caches, traffic and prefetch timeliness.

use catch_obs::OccupancyHist;
use catch_trace::counters::{
    join_prefix, monotonic_delta, push_counter, CounterSource, CounterVec, Counters, FromCounters,
};
use std::fmt;

/// Counters for one cache array.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups (demand + prefetch walks).
    pub accesses: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Lines inserted.
    pub fills: u64,
    /// Valid lines displaced by fills.
    pub evictions: u64,
    /// Evictions of modified lines.
    pub dirty_evictions: u64,
    /// Lines removed by invalidation (back-invalidates, exclusive moves).
    pub invalidations: u64,
}

impl Counters for CacheStats {
    fn counters_into(&self, prefix: &str, out: &mut CounterVec) {
        push_counter(out, prefix, "accesses", self.accesses);
        push_counter(out, prefix, "hits", self.hits);
        push_counter(out, prefix, "misses", self.misses);
        push_counter(out, prefix, "fills", self.fills);
        push_counter(out, prefix, "evictions", self.evictions);
        push_counter(out, prefix, "dirty_evictions", self.dirty_evictions);
        push_counter(out, prefix, "invalidations", self.invalidations);
    }
}

impl FromCounters for CacheStats {
    fn from_counters(prefix: &str, src: &mut CounterSource) -> Result<Self, String> {
        Ok(CacheStats {
            accesses: src.take(prefix, "accesses")?,
            hits: src.take(prefix, "hits")?,
            misses: src.take(prefix, "misses")?,
            fills: src.take(prefix, "fills")?,
            evictions: src.take(prefix, "evictions")?,
            dirty_evictions: src.take(prefix, "dirty_evictions")?,
            invalidations: src.take(prefix, "invalidations")?,
        })
    }
}

impl CacheStats {
    /// Combines two snapshots field-by-field with `f`.
    fn zip(&self, other: &Self, f: impl Fn(u64, u64) -> u64) -> Self {
        CacheStats {
            accesses: f(self.accesses, other.accesses),
            hits: f(self.hits, other.hits),
            misses: f(self.misses, other.misses),
            fills: f(self.fills, other.fills),
            evictions: f(self.evictions, other.evictions),
            dirty_evictions: f(self.dirty_evictions, other.dirty_evictions),
            invalidations: f(self.invalidations, other.invalidations),
        }
    }

    /// Per-counter difference against an `earlier` snapshot.
    ///
    /// Debug builds assert monotonicity: these counters only ever grow,
    /// so a shrinking counter is a bookkeeping bug that must not be
    /// masked by saturation (see `catch_trace::counters::monotonic_delta`).
    pub fn minus(&self, earlier: &Self) -> Self {
        self.zip(earlier, monotonic_delta)
    }

    /// Accumulates `weight` copies of `delta` into `self` (saturating).
    /// Used by sampled runs to reconstruct full-trace statistics from
    /// weighted per-interval deltas.
    pub fn add_scaled(&mut self, delta: &Self, weight: u64) {
        *self = self.zip(delta, |a, d| a.saturating_add(d.saturating_mul(weight)));
    }

    /// Hit rate over all lookups (0 when never accessed).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Total array activity (reads + writes), used by the energy model.
    pub fn activity(&self) -> u64 {
        self.accesses + self.fills
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} acc, {:.1}% hit, {} fills, {} evict ({} dirty)",
            self.accesses,
            100.0 * self.hit_rate(),
            self.fills,
            self.evictions,
            self.dirty_evictions
        )
    }
}

/// Messages crossing hierarchy boundaries; feeds the energy model and the
/// Section VI-E traffic analysis.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Requests from the private side to the shared LLC.
    pub llc_requests: u64,
    /// Data replies from the LLC (or beyond) back to a core.
    pub llc_replies: u64,
    /// Writebacks / victim fills travelling from a core to the LLC.
    pub llc_writebacks: u64,
    /// Back-invalidate snoops from an inclusive LLC into private caches.
    pub back_invalidates: u64,
    /// Cache-to-cache transfers: LLC misses served by another core's
    /// private copy (snoop hit).
    pub c2c_transfers: u64,
    /// DRAM read accesses.
    pub dram_reads: u64,
    /// DRAM write accesses.
    pub dram_writes: u64,
}

impl Counters for TrafficStats {
    fn counters_into(&self, prefix: &str, out: &mut CounterVec) {
        push_counter(out, prefix, "llc_requests", self.llc_requests);
        push_counter(out, prefix, "llc_replies", self.llc_replies);
        push_counter(out, prefix, "llc_writebacks", self.llc_writebacks);
        push_counter(out, prefix, "back_invalidates", self.back_invalidates);
        push_counter(out, prefix, "c2c_transfers", self.c2c_transfers);
        push_counter(out, prefix, "dram_reads", self.dram_reads);
        push_counter(out, prefix, "dram_writes", self.dram_writes);
    }
}

impl FromCounters for TrafficStats {
    fn from_counters(prefix: &str, src: &mut CounterSource) -> Result<Self, String> {
        Ok(TrafficStats {
            llc_requests: src.take(prefix, "llc_requests")?,
            llc_replies: src.take(prefix, "llc_replies")?,
            llc_writebacks: src.take(prefix, "llc_writebacks")?,
            back_invalidates: src.take(prefix, "back_invalidates")?,
            c2c_transfers: src.take(prefix, "c2c_transfers")?,
            dram_reads: src.take(prefix, "dram_reads")?,
            dram_writes: src.take(prefix, "dram_writes")?,
        })
    }
}

impl TrafficStats {
    /// Combines two snapshots field-by-field with `f`.
    fn zip(&self, other: &Self, f: impl Fn(u64, u64) -> u64) -> Self {
        TrafficStats {
            llc_requests: f(self.llc_requests, other.llc_requests),
            llc_replies: f(self.llc_replies, other.llc_replies),
            llc_writebacks: f(self.llc_writebacks, other.llc_writebacks),
            back_invalidates: f(self.back_invalidates, other.back_invalidates),
            c2c_transfers: f(self.c2c_transfers, other.c2c_transfers),
            dram_reads: f(self.dram_reads, other.dram_reads),
            dram_writes: f(self.dram_writes, other.dram_writes),
        }
    }

    /// Per-counter difference against an `earlier` snapshot.
    ///
    /// Debug builds assert monotonicity: these counters only ever grow,
    /// so a shrinking counter is a bookkeeping bug that must not be
    /// masked by saturation (see `catch_trace::counters::monotonic_delta`).
    pub fn minus(&self, earlier: &Self) -> Self {
        self.zip(earlier, monotonic_delta)
    }

    /// Accumulates `weight` copies of `delta` into `self` (saturating).
    pub fn add_scaled(&mut self, delta: &Self, weight: u64) {
        *self = self.zip(delta, |a, d| a.saturating_add(d.saturating_mul(weight)));
    }

    /// Total on-die interconnect messages (requests + replies + writebacks
    /// + snoops).
    pub fn interconnect_messages(&self) -> u64 {
        self.llc_requests
            + self.llc_replies
            + self.llc_writebacks
            + self.back_invalidates
            + 2 * self.c2c_transfers
    }

    /// Total DRAM accesses.
    pub fn dram_accesses(&self) -> u64 {
        self.dram_reads + self.dram_writes
    }
}

/// Timeliness classification of TACT prefetches, as reported by Figure 11.
///
/// A used prefetch saved `source_latency - observed_latency` cycles for its
/// first demand consumer; buckets are expressed as a fraction of the LLC
/// hit latency.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PrefetchTimeliness {
    /// TACT prefetches issued (post-dedup).
    pub issued: u64,
    /// TACT prefetches whose data came from the LLC.
    pub from_llc: u64,
    /// TACT prefetches whose data came from the L2.
    pub from_l2: u64,
    /// TACT prefetches whose data came from DRAM.
    pub from_memory: u64,
    /// Prefetched lines consumed by a demand access.
    pub used: u64,
    /// Used prefetches saving more than 80% of the LLC hit latency.
    pub saved_over_80: u64,
    /// Used prefetches saving 10–80% of the LLC hit latency.
    pub saved_10_to_80: u64,
    /// Used prefetches saving less than 10% of the LLC hit latency.
    pub saved_under_10: u64,
}

impl Counters for PrefetchTimeliness {
    fn counters_into(&self, prefix: &str, out: &mut CounterVec) {
        push_counter(out, prefix, "issued", self.issued);
        push_counter(out, prefix, "from_llc", self.from_llc);
        push_counter(out, prefix, "from_l2", self.from_l2);
        push_counter(out, prefix, "from_memory", self.from_memory);
        push_counter(out, prefix, "used", self.used);
        push_counter(out, prefix, "saved_over_80", self.saved_over_80);
        push_counter(out, prefix, "saved_10_to_80", self.saved_10_to_80);
        push_counter(out, prefix, "saved_under_10", self.saved_under_10);
    }
}

impl FromCounters for PrefetchTimeliness {
    fn from_counters(prefix: &str, src: &mut CounterSource) -> Result<Self, String> {
        Ok(PrefetchTimeliness {
            issued: src.take(prefix, "issued")?,
            from_llc: src.take(prefix, "from_llc")?,
            from_l2: src.take(prefix, "from_l2")?,
            from_memory: src.take(prefix, "from_memory")?,
            used: src.take(prefix, "used")?,
            saved_over_80: src.take(prefix, "saved_over_80")?,
            saved_10_to_80: src.take(prefix, "saved_10_to_80")?,
            saved_under_10: src.take(prefix, "saved_under_10")?,
        })
    }
}

impl PrefetchTimeliness {
    /// Combines two snapshots field-by-field with `f`.
    fn zip(&self, other: &Self, f: impl Fn(u64, u64) -> u64) -> Self {
        PrefetchTimeliness {
            issued: f(self.issued, other.issued),
            from_llc: f(self.from_llc, other.from_llc),
            from_l2: f(self.from_l2, other.from_l2),
            from_memory: f(self.from_memory, other.from_memory),
            used: f(self.used, other.used),
            saved_over_80: f(self.saved_over_80, other.saved_over_80),
            saved_10_to_80: f(self.saved_10_to_80, other.saved_10_to_80),
            saved_under_10: f(self.saved_under_10, other.saved_under_10),
        }
    }

    /// Per-counter difference against an `earlier` snapshot.
    ///
    /// Debug builds assert monotonicity: these counters only ever grow,
    /// so a shrinking counter is a bookkeeping bug that must not be
    /// masked by saturation (see `catch_trace::counters::monotonic_delta`).
    pub fn minus(&self, earlier: &Self) -> Self {
        self.zip(earlier, monotonic_delta)
    }

    /// Accumulates `weight` copies of `delta` into `self` (saturating).
    pub fn add_scaled(&mut self, delta: &Self, weight: u64) {
        *self = self.zip(delta, |a, d| a.saturating_add(d.saturating_mul(weight)));
    }

    /// Fraction of issued TACT prefetches served from the LLC.
    pub fn llc_fraction(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.from_llc as f64 / self.issued as f64
        }
    }

    /// Fraction of used prefetches that saved more than 80% of the LLC
    /// latency.
    pub fn over_80_fraction(&self) -> f64 {
        if self.used == 0 {
            0.0
        } else {
            self.saved_over_80 as f64 / self.used as f64
        }
    }
}

/// Aggregated hierarchy statistics snapshot.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HierarchyStats {
    /// Per-core L1 instruction cache stats.
    pub l1i: Vec<CacheStats>,
    /// Per-core L1 data cache stats.
    pub l1d: Vec<CacheStats>,
    /// Per-core L2 stats (empty in two-level mode).
    pub l2: Vec<CacheStats>,
    /// Shared LLC stats.
    pub llc: CacheStats,
    /// Boundary traffic.
    pub traffic: TrafficStats,
    /// TACT timeliness.
    pub timeliness: PrefetchTimeliness,
    /// Data-side in-flight-fill (MSHR ledger) occupancy, sampled at every
    /// demand L1D miss across all cores.
    pub mshr_occ: OccupancyHist,
}

impl HierarchyStats {
    /// Per-counter difference against an `earlier` snapshot of the same
    /// hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if the two snapshots describe different core counts.
    pub fn minus(&self, earlier: &Self) -> Self {
        let per_core = |a: &Vec<CacheStats>, b: &Vec<CacheStats>| {
            assert_eq!(a.len(), b.len(), "snapshots must cover the same cores");
            a.iter().zip(b).map(|(x, y)| x.minus(y)).collect()
        };
        HierarchyStats {
            l1i: per_core(&self.l1i, &earlier.l1i),
            l1d: per_core(&self.l1d, &earlier.l1d),
            l2: per_core(&self.l2, &earlier.l2),
            llc: self.llc.minus(&earlier.llc),
            traffic: self.traffic.minus(&earlier.traffic),
            timeliness: self.timeliness.minus(&earlier.timeliness),
            mshr_occ: self.mshr_occ.minus(&earlier.mshr_occ),
        }
    }

    /// Accumulates `weight` copies of `delta` into `self`, growing empty
    /// per-core vectors to match `delta` (so a `Default` accumulator
    /// works).
    pub fn add_scaled(&mut self, delta: &Self, weight: u64) {
        let per_core = |acc: &mut Vec<CacheStats>, d: &Vec<CacheStats>| {
            if acc.len() < d.len() {
                acc.resize(d.len(), CacheStats::default());
            }
            for (a, x) in acc.iter_mut().zip(d) {
                a.add_scaled(x, weight);
            }
        };
        per_core(&mut self.l1i, &delta.l1i);
        per_core(&mut self.l1d, &delta.l1d);
        per_core(&mut self.l2, &delta.l2);
        self.llc.add_scaled(&delta.llc, weight);
        self.traffic.add_scaled(&delta.traffic, weight);
        self.timeliness.add_scaled(&delta.timeliness, weight);
        self.mshr_occ.add_scaled(&delta.mshr_occ, weight);
    }
}

impl Counters for HierarchyStats {
    fn counters_into(&self, prefix: &str, out: &mut CounterVec) {
        for (name, per_core) in [("l1i", &self.l1i), ("l1d", &self.l1d), ("l2", &self.l2)] {
            for (i, s) in per_core.iter().enumerate() {
                s.counters_into(&join_prefix(prefix, &format!("{name}{i}")), out);
            }
        }
        self.llc.counters_into(&join_prefix(prefix, "llc"), out);
        self.traffic
            .counters_into(&join_prefix(prefix, "traffic"), out);
        self.timeliness
            .counters_into(&join_prefix(prefix, "timeliness"), out);
        self.mshr_occ
            .counters_into(&join_prefix(prefix, "mshr_occ"), out);
    }
}

impl FromCounters for HierarchyStats {
    fn from_counters(prefix: &str, src: &mut CounterSource) -> Result<Self, String> {
        // Per-core vector lengths are not stored separately: cores emit
        // consecutively-numbered prefixes (`l1i0`, `l1i1`, …), so the
        // length is recovered by probing for the next index.
        fn per_core(
            prefix: &str,
            name: &str,
            src: &mut CounterSource,
        ) -> Result<Vec<CacheStats>, String> {
            let mut v = Vec::new();
            loop {
                let p = join_prefix(prefix, &format!("{name}{}", v.len()));
                if !src.next_in(&p) {
                    return Ok(v);
                }
                v.push(CacheStats::from_counters(&p, src)?);
            }
        }
        Ok(HierarchyStats {
            l1i: per_core(prefix, "l1i", src)?,
            l1d: per_core(prefix, "l1d", src)?,
            l2: per_core(prefix, "l2", src)?,
            llc: CacheStats::from_counters(&join_prefix(prefix, "llc"), src)?,
            traffic: TrafficStats::from_counters(&join_prefix(prefix, "traffic"), src)?,
            timeliness: PrefetchTimeliness::from_counters(&join_prefix(prefix, "timeliness"), src)?,
            mshr_occ: OccupancyHist::from_counters(&join_prefix(prefix, "mshr_occ"), src)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let s = CacheStats {
            accesses: 10,
            hits: 4,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn traffic_totals() {
        let t = TrafficStats {
            llc_requests: 5,
            llc_replies: 4,
            llc_writebacks: 3,
            back_invalidates: 2,
            c2c_transfers: 1,
            dram_reads: 7,
            dram_writes: 1,
        };
        assert_eq!(t.interconnect_messages(), 16);
        assert_eq!(t.dram_accesses(), 8);
    }

    #[test]
    fn timeliness_fractions() {
        let p = PrefetchTimeliness {
            issued: 10,
            from_llc: 8,
            used: 5,
            saved_over_80: 4,
            ..Default::default()
        };
        assert!((p.llc_fraction() - 0.8).abs() < 1e-12);
        assert!((p.over_80_fraction() - 0.8).abs() < 1e-12);
        assert_eq!(PrefetchTimeliness::default().llc_fraction(), 0.0);
    }

    #[test]
    fn minus_deltas_monotone_counters() {
        let early = CacheStats {
            accesses: 10,
            hits: 4,
            ..Default::default()
        };
        let late = CacheStats {
            accesses: 25,
            hits: 9,
            ..Default::default()
        };
        let d = late.minus(&early);
        assert_eq!(d.accesses, 15);
        assert_eq!(d.hits, 5);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-monotonic")]
    fn minus_rejects_shrinking_cache_counters() {
        let early = CacheStats {
            accesses: 10,
            ..Default::default()
        };
        let _ = CacheStats::default().minus(&early);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-monotonic")]
    fn minus_rejects_shrinking_traffic_counters() {
        let early = TrafficStats {
            dram_reads: 3,
            ..Default::default()
        };
        let _ = TrafficStats::default().minus(&early);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-monotonic")]
    fn minus_rejects_shrinking_timeliness_counters() {
        let early = PrefetchTimeliness {
            issued: 2,
            ..Default::default()
        };
        let _ = PrefetchTimeliness::default().minus(&early);
    }

    #[test]
    fn hierarchy_stats_carry_mshr_occupancy() {
        let mut s = HierarchyStats::default();
        s.mshr_occ.record(4, 32);
        let c = s.counters("h");
        assert!(c.iter().any(|(n, v)| n == "h.mshr_occ.samples" && *v == 1));
        let d = s.minus(&HierarchyStats::default());
        assert_eq!(d.mshr_occ.sum, 4);
        let mut acc = HierarchyStats::default();
        acc.add_scaled(&d, 2);
        assert_eq!(acc.mshr_occ.samples, 2);
    }
}
