//! The [`Level`] enum naming each tier of the hierarchy.

use std::fmt;

/// A tier of the memory hierarchy where a request can be satisfied.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Level {
    /// Level-1 cache (instruction or data, 5-cycle hits in the baseline).
    L1,
    /// Private level-2 cache (15-cycle round trip in the baseline).
    L2,
    /// Shared last-level cache (40-cycle round trip in the baseline).
    Llc,
    /// Off-die DRAM.
    Memory,
}

impl Level {
    /// All levels, fastest first.
    pub const ALL: [Level; 4] = [Level::L1, Level::L2, Level::Llc, Level::Memory];

    /// True if the request was satisfied on-die.
    pub const fn is_on_die(self) -> bool {
        !matches!(self, Level::Memory)
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Level::L1 => "L1",
            Level::L2 => "L2",
            Level::Llc => "LLC",
            Level::Memory => "MEM",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_fastest_first() {
        assert!(Level::L1 < Level::L2);
        assert!(Level::L2 < Level::Llc);
        assert!(Level::Llc < Level::Memory);
    }

    #[test]
    fn on_die_predicate() {
        assert!(Level::L1.is_on_die());
        assert!(Level::Llc.is_on_die());
        assert!(!Level::Memory.is_on_die());
    }
}
