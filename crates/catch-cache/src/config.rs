//! Cache and hierarchy configuration.

use crate::replacement::ReplKind;
use std::fmt;

/// Error returned when a cache geometry is invalid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CacheConfigError {
    /// Capacity is not an exact multiple of `ways × 64 B`.
    Indivisible {
        /// Requested capacity in bytes.
        bytes: u64,
        /// Requested associativity.
        ways: usize,
    },
    /// Capacity or associativity was zero.
    Zero,
}

impl fmt::Display for CacheConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheConfigError::Indivisible { bytes, ways } => write!(
                f,
                "capacity {bytes} B is not divisible into {ways}-way sets of 64 B lines"
            ),
            CacheConfigError::Zero => write!(f, "capacity and associativity must be non-zero"),
        }
    }
}

impl std::error::Error for CacheConfigError {}

/// Geometry and latency of one cache.
#[derive(Clone, Debug, PartialEq)]
pub struct CacheConfig {
    /// Human-readable name ("L1D", "LLC"...).
    pub name: String,
    /// Capacity in bytes.
    pub bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Round-trip load-to-use hit latency in core cycles.
    pub latency: u64,
    /// Replacement policy.
    pub repl: ReplKind,
}

impl CacheConfig {
    /// Creates a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CacheConfigError`] if the geometry does not divide into an
    /// integral number of sets of 64-byte lines.
    pub fn new(
        name: impl Into<String>,
        bytes: u64,
        ways: usize,
        latency: u64,
    ) -> Result<Self, CacheConfigError> {
        let config = CacheConfig {
            name: name.into(),
            bytes,
            ways,
            latency,
            repl: ReplKind::Lru,
        };
        config.sets().map(|_| config)
    }

    /// Same as [`CacheConfig::new`] with an explicit replacement policy.
    pub fn with_repl(
        name: impl Into<String>,
        bytes: u64,
        ways: usize,
        latency: u64,
        repl: ReplKind,
    ) -> Result<Self, CacheConfigError> {
        let mut config = CacheConfig::new(name, bytes, ways, latency)?;
        config.repl = repl;
        Ok(config)
    }

    /// Number of sets, or an error if the geometry is invalid.
    pub fn sets(&self) -> Result<usize, CacheConfigError> {
        if self.bytes == 0 || self.ways == 0 {
            return Err(CacheConfigError::Zero);
        }
        let lines = self.bytes / catch_trace::LINE_BYTES;
        if !self.bytes.is_multiple_of(catch_trace::LINE_BYTES)
            || !lines.is_multiple_of(self.ways as u64)
        {
            return Err(CacheConfigError::Indivisible {
                bytes: self.bytes,
                ways: self.ways,
            });
        }
        Ok((lines / self.ways as u64) as usize)
    }

    /// Capacity in cache lines.
    pub fn lines(&self) -> u64 {
        self.bytes / catch_trace::LINE_BYTES
    }
}

/// Which multi-level organisation the hierarchy uses.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum HierarchyKind {
    /// Private L1 + private L2, shared LLC exclusive of L2 (Skylake server).
    ThreeLevelExclusive,
    /// Private L1 + private L2, shared inclusive LLC (Skylake client).
    ThreeLevelInclusive,
    /// Private L1 directly in front of the shared LLC (CATCH's two-level).
    TwoLevelNoL2,
}

/// Distributed (NUCA) LLC over a ring interconnect: the LLC is sliced
/// per core and an access pays hop latency to the slice holding the line.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RingConfig {
    /// Cycles per ring hop (one direction; the shorter way is taken).
    pub hop_cycles: u64,
    /// Ring stops / LLC slices (usually the core count).
    pub slices: usize,
}

/// Full hierarchy configuration for `cores` cores.
#[derive(Clone, Debug, PartialEq)]
pub struct HierarchyConfig {
    /// Organisation.
    pub kind: HierarchyKind,
    /// Number of cores (each gets private L1I/L1D and, if three-level, L2).
    pub cores: usize,
    /// Per-core L1 instruction cache.
    pub l1i: CacheConfig,
    /// Per-core L1 data cache.
    pub l1d: CacheConfig,
    /// Per-core L2 (ignored for [`HierarchyKind::TwoLevelNoL2`]).
    pub l2: CacheConfig,
    /// Shared LLC.
    pub llc: CacheConfig,
    /// Optional sliced-LLC ring model (None ⇒ uniform LLC latency).
    pub ring: Option<RingConfig>,
}

impl HierarchyConfig {
    /// The paper's large-L2 exclusive baseline: 32 KB 8-way L1I/L1D
    /// (5 cycles), 1 MB 16-way L2 (15 cycles), 5.5 MB 11-way exclusive LLC
    /// (40 cycles) shared by `cores` cores.
    pub fn skylake_server(cores: usize) -> Self {
        HierarchyConfig {
            kind: HierarchyKind::ThreeLevelExclusive,
            cores,
            l1i: CacheConfig::new("L1I", 32 << 10, 8, 5).expect("valid L1I geometry"),
            l1d: CacheConfig::new("L1D", 32 << 10, 8, 5).expect("valid L1D geometry"),
            l2: CacheConfig::new("L2", 1 << 20, 16, 15).expect("valid L2 geometry"),
            llc: CacheConfig::new("LLC", 5632 << 10, 11, 40).expect("valid LLC geometry"),
            ring: None,
        }
    }

    /// The paper's small-L2 inclusive baseline: 256 KB 8-way L2, 8 MB
    /// 16-way inclusive LLC.
    pub fn skylake_client(cores: usize) -> Self {
        HierarchyConfig {
            kind: HierarchyKind::ThreeLevelInclusive,
            cores,
            l1i: CacheConfig::new("L1I", 32 << 10, 8, 5).expect("valid L1I geometry"),
            l1d: CacheConfig::new("L1D", 32 << 10, 8, 5).expect("valid L1D geometry"),
            l2: CacheConfig::new("L2", 256 << 10, 8, 13).expect("valid L2 geometry"),
            llc: CacheConfig::new("LLC", 8 << 20, 16, 40).expect("valid LLC geometry"),
            ring: None,
        }
    }

    /// Removes the L2, optionally growing the LLC to `llc_bytes`
    /// (`ways` chosen to keep 8192 sets when possible).
    pub fn without_l2(mut self, llc_bytes: u64) -> Self {
        self.kind = HierarchyKind::TwoLevelNoL2;
        let sets = 8192u64;
        let lines = llc_bytes / catch_trace::LINE_BYTES;
        let ways = if lines.is_multiple_of(sets) {
            (lines / sets) as usize
        } else {
            self.llc.ways
        };
        self.llc = CacheConfig::with_repl("LLC", llc_bytes, ways, self.llc.latency, self.llc.repl)
            .expect("valid grown-LLC geometry");
        self
    }

    /// Returns a copy with `extra` cycles added to the LLC hit latency
    /// (Figure 15 sensitivity).
    pub fn with_llc_latency_delta(mut self, extra: u64) -> Self {
        self.llc.latency += extra;
        self
    }

    /// Total on-die cache bytes visible to one core
    /// (L1I + L1D + L2 + LLC/cores-share is *not* how the paper counts; it
    /// reports private caches plus the full shared LLC).
    pub fn per_core_private_bytes(&self) -> u64 {
        let l2 = if self.kind == HierarchyKind::TwoLevelNoL2 {
            0
        } else {
            self.l2.bytes
        };
        self.l1i.bytes + self.l1d.bytes + l2
    }

    /// True if the organisation has a private L2.
    pub fn has_l2(&self) -> bool {
        self.kind != HierarchyKind::TwoLevelNoL2
    }

    /// Enables the sliced-LLC ring model with the given per-hop latency
    /// (slices = core count).
    pub fn with_ring(mut self, hop_cycles: u64) -> Self {
        self.ring = Some(RingConfig {
            hop_cycles,
            slices: self.cores.max(1),
        });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_geometry_computes_sets() {
        let c = CacheConfig::new("L1", 32 << 10, 8, 5).unwrap();
        assert_eq!(c.sets().unwrap(), 64);
        assert_eq!(c.lines(), 512);
    }

    #[test]
    fn indivisible_geometry_rejected() {
        let err = CacheConfig::new("bad", 1000, 3, 1).unwrap_err();
        assert!(matches!(err, CacheConfigError::Indivisible { .. }));
        assert!(err.to_string().contains("not divisible"));
    }

    #[test]
    fn zero_geometry_rejected() {
        assert_eq!(
            CacheConfig::new("bad", 0, 8, 1).unwrap_err(),
            CacheConfigError::Zero
        );
    }

    #[test]
    fn skylake_server_matches_paper() {
        let h = HierarchyConfig::skylake_server(4);
        assert_eq!(h.l1d.bytes, 32 << 10);
        assert_eq!(h.l1d.latency, 5);
        assert_eq!(h.l2.bytes, 1 << 20);
        assert_eq!(h.l2.latency, 15);
        assert_eq!(h.llc.bytes, 5632 << 10); // 5.5 MB
        assert_eq!(h.llc.ways, 11);
        assert_eq!(h.llc.latency, 40);
        assert_eq!(h.llc.sets().unwrap(), 8192);
    }

    #[test]
    fn without_l2_grows_llc() {
        let h = HierarchyConfig::skylake_server(1).without_l2(6656 << 10); // 6.5 MB
        assert_eq!(h.kind, HierarchyKind::TwoLevelNoL2);
        assert_eq!(h.llc.bytes, 6656 << 10);
        assert_eq!(h.llc.ways, 13);
        assert!(!h.has_l2());
        assert_eq!(h.per_core_private_bytes(), 64 << 10);
    }

    #[test]
    fn llc_latency_delta() {
        let h = HierarchyConfig::skylake_server(1).with_llc_latency_delta(6);
        assert_eq!(h.llc.latency, 46);
    }
}
