//! Set-associative cache models and multi-level hierarchy controllers.
//!
//! This crate provides the on-die cache substrate of the CATCH simulator:
//!
//! * [`CacheArray`] — a set-associative tag array parameterised by a
//!   [`ReplacementPolicy`] (LRU, SRRIP, random),
//! * [`InFlightLedger`] — MSHR-style tracking of outstanding fills, which
//!   gives demand accesses that land on an in-flight (prefetched) line the
//!   *remaining* latency — the mechanism behind the paper's Figure 11
//!   timeliness analysis,
//! * [`CacheHierarchy`] — the three organisations studied by the paper:
//!   three-level with exclusive LLC (Skylake-server-like), three-level with
//!   inclusive LLC (Skylake-client-like), and the two-level no-L2
//!   organisation that CATCH enables.
//!
//! The hierarchy is multi-core: private L1I/L1D (and optionally L2) per
//! core in front of one shared LLC backed by a [`MemoryBackend`].
//!
//! # Example
//!
//! ```
//! use catch_cache::{CacheHierarchy, HierarchyConfig, AccessKind, FixedLatencyBackend};
//! use catch_trace::Addr;
//!
//! let config = HierarchyConfig::skylake_server(1);
//! let mut h = CacheHierarchy::new(&config, Box::new(FixedLatencyBackend::new(200)));
//! let miss = h.access(0, AccessKind::Load, Addr::new(0x1000).line(), 0);
//! let hit = h.access(0, AccessKind::Load, Addr::new(0x1000).line(), miss.ready_at(0));
//! assert!(hit.latency < miss.latency);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
mod config;
mod hierarchy;
mod ledger;
mod level;
mod replacement;
mod stats;

pub use array::{CacheArray, Victim};
pub use config::{CacheConfig, CacheConfigError, HierarchyConfig, HierarchyKind, RingConfig};
pub use hierarchy::{
    AccessKind, AccessOutcome, CacheHierarchy, FixedLatencyBackend, MemoryBackend,
};
pub use ledger::{FillOrigin, InFlightLedger};
pub use level::Level;
pub use replacement::{AnyRepl, Lru, RandomRepl, ReplKind, ReplacementPolicy, Srrip};
pub use stats::{CacheStats, HierarchyStats, PrefetchTimeliness, TrafficStats};
