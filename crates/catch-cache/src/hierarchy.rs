//! Multi-level, multi-core hierarchy controllers.

use crate::array::CacheArray;
use crate::config::{HierarchyConfig, HierarchyKind};
use crate::ledger::{FillOrigin, InFlight, InFlightLedger};
use crate::level::Level;
use crate::stats::{HierarchyStats, PrefetchTimeliness, TrafficStats};
use catch_obs::{Event, EventClass, EventKind, Obs, ObsLevel, OccupancyHist};
use catch_timeq::{Source, WakeBuf};
use catch_trace::LineAddr;
use std::fmt::Debug;

/// Nominal MSHR capacity used to bucket ledger-occupancy samples (the
/// ledger itself is unbounded; 32 matches contemporary L1D MSHR sizing).
const MSHR_OCC_CAP: u64 = 32;

/// The L1 observability level for a code/data access.
fn l1_obs_level(code: bool) -> ObsLevel {
    if code {
        ObsLevel::L1i
    } else {
        ObsLevel::L1d
    }
}

/// Timing model behind the LLC (DRAM, or a fixed latency for tests).
pub trait MemoryBackend: Debug + Send {
    /// Latency, in core cycles, of a memory access to `line` starting at
    /// `cycle`. `write` distinguishes writebacks from reads.
    fn access(&mut self, line: LineAddr, cycle: u64, write: bool) -> u64;

    /// Downcast hook so callers can recover concrete backend statistics
    /// (e.g. the DRAM model's row-buffer counters) after a run.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Clears statistics at the end of a warm-up phase (state is kept).
    fn reset_stats(&mut self) {}

    /// Turns on wake-hint capture: subsequent accesses may deposit
    /// service-completion times ([`catch_timeq::ServiceRequest`]s) for
    /// the timeq engine. Default: no-op (backends without internal
    /// timing have nothing to report).
    fn enable_wake_hints(&mut self) {}

    /// Moves accumulated wake hints into `sink` (bank service
    /// completions, for the DRAM model). Default: none.
    fn drain_wake_hints(&mut self, _sink: &mut WakeBuf) {}
}

/// A backend with a constant access latency; useful for tests and for the
/// latency-oracle studies.
#[derive(Debug, Clone)]
pub struct FixedLatencyBackend {
    latency: u64,
}

impl FixedLatencyBackend {
    /// Creates a backend that answers every access after `latency` cycles.
    pub fn new(latency: u64) -> Self {
        FixedLatencyBackend { latency }
    }
}

impl MemoryBackend for FixedLatencyBackend {
    fn access(&mut self, _line: LineAddr, _cycle: u64, _write: bool) -> u64 {
        self.latency
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// What kind of request is entering the hierarchy.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum AccessKind {
    /// Instruction fetch into the L1I.
    Code,
    /// Demand data load.
    Load,
    /// Demand data store (write-allocate).
    Store,
    /// TACT data prefetch targeting the L1D.
    TactPrefetch,
    /// Baseline L1 stride prefetch targeting the L1D.
    L1Prefetch,
    /// Baseline stream prefetch targeting the L2 (LLC when no L2 exists).
    L2Prefetch,
    /// TACT code-runahead prefetch targeting the L1I.
    CodePrefetch,
}

impl AccessKind {
    /// True for demand (non-prefetch) requests.
    pub fn is_demand(self) -> bool {
        matches!(
            self,
            AccessKind::Code | AccessKind::Load | AccessKind::Store
        )
    }

    /// True for requests that use the instruction L1.
    pub fn is_code(self) -> bool {
        matches!(self, AccessKind::Code | AccessKind::CodePrefetch)
    }
}

/// Result of a hierarchy access.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct AccessOutcome {
    /// Observed load-to-use latency in cycles.
    pub latency: u64,
    /// Level whose copy satisfied the request. For a request merged with an
    /// in-flight fill, this is the level the fill was fetched from.
    pub hit_level: Level,
    /// True when the request was satisfied by (merged into) an in-flight
    /// fill rather than a resident copy.
    pub merged_in_flight: bool,
}

impl AccessOutcome {
    /// Cycle at which the data is available if the access started at
    /// `cycle`.
    pub fn ready_at(&self, cycle: u64) -> u64 {
        cycle + self.latency
    }
}

#[derive(Debug)]
struct CorePrivate {
    l1i: CacheArray,
    l1d: CacheArray,
    l2: Option<CacheArray>,
    ledger_i: InFlightLedger,
    ledger_d: InFlightLedger,
    /// In-flight fills into the private L2 (baseline stream prefetches),
    /// so mid-level prefetching pays honest memory latency.
    ledger_mid: InFlightLedger,
}

/// A multi-core cache hierarchy in one of the paper's three organisations.
///
/// All tag state is updated immediately; timing flows through the returned
/// [`AccessOutcome`]s and the per-core in-flight ledgers. The shared LLC
/// and the [`MemoryBackend`] are common to all cores.
#[derive(Debug)]
pub struct CacheHierarchy {
    kind: HierarchyKind,
    cores: Vec<CorePrivate>,
    llc: CacheArray,
    /// In-flight fills into the shared LLC (two-level stream prefetches).
    ledger_llc: InFlightLedger,
    backend: Box<dyn MemoryBackend>,
    traffic: TrafficStats,
    timeliness: PrefetchTimeliness,
    llc_hit_latency: u64,
    ring: Option<crate::config::RingConfig>,
    /// Always-on data-side MSHR (in-flight ledger) occupancy, sampled at
    /// every demand L1D miss.
    mshr_occ: OccupancyHist,
    obs: Obs,
    /// Wake hints for the timeq engine: miss-fill ready times posted
    /// while servicing accesses, drained by the owning core after each
    /// tick. Disabled (free) under the tick engine.
    wake: WakeBuf,
}

impl CacheHierarchy {
    /// Builds the hierarchy described by `config` over `backend`.
    pub fn new(config: &HierarchyConfig, backend: Box<dyn MemoryBackend>) -> Self {
        let cores = (0..config.cores)
            .map(|_| CorePrivate {
                l1i: CacheArray::new(&config.l1i),
                l1d: CacheArray::new(&config.l1d),
                l2: config.has_l2().then(|| CacheArray::new(&config.l2)),
                ledger_i: InFlightLedger::new(),
                ledger_d: InFlightLedger::new(),
                ledger_mid: InFlightLedger::new(),
            })
            .collect();
        CacheHierarchy {
            kind: config.kind,
            cores,
            llc: CacheArray::new(&config.llc),
            ledger_llc: InFlightLedger::new(),
            backend,
            traffic: TrafficStats::default(),
            timeliness: PrefetchTimeliness::default(),
            llc_hit_latency: config.llc.latency,
            ring: config.ring,
            mshr_occ: OccupancyHist::new(),
            obs: Obs::off(),
            wake: WakeBuf::new(),
        }
    }

    /// Turns on wake-hint capture for the hierarchy and its backend
    /// (the timeq engine is driving).
    pub fn enable_wake_hints(&mut self) {
        self.wake.enable();
        self.backend.enable_wake_hints();
    }

    /// The wake-hint buffer, with any backend hints folded in. The core
    /// drains this into its calendar queue after each tick.
    pub fn wake_hints(&mut self) -> &mut WakeBuf {
        if self.wake.is_enabled() {
            self.backend.drain_wake_hints(&mut self.wake);
        }
        &mut self.wake
    }

    /// Attaches an observability handle; subsequent accesses emit
    /// cache-class events through it. Detached by default.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// LLC latency observed by `core` for `line`, including ring hops to
    /// the slice holding the line when the NUCA model is enabled.
    fn llc_latency_for(&self, core: usize, line: LineAddr) -> u64 {
        let base = self.llc.latency();
        match self.ring {
            None => base,
            Some(ring) => {
                let slices = ring.slices.max(1);
                let slice = (line.get() % slices as u64) as usize;
                let dist = core.abs_diff(slice) % slices;
                let hops = dist.min(slices - dist) as u64;
                base + hops * ring.hop_cycles
            }
        }
    }

    /// Organisation kind.
    pub fn kind(&self) -> HierarchyKind {
        self.kind
    }

    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Adds `extra` cycles to the hit latency of one level on every core
    /// (Figures 3 and 15).
    pub fn add_level_latency(&mut self, level: Level, extra: u64) {
        match level {
            Level::L1 => {
                for c in &mut self.cores {
                    c.l1i.add_latency(extra);
                    c.l1d.add_latency(extra);
                }
            }
            Level::L2 => {
                for c in &mut self.cores {
                    if let Some(l2) = c.l2.as_mut() {
                        l2.add_latency(extra);
                    }
                }
            }
            Level::Llc => {
                self.llc.add_latency(extra);
                self.llc_hit_latency += extra;
            }
            Level::Memory => {}
        }
    }

    /// Hit latency of a level as seen by `core` (memory returns the LLC
    /// latency plus a typical DRAM access is *not* folded in here; use the
    /// backend for that).
    pub fn level_latency(&self, core: usize, level: Level) -> u64 {
        match level {
            Level::L1 => self.cores[core].l1d.latency(),
            Level::L2 => self.cores[core]
                .l2
                .as_ref()
                .map(|l2| l2.latency())
                .unwrap_or_else(|| self.llc.latency()),
            Level::Llc | Level::Memory => self.llc.latency(),
        }
    }

    /// Snapshot of all statistics.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1i: self.cores.iter().map(|c| *c.l1i.stats()).collect(),
            l1d: self.cores.iter().map(|c| *c.l1d.stats()).collect(),
            l2: self
                .cores
                .iter()
                .filter_map(|c| c.l2.as_ref().map(|l2| *l2.stats()))
                .collect(),
            llc: *self.llc.stats(),
            traffic: self.traffic,
            timeliness: self.timeliness,
            mshr_occ: self.mshr_occ,
        }
    }

    /// Resets all statistics (e.g. at the end of warm-up) while keeping
    /// cache contents.
    pub fn reset_stats(&mut self) {
        for c in &mut self.cores {
            c.l1i.reset_stats();
            c.l1d.reset_stats();
            if let Some(l2) = c.l2.as_mut() {
                l2.reset_stats();
            }
        }
        self.llc.reset_stats();
        self.traffic = TrafficStats::default();
        self.timeliness = PrefetchTimeliness::default();
        self.mshr_occ = OccupancyHist::new();
        self.backend.reset_stats();
    }

    /// Probes where `line` would be found for `core` without disturbing any
    /// state. Used by the oracle studies.
    pub fn probe_level(&self, core: usize, code: bool, line: LineAddr) -> Level {
        let c = &self.cores[core];
        let l1 = if code { &c.l1i } else { &c.l1d };
        if l1.probe(line) {
            return Level::L1;
        }
        if let Some(l2) = c.l2.as_ref() {
            if l2.probe(line) {
                return Level::L2;
            }
        }
        if self.llc.probe(line) {
            return Level::Llc;
        }
        Level::Memory
    }

    /// Every level where `line` is simultaneously resident for `core`,
    /// innermost first (pure tag inspection; no state disturbed). Unlike
    /// [`CacheHierarchy::probe_level`], which stops at the innermost hit,
    /// this reports *all* copies — the invariant tests use it to check
    /// exclusivity (a line never duplicated between L2 and an exclusive
    /// LLC) and inclusion (upper copies always backed by the LLC).
    pub fn resident_levels(&self, core: usize, code: bool, line: LineAddr) -> Vec<Level> {
        let c = &self.cores[core];
        let mut levels = Vec::new();
        let l1 = if code { &c.l1i } else { &c.l1d };
        if l1.probe(line) {
            levels.push(Level::L1);
        }
        if c.l2.as_ref().is_some_and(|l2| l2.probe(line)) {
            levels.push(Level::L2);
        }
        if self.llc.probe(line) {
            levels.push(Level::Llc);
        }
        levels
    }

    /// True if a fill of `line` into core `core`'s L1 is still in flight.
    pub fn is_fill_pending(&self, core: usize, code: bool, line: LineAddr, now: u64) -> bool {
        let c = &self.cores[core];
        let ledger = if code { &c.ledger_i } else { &c.ledger_d };
        ledger.is_pending(line, now) || ledger.contains(line)
    }

    /// Read access to the backend (downcast via
    /// [`MemoryBackend::as_any`] for concrete statistics).
    pub fn backend(&self) -> &dyn MemoryBackend {
        self.backend.as_ref()
    }

    /// Performs an access for `core` of the given `kind` to `line` starting
    /// at `cycle`, returning the observed latency and source level.
    ///
    /// Prefetch kinds never stall the core: the returned latency is the
    /// fill latency, which the caller typically ignores (it is recorded in
    /// the ledger).
    pub fn access(
        &mut self,
        core: usize,
        kind: AccessKind,
        line: LineAddr,
        cycle: u64,
    ) -> AccessOutcome {
        assert!(core < self.cores.len(), "core index out of range");
        if kind.is_demand() {
            self.demand_access(core, kind, line, cycle)
        } else {
            self.prefetch_access(core, kind, line, cycle)
        }
    }

    /// Functional-warmup access for sampled simulation: updates tag,
    /// replacement, dirty and backend row-buffer state exactly as a
    /// demand access would — including outer-level walks, fills and
    /// victim handling — but records no in-flight fill, so the line is
    /// immediately usable when detailed simulation resumes. Counter
    /// changes made here land in the fast-forwarded (unmeasured) gaps
    /// between snapshots and never enter reconstructed statistics.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not a demand kind or `core` is out of range.
    pub fn warm_access(&mut self, core: usize, kind: AccessKind, line: LineAddr, cycle: u64) {
        assert!(kind.is_demand(), "warm_access models demand accesses only");
        assert!(core < self.cores.len(), "core index out of range");
        let code = kind.is_code();
        let is_store = kind == AccessKind::Store;
        let l1_hit = {
            let c = &mut self.cores[core];
            let l1 = if code { &mut c.l1i } else { &mut c.l1d };
            let hit = l1.lookup(line);
            if hit && is_store {
                l1.mark_dirty(line);
            }
            hit
        };
        if l1_hit {
            // Drop any stale in-flight record; warm fills are instant.
            let c = &mut self.cores[core];
            let ledger = if code {
                &mut c.ledger_i
            } else {
                &mut c.ledger_d
            };
            let _ = ledger.consume(line);
            return;
        }
        let _ = self.outer_walk(core, code, line, cycle, false);
        self.fill_l1(core, code, line, is_store, false, cycle);
    }

    fn demand_access(
        &mut self,
        core: usize,
        kind: AccessKind,
        line: LineAddr,
        cycle: u64,
    ) -> AccessOutcome {
        let code = kind.is_code();
        let is_store = kind == AccessKind::Store;

        // 1. L1 lookup.
        let l1_hit = {
            let c = &mut self.cores[core];
            let l1 = if code { &mut c.l1i } else { &mut c.l1d };
            let hit = l1.lookup(line);
            if hit && is_store {
                l1.mark_dirty(line);
            }
            hit
        };
        let l1_latency = {
            let c = &self.cores[core];
            if code {
                c.l1i.latency()
            } else {
                c.l1d.latency()
            }
        };

        if l1_hit {
            self.obs.emit(EventClass::CACHE, || Event {
                cycle,
                core: core as u32,
                kind: EventKind::CacheHit {
                    level: l1_obs_level(code),
                    line: line.get(),
                },
            });
        } else {
            self.obs.emit(EventClass::CACHE, || Event {
                cycle,
                core: core as u32,
                kind: EventKind::CacheMiss {
                    level: l1_obs_level(code),
                    line: line.get(),
                },
            });
            if !code {
                // Always-on MSHR pressure sample at the demand miss.
                let used = self.cores[core].ledger_d.len() as u64;
                self.mshr_occ.record(used, MSHR_OCC_CAP);
                self.obs.emit(EventClass::OCCUPANCY, || Event {
                    cycle,
                    core: core as u32,
                    kind: EventKind::CacheMshrOccupancy { used: used as u32 },
                });
            }
        }

        if l1_hit {
            // Possibly an in-flight fill: pay the remaining latency.
            let c = &mut self.cores[core];
            let ledger = if code {
                &mut c.ledger_i
            } else {
                &mut c.ledger_d
            };
            if let Some(fill) = ledger.consume(line) {
                let remaining = fill.remaining(cycle);
                let latency = l1_latency.max(remaining);
                if let FillOrigin::Prefetch { source, tact } = fill.origin {
                    if tact {
                        self.record_timeliness(core, latency, source, cycle);
                    }
                    return AccessOutcome {
                        latency,
                        hit_level: source,
                        merged_in_flight: remaining > 0,
                    };
                }
                return AccessOutcome {
                    latency,
                    hit_level: Level::L1,
                    merged_in_flight: remaining > 0,
                };
            }
            return AccessOutcome {
                latency: l1_latency,
                hit_level: Level::L1,
                merged_in_flight: false,
            };
        }

        // 2. Walk the outer levels.
        let (source, total_latency) = self.outer_walk(core, code, line, cycle, false);

        // 3. Fill into L1 (write-allocate for stores).
        self.fill_l1(core, code, line, is_store, false, cycle);
        let c = &mut self.cores[core];
        let ledger = if code {
            &mut c.ledger_i
        } else {
            &mut c.ledger_d
        };
        ledger.insert(
            line,
            InFlight {
                ready: cycle + total_latency,
                origin: FillOrigin::Demand,
            },
        );
        // The demand fill lands at `ready`; the requesting core's own
        // completion reservation coalesces with this hint.
        self.wake.post_hint(cycle + total_latency, Source::Cache);

        AccessOutcome {
            latency: total_latency.max(l1_latency),
            hit_level: source,
            merged_in_flight: false,
        }
    }

    fn prefetch_access(
        &mut self,
        core: usize,
        kind: AccessKind,
        line: LineAddr,
        cycle: u64,
    ) -> AccessOutcome {
        let code = kind.is_code();
        let tact = matches!(kind, AccessKind::TactPrefetch | AccessKind::CodePrefetch);

        match kind {
            AccessKind::TactPrefetch | AccessKind::L1Prefetch | AccessKind::CodePrefetch => {
                // Already resident or in flight: nothing to do.
                {
                    let c = &self.cores[core];
                    let (l1, ledger) = if code {
                        (&c.l1i, &c.ledger_i)
                    } else {
                        (&c.l1d, &c.ledger_d)
                    };
                    if l1.probe(line) || ledger.is_pending(line, cycle) {
                        return AccessOutcome {
                            latency: 0,
                            hit_level: Level::L1,
                            merged_in_flight: false,
                        };
                    }
                }
                let (source, total_latency) = self.outer_walk(core, code, line, cycle, true);
                self.fill_l1(core, code, line, false, true, cycle);
                let c = &mut self.cores[core];
                let ledger = if code {
                    &mut c.ledger_i
                } else {
                    &mut c.ledger_d
                };
                ledger.insert(
                    line,
                    InFlight {
                        ready: cycle + total_latency,
                        origin: FillOrigin::Prefetch { source, tact },
                    },
                );
                if tact && !code {
                    self.timeliness.issued += 1;
                    match source {
                        Level::L2 => self.timeliness.from_l2 += 1,
                        Level::Llc => self.timeliness.from_llc += 1,
                        Level::Memory => self.timeliness.from_memory += 1,
                        Level::L1 => {}
                    }
                }
                AccessOutcome {
                    latency: total_latency,
                    hit_level: source,
                    merged_in_flight: false,
                }
            }
            AccessKind::L2Prefetch => self.mid_level_prefetch(core, line, cycle),
            _ => unreachable!("demand kinds handled by demand_access"),
        }
    }

    /// Baseline stream prefetch into the L2 (or the LLC when no L2 exists).
    fn mid_level_prefetch(&mut self, core: usize, line: LineAddr, cycle: u64) -> AccessOutcome {
        let has_l2 = self.cores[core].l2.is_some();
        if has_l2 {
            {
                let c = &self.cores[core];
                let l2 = c.l2.as_ref().expect("checked has_l2");
                if l2.probe(line) || c.ledger_mid.is_pending(line, cycle) {
                    return AccessOutcome {
                        latency: 0,
                        hit_level: Level::L2,
                        merged_in_flight: false,
                    };
                }
            }
            // Fetch from LLC or memory into the L2.
            self.traffic.llc_requests += 1;
            let llc_hit = self.llc.lookup(line);
            let (source, latency) = if llc_hit {
                if self.kind == HierarchyKind::ThreeLevelExclusive {
                    self.llc.invalidate(line);
                    self.obs.emit(EventClass::CACHE, || Event {
                        cycle,
                        core: core as u32,
                        kind: EventKind::ExclusiveMigrate { line: line.get() },
                    });
                }
                (Level::Llc, self.llc.latency())
            } else {
                let dram = self.backend.access(line, cycle, false);
                self.traffic.dram_reads += 1;
                if self.kind == HierarchyKind::ThreeLevelInclusive {
                    self.fill_llc_inclusive(line, false, true, cycle, core);
                }
                (Level::Memory, self.llc.latency() + dram)
            };
            self.traffic.llc_replies += 1;
            self.fill_l2(core, line, false, true, cycle);
            self.cores[core].ledger_mid.insert(
                line,
                InFlight {
                    ready: cycle + latency,
                    origin: FillOrigin::Prefetch {
                        source,
                        tact: false,
                    },
                },
            );
            AccessOutcome {
                latency,
                hit_level: source,
                merged_in_flight: false,
            }
        } else {
            // Two-level organisation: the stream prefetcher fills the LLC.
            if self.llc.probe(line) || self.ledger_llc.is_pending(line, cycle) {
                return AccessOutcome {
                    latency: 0,
                    hit_level: Level::Llc,
                    merged_in_flight: false,
                };
            }
            let dram = self.backend.access(line, cycle, false);
            self.traffic.dram_reads += 1;
            let victim = self.llc.fill(line, false, true);
            self.handle_llc_victim(victim, cycle);
            let latency = self.llc.latency() + dram;
            self.ledger_llc.insert(
                line,
                InFlight {
                    ready: cycle + latency,
                    origin: FillOrigin::Prefetch {
                        source: Level::Memory,
                        tact: false,
                    },
                },
            );
            AccessOutcome {
                latency,
                hit_level: Level::Memory,
                merged_in_flight: false,
            }
        }
    }

    /// Walks L2 → LLC → memory for a request that missed the L1, updating
    /// tag state and traffic counters, and returns `(source level, total
    /// round-trip latency)`.
    fn outer_walk(
        &mut self,
        core: usize,
        code: bool,
        line: LineAddr,
        cycle: u64,
        prefetched: bool,
    ) -> (Level, u64) {
        let _ = code;
        // L2, if present.
        if self.cores[core].l2.is_some() {
            let l2_hit = {
                let l2 = self.cores[core].l2.as_mut().expect("L2 present");
                l2.lookup(line)
            };
            let l2_latency = self.cores[core].l2.as_ref().expect("L2 present").latency();
            if l2_hit {
                self.obs.emit(EventClass::CACHE, || Event {
                    cycle,
                    core: core as u32,
                    kind: EventKind::CacheHit {
                        level: ObsLevel::L2,
                        line: line.get(),
                    },
                });
                // A line still being filled by a mid-level prefetch is
                // only as close as the fill's remaining latency.
                if let Some(fill) = self.cores[core].ledger_mid.consume(line) {
                    return (Level::L2, l2_latency.max(fill.remaining(cycle)));
                }
                return (Level::L2, l2_latency);
            }
            self.obs.emit(EventClass::CACHE, || Event {
                cycle,
                core: core as u32,
                kind: EventKind::CacheMiss {
                    level: ObsLevel::L2,
                    line: line.get(),
                },
            });
            // LLC.
            self.traffic.llc_requests += 1;
            let llc_hit = self.llc.lookup(line);
            if llc_hit {
                self.obs.emit(EventClass::CACHE, || Event {
                    cycle,
                    core: core as u32,
                    kind: EventKind::CacheHit {
                        level: ObsLevel::Llc,
                        line: line.get(),
                    },
                });
                if self.kind == HierarchyKind::ThreeLevelExclusive {
                    // Exclusive move: the line leaves the LLC for the L2.
                    self.llc.invalidate(line);
                    self.obs.emit(EventClass::CACHE, || Event {
                        cycle,
                        core: core as u32,
                        kind: EventKind::ExclusiveMigrate { line: line.get() },
                    });
                }
                self.traffic.llc_replies += 1;
                self.fill_l2(core, line, false, prefetched, cycle);
                return (Level::Llc, self.llc_latency_for(core, line));
            }
            self.obs.emit(EventClass::CACHE, || Event {
                cycle,
                core: core as u32,
                kind: EventKind::CacheMiss {
                    level: ObsLevel::Llc,
                    line: line.get(),
                },
            });
            // Another core may hold the only on-die copy (exclusive LLC
            // does not track private lines). Inclusive LLCs cannot miss
            // while a private copy exists, so the snoop is skipped there.
            if self.kind == HierarchyKind::ThreeLevelExclusive
                && self.snoop_other_cores(core, code, line)
            {
                self.traffic.llc_replies += 1;
                self.fill_l2(core, line, false, prefetched, cycle);
                return (Level::Llc, self.c2c_latency());
            }
            // Memory.
            let dram = self.backend.access(line, cycle, false);
            self.traffic.dram_reads += 1;
            self.traffic.llc_replies += 1;
            if self.kind == HierarchyKind::ThreeLevelInclusive {
                self.fill_llc_inclusive(line, false, prefetched, cycle, core);
            }
            self.fill_l2(core, line, false, prefetched, cycle);
            (Level::Memory, self.llc_latency_for(core, line) + dram)
        } else {
            // Two-level: straight to the LLC.
            self.traffic.llc_requests += 1;
            let llc_hit = self.llc.lookup(line);
            if llc_hit {
                self.obs.emit(EventClass::CACHE, || Event {
                    cycle,
                    core: core as u32,
                    kind: EventKind::CacheHit {
                        level: ObsLevel::Llc,
                        line: line.get(),
                    },
                });
                self.traffic.llc_replies += 1;
                let base = self.llc_latency_for(core, line);
                if let Some(fill) = self.ledger_llc.consume(line) {
                    return (Level::Llc, base.max(fill.remaining(cycle)));
                }
                return (Level::Llc, base);
            }
            self.obs.emit(EventClass::CACHE, || Event {
                cycle,
                core: core as u32,
                kind: EventKind::CacheMiss {
                    level: ObsLevel::Llc,
                    line: line.get(),
                },
            });
            if self.snoop_other_cores(core, code, line) {
                self.traffic.llc_replies += 1;
                let victim = self.llc.fill(line, false, prefetched);
                self.handle_llc_victim(victim, cycle);
                return (Level::Llc, self.c2c_latency());
            }
            let dram = self.backend.access(line, cycle, false);
            self.traffic.dram_reads += 1;
            self.traffic.llc_replies += 1;
            let victim = self.llc.fill(line, false, prefetched);
            self.handle_llc_victim(victim, cycle);
            (Level::Memory, self.llc_latency_for(core, line) + dram)
        }
    }

    /// Probes every *other* core's private caches for `line` (the
    /// coherence snoop an exclusive LLC needs, since private copies are
    /// not tracked in its tags). Returns true on a snoop hit; the owner's
    /// copy stays resident (shared data remains shared).
    fn snoop_other_cores(&mut self, requester: usize, code: bool, line: LineAddr) -> bool {
        let mut found = false;
        for (i, c) in self.cores.iter().enumerate() {
            if i == requester {
                continue;
            }
            let hit = if code {
                c.l1i.probe(line)
            } else {
                c.l1d.probe(line) || c.l2.as_ref().map(|l2| l2.probe(line)).unwrap_or(false)
            };
            if hit {
                found = true;
                break;
            }
        }
        if found {
            self.traffic.c2c_transfers += 1;
        }
        found
    }

    /// Latency of a cache-to-cache transfer (snoop + cross-core data
    /// movement over the interconnect).
    fn c2c_latency(&self) -> u64 {
        self.llc.latency() + self.llc.latency() / 2
    }

    /// Fills `line` into the chosen L1, handling the victim writeback.
    fn fill_l1(
        &mut self,
        core: usize,
        code: bool,
        line: LineAddr,
        dirty: bool,
        prefetched: bool,
        cycle: u64,
    ) {
        self.obs.emit(EventClass::CACHE, || Event {
            cycle,
            core: core as u32,
            kind: EventKind::CacheFill {
                level: l1_obs_level(code),
                line: line.get(),
            },
        });
        let victim = {
            let c = &mut self.cores[core];
            let l1 = if code { &mut c.l1i } else { &mut c.l1d };
            l1.fill(line, dirty, prefetched)
        };
        if let Some(v) = victim {
            {
                let c = &mut self.cores[core];
                let ledger = if code {
                    &mut c.ledger_i
                } else {
                    &mut c.ledger_d
                };
                ledger.evict(v.line);
            }
            if v.dirty {
                if self.cores[core].l2.is_some() {
                    // Dirty L1 victims merge into the L2. Under exclusion
                    // the line may have been L2-evicted into the LLC while
                    // still live in the L1; the newer dirty data supersedes
                    // that stale LLC copy, so drop it to restore the
                    // single-on-die-copy invariant.
                    if self.kind == HierarchyKind::ThreeLevelExclusive {
                        self.llc.invalidate(v.line);
                    }
                    self.fill_l2(core, v.line, true, false, cycle);
                } else {
                    // Two-level: dirty L1 victims write to the LLC.
                    self.traffic.llc_writebacks += 1;
                    if !self.llc.mark_dirty(v.line) {
                        let victim = self.llc.fill(v.line, true, false);
                        self.handle_llc_victim(victim, 0);
                    }
                }
            }
        }
    }

    /// Fills `line` into core `core`'s L2, handling the victim per policy.
    fn fill_l2(&mut self, core: usize, line: LineAddr, dirty: bool, prefetched: bool, cycle: u64) {
        self.obs.emit(EventClass::CACHE, || Event {
            cycle,
            core: core as u32,
            kind: EventKind::CacheFill {
                level: ObsLevel::L2,
                line: line.get(),
            },
        });
        let victim = {
            let l2 = self.cores[core]
                .l2
                .as_mut()
                .expect("fill_l2 requires an L2");
            l2.fill(line, dirty, prefetched)
        };
        let Some(v) = victim else { return };
        match self.kind {
            HierarchyKind::ThreeLevelExclusive => {
                // Exclusive LLC allocates every L2 victim (clean or dirty).
                self.traffic.llc_writebacks += 1;
                let llc_victim = self.llc.fill(v.line, v.dirty, false);
                self.handle_llc_victim(llc_victim, 0);
            }
            HierarchyKind::ThreeLevelInclusive => {
                // Inclusive LLC already has the line; only dirty data moves.
                if v.dirty {
                    self.traffic.llc_writebacks += 1;
                    if !self.llc.mark_dirty(v.line) {
                        // Raced with an LLC eviction; write through to DRAM.
                        self.backend.access(v.line, 0, true);
                        self.traffic.dram_writes += 1;
                    }
                }
            }
            HierarchyKind::TwoLevelNoL2 => unreachable!("no L2 in two-level mode"),
        }
    }

    /// Fills into an inclusive LLC, back-invalidating private copies of the
    /// victim in every core. `cycle`/`requester` only attribute events.
    fn fill_llc_inclusive(
        &mut self,
        line: LineAddr,
        dirty: bool,
        prefetched: bool,
        cycle: u64,
        requester: usize,
    ) {
        self.obs.emit(EventClass::CACHE, || Event {
            cycle,
            core: requester as u32,
            kind: EventKind::CacheFill {
                level: ObsLevel::Llc,
                line: line.get(),
            },
        });
        let victim = self.llc.fill(line, dirty, prefetched);
        if let Some(v) = victim {
            let mut any_dirty = v.dirty;
            for (i, c) in self.cores.iter_mut().enumerate() {
                self.traffic.back_invalidates += 1;
                if c.l1i.invalidate(v.line).is_some() {
                    c.ledger_i.evict(v.line);
                    self.obs.emit(EventClass::CACHE, || Event {
                        cycle,
                        core: i as u32,
                        kind: EventKind::BackInvalidate {
                            level: ObsLevel::L1i,
                            line: v.line.get(),
                        },
                    });
                }
                if let Some(d) = c.l1d.invalidate(v.line) {
                    any_dirty |= d;
                    c.ledger_d.evict(v.line);
                    self.obs.emit(EventClass::CACHE, || Event {
                        cycle,
                        core: i as u32,
                        kind: EventKind::BackInvalidate {
                            level: ObsLevel::L1d,
                            line: v.line.get(),
                        },
                    });
                }
                if let Some(l2) = c.l2.as_mut() {
                    if let Some(d) = l2.invalidate(v.line) {
                        any_dirty |= d;
                        self.obs.emit(EventClass::CACHE, || Event {
                            cycle,
                            core: i as u32,
                            kind: EventKind::BackInvalidate {
                                level: ObsLevel::L2,
                                line: v.line.get(),
                            },
                        });
                    }
                }
            }
            if any_dirty {
                self.backend.access(v.line, 0, true);
                self.traffic.dram_writes += 1;
            }
        }
    }

    fn handle_llc_victim(&mut self, victim: Option<crate::array::Victim>, cycle: u64) {
        if let Some(v) = victim {
            if self.kind == HierarchyKind::ThreeLevelInclusive {
                // Handled by fill_llc_inclusive; this path is for
                // exclusive / two-level organisations only.
            }
            if v.dirty {
                self.backend.access(v.line, cycle, true);
                self.traffic.dram_writes += 1;
            }
        }
    }

    /// Classifies how much of the LLC hit latency a consumed TACT
    /// prefetch hid (Figure 11), and reports it as a timeliness event.
    fn record_timeliness(&mut self, core: usize, observed: u64, source: Level, cycle: u64) {
        self.timeliness.used += 1;
        // Zero-denominator guard: an LLC ablated to (or configured with)
        // zero hit latency, or a run where the LLC was never timed, must
        // not turn the saved fraction into NaN — classify against a floor
        // of one cycle instead.
        let llc = self.llc_hit_latency.max(1);
        let saved = llc.saturating_sub(observed) as f64 / llc as f64;
        debug_assert!(
            saved.is_finite() && (0.0..=1.0).contains(&saved),
            "timeliness fraction out of range: {saved}"
        );
        if saved > 0.8 {
            self.timeliness.saved_over_80 += 1;
        } else if saved >= 0.1 {
            self.timeliness.saved_10_to_80 += 1;
        } else {
            self.timeliness.saved_under_10 += 1;
        }
        self.obs.emit(EventClass::TACT, || Event {
            cycle,
            core: core as u32,
            kind: EventKind::TactTimely {
                source: match source {
                    Level::L1 => ObsLevel::L1d,
                    Level::L2 => ObsLevel::L2,
                    Level::Llc => ObsLevel::Llc,
                    Level::Memory => ObsLevel::Memory,
                },
                saved_pct: (saved * 100.0).round() as u8,
            },
        });
    }

    /// Periodic ledger cleanup; call occasionally with the current cycle.
    pub fn maintain(&mut self, now: u64) {
        let horizon = now.saturating_sub(100_000);
        for c in &mut self.cores {
            c.ledger_i.retire_older_than(horizon);
            c.ledger_d.retire_older_than(horizon);
            c.ledger_mid.retire_older_than(horizon);
        }
        self.ledger_llc.retire_older_than(horizon);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HierarchyConfig;

    fn exclusive() -> CacheHierarchy {
        CacheHierarchy::new(
            &HierarchyConfig::skylake_server(1),
            Box::new(FixedLatencyBackend::new(200)),
        )
    }

    fn inclusive() -> CacheHierarchy {
        CacheHierarchy::new(
            &HierarchyConfig::skylake_client(1),
            Box::new(FixedLatencyBackend::new(200)),
        )
    }

    fn two_level() -> CacheHierarchy {
        CacheHierarchy::new(
            &HierarchyConfig::skylake_server(1).without_l2(6656 << 10),
            Box::new(FixedLatencyBackend::new(200)),
        )
    }

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn cold_miss_pays_memory_latency() {
        let mut h = exclusive();
        let out = h.access(0, AccessKind::Load, line(1), 0);
        assert_eq!(out.hit_level, Level::Memory);
        assert_eq!(out.latency, 40 + 200);
    }

    #[test]
    fn l1_hit_after_fill() {
        let mut h = exclusive();
        let miss = h.access(0, AccessKind::Load, line(1), 0);
        let hit = h.access(0, AccessKind::Load, line(1), miss.ready_at(0));
        assert_eq!(hit.hit_level, Level::L1);
        assert_eq!(hit.latency, 5);
    }

    #[test]
    fn demand_merge_sees_remaining_latency() {
        let mut h = exclusive();
        let miss = h.access(0, AccessKind::Load, line(1), 0);
        assert_eq!(miss.latency, 240);
        // Second access 100 cycles in: 140 remaining.
        let merged = h.access(0, AccessKind::Load, line(1), 100);
        assert!(merged.merged_in_flight);
        assert_eq!(merged.latency, 140);
        // After data arrival: plain L1 hit.
        let hit = h.access(0, AccessKind::Load, line(1), 400);
        assert!(!hit.merged_in_flight);
        assert_eq!(hit.latency, 5);
    }

    #[test]
    fn warm_access_makes_line_immediately_resident() {
        let mut h = exclusive();
        h.warm_access(0, AccessKind::Load, line(9), 0);
        // No in-flight fill: a demand access on the very next cycle is a
        // plain L1 hit with no merged latency.
        let hit = h.access(0, AccessKind::Load, line(9), 1);
        assert_eq!(hit.hit_level, Level::L1);
        assert!(!hit.merged_in_flight);
        assert_eq!(hit.latency, 5);
    }

    #[test]
    fn warm_store_marks_line_dirty() {
        let mut h = exclusive();
        h.warm_access(0, AccessKind::Store, line(3), 0);
        // Evicting the dirty warmed line must count a dirty eviction:
        // conflict-fill the L1 set (64 sets in the L1D).
        let sets = 64;
        for i in 1..=16 {
            h.warm_access(0, AccessKind::Load, line(3 + i * sets), 0);
        }
        assert!(h.stats().l1d[0].dirty_evictions > 0);
    }

    #[test]
    #[should_panic(expected = "demand accesses only")]
    fn warm_access_rejects_prefetch_kinds() {
        let mut h = exclusive();
        h.warm_access(0, AccessKind::L1Prefetch, line(1), 0);
    }

    #[test]
    fn exclusive_llc_hit_moves_line_to_l2() {
        let mut h = exclusive();
        // Fill a line, then evict it from L1+L2 indirectly is hard; instead
        // prefetch into L2 via stream path, then check exclusive move.
        h.access(0, AccessKind::Load, line(1), 0);
        // Line is in L1 + L2 (fill path), not LLC (exclusive, from memory).
        assert!(!h.llc.probe(line(1)));
        // Evict from L2 by filling conflicting lines: L2 has 1024 sets; use
        // same-set lines (stride of set count).
        let sets = 1024;
        for i in 1..=16 {
            h.access(0, AccessKind::Load, line(1 + i * sets), 0);
        }
        // Line 1 should have been evicted from L2 into the LLC.
        assert!(h.llc.probe(line(1)));
        // L1 still holds it though (L1 has 64 sets; different conflicts).
    }

    #[test]
    fn inclusive_memory_fill_populates_all_levels() {
        let mut h = inclusive();
        h.access(0, AccessKind::Load, line(7), 0);
        assert!(h.llc.probe(line(7)));
        assert!(h.cores[0].l2.as_ref().unwrap().probe(line(7)));
        assert!(h.cores[0].l1d.probe(line(7)));
    }

    #[test]
    fn two_level_walks_l1_llc_memory() {
        let mut h = two_level();
        let out = h.access(0, AccessKind::Load, line(3), 0);
        assert_eq!(out.hit_level, Level::Memory);
        assert_eq!(out.latency, 240);
        assert!(h.llc.probe(line(3)));
        let hit = h.access(0, AccessKind::Load, line(3), 300);
        assert_eq!(hit.hit_level, Level::L1);
        // LLC hit from the other path:
        let sets = 64; // L1 sets
        for i in 1..=8 {
            h.access(0, AccessKind::Load, line(3 + i * sets), 300);
        }
        let llc_hit = h.access(0, AccessKind::Load, line(3), 1000);
        assert_eq!(llc_hit.hit_level, Level::Llc);
        assert_eq!(llc_hit.latency, 40);
    }

    #[test]
    fn tact_prefetch_hides_llc_latency() {
        let mut h = two_level();
        // Install in LLC.
        h.access(0, AccessKind::Load, line(5), 0);
        let sets = 64;
        for i in 1..=8 {
            h.access(0, AccessKind::Load, line(5 + i * sets), 0);
        }
        assert_eq!(h.probe_level(0, false, line(5)), Level::Llc);
        // TACT prefetch at cycle 1000; demand at 1050 (fully timely).
        let pf = h.access(0, AccessKind::TactPrefetch, line(5), 1000);
        assert_eq!(pf.hit_level, Level::Llc);
        let demand = h.access(0, AccessKind::Load, line(5), 1050);
        assert_eq!(demand.latency, 5);
        assert_eq!(demand.hit_level, Level::Llc); // source attribution
        let t = h.stats().timeliness;
        assert_eq!(t.issued, 1);
        assert_eq!(t.from_llc, 1);
        assert_eq!(t.used, 1);
        assert_eq!(t.saved_over_80, 1);
    }

    #[test]
    fn late_tact_prefetch_partially_saves() {
        let mut h = two_level();
        h.access(0, AccessKind::Load, line(5), 0);
        let sets = 64;
        for i in 1..=8 {
            h.access(0, AccessKind::Load, line(5 + i * sets), 0);
        }
        // Prefetch at 1000 (ready 1040); demand at 1010 → 30 remaining.
        h.access(0, AccessKind::TactPrefetch, line(5), 1000);
        let demand = h.access(0, AccessKind::Load, line(5), 1010);
        assert_eq!(demand.latency, 30);
        assert!(demand.merged_in_flight);
        let t = h.stats().timeliness;
        assert_eq!(t.saved_10_to_80, 1); // saved 10/40 = 25%
    }

    #[test]
    fn duplicate_prefetch_is_dropped() {
        let mut h = two_level();
        h.access(0, AccessKind::TactPrefetch, line(9), 0);
        let before = h.stats().timeliness.issued;
        h.access(0, AccessKind::TactPrefetch, line(9), 1);
        assert_eq!(h.stats().timeliness.issued, before);
    }

    #[test]
    fn store_marks_line_dirty_and_writes_back() {
        let mut h = two_level();
        h.access(0, AccessKind::Store, line(1), 0);
        // Evict from L1 via conflicting fills -> dirty writeback to LLC.
        let sets = 64;
        for i in 1..=8 {
            h.access(0, AccessKind::Load, line(1 + i * sets), 0);
        }
        assert!(h.stats().traffic.llc_writebacks >= 1);
    }

    #[test]
    fn code_accesses_use_l1i() {
        let mut h = exclusive();
        h.access(0, AccessKind::Code, line(100), 0);
        assert!(h.cores[0].l1i.probe(line(100)));
        assert!(!h.cores[0].l1d.probe(line(100)));
    }

    #[test]
    fn per_core_isolation_of_private_caches() {
        let mut h = CacheHierarchy::new(
            &HierarchyConfig::skylake_server(2),
            Box::new(FixedLatencyBackend::new(200)),
        );
        h.access(0, AccessKind::Load, line(1), 0);
        assert!(h.cores[0].l1d.probe(line(1)));
        assert!(!h.cores[1].l1d.probe(line(1)));
        // Core 1 misses its private caches; the exclusive LLC does not
        // hold the line either, but the snoop finds core 0's copy and a
        // cache-to-cache transfer serves it on-die.
        let out = h.access(1, AccessKind::Load, line(1), 0);
        assert_eq!(out.hit_level, Level::Llc);
        assert_eq!(out.latency, 60); // 40 + 40/2
        assert_eq!(h.stats().traffic.c2c_transfers, 1);
        // Both cores now hold private copies (shared data stays shared).
        assert!(h.cores[0].l1d.probe(line(1)));
        assert!(h.cores[1].l1d.probe(line(1)));
    }

    #[test]
    fn add_level_latency_applies_to_hits() {
        let mut h = exclusive();
        h.add_level_latency(Level::L1, 3);
        h.access(0, AccessKind::Load, line(1), 0);
        let hit = h.access(0, AccessKind::Load, line(1), 500);
        assert_eq!(hit.latency, 8);
    }

    #[test]
    fn stream_prefetch_fills_l2_when_present() {
        let mut h = exclusive();
        h.access(0, AccessKind::L2Prefetch, line(42), 0);
        assert!(h.cores[0].l2.as_ref().unwrap().probe(line(42)));
        assert!(!h.cores[0].l1d.probe(line(42)));
        // Demand then hits in L2.
        let out = h.access(0, AccessKind::Load, line(42), 500);
        assert_eq!(out.hit_level, Level::L2);
        assert_eq!(out.latency, 15);
    }

    #[test]
    fn stream_prefetch_fills_llc_without_l2() {
        let mut h = two_level();
        h.access(0, AccessKind::L2Prefetch, line(42), 0);
        assert!(h.llc.probe(line(42)));
        let out = h.access(0, AccessKind::Load, line(42), 500);
        assert_eq!(out.hit_level, Level::Llc);
    }

    #[test]
    fn ring_model_adds_hop_latency_per_slice() {
        let config = HierarchyConfig::skylake_server(4)
            .without_l2(6656 << 10)
            .with_ring(4);
        let mut h = CacheHierarchy::new(&config, Box::new(FixedLatencyBackend::new(200)));
        // Install lines 0..4 in the LLC by touching from core 3 and
        // evicting L1 copies is unnecessary: access LLC residency via a
        // first fill, then measure core 0's LLC hit latency per slice.
        for l in 0..4u64 {
            h.access(3, AccessKind::L2Prefetch, line(l), 0); // fills LLC
        }
        // Core 0: slice = line % 4; hop distance = min(|0-s|, 4-|0-s|).
        let expect = |slice: u64| 40 + [0u64, 1, 2, 1][slice as usize] * 4;
        for l in 0..4u64 {
            let out = h.access(0, AccessKind::Load, line(l), 10_000 + l);
            assert_eq!(out.hit_level, Level::Llc);
            assert_eq!(out.latency, expect(l), "slice {l}");
        }
    }

    #[test]
    fn idle_llc_yields_finite_derived_metrics() {
        // Regression: a run whose LLC never observes an access (or whose
        // LLC latency is ablated to zero) must not produce NaN anywhere
        // in the derived metrics.
        let h = exclusive();
        let s = h.stats();
        assert_eq!(s.llc.accesses, 0, "LLC idle by construction");
        assert!(s.llc.hit_rate().is_finite());
        assert!(s.timeliness.llc_fraction().is_finite());
        assert!(s.timeliness.over_80_fraction().is_finite());
        assert!(s.mshr_occ.mean().is_finite());
        assert!(s.mshr_occ.fraction_at_or_above(0).is_finite());
    }

    #[test]
    fn zero_latency_llc_timeliness_stays_finite() {
        // The satellite bug: `saved = … / llc as f64` with an LLC hit
        // latency of zero. Build such a hierarchy and drive the
        // timeliness path end-to-end.
        let mut config = HierarchyConfig::skylake_server(1).without_l2(6656 << 10);
        config.llc.latency = 0;
        let mut h = CacheHierarchy::new(&config, Box::new(FixedLatencyBackend::new(200)));
        // Install in LLC, then TACT-prefetch and consume it.
        h.access(0, AccessKind::Load, line(5), 0);
        let sets = 64;
        for i in 1..=8 {
            h.access(0, AccessKind::Load, line(5 + i * sets), 0);
        }
        h.access(0, AccessKind::TactPrefetch, line(5), 1000);
        h.access(0, AccessKind::Load, line(5), 2000);
        let t = h.stats().timeliness;
        assert_eq!(t.used, 1);
        assert_eq!(
            t.saved_over_80 + t.saved_10_to_80 + t.saved_under_10,
            t.used,
            "every used prefetch lands in exactly one timeliness bucket"
        );
    }

    #[test]
    fn attached_sink_observes_cache_events() {
        use catch_obs::{EventClass, EventKind, Obs, VecSink};
        use std::sync::{Arc, Mutex};
        let sink = Arc::new(Mutex::new(VecSink::new()));
        let mut h = exclusive();
        h.set_obs(Obs::attached(sink.clone(), EventClass::ALL));
        h.access(0, AccessKind::Load, line(1), 0); // cold miss → memory
        h.access(0, AccessKind::Load, line(1), 500); // L1 hit
        let events = sink.lock().unwrap().take();
        let names: Vec<&str> = events.iter().map(|e| e.name()).collect();
        assert!(names.contains(&"cache.miss"), "{names:?}");
        assert!(names.contains(&"cache.fill"), "{names:?}");
        assert!(names.contains(&"cache.hit"), "{names:?}");
        assert!(
            events
                .iter()
                .any(|e| matches!(e.kind, EventKind::CacheMshrOccupancy { .. })),
            "MSHR occupancy sampled at the demand miss"
        );
        assert!(events.iter().all(|e| e.core == 0));
        // The always-on histogram saw the same miss.
        assert_eq!(h.stats().mshr_occ.samples, 1);
    }

    #[test]
    fn detached_obs_emits_nothing_and_changes_nothing() {
        let mut traced = exclusive();
        let mut plain = exclusive();
        traced.set_obs(catch_obs::Obs::off());
        for i in 0..100u64 {
            let a = traced.access(0, AccessKind::Load, line(i % 10), i * 7);
            let b = plain.access(0, AccessKind::Load, line(i % 10), i * 7);
            assert_eq!(a, b);
        }
        assert_eq!(traced.stats(), plain.stats());
    }

    #[test]
    fn reset_stats_clears_counters_keeps_contents() {
        let mut h = exclusive();
        h.access(0, AccessKind::Load, line(1), 0);
        h.reset_stats();
        let s = h.stats();
        assert_eq!(s.l1d[0].accesses, 0);
        assert_eq!(s.traffic.dram_reads, 0);
        let hit = h.access(0, AccessKind::Load, line(1), 500);
        assert_eq!(hit.hit_level, Level::L1);
    }
}
