//! MSHR-style tracking of in-flight fills.

use crate::level::Level;
use catch_trace::hash::FxHashMap;
use catch_trace::LineAddr;

/// Who initiated the fill that is (or was) in flight.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum FillOrigin {
    /// A demand load/store/code fetch.
    Demand,
    /// A prefetch that found its data at `source`.
    Prefetch {
        /// Level that supplied the data.
        source: Level,
        /// True if issued by a TACT prefetcher (vs. baseline prefetchers);
        /// used by the Figure 11 timeliness accounting.
        tact: bool,
    },
}

impl FillOrigin {
    /// True for prefetch-initiated fills.
    pub fn is_prefetch(self) -> bool {
        matches!(self, FillOrigin::Prefetch { .. })
    }
}

/// An outstanding (or recently completed, not-yet-consumed) fill.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct InFlight {
    /// Cycle at which the data arrives in the cache.
    pub ready: u64,
    /// Who initiated it.
    pub origin: FillOrigin,
}

impl InFlight {
    /// Remaining wait if accessed at `now` (zero when already arrived).
    pub fn remaining(&self, now: u64) -> u64 {
        self.ready.saturating_sub(now)
    }
}

/// Tracks outstanding fills into one cache.
///
/// The simulator applies fills to the tag array immediately (tag state is
/// presence-accurate); the ledger supplies the *timing*: a demand access to
/// a line whose fill is still in flight observes the remaining latency,
/// which is exactly how an MSHR merge behaves. Prefetch entries additionally
/// persist until the first demand use so the hierarchy can classify
/// prefetch timeliness (how much of the source-level latency the prefetch
/// hid), which Figure 11 of the paper reports.
#[derive(Debug, Default)]
pub struct InFlightLedger {
    map: FxHashMap<LineAddr, InFlight>,
}

impl InFlightLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a fill for `line` arriving at `ready`.
    ///
    /// A demand fill overwrites a prefetch entry only if it would arrive
    /// earlier (the demand was issued because the prefetch had not been —
    /// in hardware the MSHR merges and the earlier completion wins).
    pub fn insert(&mut self, line: LineAddr, fill: InFlight) {
        self.map
            .entry(line)
            .and_modify(|existing| {
                if fill.ready < existing.ready {
                    existing.ready = fill.ready;
                }
            })
            .or_insert(fill);
    }

    /// Consumes the entry for `line` on a demand access, returning it.
    ///
    /// The entry is removed: the first demand use of a prefetched line is
    /// the one whose latency the prefetch saved.
    pub fn consume(&mut self, line: LineAddr) -> Option<InFlight> {
        self.map.remove(&line)
    }

    /// True if a fill for `line` has been issued and has not yet arrived.
    pub fn is_pending(&self, line: LineAddr, now: u64) -> bool {
        self.map.get(&line).is_some_and(|f| f.ready > now)
    }

    /// True if the ledger knows about `line` at all (pending or landed but
    /// unconsumed).
    pub fn contains(&self, line: LineAddr) -> bool {
        self.map.contains_key(&line)
    }

    /// Drops the entry for an evicted line.
    pub fn evict(&mut self, line: LineAddr) {
        self.map.remove(&line);
    }

    /// Number of tracked fills.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Removes entries that arrived before `horizon` (periodic cleanup so
    /// unconsumed prefetch entries do not accumulate without bound).
    pub fn retire_older_than(&mut self, horizon: u64) {
        self.map.retain(|_, f| f.ready >= horizon);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn pending_until_ready() {
        let mut l = InFlightLedger::new();
        l.insert(
            line(1),
            InFlight {
                ready: 100,
                origin: FillOrigin::Demand,
            },
        );
        assert!(l.is_pending(line(1), 50));
        assert!(!l.is_pending(line(1), 100));
        assert!(l.contains(line(1)));
    }

    #[test]
    fn consume_removes() {
        let mut l = InFlightLedger::new();
        let fill = InFlight {
            ready: 10,
            origin: FillOrigin::Prefetch {
                source: Level::Llc,
                tact: true,
            },
        };
        l.insert(line(2), fill);
        assert_eq!(l.consume(line(2)), Some(fill));
        assert_eq!(l.consume(line(2)), None);
    }

    #[test]
    fn demand_merge_keeps_earliest_ready() {
        let mut l = InFlightLedger::new();
        l.insert(
            line(3),
            InFlight {
                ready: 100,
                origin: FillOrigin::Prefetch {
                    source: Level::Memory,
                    tact: false,
                },
            },
        );
        l.insert(
            line(3),
            InFlight {
                ready: 80,
                origin: FillOrigin::Demand,
            },
        );
        let f = l.consume(line(3)).unwrap();
        assert_eq!(f.ready, 80);
        // Origin stays with the first requester (the prefetch).
        assert!(f.origin.is_prefetch());

        // A later fill does not extend an earlier one.
        l.insert(
            line(4),
            InFlight {
                ready: 50,
                origin: FillOrigin::Demand,
            },
        );
        l.insert(
            line(4),
            InFlight {
                ready: 70,
                origin: FillOrigin::Demand,
            },
        );
        assert_eq!(l.consume(line(4)).unwrap().ready, 50);
    }

    #[test]
    fn remaining_saturates() {
        let f = InFlight {
            ready: 10,
            origin: FillOrigin::Demand,
        };
        assert_eq!(f.remaining(4), 6);
        assert_eq!(f.remaining(11), 0);
    }

    #[test]
    fn cleanup_retains_future_fills() {
        let mut l = InFlightLedger::new();
        for i in 0..10 {
            l.insert(
                line(i),
                InFlight {
                    ready: i * 10,
                    origin: FillOrigin::Demand,
                },
            );
        }
        l.retire_older_than(50);
        assert_eq!(l.len(), 5);
        assert!(!l.contains(line(0)));
        assert!(l.contains(line(9)));
    }

    #[test]
    fn evict_drops_entry() {
        let mut l = InFlightLedger::new();
        l.insert(
            line(7),
            InFlight {
                ready: 5,
                origin: FillOrigin::Demand,
            },
        );
        l.evict(line(7));
        assert!(l.is_empty());
    }
}
