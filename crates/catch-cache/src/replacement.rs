//! Replacement policies for [`crate::CacheArray`].

use catch_trace::rng::SplitMix64;
use std::fmt::Debug;

/// Selects which policy a [`crate::CacheConfig`] instantiates.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum ReplKind {
    /// True least-recently-used; prefetches insert at MRU.
    #[default]
    Lru,
    /// LRU with LRU-insertion-policy for prefetches (a never-referenced
    /// prefetch is the next victim) — the pollution-averse alternative
    /// evaluated by the ablation benches.
    LruLip,
    /// Static re-reference interval prediction (2-bit SRRIP, Jaleel et al.).
    Srrip,
    /// Uniform random victim selection (deterministic seed).
    Random,
}

impl ReplKind {
    /// Instantiates the policy for an array of `sets × ways`.
    pub fn build(self, sets: usize, ways: usize) -> Box<dyn ReplacementPolicy> {
        match self {
            ReplKind::Lru => Box::new(Lru::new(sets, ways)),
            ReplKind::LruLip => Box::new(Lru::with_lip_prefetch(sets, ways)),
            ReplKind::Srrip => Box::new(Srrip::new(sets, ways)),
            ReplKind::Random => Box::new(RandomRepl::new(sets, ways, 0xCA7C4)),
        }
    }

    /// Instantiates the policy devirtualised, for the array hot path.
    pub fn build_any(self, sets: usize, ways: usize) -> AnyRepl {
        match self {
            ReplKind::Lru => AnyRepl::Lru(Lru::new(sets, ways)),
            ReplKind::LruLip => AnyRepl::Lru(Lru::with_lip_prefetch(sets, ways)),
            ReplKind::Srrip => AnyRepl::Srrip(Srrip::new(sets, ways)),
            ReplKind::Random => AnyRepl::Random(RandomRepl::new(sets, ways, 0xCA7C4)),
        }
    }
}

/// A replacement policy with the built-in kinds dispatched statically.
///
/// Every lookup/fill touches the policy, so the array stores this enum
/// instead of a `Box<dyn ReplacementPolicy>` — the common kinds cost a
/// jump table instead of a vtable load plus an indirect call. `Custom`
/// keeps the trait open for tests and out-of-tree policies.
#[derive(Debug)]
pub enum AnyRepl {
    /// True LRU (optionally with LIP prefetch insertion).
    Lru(Lru),
    /// 2-bit SRRIP.
    Srrip(Srrip),
    /// Deterministic random.
    Random(RandomRepl),
    /// Anything else, via the object-safe trait.
    Custom(Box<dyn ReplacementPolicy>),
}

impl AnyRepl {
    /// Called when `way` in `set` hits.
    pub fn on_hit(&mut self, set: usize, way: usize) {
        match self {
            AnyRepl::Lru(p) => p.on_hit(set, way),
            AnyRepl::Srrip(p) => p.on_hit(set, way),
            AnyRepl::Random(p) => p.on_hit(set, way),
            AnyRepl::Custom(p) => p.on_hit(set, way),
        }
    }

    /// Called when a line is filled into `way` of `set`.
    pub fn on_fill(&mut self, set: usize, way: usize, prefetched: bool) {
        match self {
            AnyRepl::Lru(p) => p.on_fill(set, way, prefetched),
            AnyRepl::Srrip(p) => p.on_fill(set, way, prefetched),
            AnyRepl::Random(p) => p.on_fill(set, way, prefetched),
            AnyRepl::Custom(p) => p.on_fill(set, way, prefetched),
        }
    }

    /// Chooses a victim way in a full `set`.
    pub fn victim(&mut self, set: usize) -> usize {
        match self {
            AnyRepl::Lru(p) => p.victim(set),
            AnyRepl::Srrip(p) => p.victim(set),
            AnyRepl::Random(p) => p.victim(set),
            AnyRepl::Custom(p) => p.victim(set),
        }
    }
}

/// Per-set replacement state machine.
///
/// The array resolves invalid ways itself; `victim` is only consulted when
/// the set is full. This trait is object-safe so arrays can hold policies
/// as trait objects.
pub trait ReplacementPolicy: Debug + Send {
    /// Called when `way` in `set` hits.
    fn on_hit(&mut self, set: usize, way: usize);
    /// Called when a line is filled into `way` of `set`.
    /// `prefetched` fills may be inserted at lower priority.
    fn on_fill(&mut self, set: usize, way: usize, prefetched: bool);
    /// Chooses a victim way in a full `set`.
    fn victim(&mut self, set: usize) -> usize;
}

/// True-LRU via monotonically increasing use stamps.
#[derive(Debug)]
pub struct Lru {
    ways: usize,
    stamps: Vec<u64>,
    tick: u64,
    lip_prefetch: bool,
}

impl Lru {
    /// Creates LRU state for `sets × ways`.
    pub fn new(sets: usize, ways: usize) -> Self {
        Lru {
            ways,
            stamps: vec![0; sets * ways],
            tick: 0,
            lip_prefetch: false,
        }
    }

    /// LRU that inserts prefetched fills at the LRU position, so an
    /// unused prefetch is the next victim.
    pub fn with_lip_prefetch(sets: usize, ways: usize) -> Self {
        Lru {
            lip_prefetch: true,
            ..Lru::new(sets, ways)
        }
    }

    fn touch(&mut self, set: usize, way: usize) {
        self.tick += 1;
        self.stamps[set * self.ways + way] = self.tick;
    }
}

impl ReplacementPolicy for Lru {
    fn on_hit(&mut self, set: usize, way: usize) {
        self.touch(set, way);
    }

    fn on_fill(&mut self, set: usize, way: usize, prefetched: bool) {
        if prefetched && self.lip_prefetch {
            // LIP: a never-referenced prefetch is the next victim.
            let base = set * self.ways;
            let min = (0..self.ways)
                .map(|w| self.stamps[base + w])
                .filter(|&s| s != 0)
                .min()
                .unwrap_or(1);
            self.stamps[base + way] = min.saturating_sub(1);
            return;
        }
        // Default: prefetches insert at MRU like demand fills. TACT's
        // pollution control is issuing *few* prefetches (critical PCs
        // only), and a prefetched line must survive until its first
        // demand use.
        self.touch(set, way);
    }

    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.ways;
        (0..self.ways)
            .min_by_key(|&w| self.stamps[base + w])
            .expect("cache sets have at least one way")
    }
}

/// 2-bit SRRIP (re-reference interval prediction).
#[derive(Debug)]
pub struct Srrip {
    ways: usize,
    rrpv: Vec<u8>,
}

const RRPV_MAX: u8 = 3;

impl Srrip {
    /// Creates SRRIP state for `sets × ways`.
    pub fn new(sets: usize, ways: usize) -> Self {
        Srrip {
            ways,
            rrpv: vec![RRPV_MAX; sets * ways],
        }
    }
}

impl ReplacementPolicy for Srrip {
    fn on_hit(&mut self, set: usize, way: usize) {
        self.rrpv[set * self.ways + way] = 0;
    }

    fn on_fill(&mut self, set: usize, way: usize, prefetched: bool) {
        // Long re-reference prediction on insertion; prefetches distant.
        self.rrpv[set * self.ways + way] = if prefetched { RRPV_MAX } else { RRPV_MAX - 1 };
    }

    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.ways;
        loop {
            if let Some(w) = (0..self.ways).find(|&w| self.rrpv[base + w] == RRPV_MAX) {
                return w;
            }
            for w in 0..self.ways {
                self.rrpv[base + w] += 1;
            }
        }
    }
}

/// Deterministic pseudo-random replacement.
#[derive(Debug)]
pub struct RandomRepl {
    ways: usize,
    rng: SplitMix64,
}

impl RandomRepl {
    /// Creates random-replacement state with the given seed.
    pub fn new(_sets: usize, ways: usize, seed: u64) -> Self {
        RandomRepl {
            ways,
            rng: SplitMix64::seed_from_u64(seed),
        }
    }
}

impl ReplacementPolicy for RandomRepl {
    fn on_hit(&mut self, _set: usize, _way: usize) {}

    fn on_fill(&mut self, _set: usize, _way: usize, _prefetched: bool) {}

    fn victim(&mut self, set: usize) -> usize {
        let _ = set;
        self.rng.gen_range(0..self.ways)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut lru = Lru::new(1, 4);
        for w in 0..4 {
            lru.on_fill(0, w, false);
        }
        lru.on_hit(0, 0); // way 0 most recent, way 1 oldest
        assert_eq!(lru.victim(0), 1);
        lru.on_hit(0, 1);
        assert_eq!(lru.victim(0), 2);
    }

    #[test]
    fn lru_prefetch_inserted_at_mru() {
        let mut lru = Lru::new(1, 4);
        for w in 0..3 {
            lru.on_fill(0, w, false);
        }
        lru.on_fill(0, 3, true); // prefetch: MRU insertion, survives
        assert_eq!(lru.victim(0), 0);
    }

    #[test]
    fn lip_variant_evicts_unused_prefetch_first() {
        let mut lru = Lru::with_lip_prefetch(1, 4);
        for w in 0..3 {
            lru.on_fill(0, w, false);
        }
        lru.on_fill(0, 3, true); // prefetch: LRU insertion
        assert_eq!(lru.victim(0), 3);
        // A demand hit rescues it.
        lru.on_hit(0, 3);
        assert_eq!(lru.victim(0), 0);
    }

    #[test]
    fn srrip_hit_promotes() {
        let mut s = Srrip::new(1, 2);
        s.on_fill(0, 0, false);
        s.on_fill(0, 1, false);
        s.on_hit(0, 0);
        // way 1 ages to max first
        assert_eq!(s.victim(0), 1);
    }

    #[test]
    fn srrip_victim_terminates_when_all_promoted() {
        let mut s = Srrip::new(1, 4);
        for w in 0..4 {
            s.on_fill(0, w, false);
            s.on_hit(0, w);
        }
        let v = s.victim(0);
        assert!(v < 4);
    }

    #[test]
    fn random_is_in_range_and_deterministic() {
        let mut a = RandomRepl::new(4, 8, 42);
        let mut b = RandomRepl::new(4, 8, 42);
        for _ in 0..100 {
            let (va, vb) = (a.victim(0), b.victim(0));
            assert_eq!(va, vb);
            assert!(va < 8);
        }
    }

    #[test]
    fn kind_builds_each_policy() {
        for kind in [ReplKind::Lru, ReplKind::Srrip, ReplKind::Random] {
            let mut p = kind.build(2, 4);
            p.on_fill(1, 0, false);
            assert!(p.victim(1) < 4);
        }
    }

    #[test]
    fn any_repl_matches_boxed_policy() {
        let mut devirt = ReplKind::Lru.build_any(1, 4);
        let mut boxed = ReplKind::Lru.build(1, 4);
        for w in 0..4 {
            devirt.on_fill(0, w, false);
            boxed.on_fill(0, w, false);
        }
        devirt.on_hit(0, 0);
        boxed.on_hit(0, 0);
        assert_eq!(devirt.victim(0), boxed.victim(0));
    }

    #[test]
    fn any_repl_custom_keeps_trait_open() {
        #[derive(Debug)]
        struct AlwaysZero;
        impl ReplacementPolicy for AlwaysZero {
            fn on_hit(&mut self, _: usize, _: usize) {}
            fn on_fill(&mut self, _: usize, _: usize, _: bool) {}
            fn victim(&mut self, _: usize) -> usize {
                0
            }
        }
        let mut p = AnyRepl::Custom(Box::new(AlwaysZero));
        p.on_fill(0, 3, true);
        assert_eq!(p.victim(0), 0);
    }
}
