//! Structural invariants of the three hierarchy organisations under
//! random access sequences.

use catch_cache::{
    AccessKind, CacheConfig, CacheHierarchy, FixedLatencyBackend, HierarchyConfig, HierarchyKind,
    Level,
};
use catch_trace::LineAddr;
use proptest::prelude::*;

/// A tiny hierarchy so invariants are stressed quickly: 4-set L1s, small
/// L2 and LLC.
fn tiny(kind: HierarchyKind, cores: usize) -> HierarchyConfig {
    HierarchyConfig {
        kind,
        cores,
        l1i: CacheConfig::new("L1I", 16 * 64, 4, 2).expect("valid"),
        l1d: CacheConfig::new("L1D", 16 * 64, 4, 2).expect("valid"),
        l2: CacheConfig::new("L2", 64 * 64, 8, 6).expect("valid"),
        llc: CacheConfig::new("LLC", 256 * 64, 8, 12).expect("valid"),
        ring: None,
    }
}

#[derive(Clone, Debug)]
struct Op {
    core: u8,
    line: u64,
    kind: u8,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0u8..2, 0u64..512, 0u8..4).prop_map(|(core, line, kind)| Op { core, line, kind }),
        1..300,
    )
}

fn kind_of(k: u8) -> AccessKind {
    match k {
        0 => AccessKind::Load,
        1 => AccessKind::Store,
        2 => AccessKind::Code,
        _ => AccessKind::L2Prefetch,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Latency is always at least the L1 latency and at most
    /// LLC + memory + slack; levels map to sane latencies.
    #[test]
    fn latency_bounds_hold(ops in ops()) {
        for kind in [
            HierarchyKind::ThreeLevelExclusive,
            HierarchyKind::ThreeLevelInclusive,
            HierarchyKind::TwoLevelNoL2,
        ] {
            let mut h = CacheHierarchy::new(&tiny(kind, 2), Box::new(FixedLatencyBackend::new(50)));
            let mut cycle = 0;
            for op in &ops {
                let out = h.access(op.core as usize, kind_of(op.kind), LineAddr::new(op.line), cycle);
                cycle += 7;
                if kind_of(op.kind).is_demand() {
                    prop_assert!(out.latency >= 2, "demand below L1 latency");
                }
                prop_assert!(out.latency <= 12 + 50 + 50, "latency {} too large", out.latency);
                if out.hit_level == Level::Memory && !out.merged_in_flight {
                    prop_assert!(out.latency >= 50, "memory hit too fast: {}", out.latency);
                }
            }
        }
    }

    /// Inclusive LLC: any line resident in a private cache is also in the
    /// LLC (checked via probe_level, which searches inward-out).
    #[test]
    fn inclusive_property(ops in ops()) {
        let mut h = CacheHierarchy::new(
            &tiny(HierarchyKind::ThreeLevelInclusive, 2),
            Box::new(FixedLatencyBackend::new(50)),
        );
        let mut cycle = 0;
        let mut touched: Vec<(usize, bool, u64)> = Vec::new();
        for op in &ops {
            let kind = kind_of(op.kind);
            h.access(op.core as usize, kind, LineAddr::new(op.line), cycle);
            cycle += 7;
            if kind.is_demand() {
                touched.push((op.core as usize, kind.is_code(), op.line));
            }
        }
        // probe_level returns the innermost level holding the line; if it
        // says L1 or L2, an inclusive LLC must also hold the line — we
        // verify by checking that demand re-access at the LLC level is
        // never *worse* than memory for lines probe says are on-die.
        for (core, code, line) in touched {
            let level = h.probe_level(core, code, LineAddr::new(line));
            if level == Level::L1 || level == Level::L2 {
                // An inclusive hierarchy must also have it in the LLC.
                let other_core = 1 - core;
                let other = h.probe_level(other_core, code, LineAddr::new(line));
                prop_assert!(
                    other <= Level::Llc,
                    "line {line:#x} in core {core}'s {level} but not in the shared LLC"
                );
            }
        }
    }

    /// All organisations: a demand access immediately followed by another
    /// demand access from the same core hits the L1.
    #[test]
    fn reaccess_hits_l1(ops in ops()) {
        for kind in [
            HierarchyKind::ThreeLevelExclusive,
            HierarchyKind::TwoLevelNoL2,
        ] {
            let mut h = CacheHierarchy::new(&tiny(kind, 2), Box::new(FixedLatencyBackend::new(50)));
            let mut cycle = 0;
            for op in &ops {
                let k = kind_of(op.kind);
                if !k.is_demand() {
                    continue;
                }
                let first = h.access(op.core as usize, k, LineAddr::new(op.line), cycle);
                let second = h.access(
                    op.core as usize,
                    k,
                    LineAddr::new(op.line),
                    first.ready_at(cycle) + 1,
                );
                prop_assert_eq!(second.hit_level, Level::L1);
                cycle = first.ready_at(cycle) + 2;
            }
        }
    }

    /// Statistics are internally consistent: hits + misses = accesses at
    /// every level, and hit rate is within [0, 1].
    #[test]
    fn stats_are_consistent(ops in ops()) {
        let mut h = CacheHierarchy::new(
            &tiny(HierarchyKind::ThreeLevelExclusive, 2),
            Box::new(FixedLatencyBackend::new(50)),
        );
        let mut cycle = 0;
        for op in &ops {
            h.access(op.core as usize, kind_of(op.kind), LineAddr::new(op.line), cycle);
            cycle += 3;
        }
        let stats = h.stats();
        for s in stats
            .l1i
            .iter()
            .chain(stats.l1d.iter())
            .chain(stats.l2.iter())
            .chain([&stats.llc])
        {
            prop_assert_eq!(s.hits + s.misses, s.accesses);
            prop_assert!((0.0..=1.0).contains(&s.hit_rate()));
            prop_assert!(s.dirty_evictions <= s.evictions);
        }
    }
}
