//! Structural invariants of the three hierarchy organisations under
//! random access sequences, plus targeted exclusivity/inclusion checks.
//!
//! Properties run on the in-repo deterministic case driver
//! ([`catch_trace::rng::Cases`]); a failing case prints the seed that
//! reproduces it.

use catch_cache::{
    AccessKind, CacheConfig, CacheHierarchy, FixedLatencyBackend, HierarchyConfig, HierarchyKind,
    Level,
};
use catch_trace::rng::{Cases, SplitMix64};
use catch_trace::LineAddr;

/// A tiny hierarchy so invariants are stressed quickly: 4-set L1s, small
/// L2 and LLC.
fn tiny(kind: HierarchyKind, cores: usize) -> HierarchyConfig {
    HierarchyConfig {
        kind,
        cores,
        l1i: CacheConfig::new("L1I", 16 * 64, 4, 2).expect("valid"),
        l1d: CacheConfig::new("L1D", 16 * 64, 4, 2).expect("valid"),
        l2: CacheConfig::new("L2", 64 * 64, 8, 6).expect("valid"),
        llc: CacheConfig::new("LLC", 256 * 64, 8, 12).expect("valid"),
        ring: None,
    }
}

#[derive(Clone, Debug)]
struct Op {
    core: u8,
    line: u64,
    kind: u8,
}

fn gen_ops(rng: &mut SplitMix64) -> Vec<Op> {
    let n = rng.gen_range(1usize..300);
    (0..n)
        .map(|_| Op {
            core: rng.gen_range(0u64..2) as u8,
            line: rng.gen_range(0u64..512),
            kind: rng.gen_range(0u64..4) as u8,
        })
        .collect()
}

fn kind_of(k: u8) -> AccessKind {
    match k {
        0 => AccessKind::Load,
        1 => AccessKind::Store,
        2 => AccessKind::Code,
        _ => AccessKind::L2Prefetch,
    }
}

/// Latency is always at least the L1 latency and at most
/// LLC + memory + slack; levels map to sane latencies.
#[test]
fn latency_bounds_hold() {
    Cases::new(128).run(|rng| {
        let ops = gen_ops(rng);
        for kind in [
            HierarchyKind::ThreeLevelExclusive,
            HierarchyKind::ThreeLevelInclusive,
            HierarchyKind::TwoLevelNoL2,
        ] {
            let mut h = CacheHierarchy::new(&tiny(kind, 2), Box::new(FixedLatencyBackend::new(50)));
            let mut cycle = 0;
            for op in &ops {
                let out = h.access(
                    op.core as usize,
                    kind_of(op.kind),
                    LineAddr::new(op.line),
                    cycle,
                );
                cycle += 7;
                if kind_of(op.kind).is_demand() {
                    assert!(out.latency >= 2, "demand below L1 latency");
                }
                assert!(
                    out.latency <= 12 + 50 + 50,
                    "latency {} too large",
                    out.latency
                );
                if out.hit_level == Level::Memory && !out.merged_in_flight {
                    assert!(out.latency >= 50, "memory hit too fast: {}", out.latency);
                }
            }
        }
    });
}

/// Inclusive LLC: any line resident in a private cache is also in the
/// LLC (checked via probe_level, which searches inward-out).
#[test]
fn inclusive_property() {
    Cases::new(128).run(|rng| {
        let ops = gen_ops(rng);
        let mut h = CacheHierarchy::new(
            &tiny(HierarchyKind::ThreeLevelInclusive, 2),
            Box::new(FixedLatencyBackend::new(50)),
        );
        let mut cycle = 0;
        let mut touched: Vec<(usize, bool, u64)> = Vec::new();
        for op in &ops {
            let kind = kind_of(op.kind);
            h.access(op.core as usize, kind, LineAddr::new(op.line), cycle);
            cycle += 7;
            if kind.is_demand() {
                touched.push((op.core as usize, kind.is_code(), op.line));
            }
        }
        // probe_level returns the innermost level holding the line; if it
        // says L1 or L2, an inclusive LLC must also hold the line — we
        // verify by checking that demand re-access at the LLC level is
        // never *worse* than memory for lines probe says are on-die.
        for (core, code, line) in touched {
            let level = h.probe_level(core, code, LineAddr::new(line));
            if level == Level::L1 || level == Level::L2 {
                // An inclusive hierarchy must also have it in the LLC.
                let other_core = 1 - core;
                let other = h.probe_level(other_core, code, LineAddr::new(line));
                assert!(
                    other <= Level::Llc,
                    "line {line:#x} in core {core}'s {level} but not in the shared LLC"
                );
            }
        }
    });
}

/// All organisations: a demand access immediately followed by another
/// demand access from the same core hits the L1.
#[test]
fn reaccess_hits_l1() {
    Cases::new(128).run(|rng| {
        let ops = gen_ops(rng);
        for kind in [
            HierarchyKind::ThreeLevelExclusive,
            HierarchyKind::TwoLevelNoL2,
        ] {
            let mut h = CacheHierarchy::new(&tiny(kind, 2), Box::new(FixedLatencyBackend::new(50)));
            let mut cycle = 0;
            for op in &ops {
                let k = kind_of(op.kind);
                if !k.is_demand() {
                    continue;
                }
                let first = h.access(op.core as usize, k, LineAddr::new(op.line), cycle);
                let second = h.access(
                    op.core as usize,
                    k,
                    LineAddr::new(op.line),
                    first.ready_at(cycle) + 1,
                );
                assert_eq!(second.hit_level, Level::L1);
                cycle = first.ready_at(cycle) + 2;
            }
        }
    });
}

/// Statistics are internally consistent: hits + misses = accesses at
/// every level, and hit rate is within [0, 1].
#[test]
fn stats_are_consistent() {
    Cases::new(128).run(|rng| {
        let ops = gen_ops(rng);
        let mut h = CacheHierarchy::new(
            &tiny(HierarchyKind::ThreeLevelExclusive, 2),
            Box::new(FixedLatencyBackend::new(50)),
        );
        let mut cycle = 0;
        for op in &ops {
            h.access(
                op.core as usize,
                kind_of(op.kind),
                LineAddr::new(op.line),
                cycle,
            );
            cycle += 3;
        }
        let stats = h.stats();
        for s in stats
            .l1i
            .iter()
            .chain(stats.l1d.iter())
            .chain(stats.l2.iter())
            .chain([&stats.llc])
        {
            assert_eq!(s.hits + s.misses, s.accesses);
            assert!((0.0..=1.0).contains(&s.hit_rate()));
            assert!(s.dirty_evictions <= s.evictions);
        }
    });
}

/// Exclusive single-core hierarchy: a line is never simultaneously
/// resident in the L2 and the (exclusive) LLC, whatever the access mix —
/// an LLC hit migrates the line inward and an L2 victim is the only way
/// into the LLC.
#[test]
fn exclusive_line_never_duplicated_between_l2_and_llc() {
    Cases::new(128).run(|rng| {
        let ops = gen_ops(rng);
        let mut h = CacheHierarchy::new(
            &tiny(HierarchyKind::ThreeLevelExclusive, 1),
            Box::new(FixedLatencyBackend::new(50)),
        );
        let mut cycle = 0;
        for op in &ops {
            h.access(0, kind_of(op.kind), LineAddr::new(op.line), cycle);
            cycle += 7;
            // Check the invariant for every line the run has touched so
            // far (cheap at this scale, and catches transient duplicates
            // the final state would miss).
            let levels = h.resident_levels(0, kind_of(op.kind).is_code(), LineAddr::new(op.line));
            assert!(
                !(levels.contains(&Level::L2) && levels.contains(&Level::Llc)),
                "line {:#x} duplicated across exclusive L2 and LLC: {levels:?}",
                op.line
            );
        }
        // Sweep the full line space at the end as well.
        for line in 0..512u64 {
            let levels = h.resident_levels(0, false, LineAddr::new(line));
            assert!(
                !(levels.contains(&Level::L2) && levels.contains(&Level::Llc)),
                "line {line:#x} duplicated at end of run: {levels:?}"
            );
        }
    });
}

/// Exclusive migration, step by step: an LLC hit moves the line out of
/// the LLC and into the L2 (victim-cache behaviour), and an L2 victim
/// re-enters the LLC.
#[test]
fn exclusive_llc_hit_migrates_line_inward() {
    let mut h = CacheHierarchy::new(
        &tiny(HierarchyKind::ThreeLevelExclusive, 1),
        Box::new(FixedLatencyBackend::new(50)),
    );
    let line = LineAddr::new(7);
    // Miss to memory: fills L1 + L2, not the exclusive LLC.
    h.access(0, AccessKind::Load, line, 0);
    assert_eq!(
        h.resident_levels(0, false, line),
        vec![Level::L1, Level::L2]
    );

    // Evict it from both L1 (4 sets × 4 ways) and L2 (8 sets × 8 ways) by
    // streaming conflicting lines; its L2 eviction must allocate it into
    // the LLC. Skip `i` multiples of 4 so the conflicting lines (and their
    // own L2 victims) map to LLC sets 15/23/31 — never to line 7's LLC
    // set 7 — keeping the migrated copy resident there.
    let mut cycle = 1_000;
    for i in (1..250u64).filter(|i| i % 4 != 0) {
        h.access(0, AccessKind::Load, LineAddr::new(i * 8 + 7), cycle);
        cycle += 200;
    }
    let levels = h.resident_levels(0, false, line);
    assert_eq!(
        levels,
        vec![Level::Llc],
        "an evicted L2 line must live exactly in the exclusive LLC"
    );

    // Re-access: LLC hit migrates the line inward, leaving no LLC copy.
    let out = h.access(0, AccessKind::Load, line, cycle);
    assert_eq!(out.hit_level, Level::Llc);
    let levels = h.resident_levels(0, false, line);
    assert!(levels.contains(&Level::L1) && levels.contains(&Level::L2));
    assert!(
        !levels.contains(&Level::Llc),
        "LLC hit must invalidate the exclusive LLC copy (got {levels:?})"
    );
}

/// Inclusive back-invalidation, step by step: when the inclusive LLC
/// evicts a line, every upper-level copy is invalidated with it.
#[test]
fn inclusive_victim_back_invalidates_upper_copies() {
    let mut h = CacheHierarchy::new(
        &tiny(HierarchyKind::ThreeLevelInclusive, 2),
        Box::new(FixedLatencyBackend::new(50)),
    );
    let line = LineAddr::new(3);
    // Both cores pull the line into their private caches; the inclusive
    // LLC holds the backing copy.
    h.access(0, AccessKind::Load, line, 0);
    h.access(1, AccessKind::Load, line, 300);
    assert!(h.resident_levels(0, false, line).contains(&Level::Llc));
    assert!(h.resident_levels(0, false, line).contains(&Level::L1));
    assert!(h.resident_levels(1, false, line).contains(&Level::L1));

    // Force the line out of the 256-set... (256 lines / 8 ways = 32 sets)
    // LLC by streaming conflicting lines from core 0. The victim sweep
    // must remove every private copy too (inclusion), counted as
    // back-invalidates.
    let mut cycle = 1_000;
    for i in 1..2_000u64 {
        h.access(0, AccessKind::Load, LineAddr::new(i * 32 + 3), cycle);
        cycle += 200;
    }
    for core in 0..2 {
        let levels = h.resident_levels(core, false, line);
        assert!(
            levels.is_empty(),
            "core {core} still holds back-invalidated line: {levels:?}"
        );
    }
    let stats = h.stats();
    assert!(
        stats.traffic.back_invalidates > 0,
        "LLC evictions under inclusion must back-invalidate"
    );
    assert!(stats.llc.evictions > 0);
}

/// Random-walk inclusion under a load/code-only mix (no dirty victims):
/// every private copy is strictly backed by the inclusive LLC at all
/// times.
#[test]
fn inclusive_copies_always_backed_by_llc() {
    Cases::new(96).run(|rng| {
        let n = rng.gen_range(1usize..250);
        let mut h = CacheHierarchy::new(
            &tiny(HierarchyKind::ThreeLevelInclusive, 2),
            Box::new(FixedLatencyBackend::new(50)),
        );
        let mut cycle = 0;
        for _ in 0..n {
            let core = rng.gen_range(0usize..2);
            let line = rng.gen_range(0u64..512);
            let kind = if rng.gen_bool(0.2) {
                AccessKind::Code
            } else {
                AccessKind::Load
            };
            h.access(core, kind, LineAddr::new(line), cycle);
            cycle += 7;
            for code in [false, true] {
                for c in 0..2 {
                    let levels = h.resident_levels(c, code, LineAddr::new(line));
                    if levels.contains(&Level::L1) || levels.contains(&Level::L2) {
                        assert!(
                            levels.contains(&Level::Llc),
                            "core {c} holds {line:#x} ({levels:?}) without LLC backing"
                        );
                    }
                }
            }
        }
    });
}
