//! Reusable trace-generation kernels.
//!
//! Each kernel emits a handful of micro-ops into a [`TraceBuilder`] and
//! maintains its own cursor state, so workload generators can interleave
//! several kernels inside one loop body (reusing the same PCs across
//! iterations, as real loop code does).

use catch_trace::rng::SplitMix64;
use catch_trace::{Addr, ArchReg, Pc, TraceBuilder, LINE_BYTES};

/// A line-aligned data region, disjoint from other regions by id.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Region {
    base: u64,
    lines: u64,
}

impl Region {
    /// Creates region `id` spanning `bytes` (rounded up to lines).
    /// Region ids are spaced 4 GiB apart, so regions never overlap.
    pub fn new(id: u64, bytes: u64) -> Self {
        Region {
            base: (id + 1) << 32,
            lines: bytes.div_ceil(LINE_BYTES).max(1),
        }
    }

    /// First byte of the region.
    pub fn base(&self) -> Addr {
        Addr::new(self.base)
    }

    /// Capacity in cache lines.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Capacity in bytes.
    pub fn bytes(&self) -> u64 {
        self.lines * LINE_BYTES
    }

    /// Address of line `i` (wrapping within the region).
    pub fn line_addr(&self, i: u64) -> Addr {
        Addr::new(self.base + (i % self.lines) * LINE_BYTES)
    }

    /// A uniformly random line address.
    pub fn rand_line(&self, rng: &mut SplitMix64) -> Addr {
        self.line_addr(rng.gen_range(0..self.lines))
    }
}

/// A permuted pointer ring over a region: each line holds the address of
/// the next, forming a single cycle. Chasing it produces dependent loads
/// with no address pattern — the criticality workhorse.
#[derive(Debug)]
pub struct PtrRing {
    addrs: Vec<u64>,
    pos: usize,
}

impl PtrRing {
    /// Builds a ring over `count` lines of `region`, shuffled with `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn new(region: Region, count: u64, rng: &mut SplitMix64) -> Self {
        assert!(count > 0, "ring needs at least one node");
        let count = count.min(region.lines());
        let mut addrs: Vec<u64> = (0..count).map(|i| region.line_addr(i).get()).collect();
        // Fisher-Yates.
        for i in (1..addrs.len()).rev() {
            let j = rng.gen_range(0..=i);
            addrs.swap(i, j);
        }
        PtrRing { addrs, pos: 0 }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// True if the ring has no nodes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Returns `(current address, value stored there = next address)` and
    /// steps the ring forward.
    pub fn advance(&mut self) -> (Addr, u64) {
        let cur = self.addrs[self.pos];
        self.pos = (self.pos + 1) % self.addrs.len();
        (Addr::new(cur), self.addrs[self.pos])
    }
}

/// Emits `steps` dependent pointer-chase loads through `ring` into `reg`.
/// Each load's address register is `reg` itself, so the chain serialises.
pub fn emit_chase(b: &mut TraceBuilder, ring: &mut PtrRing, reg: ArchReg, steps: usize) {
    for _ in 0..steps {
        let (addr, value) = ring.advance();
        b.load_dep(reg, addr, value, &[reg]);
    }
}

/// Sequential-index gather state: a strided index array whose elements
/// select lines of a data region (`addr = data.base + 8 × index`,
/// learnable by TACT-Feeder with scale 8).
#[derive(Debug)]
pub struct IndexedGather {
    idx_region: Region,
    data_region: Region,
    cursor: u64,
    indices: Vec<u64>,
}

impl IndexedGather {
    /// Builds the gather over pre-randomised indices covering
    /// `data_region`.
    pub fn new(idx_region: Region, data_region: Region, rng: &mut SplitMix64) -> Self {
        let n = (idx_region.bytes() / 8).clamp(16, 1 << 16);
        Self::with_count(idx_region, data_region, n as usize, rng)
    }

    /// Builds the gather with an explicit index count. The index array
    /// cycles after `count` entries, so `count` controls the *reuse
    /// distance* (and hence which cache level the gathered working set
    /// settles into), independently of `data_region`'s size.
    pub fn with_count(
        idx_region: Region,
        data_region: Region,
        count: usize,
        rng: &mut SplitMix64,
    ) -> Self {
        let count = count.max(16) as u64;
        let data_lines = data_region.lines();
        let indices = (0..count)
            .map(|_| rng.gen_range(0..data_lines) * (LINE_BYTES / 8))
            .collect();
        IndexedGather {
            idx_region,
            data_region,
            cursor: 0,
            indices,
        }
    }

    /// Emits one index load (strided, feeder/trigger) and the dependent
    /// gather load (the critical target); two loads and one consumer ALU.
    /// Returns the gather address so callers can attach payload-field
    /// reads at stable offsets (Cross-prefetchable).
    pub fn emit(&mut self, b: &mut TraceBuilder, idx_reg: ArchReg, data_reg: ArchReg) -> Addr {
        let k = self.cursor;
        self.cursor += 1;
        // The index array itself spans `count × 8` bytes (cycling with the
        // indices), so its footprint matches the reuse distance.
        let idx_span = (self.indices.len() as u64 * 8).min(self.idx_region.bytes());
        let idx_addr = Addr::new(self.idx_region.base().get() + (k * 8) % idx_span);
        let index = self.indices[(k as usize) % self.indices.len()];
        b.load(idx_reg, idx_addr, index);
        let gather_addr = Addr::new(self.data_region.base().get() + index * 8);
        b.load_dep(data_reg, gather_addr, 0, &[idx_reg]);
        b.alu(data_reg, &[data_reg]);
        gather_addr
    }
}

/// Emits a struct-field walk: given a pointer value in `ptr_reg`
/// (caller-emitted load), loads fields at stable offsets — Cross-friendly
/// (stable deltas) and Feeder-friendly (`addr = ptr + offset`).
pub fn emit_struct_fields(
    b: &mut TraceBuilder,
    ptr_reg: ArchReg,
    node_addr: Addr,
    field_regs: &[ArchReg],
    offsets: &[i64],
) {
    for (reg, &off) in field_regs.iter().zip(offsets) {
        b.load_dep(*reg, node_addr.offset(off), 0, &[ptr_reg]);
    }
}

/// Streaming-load state over a region.
#[derive(Debug)]
pub struct Stream {
    region: Region,
    cursor: u64,
    stride: u64,
}

impl Stream {
    /// A stream over `region` advancing `stride` bytes per element.
    pub fn new(region: Region, stride: u64) -> Self {
        Stream {
            region,
            cursor: 0,
            stride: stride.max(1),
        }
    }

    /// Emits `unroll` streaming loads into `reg`.
    pub fn emit(&mut self, b: &mut TraceBuilder, reg: ArchReg, unroll: usize) {
        for _ in 0..unroll {
            let addr = Addr::new(self.region.base().get() + self.cursor % self.region.bytes());
            self.cursor += self.stride;
            b.load(reg, addr, 0);
        }
    }

    /// Emits a streaming store.
    pub fn emit_store(&mut self, b: &mut TraceBuilder, src: ArchReg) {
        let addr = Addr::new(self.region.base().get() + self.cursor % self.region.bytes());
        self.cursor += self.stride;
        b.store(addr, &[src]);
    }
}

/// A small always-cache-resident working set (stack/locals analogue).
///
/// Real programs serve ~85% of loads from the L1 (paper Section III-B);
/// most of those sit on short dependence chains (locals, object headers,
/// small tables). `Locals` emits chains of dependent loads inside an 8 KB
/// region, which is what makes the L1 the most latency-sensitive level
/// (Figure 3) and makes "demote all L1 hits" catastrophic (Figure 4).
#[derive(Debug)]
pub struct Locals {
    region: Region,
    cursor: u64,
}

impl Locals {
    /// Creates the locals region with the given region id (keep distinct
    /// from the workload's data regions).
    pub fn new(region_id: u64) -> Self {
        Locals {
            region: Region::new(region_id, 8 << 10),
            cursor: 1,
        }
    }

    /// Emits a chain of `n` dependent loads: the first depends on `src`,
    /// each subsequent one on the previous, all landing in `tmp`.
    pub fn emit_chain(&mut self, b: &mut TraceBuilder, src: ArchReg, tmp: ArchReg, n: usize) {
        let mut dep = src;
        for _ in 0..n {
            self.cursor = self
                .cursor
                .wrapping_mul(6364136223846793005)
                .wrapping_add(13);
            let offset = (self.cursor % self.region.bytes()) & !7;
            let addr = Addr::new(self.region.base().get() + offset);
            b.load_dep(tmp, addr, 0, &[dep]);
            dep = tmp;
        }
    }
}

/// Emits a dependent FP chain of `len` ops accumulating into `acc`.
pub fn emit_fp_chain(b: &mut TraceBuilder, acc: ArchReg, operand: ArchReg, len: usize) {
    for i in 0..len {
        if i % 2 == 0 {
            b.fadd(acc, &[acc, operand]);
        } else {
            b.fmul(acc, &[acc, operand]);
        }
    }
}

/// Emits `n` independent integer ops across `regs` (ILP filler).
pub fn emit_int_work(b: &mut TraceBuilder, regs: &[ArchReg], n: usize) {
    for i in 0..n {
        let r = regs[i % regs.len()];
        b.alu(r, &[r]);
    }
}

/// Emits a conditional branch taken with probability `taken_bias`
/// (deterministic given `rng`). The branch is data-dependent on `src`.
/// Biases near 0 or 1 are predictable; near 0.5 they mispredict often.
pub fn emit_branch(b: &mut TraceBuilder, rng: &mut SplitMix64, src: ArchReg, taken_bias: f64) {
    let taken = rng.gen_bool(taken_bias.clamp(0.0, 1.0));
    let target = b.cursor().advance(16);
    b.cond_branch(taken, target, &[src]);
}

/// Allocates `count` code-block entry points spread over `code_bytes` of
/// PC space starting at `base` — used by server-like workloads to create
/// large instruction footprints.
pub fn code_blocks(base: Pc, count: usize, code_bytes: u64) -> Vec<Pc> {
    let spacing = (code_bytes / count.max(1) as u64).max(64);
    (0..count as u64)
        .map(|i| Pc::new(base.get() + i * spacing))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use catch_trace::OpClass;

    fn rng() -> SplitMix64 {
        SplitMix64::seed_from_u64(7)
    }

    #[test]
    fn regions_do_not_overlap() {
        let a = Region::new(0, 1 << 20);
        let c = Region::new(1, 1 << 20);
        assert!(a.line_addr(a.lines() - 1).get() < c.base().get());
    }

    #[test]
    fn ring_is_a_single_cycle() {
        let mut r = rng();
        let region = Region::new(0, 64 * 100);
        let mut ring = PtrRing::new(region, 100, &mut r);
        let n = ring.len();
        let (start, _) = ring.advance();
        let mut seen = vec![start];
        for _ in 1..n {
            let (addr, _) = ring.advance();
            assert!(!seen.contains(&addr), "ring revisited {addr}");
            seen.push(addr);
        }
        let (wrap, _) = ring.advance();
        assert_eq!(wrap, start);
    }

    #[test]
    fn ring_values_point_to_next_node() {
        let mut r = rng();
        let mut ring = PtrRing::new(Region::new(0, 64 * 10), 10, &mut r);
        let (_, value) = ring.advance();
        let (next_addr, _) = ring.advance();
        // We consumed one extra step; rewind logic: value of node i is the
        // address of node i+1.
        assert_eq!(value, next_addr.get());
    }

    #[test]
    fn chase_emits_dependent_loads() {
        let mut b = TraceBuilder::new("t");
        let mut r = rng();
        let mut ring = PtrRing::new(Region::new(0, 64 * 16), 16, &mut r);
        let reg = ArchReg::new(1);
        emit_chase(&mut b, &mut ring, reg, 5);
        let t = b.build();
        assert_eq!(t.len(), 5);
        for op in t.ops() {
            assert_eq!(op.class, OpClass::Load);
            assert!(op.reads(reg));
        }
    }

    #[test]
    fn gather_addresses_follow_scale8_relation() {
        let mut b = TraceBuilder::new("t");
        let mut r = rng();
        let idx = Region::new(0, 1 << 16);
        let data = Region::new(1, 1 << 20);
        let mut g = IndexedGather::new(idx, data, &mut r);
        g.emit(&mut b, ArchReg::new(1), ArchReg::new(2));
        let t = b.build();
        let idx_op = &t.ops()[0];
        let gather_op = &t.ops()[1];
        let expected = data.base().get() + idx_op.load_value * 8;
        assert_eq!(gather_op.mem.unwrap().addr.get(), expected);
        assert!(gather_op.reads(ArchReg::new(1)));
    }

    #[test]
    fn stream_wraps_in_region() {
        let region = Region::new(0, 256); // 4 lines
        let mut s = Stream::new(region, 64);
        let mut b = TraceBuilder::new("t");
        s.emit(&mut b, ArchReg::new(1), 6);
        let t = b.build();
        assert_eq!(
            t.ops()[0].mem.unwrap().addr,
            t.ops()[4].mem.unwrap().addr,
            "stream wraps after 4 lines"
        );
    }

    #[test]
    fn code_blocks_span_requested_footprint() {
        let blocks = code_blocks(Pc::new(0x40_0000), 64, 512 << 10);
        assert_eq!(blocks.len(), 64);
        let span = blocks.last().unwrap().get() - blocks[0].get();
        assert!(span > 400 << 10);
    }

    #[test]
    fn struct_fields_have_stable_offsets() {
        let mut b = TraceBuilder::new("t");
        let regs = [ArchReg::new(3), ArchReg::new(4)];
        emit_struct_fields(
            &mut b,
            ArchReg::new(1),
            Addr::new(0x10000),
            &regs,
            &[8, 256],
        );
        let t = b.build();
        assert_eq!(t.ops()[0].mem.unwrap().addr.get(), 0x10008);
        assert_eq!(t.ops()[1].mem.unwrap().addr.get(), 0x10100);
    }
}
