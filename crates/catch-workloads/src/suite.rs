//! The named workload suite (Table II analogue).
//!
//! Twenty workloads across the paper's five categories. Each reproduces a
//! *behaviour class* from the paper's analysis rather than a specific
//! binary:
//!
//! | class | representative | behaviour |
//! |---|---|---|
//! | memory gather | `mcf_like`, `spmv_like` | strided index feeding a huge gather (Feeder-recoverable memory/LLC misses) |
//! | L2-resident chase | `astar_like`, `specjbb_like` | serial pointer chases sized for the L2/LLC (criticality, mostly unrecoverable) |
//! | field walk | `xalanc_like`, `oracle_like` | pointer plus fields at stable offsets (Cross-recoverable) |
//! | strided FP | `milc_like`, `stencil_like`, `facedet_like` | long strided runs feeding FP chains and branches (Deep-Self) |
//! | streaming | `lbm_like`, `hadoop_like` | bandwidth streams (baseline stream prefetcher) |
//! | big code | `tpcc_like`, `oracle_like`, ... | instruction footprints ≫ L1I (code runahead) |
//! | PC-rich | `povray_like` | more critical PCs than the 32-entry table holds |

use crate::kernels::{
    code_blocks, emit_branch, emit_fp_chain, emit_int_work, emit_struct_fields, IndexedGather,
    Locals, PtrRing, Region, Stream,
};
use catch_trace::rng::SplitMix64;
use catch_trace::{ArchReg, Category, Pc, Trace, TraceBuilder};
use std::fmt;

/// Error returned for unknown workload names.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkloadsError {
    name: String,
}

impl fmt::Display for WorkloadsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown workload '{}'", self.name)
    }
}

impl std::error::Error for WorkloadsError {}

/// A named trace generator.
#[derive(Copy, Clone)]
pub struct WorkloadSpec {
    /// Workload name (e.g. `"mcf_like"`).
    pub name: &'static str,
    /// Category for per-category reporting.
    pub category: Category,
    /// Trace-length multiplier: workloads with multi-megabyte reuse sets
    /// need proportionally longer windows to reach steady state (the
    /// paper runs 100 M instructions; we scale down non-uniformly).
    pub ops_scale: usize,
    generate: fn(usize, u64) -> Trace,
}

impl WorkloadSpec {
    /// Generates a trace of at least `ops × ops_scale` micro-ops with the
    /// given seed.
    pub fn generate(&self, ops: usize, seed: u64) -> Trace {
        (self.generate)(ops * self.ops_scale, seed)
    }
}

impl fmt::Debug for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WorkloadSpec({} [{}])", self.name, self.category)
    }
}

/// All workloads in the suite, grouped by category.
pub fn all() -> Vec<WorkloadSpec> {
    vec![
        // ISPEC
        spec_scaled("mcf_like", Category::Ispec, 3, gen_mcf),
        spec("astar_like", Category::Ispec, gen_astar),
        spec("xalanc_like", Category::Ispec, gen_xalanc),
        spec("gobmk_like", Category::Ispec, gen_gobmk),
        spec("hmmer_like", Category::Ispec, gen_hmmer),
        spec("omnetpp_like", Category::Ispec, gen_omnetpp),
        // FSPEC
        spec("lbm_like", Category::Fspec, gen_lbm),
        spec("milc_like", Category::Fspec, gen_milc),
        spec_scaled("gems_like", Category::Fspec, 2, gen_gems),
        spec("povray_like", Category::Fspec, gen_povray),
        spec("soplex_like", Category::Fspec, gen_soplex),
        spec("namd_like", Category::Fspec, gen_namd),
        // HPC
        spec("linpack_like", Category::Hpc, gen_linpack),
        spec_scaled("stencil_like", Category::Hpc, 2, gen_stencil),
        spec("spmv_like", Category::Hpc, gen_spmv),
        spec("bio_like", Category::Hpc, gen_bio),
        spec("fft_like", Category::Hpc, gen_fft),
        spec("kmeans_like", Category::Hpc, gen_kmeans),
        // SERVER
        spec("tpcc_like", Category::Server, gen_tpcc),
        spec("specjbb_like", Category::Server, gen_specjbb),
        spec("oracle_like", Category::Server, gen_oracle),
        spec("hadoop_like", Category::Server, gen_hadoop),
        spec("specpower_like", Category::Server, gen_specpower),
        // CLIENT
        spec("sysmark_like", Category::Client, gen_sysmark),
        spec("facedet_like", Category::Client, gen_facedet),
        spec("h264_like", Category::Client, gen_h264),
        spec("excel_like", Category::Client, gen_excel),
        spec("browser_like", Category::Client, gen_browser),
    ]
}

/// Looks a workload up by name.
///
/// # Errors
///
/// Returns [`WorkloadsError`] when no workload has that name.
pub fn by_name(name: &str) -> Result<WorkloadSpec, WorkloadsError> {
    all()
        .into_iter()
        .find(|w| w.name == name)
        .ok_or_else(|| WorkloadsError {
            name: name.to_string(),
        })
}

fn spec(name: &'static str, category: Category, generate: fn(usize, u64) -> Trace) -> WorkloadSpec {
    WorkloadSpec {
        name,
        category,
        ops_scale: 1,
        generate,
    }
}

fn spec_scaled(
    name: &'static str,
    category: Category,
    ops_scale: usize,
    generate: fn(usize, u64) -> Trace,
) -> WorkloadSpec {
    WorkloadSpec {
        name,
        category,
        ops_scale,
        generate,
    }
}

fn r(i: u8) -> ArchReg {
    ArchReg::new(i)
}

/// Builds a single-loop trace whose body is emitted by `body` (which must
/// emit the same op-class sequence every iteration, so PCs repeat).
fn build_loop(
    name: &'static str,
    category: Category,
    ops: usize,
    mut body: impl FnMut(&mut TraceBuilder, usize),
) -> Trace {
    let mut b = TraceBuilder::new(name);
    b.category(category);
    let top = b.label();
    let mut iter = 0;
    loop {
        b.jump_to(top);
        body(&mut b, iter);
        let more = b.len() < ops;
        b.backedge(top, more);
        iter += 1;
        if !more {
            break;
        }
    }
    b.build()
}

/// Builds a block-dispatched trace with a large code footprint: a
/// dispatcher indirect-jumps into one of `block_count` code blocks spread
/// over `code_bytes`, each block running `body` (same structure per
/// block).
fn build_blocks(
    name: &'static str,
    category: Category,
    ops: usize,
    block_count: usize,
    code_bytes: u64,
    rng: &mut SplitMix64,
    mut body: impl FnMut(&mut TraceBuilder, usize),
) -> Trace {
    let mut b = TraceBuilder::new(name);
    b.category(category);
    let dispatcher = Pc::new(0x10_0000);
    let blocks = code_blocks(Pc::new(0x40_0000), block_count, code_bytes);
    let span = (code_bytes / block_count.max(1) as u64).max(256);
    // Real server code mixes a hot core (L1I-resident) with a long cold
    // tail; each block's body spreads over a few spaced code lines.
    let hops = (span / 512).clamp(1, 4);
    let hot_blocks = blocks.len().div_ceil(8).max(1);
    loop {
        let block_idx = if rng.gen_bool(0.92) {
            rng.gen_range(0..hot_blocks)
        } else {
            rng.gen_range(0..blocks.len())
        };
        let block = blocks[block_idx];
        b.set_pc(dispatcher);
        b.indirect_jump(block, &[r(0)]);
        b.set_pc(block);
        body(&mut b, block_idx);
        for h in 1..=hops {
            let chunk = Pc::new(block.get() + h * (span / (hops + 1)));
            b.jump(chunk);
            b.set_pc(chunk);
            for reg in [8u8, 9, 8, 9, 8, 9] {
                b.alu(r(reg), &[r(reg)]);
            }
        }
        let more = b.len() < ops;
        // Return to the dispatcher (direct, well-predicted).
        b.jump(dispatcher);
        if !more {
            break;
        }
    }
    b.build()
}

// --------------------------------------------------------------------
// ISPEC
// --------------------------------------------------------------------

/// mcf-like: strided index array feeding a gather over an 8 MB region
/// (LLC/memory resident). The gather result feeds a short chain and a
/// data-dependent branch. Feeder-recoverable.
fn gen_mcf(ops: usize, seed: u64) -> Trace {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x1CF);
    let idx = Region::new(0, 512 << 10);
    let data = Region::new(1, 8 << 20);
    // mcf's network-simplex loop is big (~dozens of instructions per arc)
    // with a strided index feeding gathers over a memory-resident arc
    // array. The large body limits how many iterations the 224-entry ROB
    // can hold, so memory-level parallelism is ROB-bound in the baseline —
    // exactly what the Feeder prefetcher (running ahead of the window via
    // the strided trigger) buys back.
    let mut gather = IndexedGather::with_count(idx, data, 12288, &mut rng);
    let mut nodes = Stream::new(Region::new(2, 256 << 10), 64);
    let mut locals = Locals::new(7);
    build_loop("mcf_like", Category::Ispec, ops, move |b, _| {
        for _ in 0..2 {
            gather.emit(b, r(1), r(2));
            locals.emit_chain(b, r(2), r(10), 2);
            b.alu(r(3), &[r(10), r(3)]);
            emit_branch(b, &mut rng, r(3), 0.95);
            nodes.emit(b, r(6), 1);
        }
        emit_int_work(b, &[r(4), r(5)], 14);
    })
}

/// astar-like: serial pointer chase sized for the L2 (384 KB) with two
/// fields per node (Cross-recoverable) and a branch on the node data.
fn gen_astar(ops: usize, seed: u64) -> Trace {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0xA57A);
    let heap = Region::new(0, 384 << 10);
    let mut ring = PtrRing::new(heap, 768, &mut rng);
    let mut ring2 = PtrRing::new(Region::new(3, 192 << 10), 768, &mut rng);
    let open_idx = Region::new(1, 64 << 10);
    let open_list = Region::new(2, 256 << 10);
    let mut gather = IndexedGather::with_count(open_idx, open_list, 3072, &mut rng);
    let mut locals = Locals::new(7);
    build_loop("astar_like", Category::Ispec, ops, move |b, _| {
        // One chase hop; the node address register carries the chain.
        let (addr, next) = {
            let (a, n) = ring_next(&mut ring);
            (a, n)
        };
        b.load_dep(r(1), addr, next, &[r(1)]);
        let (addr2, next2) = ring2.advance();
        b.load_dep(r(9), addr2, next2, &[r(9)]);
        // Header field first (the Cross trigger)...
        emit_struct_fields(b, r(1), addr, &[r(2)], &[8]);
        locals.emit_chain(b, r(2), r(10), 2);
        b.alu(r(4), &[r(10)]);
        emit_branch(b, &mut rng, r(4), 0.95);
        // Independent open-list scoring alongside the chase.
        gather.emit(b, r(5), r(6));
        emit_int_work(b, &[r(6), r(7)], 10);
        // ...and the payload field (next line of the node) only at the
        // end of the iteration: Cross prefetches it off the header.
        emit_struct_fields(b, r(1), addr, &[r(3)], &[72]);
        b.alu(r(4), &[r(4), r(3)]);
    })
}

fn ring_next(ring: &mut PtrRing) -> (catch_trace::Addr, u64) {
    ring.advance()
}

/// xalancbmk-like: gather over a 768 KB DOM-like structure (L2 resident)
/// with field walks and branches. Feeder + Cross recoverable.
fn gen_xalanc(ops: usize, seed: u64) -> Trace {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0xA1A);
    let idx = Region::new(0, 256 << 10);
    let data = Region::new(1, 768 << 10);
    let mut gather = IndexedGather::with_count(idx, data, 6144, &mut rng);
    let mut scratch = Stream::new(Region::new(2, 64 << 10), 64);
    let mut locals = Locals::new(7);
    build_loop("xalanc_like", Category::Ispec, ops, move |b, _| {
        let node = gather.emit(b, r(1), r(2));
        locals.emit_chain(b, r(2), r(10), 1);
        b.alu(r(3), &[r(10)]);
        emit_branch(b, &mut rng, r(3), 0.95);
        gather.emit(b, r(1), r(4));
        b.alu(r(5), &[r(4), r(3)]);
        // Most branches resolve from register state, not cache misses.
        emit_branch(b, &mut rng, r(7), 0.95);
        scratch.emit(b, r(6), 1);
        emit_int_work(b, &[r(7), r(8)], 10);
        // Node payload on the next line, read late: the gather (trigger)
        // leads this field (target) by most of the iteration — the Cross
        // prefetcher's bread and butter.
        b.load_dep(r(12), node.offset(72), 0, &[r(2)]);
        b.alu(r(5), &[r(5), r(12)]);
    })
}

/// gobmk-like: branch-heavy with a medium gather (256 KB) and moderate
/// code footprint.
fn gen_gobmk(ops: usize, seed: u64) -> Trace {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x60B);
    let idx = Region::new(0, 128 << 10);
    let data = Region::new(1, 256 << 10);
    let mut gather = IndexedGather::with_count(idx, data, 3072, &mut rng);
    let mut locals = Locals::new(7);
    let mut blocks_rng = SplitMix64::seed_from_u64(seed ^ 0xB10C);
    build_blocks(
        "gobmk_like",
        Category::Ispec,
        ops,
        16,
        32 << 10,
        &mut blocks_rng,
        move |b, _| {
            gather.emit(b, r(1), r(2));
            locals.emit_chain(b, r(2), r(10), 2);
            b.alu(r(3), &[r(10)]);
            emit_branch(b, &mut rng, r(3), 0.93);
            gather.emit(b, r(1), r(4));
            gather.emit(b, r(1), r(5));
            b.alu(r(6), &[r(4), r(5)]);
            emit_int_work(b, &[r(6), r(7)], 10);
            emit_branch(b, &mut rng, r(6), 0.91);
        },
    )
}

// --------------------------------------------------------------------
// FSPEC
// --------------------------------------------------------------------

/// lbm-like: three large streams (4 MB each) with stores and light FP.
/// Bandwidth-bound; the baseline stream prefetcher covers it.
fn gen_lbm(ops: usize, seed: u64) -> Trace {
    let _ = seed;
    let mut s1 = Stream::new(Region::new(0, 4 << 20), 64);
    let mut s2 = Stream::new(Region::new(1, 4 << 20), 64);
    let mut out = Stream::new(Region::new(2, 4 << 20), 64);
    build_loop("lbm_like", Category::Fspec, ops, move |b, _| {
        s1.emit(b, r(16), 2);
        s2.emit(b, r(17), 2);
        b.fadd(r(18), &[r(16), r(17)]);
        b.fmul(r(19), &[r(18), r(18)]);
        out.emit_store(b, r(19));
        emit_int_work(b, &[r(4)], 2);
    })
}

/// milc-like: strided (2-line stride) loads over 2 MB feeding FP chains
/// and a data-dependent branch. Deep-Self recoverable LLC hits.
fn gen_milc(ops: usize, seed: u64) -> Trace {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x311C);
    let mut field = Stream::new(Region::new(0, 1 << 20), 128);
    build_loop("milc_like", Category::Fspec, ops, move |b, _| {
        field.emit(b, r(16), 1);
        emit_fp_chain(b, r(20), r(16), 4);
        field.emit(b, r(17), 1);
        emit_fp_chain(b, r(21), r(17), 4);
        emit_branch(b, &mut rng, r(20), 0.96);
    })
}

/// gemsFDTD-like: two L2-resident strided field sweeps (640 KB each) with
/// FP update chains. Deep-Self recoverable L2 hits.
fn gen_gems(ops: usize, seed: u64) -> Trace {
    let _ = seed;
    let mut e_field = Stream::new(Region::new(0, 640 << 10), 64);
    let mut h_field = Stream::new(Region::new(1, 640 << 10), 64);
    let mut out = Stream::new(Region::new(2, 640 << 10), 64);
    build_loop("gems_like", Category::Fspec, ops, move |b, _| {
        e_field.emit(b, r(16), 1);
        h_field.emit(b, r(17), 1);
        b.fadd(r(18), &[r(16), r(17)]);
        b.fmul(r(19), &[r(18), r(16)]);
        b.fadd(r(20), &[r(19), r(20)]);
        out.emit_store(b, r(20));
    })
}

/// povray-like: a large unrolled body with many distinct load PCs over a
/// 512 KB scene — more critical PCs than the 32-entry table can hold.
fn gen_povray(ops: usize, seed: u64) -> Trace {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x90F);
    let scene = Region::new(0, 512 << 10);
    // 48 distinct gather sites, each its own PC in the unrolled body.
    let sites: Vec<Vec<u64>> = (0..48)
        .map(|_| (0..256).map(|_| scene.rand_line(&mut rng).get()).collect())
        .collect();
    let mut cursor = 0usize;
    build_loop("povray_like", Category::Fspec, ops, move |b, _| {
        cursor += 1;
        for site in &sites {
            let addr = catch_trace::Addr::new(site[cursor % site.len()]);
            b.load(r(16), addr, 0);
            b.fadd(r(20), &[r(20), r(16)]);
        }
        emit_branch(b, &mut rng, r(20), 0.95);
    })
}

// --------------------------------------------------------------------
// HPC
// --------------------------------------------------------------------

/// linpack-like: blocked GEMM over cache-resident tiles (48 KB) with high
/// FP ILP. Cache-friendly; little for CATCH to do.
fn gen_linpack(ops: usize, seed: u64) -> Trace {
    let _ = seed;
    // Tiles blocked for the L1, as tuned BLAS kernels are.
    let mut a = Stream::new(Region::new(0, 8 << 10), 64);
    let mut bm = Stream::new(Region::new(1, 8 << 10), 64);
    let mut c = Stream::new(Region::new(2, 8 << 10), 64);
    build_loop("linpack_like", Category::Hpc, ops, move |b, _| {
        a.emit(b, r(16), 2);
        bm.emit(b, r(17), 2);
        b.fmul(r(18), &[r(16), r(17)]);
        b.fadd(r(19), &[r(19), r(18)]);
        b.fmul(r(20), &[r(16), r(17)]);
        b.fadd(r(21), &[r(21), r(20)]);
        c.emit(b, r(22), 1);
    })
}

/// stencil-like: three offset sweeps over a 1.5 MB grid with FP chains
/// and occasional branches. Deep-Self/stream recoverable LLC hits.
fn gen_stencil(ops: usize, seed: u64) -> Trace {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x57E);
    let grid = Region::new(0, 1536 << 10);
    let mut north = Stream::new(grid, 64);
    let mut center = Stream::new(Region::new(1, 1536 << 10), 64);
    let mut south = Stream::new(Region::new(2, 1536 << 10), 64);
    build_loop("stencil_like", Category::Hpc, ops, move |b, _| {
        north.emit(b, r(16), 1);
        center.emit(b, r(17), 1);
        south.emit(b, r(18), 1);
        b.fadd(r(19), &[r(16), r(17)]);
        b.fadd(r(20), &[r(19), r(18)]);
        b.fmul(r(21), &[r(20), r(20)]);
        emit_branch(b, &mut rng, r(21), 0.97);
    })
}

/// spmv-like: column-index gather over a 1.5 MB vector with an FP
/// accumulation chain. Feeder-recoverable LLC hits.
fn gen_spmv(ops: usize, seed: u64) -> Trace {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x59A);
    let cols = Region::new(0, 256 << 10);
    let vec = Region::new(1, 1536 << 10);
    let mut gather = IndexedGather::with_count(cols, vec, 6144, &mut rng);
    let mut vals = Stream::new(Region::new(2, 512 << 10), 64);
    let mut locals = Locals::new(7);
    build_loop("spmv_like", Category::Hpc, ops, move |b, _| {
        gather.emit(b, r(1), r(16));
        locals.emit_chain(b, r(16), r(10), 1);
        vals.emit(b, r(17), 1);
        b.fmul(r(18), &[r(10), r(17)]);
        b.fadd(r(19), &[r(19), r(18)]);
        gather.emit(b, r(1), r(20));
        b.fmul(r(21), &[r(20), r(17)]);
        b.fadd(r(19), &[r(19), r(21)]);
    })
}

/// bioinformatics-like: sequential scan of a 1 MB sequence with a small
/// score-table gather and well-biased branches.
fn gen_bio(ops: usize, seed: u64) -> Trace {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0xB10);
    let mut sequence = Stream::new(Region::new(0, 1 << 20), 64);
    let table = Region::new(1, 128 << 10);
    let idx = Region::new(2, 64 << 10);
    let mut gather = IndexedGather::with_count(idx, table, 2048, &mut rng);
    let mut locals = Locals::new(7);
    build_loop("bio_like", Category::Hpc, ops, move |b, _| {
        sequence.emit(b, r(1), 2);
        gather.emit(b, r(2), r(3));
        locals.emit_chain(b, r(3), r(10), 1);
        b.alu(r(4), &[r(10), r(1)]);
        emit_branch(b, &mut rng, r(4), 0.95);
        emit_int_work(b, &[r(5), r(6)], 8);
    })
}

// --------------------------------------------------------------------
// SERVER (large code footprints)
// --------------------------------------------------------------------

/// tpcc-like: 384 KB of code across 96 blocks; hash-style gathers over a
/// 2 MB buffer pool with field walks and branches.
fn gen_tpcc(ops: usize, seed: u64) -> Trace {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x79CC);
    let idx = Region::new(0, 256 << 10);
    let pool = Region::new(1, 2 << 20);
    let mut gather = IndexedGather::with_count(idx, pool, 4096, &mut rng);
    let mut locals = Locals::new(7);
    let mut blocks_rng = SplitMix64::seed_from_u64(seed ^ 0xD15);
    build_blocks(
        "tpcc_like",
        Category::Server,
        ops,
        96,
        384 << 10,
        &mut blocks_rng,
        move |b, _| {
            gather.emit(b, r(1), r(2));
            locals.emit_chain(b, r(2), r(10), 1);
            b.alu(r(3), &[r(10)]);
            emit_branch(b, &mut rng, r(3), 0.95);
            gather.emit(b, r(1), r(4));
            b.alu(r(5), &[r(4), r(3)]);
            emit_int_work(b, &[r(5), r(6)], 12);
        },
    )
}

/// specjbb-like: 256 KB of code; object-graph chase over 512 KB with
/// field loads.
fn gen_specjbb(ops: usize, seed: u64) -> Trace {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x5B);
    let heap = Region::new(0, 512 << 10);
    let mut ring = PtrRing::new(heap, 1024, &mut rng);
    let mut ring2 = PtrRing::new(Region::new(3, 256 << 10), 1024, &mut rng);
    let mut locals = Locals::new(7);
    let mut blocks_rng = SplitMix64::seed_from_u64(seed ^ 0xD16);
    build_blocks(
        "specjbb_like",
        Category::Server,
        ops,
        96,
        384 << 10,
        &mut blocks_rng,
        move |b, _| {
            let (addr, next) = ring.advance();
            b.load_dep(r(1), addr, next, &[r(1)]);
            emit_struct_fields(b, r(1), addr, &[r(2)], &[16]);
            locals.emit_chain(b, r(2), r(10), 1);
            b.alu(r(4), &[r(10)]);
            emit_branch(b, &mut rng, r(4), 0.95);
            let (addr2, next2) = ring2.advance();
            b.load_dep(r(9), addr2, next2, &[r(9)]);
            emit_struct_fields(b, r(9), addr2, &[r(5)], &[16]);
            b.alu(r(6), &[r(5)]);
            emit_int_work(b, &[r(6), r(7)], 12);
            // Payload field read late (Cross-covered off the header).
            emit_struct_fields(b, r(1), addr, &[r(3)], &[80]);
            b.alu(r(6), &[r(6), r(3)]);
        },
    )
}

/// oracle-like: 512 KB of code across 128 blocks; B-tree-style descent
/// (gather) over 4 MB plus field walks.
fn gen_oracle(ops: usize, seed: u64) -> Trace {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x0AC1E);
    let idx = Region::new(0, 256 << 10);
    let tree = Region::new(1, 4 << 20);
    let mut gather = IndexedGather::with_count(idx, tree, 6144, &mut rng);
    let mut locals = Locals::new(7);
    let mut blocks_rng = SplitMix64::seed_from_u64(seed ^ 0xD17);
    build_blocks(
        "oracle_like",
        Category::Server,
        ops,
        128,
        512 << 10,
        &mut blocks_rng,
        move |b, _| {
            let node = gather.emit(b, r(1), r(2));
            locals.emit_chain(b, r(2), r(10), 1);
            b.alu(r(3), &[r(10)]);
            emit_branch(b, &mut rng, r(3), 0.95);
            gather.emit(b, r(1), r(4));
            b.alu(r(5), &[r(4), r(3)]);
            emit_int_work(b, &[r(6), r(7)], 12);
            // Row payload on the B-tree node's next line, read late.
            b.load_dep(r(12), node.offset(72), 0, &[r(2)]);
            b.alu(r(5), &[r(5), r(12)]);
        },
    )
}

/// hadoop-like: 192 KB of code; record streaming (2 MB) with a dictionary
/// gather (256 KB).
fn gen_hadoop(ops: usize, seed: u64) -> Trace {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x4AD0);
    let mut records = Stream::new(Region::new(0, 2 << 20), 64);
    let idx = Region::new(1, 64 << 10);
    let dict = Region::new(2, 256 << 10);
    let mut gather = IndexedGather::with_count(idx, dict, 4096, &mut rng);
    let mut locals = Locals::new(7);
    let mut blocks_rng = SplitMix64::seed_from_u64(seed ^ 0xD18);
    build_blocks(
        "hadoop_like",
        Category::Server,
        ops,
        96,
        384 << 10,
        &mut blocks_rng,
        move |b, _| {
            records.emit(b, r(1), 2);
            gather.emit(b, r(2), r(3));
            locals.emit_chain(b, r(3), r(10), 1);
            b.alu(r(4), &[r(10), r(1)]);
            emit_branch(b, &mut rng, r(4), 0.95);
            emit_int_work(b, &[r(5), r(6)], 12);
        },
    )
}

// --------------------------------------------------------------------
// CLIENT
// --------------------------------------------------------------------

/// sysmark-like: a mixed kernel — small chase (128 KB), medium stream
/// (512 KB), branches and integer work.
fn gen_sysmark(ops: usize, seed: u64) -> Trace {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x5135);
    let heap = Region::new(0, 128 << 10);
    let mut ring = PtrRing::new(heap, 1024, &mut rng);
    let mut data = Stream::new(Region::new(1, 512 << 10), 64);
    let mut locals = Locals::new(7);
    build_loop("sysmark_like", Category::Client, ops, move |b, _| {
        // A list walk overlapped with an independent serial computation
        // (the L1-resident locals chain), as mixed client code does: the
        // chase's L2/LLC latency is only partially exposed.
        let (addr, next) = ring.advance();
        b.load_dep(r(1), addr, next, &[r(1)]);
        data.emit(b, r(2), 2);
        locals.emit_chain(b, r(10), r(10), 7);
        b.alu(r(3), &[r(1), r(2), r(10)]);
        emit_branch(b, &mut rng, r(3), 0.95);
        emit_int_work(b, &[r(4), r(5)], 6);
    })
}

/// face-detection-like: windowed strided loads (stride 320 B) over 1 MB
/// with an FP classifier chain. Deep-Self recoverable.
fn gen_facedet(ops: usize, seed: u64) -> Trace {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0xFACE);
    let mut window = Stream::new(Region::new(0, 1 << 20), 320);
    build_loop("facedet_like", Category::Client, ops, move |b, _| {
        window.emit(b, r(16), 2);
        emit_fp_chain(b, r(20), r(16), 3);
        window.emit(b, r(17), 1);
        b.fadd(r(21), &[r(20), r(17)]);
        emit_branch(b, &mut rng, r(21), 0.95);
    })
}

/// h264-like: motion-search block loads (256 KB) with a reference gather
/// (128 KB) and prediction branches.
fn gen_h264(ops: usize, seed: u64) -> Trace {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x264);
    let mut blocks = Stream::new(Region::new(0, 256 << 10), 64);
    let idx = Region::new(1, 64 << 10);
    let refs = Region::new(2, 128 << 10);
    let mut gather = IndexedGather::with_count(idx, refs, 2048, &mut rng);
    let mut locals = Locals::new(7);
    build_loop("h264_like", Category::Client, ops, move |b, _| {
        blocks.emit(b, r(1), 2);
        gather.emit(b, r(2), r(3));
        locals.emit_chain(b, r(3), r(10), 2);
        b.alu(r(4), &[r(10), r(1)]);
        emit_branch(b, &mut rng, r(4), 0.95);
        emit_int_work(b, &[r(5)], 8);
    })
}

/// excel-like: cell-table gather over 384 KB with dependence chains and
/// well-biased branches.
fn gen_excel(ops: usize, seed: u64) -> Trace {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0xCE11);
    let idx = Region::new(0, 128 << 10);
    let cells = Region::new(1, 384 << 10);
    let mut gather = IndexedGather::with_count(idx, cells, 4096, &mut rng);
    let mut locals = Locals::new(7);
    build_loop("excel_like", Category::Client, ops, move |b, _| {
        gather.emit(b, r(1), r(2));
        locals.emit_chain(b, r(2), r(10), 2);
        b.alu(r(3), &[r(10), r(3)]);
        b.alu(r(4), &[r(3)]);
        emit_branch(b, &mut rng, r(4), 0.95);
        gather.emit(b, r(1), r(5));
        locals.emit_chain(b, r(5), r(11), 1);
        b.alu(r(6), &[r(11), r(3)]);
        emit_int_work(b, &[r(7)], 8);
    })
}

// --------------------------------------------------------------------
// Additional workloads (suite extension towards the paper's 70)
// --------------------------------------------------------------------

/// hmmer-like: dynamic-programming sweep — three strided rows of a DP
/// table (L2-resident) feeding a short dependent chain and a score
/// branch. The paper's hmmer loses ~40% without the L2 and is largely
/// recovered by Deep-Self.
fn gen_hmmer(ops: usize, seed: u64) -> Trace {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x433E);
    let mut row_m = Stream::new(Region::new(0, 256 << 10), 64);
    let mut row_i = Stream::new(Region::new(1, 256 << 10), 64);
    let mut row_d = Stream::new(Region::new(2, 256 << 10), 64);
    let mut locals = Locals::new(7);
    build_loop("hmmer_like", Category::Ispec, ops, move |b, _| {
        row_m.emit(b, r(1), 1);
        row_i.emit(b, r(2), 1);
        row_d.emit(b, r(3), 1);
        // max() chain over the three table rows.
        b.alu(r(4), &[r(1), r(2)]);
        b.alu(r(4), &[r(4), r(3)]);
        locals.emit_chain(b, r(4), r(10), 1);
        emit_branch(b, &mut rng, r(10), 0.95);
        emit_int_work(b, &[r(5), r(6)], 4);
    })
}

/// omnetpp-like: discrete-event simulation — a heap-ordered event queue
/// (pointer chase through an L2-resident ring) plus a gather into module
/// state. Chase-bound; only partially recoverable.
fn gen_omnetpp(ops: usize, seed: u64) -> Trace {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x03E7);
    let heap = Region::new(0, 256 << 10);
    let mut events = PtrRing::new(heap, 1024, &mut rng);
    let idx = Region::new(1, 64 << 10);
    let modules = Region::new(2, 512 << 10);
    let mut gather = IndexedGather::with_count(idx, modules, 4096, &mut rng);
    let mut locals = Locals::new(7);
    build_loop("omnetpp_like", Category::Ispec, ops, move |b, _| {
        let (addr, next) = events.advance();
        b.load_dep(r(1), addr, next, &[r(1)]);
        emit_struct_fields(b, r(1), addr, &[r(2)], &[8]);
        gather.emit(b, r(3), r(4));
        locals.emit_chain(b, r(4), r(10), 1);
        b.alu(r(5), &[r(2), r(10)]);
        emit_branch(b, &mut rng, r(5), 0.95);
        emit_int_work(b, &[r(6), r(7)], 8);
    })
}

/// soplex-like: simplex pivoting — sparse column gathers (Feeder) over a
/// 1 MB basis with FP update chains.
fn gen_soplex(ops: usize, seed: u64) -> Trace {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x50F1);
    let cols = Region::new(0, 128 << 10);
    let basis = Region::new(1, 1 << 20);
    let mut gather = IndexedGather::with_count(cols, basis, 8192, &mut rng);
    let mut locals = Locals::new(7);
    build_loop("soplex_like", Category::Fspec, ops, move |b, _| {
        gather.emit(b, r(1), r(16));
        locals.emit_chain(b, r(16), r(10), 1);
        b.fmul(r(18), &[r(16), r(18)]);
        b.fadd(r(19), &[r(19), r(18)]);
        emit_branch(b, &mut rng, r(10), 0.95);
        gather.emit(b, r(1), r(17));
        b.fadd(r(20), &[r(20), r(17)]);
        emit_int_work(b, &[r(5)], 4);
    })
}

/// namd-like: molecular dynamics — pairlist pointer chase with FP force
/// chains; the paper calls namd out as *not* amenable to prefetching
/// (CATCH gains limited).
fn gen_namd(ops: usize, seed: u64) -> Trace {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x9A3D);
    let pairs = Region::new(0, 320 << 10);
    let mut ring = PtrRing::new(pairs, 2048, &mut rng);
    build_loop("namd_like", Category::Fspec, ops, move |b, _| {
        // The pairlist walk overlaps with the force computation: an
        // independent serial FP chain (carried across iterations) hides
        // much of the chase latency, as namd's arithmetic density does.
        let (addr, next) = ring.advance();
        b.load_dep(r(1), addr, next, &[r(1)]);
        emit_struct_fields(b, r(1), addr, &[r(16)], &[8]);
        emit_fp_chain(b, r(20), r(20), 6);
        b.fadd(r(21), &[r(20), r(16)]);
        emit_branch(b, &mut rng, r(21), 0.97);
        emit_int_work(b, &[r(5), r(6)], 6);
    })
}

/// FFT-like: bit-reversed butterfly access — two strided streams at a
/// large power-of-two distance with FP twiddle chains; L2/LLC-resident.
fn gen_fft(ops: usize, seed: u64) -> Trace {
    let _ = seed;
    let region = Region::new(0, 1 << 20);
    let mut even = Stream::new(region, 128);
    let mut odd = Stream::new(Region::new(1, 1 << 20), 128);
    let mut out = Stream::new(Region::new(2, 1 << 20), 64);
    build_loop("fft_like", Category::Hpc, ops, move |b, _| {
        even.emit(b, r(16), 1);
        odd.emit(b, r(17), 1);
        b.fmul(r(18), &[r(17), r(21)]); // twiddle multiply
        b.fadd(r(19), &[r(16), r(18)]);
        b.fadd(r(20), &[r(16), r(18)]);
        out.emit_store(b, r(19));
        emit_int_work(b, &[r(5)], 2);
    })
}

/// kmeans-like: clustering — streaming points (LLC-resident), a small
/// centroid table gathered per point (L1/L2), FP distance chains and an
/// assignment branch.
fn gen_kmeans(ops: usize, seed: u64) -> Trace {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x63EA);
    let mut points = Stream::new(Region::new(0, 2 << 20), 64);
    let idx = Region::new(1, 16 << 10);
    let centroids = Region::new(2, 64 << 10);
    let mut gather = IndexedGather::with_count(idx, centroids, 1024, &mut rng);
    build_loop("kmeans_like", Category::Hpc, ops, move |b, _| {
        points.emit(b, r(16), 2);
        gather.emit(b, r(1), r(17));
        b.fadd(r(18), &[r(16), r(17)]);
        b.fmul(r(19), &[r(18), r(18)]);
        b.fadd(r(20), &[r(20), r(19)]);
        emit_branch(b, &mut rng, r(20), 0.95);
        emit_int_work(b, &[r(5)], 3);
    })
}

/// specpower-like: server-side Java — moderate code footprint, object
/// gathers and allocation-like streaming stores.
fn gen_specpower(ops: usize, seed: u64) -> Trace {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x50E6);
    let idx = Region::new(0, 64 << 10);
    let heap = Region::new(1, 1 << 20);
    let mut gather = IndexedGather::with_count(idx, heap, 6144, &mut rng);
    let mut alloc = Stream::new(Region::new(2, 512 << 10), 64);
    let mut locals = Locals::new(7);
    let mut blocks_rng = SplitMix64::seed_from_u64(seed ^ 0xD19);
    build_blocks(
        "specpower_like",
        Category::Server,
        ops,
        80,
        320 << 10,
        &mut blocks_rng,
        move |b, _| {
            gather.emit(b, r(1), r(2));
            locals.emit_chain(b, r(2), r(10), 1);
            b.alu(r(3), &[r(10)]);
            emit_branch(b, &mut rng, r(3), 0.95);
            alloc.emit_store(b, r(3));
            emit_int_work(b, &[r(4), r(5)], 10);
        },
    )
}

/// browser-like: DOM/JS mix — small chases, gathers, stores and branchy
/// dispatch over a moderate code footprint.
fn gen_browser(ops: usize, seed: u64) -> Trace {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0xB30);
    let dom = Region::new(0, 192 << 10);
    let mut ring = PtrRing::new(dom, 1024, &mut rng);
    let idx = Region::new(1, 64 << 10);
    let props = Region::new(2, 256 << 10);
    let mut gather = IndexedGather::with_count(idx, props, 3072, &mut rng);
    let mut locals = Locals::new(7);
    let mut blocks_rng = SplitMix64::seed_from_u64(seed ^ 0xD20);
    build_blocks(
        "browser_like",
        Category::Client,
        ops,
        32,
        128 << 10,
        &mut blocks_rng,
        move |b, _| {
            let (addr, next) = ring.advance();
            b.load_dep(r(1), addr, next, &[r(1)]);
            gather.emit(b, r(2), r(3));
            locals.emit_chain(b, r(3), r(10), 1);
            b.alu(r(4), &[r(10), r(1)]);
            emit_branch(b, &mut rng, r(4), 0.94);
            emit_int_work(b, &[r(5), r(6)], 2);
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_workloads_across_all_categories() {
        let specs = all();
        assert_eq!(specs.len(), 28);
        for cat in Category::ALL {
            let n = specs.iter().filter(|s| s.category == cat).count();
            assert!(n >= 5, "category {cat} must have at least 5 workloads");
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = all().iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 28);
    }

    #[test]
    fn by_name_finds_and_rejects() {
        assert_eq!(by_name("mcf_like").unwrap().name, "mcf_like");
        assert!(by_name("nonexistent").is_err());
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = by_name("xalanc_like").unwrap();
        let a = spec.generate(5_000, 42);
        let b = spec.generate(5_000, 42);
        assert_eq!(a.ops().len(), b.ops().len());
        assert_eq!(a.ops()[100], b.ops()[100]);
        let c = spec.generate(5_000, 43);
        assert_ne!(
            a.ops()
                .iter()
                .filter_map(|o| o.mem.map(|m| m.addr))
                .collect::<Vec<_>>(),
            c.ops()
                .iter()
                .filter_map(|o| o.mem.map(|m| m.addr))
                .collect::<Vec<_>>(),
            "different seeds give different address streams"
        );
    }

    #[test]
    fn traces_meet_requested_length() {
        for spec in all() {
            let t = spec.generate(8_000, 1);
            let want = 8_000 * spec.ops_scale;
            assert!(t.len() >= want, "{} too short: {}", spec.name, t.len());
            assert!(
                t.len() < want + want / 2,
                "{} overshoots: {} (want ~{})",
                spec.name,
                t.len(),
                want
            );
        }
    }

    #[test]
    fn loop_workloads_reuse_pcs() {
        let t = by_name("milc_like").unwrap().generate(5_000, 1);
        let stats = t.stats();
        // Small loop: code footprint well under the 32 KB L1I.
        assert!(stats.code_footprint_bytes() < 4 << 10);
    }

    #[test]
    fn server_workloads_have_large_code_footprints() {
        // The hot/cold block mix needs a longer window to tour the cold
        // tail (cold blocks are only ~8% of dispatches).
        for name in ["tpcc_like", "specjbb_like", "oracle_like", "hadoop_like"] {
            let t = by_name(name).unwrap().generate(200_000, 1);
            let code = t.stats().code_footprint_bytes();
            assert!(
                code > 32 << 10,
                "{name} code footprint {code} must exceed the 32 KB L1I"
            );
        }
    }

    #[test]
    fn footprints_match_design_targets() {
        // mcf-like: data footprint far beyond the L2 (first-touch gathers
        // dominate, so it behaves memory-bound in a short window).
        let mcf = by_name("mcf_like").unwrap().generate(150_000, 1);
        assert!(mcf.stats().data_footprint_bytes() > 1 << 20);
        // linpack-like: tile fits comfortably in the L2.
        let lp = by_name("linpack_like").unwrap().generate(50_000, 1);
        assert!(lp.stats().data_footprint_bytes() < 256 << 10);
        // astar-like: chase sized for the L2.
        let astar = by_name("astar_like").unwrap().generate(100_000, 1);
        let fp = astar.stats().data_footprint_bytes();
        assert!(
            (128 << 10..1 << 20).contains(&(fp as usize)),
            "astar footprint {fp}"
        );
    }

    #[test]
    fn every_workload_has_loads_and_branches() {
        for spec in all() {
            let t = spec.generate(10_000, 2);
            let s = t.stats();
            // Server workloads are front-end bound with dilute load mixes;
            // everything else is load-richer.
            let floor = if spec.category == Category::Server {
                0.05
            } else {
                0.1
            };
            assert!(
                s.load_fraction() > floor,
                "{} load fraction {}",
                spec.name,
                s.load_fraction()
            );
            assert!(s.branches > 0, "{} has no branches", spec.name);
        }
    }
}
