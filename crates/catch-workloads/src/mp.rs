//! Multi-programmed (4-way) workload mixes.

use crate::suite::{self, WorkloadSpec};
use catch_trace::rng::SplitMix64;
use catch_trace::Trace;

/// A named 4-way mix of workloads.
#[derive(Debug, Clone)]
pub struct MpMix {
    /// Mix name (e.g. `"rate4_mcf_like"`).
    pub name: String,
    /// The four member workloads.
    pub members: [WorkloadSpec; 4],
}

/// Size of each MP copy's private virtual-address window: copy `i` is
/// rebased to `(i + 1) << 41`, so a member trace whose raw addresses
/// reach 2^41 would bleed into the next copy's window and spuriously
/// share cache lines with it.
pub const MP_ADDR_WINDOW_BITS: u32 = 41;

/// True when every data address in `trace` fits the per-copy MP address
/// window (below `1 << MP_ADDR_WINDOW_BITS`).
pub fn fits_mp_window(trace: &Trace) -> bool {
    trace
        .ops()
        .iter()
        .filter_map(|o| o.mem)
        .all(|m| m.addr.get() < (1u64 << MP_ADDR_WINDOW_BITS))
}

impl MpMix {
    /// Generates the four traces (distinct seeds per copy, and a distinct
    /// virtual address space per copy so private-cache contents are not
    /// spuriously shared through the LLC).
    pub fn generate(&self, ops: usize, seed: u64) -> [Trace; 4] {
        let mut traces = self.members.iter().enumerate().map(|(i, w)| {
            let t = w.generate(ops, seed.wrapping_add(1 + i as u64));
            debug_assert!(
                fits_mp_window(&t),
                "workload '{}' exceeds the 2^{MP_ADDR_WINDOW_BITS} MP address window",
                w.name
            );
            t.rebased((i as u64 + 1) << MP_ADDR_WINDOW_BITS)
        });
        [
            traces.next().expect("4 members"),
            traces.next().expect("4 members"),
            traces.next().expect("4 members"),
            traces.next().expect("4 members"),
        ]
    }
}

/// RATE-4 mixes: four copies of the same workload on four cores (one mix
/// per suite workload).
pub fn rate4_mixes() -> Vec<MpMix> {
    suite::all()
        .into_iter()
        .map(|w| MpMix {
            name: format!("rate4_{}", w.name),
            members: [w; 4],
        })
        .collect()
}

/// `count` random 4-way mixes drawn from the suite (deterministic in
/// `seed`).
pub fn random_mixes(count: usize, seed: u64) -> Vec<MpMix> {
    let specs = suite::all();
    let mut rng = SplitMix64::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let pick = |rng: &mut SplitMix64| specs[rng.gen_range(0..specs.len())];
            let members = [
                pick(&mut rng),
                pick(&mut rng),
                pick(&mut rng),
                pick(&mut rng),
            ];
            MpMix {
                name: format!(
                    "mix{}_{}_{}_{}_{}",
                    i,
                    short(members[0].name),
                    short(members[1].name),
                    short(members[2].name),
                    short(members[3].name)
                ),
                members,
            }
        })
        .collect()
}

fn short(name: &str) -> &str {
    name.strip_suffix("_like").unwrap_or(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate4_covers_suite() {
        let mixes = rate4_mixes();
        assert_eq!(mixes.len(), 28);
        assert!(mixes[0].name.starts_with("rate4_"));
        let m = &mixes[0];
        assert_eq!(m.members[0].name, m.members[3].name);
    }

    #[test]
    fn mp_copies_live_in_disjoint_address_spaces() {
        let mixes = rate4_mixes();
        let traces = mixes[0].generate(4_000, 99);
        let pages = |t: &Trace| {
            t.ops()
                .iter()
                .filter_map(|o| o.mem.map(|m| m.addr.page()))
                .collect::<std::collections::HashSet<_>>()
        };
        let a = pages(&traces[0]);
        let b = pages(&traces[1]);
        assert!(a.is_disjoint(&b), "MP copies must not share data pages");
    }

    #[test]
    fn rate4_copies_use_distinct_seeds() {
        let mixes = rate4_mixes();
        let traces = mixes[0].generate(4_000, 99);
        let addrs = |t: &Trace| {
            t.ops()
                .iter()
                .filter_map(|o| o.mem.map(|m| m.addr))
                .take(50)
                .collect::<Vec<_>>()
        };
        assert_ne!(addrs(&traces[0]), addrs(&traces[1]));
    }

    #[test]
    fn every_suite_workload_fits_the_mp_window() {
        // Member traces are rebased by multiples of 2^41; any raw address
        // at or above that would alias into the next copy's window.
        for w in suite::all() {
            let t = w.generate(4_000, 99);
            assert!(
                fits_mp_window(&t),
                "workload '{}' escapes the MP address window",
                w.name
            );
        }
    }

    #[test]
    fn fits_mp_window_flags_escaping_addresses() {
        use catch_trace::{Addr, ArchReg, TraceBuilder};
        let mut b = TraceBuilder::new("huge");
        b.load(ArchReg::new(1), Addr::new(1u64 << MP_ADDR_WINDOW_BITS), 0);
        assert!(!fits_mp_window(&b.build()));

        let mut ok = TraceBuilder::new("edge");
        ok.load(
            ArchReg::new(1),
            Addr::new((1u64 << MP_ADDR_WINDOW_BITS) - 1),
            0,
        );
        assert!(fits_mp_window(&ok.build()));
    }

    #[test]
    fn random_mixes_are_deterministic() {
        let a = random_mixes(10, 7);
        let b = random_mixes(10, 7);
        assert_eq!(a.len(), 10);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
        }
        let c = random_mixes(10, 8);
        assert!(a.iter().zip(&c).any(|(x, y)| x.name != y.name));
    }
}
