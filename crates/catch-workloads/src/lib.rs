//! Synthetic workload suite for the CATCH simulator.
//!
//! The paper evaluates 70 applications from SPEC CPU2006, HPC, server and
//! client categories (Table II). Those binaries and traces are not
//! redistributable, so this crate generates *synthetic* traces that
//! reproduce the behaviour classes the paper's analysis depends on:
//!
//! * dependence chains through loads that hit the L2/LLC (criticality),
//! * strided and streaming access (stride/stream/Deep-Self prefetchers),
//! * same-page field accesses at stable deltas (Cross),
//! * index→gather and pointer indirection (Feeder),
//! * large code footprints (code runahead, server category),
//! * hard-to-prefetch pointer chases (the paper's namd/gromacs-like
//!   limits) and critical-PC-rich workloads (povray-like).
//!
//! Each named workload composes the kernels in [`kernels`] and is
//! registered in [`suite`]; [`mp`] builds the 4-way multi-programmed
//! mixes.
//!
//! # Example
//!
//! ```
//! let specs = catch_workloads::suite::all();
//! assert!(specs.len() >= 20);
//! let trace = specs[0].generate(10_000, 42);
//! assert!(trace.len() >= 10_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernels;
pub mod mp;
pub mod suite;

pub use suite::{WorkloadSpec, WorkloadsError};
