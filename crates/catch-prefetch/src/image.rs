//! A read-only image of the values loads observe.

use catch_trace::hash::FxHashMap;
use catch_trace::{Addr, Trace};

/// Memory contents as observed by the trace's loads.
///
/// Real feeder-prefetch hardware issues a prefetch for the feeder line and
/// *reads the returned data* to compute the dependent (target) address. A
/// trace-driven simulator has no memory, so the image reconstructs it from
/// the values the trace's loads carry. Last observation wins, which is
/// exact for the read-mostly pointer structures the Feeder prefetcher
/// targets.
#[derive(Debug, Default, Clone)]
pub struct MemoryImage {
    values: FxHashMap<u64, u64>,
}

impl MemoryImage {
    /// Creates an empty image.
    pub fn new() -> Self {
        MemoryImage::default()
    }

    /// Builds the image from every load in a trace.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut image = MemoryImage::new();
        for op in trace.ops() {
            if op.class == catch_trace::OpClass::Load {
                if let Some(mem) = op.mem {
                    image.record(mem.addr, op.load_value);
                }
            }
        }
        image
    }

    /// Records a value at an address.
    pub fn record(&mut self, addr: Addr, value: u64) {
        self.values.insert(addr.get(), value);
    }

    /// Reads the value at `addr`, if any load observed one there.
    pub fn read(&self, addr: Addr) -> Option<u64> {
        self.values.get(&addr.get()).copied()
    }

    /// Number of distinct addresses recorded.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no values are recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catch_trace::{ArchReg, TraceBuilder};

    #[test]
    fn from_trace_records_load_values() {
        let mut b = TraceBuilder::new("t");
        b.load(ArchReg::new(1), Addr::new(0x100), 42);
        b.load(ArchReg::new(2), Addr::new(0x108), 7);
        let image = MemoryImage::from_trace(&b.build());
        assert_eq!(image.read(Addr::new(0x100)), Some(42));
        assert_eq!(image.read(Addr::new(0x108)), Some(7));
        assert_eq!(image.read(Addr::new(0x110)), None);
        assert_eq!(image.len(), 2);
    }

    #[test]
    fn last_observation_wins() {
        let mut image = MemoryImage::new();
        image.record(Addr::new(8), 1);
        image.record(Addr::new(8), 2);
        assert_eq!(image.read(Addr::new(8)), Some(2));
    }
}
