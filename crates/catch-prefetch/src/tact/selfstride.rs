//! Shared self-stride learner with "safe length" deep distances.

use catch_trace::Addr;

const STRIDE_CONF_MAX: u8 = 3;
const STRIDE_CONF_ISSUE: u8 = 2;
const SAFE_CONF_MAX: u8 = 3;
const RUN_CAP: u8 = 32;

/// Per-PC self-stride state with the paper's safe-length mechanism.
///
/// Ordinary stride prefetchers use distance 1; TACT issues *deep*
/// prefetches for critical PCs but must not overshoot past the end of a
/// strided run (loop exit) or it pollutes the small L1. The paper learns a
/// "safe length": the typical run length of the stride, capped at 32, with
/// a 2-bit confidence; the deep distance is `min(safe length, 16)`.
#[derive(Debug, Clone)]
pub struct SelfStride {
    last_addr: Option<Addr>,
    stride: i64,
    stride_conf: u8,
    run_len: u8,
    safe_len: u8,
    safe_conf: u8,
}

impl SelfStride {
    /// Fresh state (safe length initialised to 4, as in the paper).
    pub fn new() -> Self {
        SelfStride {
            last_addr: None,
            stride: 0,
            stride_conf: 0,
            run_len: 0,
            safe_len: 4,
            safe_conf: 0,
        }
    }

    /// Current stride, when confident.
    pub fn stride(&self) -> Option<i64> {
        (self.stride_conf >= STRIDE_CONF_ISSUE && self.stride != 0).then_some(self.stride)
    }

    /// Learned safe length.
    pub fn safe_len(&self) -> u8 {
        self.safe_len
    }

    fn train(&mut self, addr: Addr) {
        let Some(last) = self.last_addr else {
            self.last_addr = Some(addr);
            return;
        };
        let delta = addr.get() as i64 - last.get() as i64;
        self.last_addr = Some(addr);
        if delta == self.stride && delta != 0 {
            self.stride_conf = (self.stride_conf + 1).min(STRIDE_CONF_MAX);
            if self.run_len == RUN_CAP {
                // Unbroken long run (streaming): the safe length may grow
                // without ever observing a break.
                self.safe_len = (self.safe_len + 1).min(RUN_CAP);
            }
            self.run_len = (self.run_len + 1).min(RUN_CAP);
        } else {
            // Run ended: fold its length into the safe-length estimate.
            if self.run_len > 0 {
                if self.run_len >= self.safe_len {
                    self.safe_len = (self.safe_len + 1).min(RUN_CAP);
                    self.safe_conf = (self.safe_conf + 1).min(SAFE_CONF_MAX);
                } else {
                    self.safe_len = self.safe_len.saturating_sub(1).max(1);
                    self.safe_conf = self.safe_conf.saturating_sub(1);
                }
            }
            if self.stride_conf > 0 {
                self.stride_conf -= 1;
            } else {
                self.stride = delta;
            }
            self.run_len = 0;
        }
        // A long uninterrupted run also builds safe-length confidence.
        if self.run_len >= self.safe_len {
            self.safe_conf = (self.safe_conf + 1).min(SAFE_CONF_MAX);
        }
    }

    /// Trains on `addr` and returns the prefetch addresses to issue:
    /// distance 1 plus, when the safe length is confident, the deep
    /// distance capped at `max_distance` (and disabled entirely when
    /// `deep` is false — the baseline behaviour).
    pub fn train_and_predict(&mut self, addr: Addr, max_distance: u8, deep: bool) -> Vec<Addr> {
        self.train(addr);
        let Some(stride) = self.stride() else {
            return Vec::new();
        };
        if !deep {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(2);
        let d1 = addr.offset(stride);
        if d1.line() != addr.line() {
            out.push(d1);
        }
        if self.safe_conf >= SAFE_CONF_MAX {
            let distance = self.safe_len.min(max_distance) as i64;
            if distance > 1 {
                out.push(addr.offset(stride * distance));
            }
        }
        out
    }

    /// Trains on `addr` and returns the predicted addresses at distances
    /// `1..=distance` (used for feeder chains).
    pub fn train_and_predict_all(&mut self, addr: Addr, distance: u8) -> Vec<Addr> {
        self.train(addr);
        let Some(stride) = self.stride() else {
            return Vec::new();
        };
        (1..=distance as i64)
            .map(|d| addr.offset(stride * d))
            .collect()
    }
}

impl Default for SelfStride {
    fn default() -> Self {
        SelfStride::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_confidence_builds() {
        let mut s = SelfStride::new();
        for i in 0..4u64 {
            s.train(Addr::new(i * 64));
        }
        assert_eq!(s.stride(), Some(64));
    }

    #[test]
    fn deep_distance_waits_for_safe_confidence() {
        let mut s = SelfStride::new();
        let mut out = Vec::new();
        for i in 0..4u64 {
            out = s.train_and_predict(Addr::new(i * 64), 16, true);
        }
        // Early: only distance-1.
        assert_eq!(out.len(), 1);
        for i in 4..40u64 {
            out = s.train_and_predict(Addr::new(i * 64), 16, true);
        }
        assert_eq!(out.len(), 2, "deep prefetch joins after confidence");
        let deep = out[1].get() as i64 - 39 * 64;
        assert!(deep > 64 && deep <= 16 * 64);
    }

    #[test]
    fn deep_flag_false_suppresses_output() {
        let mut s = SelfStride::new();
        for i in 0..40u64 {
            let out = s.train_and_predict(Addr::new(i * 64), 16, false);
            assert!(out.is_empty());
        }
    }

    #[test]
    fn short_runs_shrink_safe_length() {
        let mut s = SelfStride::new();
        // Runs of length ~3 separated by jumps.
        for block in 0..20u64 {
            for i in 0..4u64 {
                s.train(Addr::new(block * 100_000 + i * 64));
            }
        }
        assert!(
            s.safe_len() <= 6,
            "safe length {} adapts down",
            s.safe_len()
        );
    }

    #[test]
    fn predict_all_gives_consecutive_distances() {
        let mut s = SelfStride::new();
        for i in 0..5u64 {
            s.train(Addr::new(i * 8));
        }
        let out = s.train_and_predict_all(Addr::new(5 * 8), 4);
        assert_eq!(
            out,
            vec![
                Addr::new(6 * 8),
                Addr::new(7 * 8),
                Addr::new(8 * 8),
                Addr::new(9 * 8)
            ]
        );
    }
}
