//! TACT — Timeliness Aware and Criticality Triggered prefetchers
//! (paper Section IV-B).
//!
//! TACT accelerates a small set of *critical* load PCs (identified by the
//! criticality detector) by prefetching their lines from the L2/LLC into
//! the L1, just in time. Three data prefetchers are expressed over the
//! `(Target-PC, Trigger-PC, Association)` tuple of the paper:
//!
//! * **Deep Self** — trigger is the target itself; association is an
//!   address stride, prefetched at a learned *safe* distance (up to 16).
//! * **Cross** — trigger is a different load PC touching the same 4 KB
//!   page (found via the [`TriggerCache`]); association is a stable
//!   address delta.
//! * **Feeder** — trigger is the load producing the target's address
//!   (found by register-flow tracking); association is
//!   `address = scale × data + base` with scale ∈ {1, 2, 4, 8}.
//!
//! [`CodeRunahead`] is the fourth member: it runs the front end's
//! next-prefetch instruction pointer ahead of a stalled fetch to prefetch
//! code lines into the L1I.

pub mod area;
mod code;
mod regfile;
mod selfstride;
mod target;
mod trigger_cache;

pub use code::{CodeRunahead, CodeRunaheadStats};
pub use regfile::FeederRegFile;
pub use selfstride::SelfStride;
pub use target::{TargetEntry, TargetTable};
pub use trigger_cache::TriggerCache;

use crate::image::MemoryImage;
use catch_trace::hash::FxHashMap;
use catch_trace::{Addr, MicroOp, OpClass, Pc};

/// Configuration of the TACT data prefetchers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TactConfig {
    /// Critical target PCs tracked (paper: 32).
    pub max_targets: usize,
    /// Maximum Deep-Self prefetch distance (paper: 16).
    pub deep_max_distance: u8,
    /// Feeder self-prefetch distance (paper: up to 4).
    pub feeder_distance: u8,
    /// Instances of a trigger candidate examined before switching
    /// (paper: 16).
    pub cross_instances_per_candidate: u8,
    /// Full passes over the candidate set before giving up (paper: 4).
    pub cross_candidate_wraps: u8,
    /// Enable the Cross prefetcher.
    pub enable_cross: bool,
    /// Enable the Deep-Self prefetcher.
    pub enable_deep: bool,
    /// Enable the Feeder prefetcher.
    pub enable_feeder: bool,
    /// Maximum prefetch addresses returned per observed load.
    pub max_prefetches_per_event: usize,
}

impl TactConfig {
    /// Paper defaults.
    pub fn paper() -> Self {
        TactConfig {
            max_targets: 32,
            deep_max_distance: 16,
            feeder_distance: 4,
            cross_instances_per_candidate: 16,
            cross_candidate_wraps: 4,
            enable_cross: true,
            enable_deep: true,
            enable_feeder: true,
            max_prefetches_per_event: 8,
        }
    }

    /// Disables every data component (used to build up Figure 13).
    pub fn disabled() -> Self {
        TactConfig {
            enable_cross: false,
            enable_deep: false,
            enable_feeder: false,
            ..TactConfig::paper()
        }
    }
}

impl Default for TactConfig {
    fn default() -> Self {
        TactConfig::paper()
    }
}

/// Which TACT component produced a prefetch address (used by the
/// observability layer to attribute `tact.target` events).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TactComponent {
    /// Deep self-targets (same-PC strided chains).
    Deep,
    /// Cross trigger→target pairs.
    Cross,
    /// Feeder-driven pre-computation.
    Feeder,
}

/// Counters for the TACT data prefetchers.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct TactStats {
    /// Critical targets allocated.
    pub targets_allocated: u64,
    /// Prefetch addresses emitted by Deep-Self (distance 1 included).
    pub deep_issued: u64,
    /// Prefetch addresses emitted by Cross triggers.
    pub cross_issued: u64,
    /// Prefetch addresses emitted by Feeder triggers.
    pub feeder_issued: u64,
    /// Cross associations learned.
    pub cross_learned: u64,
    /// Feeder (trigger, scale, base) associations learned.
    pub feeder_learned: u64,
}

impl catch_trace::counters::Counters for TactStats {
    fn counters_into(&self, prefix: &str, out: &mut catch_trace::counters::CounterVec) {
        use catch_trace::counters::push_counter;
        push_counter(out, prefix, "targets_allocated", self.targets_allocated);
        push_counter(out, prefix, "deep_issued", self.deep_issued);
        push_counter(out, prefix, "cross_issued", self.cross_issued);
        push_counter(out, prefix, "feeder_issued", self.feeder_issued);
        push_counter(out, prefix, "cross_learned", self.cross_learned);
        push_counter(out, prefix, "feeder_learned", self.feeder_learned);
    }
}

impl catch_trace::counters::FromCounters for TactStats {
    fn from_counters(
        prefix: &str,
        src: &mut catch_trace::counters::CounterSource,
    ) -> Result<Self, String> {
        Ok(TactStats {
            targets_allocated: src.take(prefix, "targets_allocated")?,
            deep_issued: src.take(prefix, "deep_issued")?,
            cross_issued: src.take(prefix, "cross_issued")?,
            feeder_issued: src.take(prefix, "feeder_issued")?,
            cross_learned: src.take(prefix, "cross_learned")?,
            feeder_learned: src.take(prefix, "feeder_learned")?,
        })
    }
}

/// The TACT data-prefetch engine.
///
/// Drive it with:
/// * [`TactPrefetcher::note_critical`] when the criticality detector
///   flags a load PC,
/// * [`TactPrefetcher::on_op`] for every retired micro-op (register-flow
///   tracking for the Feeder),
/// * [`TactPrefetcher::on_load`] for every executed load — returns the
///   byte addresses TACT wants prefetched into the L1D.
#[derive(Debug)]
pub struct TactPrefetcher {
    config: TactConfig,
    targets: TargetTable,
    trigger_cache: TriggerCache,
    regfile: FeederRegFile,
    /// Learned cross associations: trigger PC → (target PC, delta bytes).
    cross_assocs: FxHashMap<Pc, Vec<(Pc, i64)>>,
    /// Last observed address of cross-candidate PCs under training.
    candidate_addrs: FxHashMap<Pc, Addr>,
    /// Confirmed feeder PCs → (self-stride state, dependent targets).
    feeders: FxHashMap<Pc, (SelfStride, Vec<Pc>)>,
    stats: TactStats,
}

impl TactPrefetcher {
    /// Creates the engine.
    pub fn new(config: TactConfig) -> Self {
        TactPrefetcher {
            targets: TargetTable::new(config.max_targets),
            trigger_cache: TriggerCache::new(8, 8, 4),
            regfile: FeederRegFile::new(),
            cross_assocs: FxHashMap::default(),
            candidate_addrs: FxHashMap::default(),
            feeders: FxHashMap::default(),
            config,
            stats: TactStats::default(),
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &TactConfig {
        &self.config
    }

    /// Counters.
    pub fn stats(&self) -> TactStats {
        self.stats
    }

    /// Registers `pc` as a critical target (idempotent; refreshes LRU).
    pub fn note_critical(&mut self, pc: Pc) {
        if self.targets.touch_or_allocate(pc) {
            self.stats.targets_allocated += 1;
        }
    }

    /// True if `pc` currently has a target entry.
    pub fn is_target(&self, pc: Pc) -> bool {
        self.targets.contains(pc)
    }

    /// Announces an issued prefetch's expected arrival cycle to the
    /// timeq engine via `sink`. Prefetch arrivals never gate core
    /// progress, so the queue accounts the request without scheduling a
    /// wake ([`catch_timeq::Source::gating`]); under the tick engine
    /// the disabled buffer makes this a single branch.
    pub fn note_issued(&self, sink: &mut catch_timeq::WakeBuf, arrival: u64) {
        sink.post_hint(arrival, catch_timeq::Source::Tact);
    }

    /// Observes register flow of a micro-op at allocation/rename time
    /// (in program order, as the paper's feeder-tracking hardware does).
    pub fn on_op(&mut self, op: &MicroOp) {
        if !self.config.enable_feeder {
            return;
        }
        self.regfile.observe(op);
    }

    /// The feeder candidate (PC, value) for a load at allocation time —
    /// the youngest load in program order feeding its sources. Capture
    /// this *before* calling [`TactPrefetcher::on_op`] for the same op,
    /// and pass it to [`TactPrefetcher::on_load`] at execution.
    pub fn feeder_hint(&self, op: &MicroOp) -> Option<(Pc, u64)> {
        if !self.config.enable_feeder {
            return None;
        }
        self.regfile.youngest_feeder(op)
    }

    /// Observes an executed load and returns addresses to prefetch into
    /// the L1D. `feeder` is the allocation-time hint from
    /// [`TactPrefetcher::feeder_hint`].
    pub fn on_load(
        &mut self,
        op: &MicroOp,
        feeder: Option<(Pc, u64)>,
        image: &MemoryImage,
    ) -> Vec<Addr> {
        self.on_load_attributed(op, feeder, image)
            .into_iter()
            .map(|(addr, _)| addr)
            .collect()
    }

    /// Like [`TactPrefetcher::on_load`], but tags every emitted address
    /// with the component that produced it, so callers can attribute
    /// `tact.target` observability events.
    pub fn on_load_attributed(
        &mut self,
        op: &MicroOp,
        feeder: Option<(Pc, u64)>,
        image: &MemoryImage,
    ) -> Vec<(Addr, TactComponent)> {
        debug_assert_eq!(op.class, OpClass::Load, "on_load takes loads");
        let Some(mem) = op.mem else {
            return Vec::new();
        };
        let pc = op.pc;
        let addr = mem.addr;
        let value = op.load_value;
        let mut out: Vec<(Addr, TactComponent)> = Vec::new();

        // 1. Every load is a potential future cross trigger.
        self.trigger_cache.observe(addr.page(), pc);
        if let std::collections::hash_map::Entry::Occupied(mut e) = self.candidate_addrs.entry(pc) {
            *e.get_mut() = addr;
        }

        // 2. Fire learned cross associations where this load triggers.
        if self.config.enable_cross {
            if let Some(assocs) = self.cross_assocs.get(&pc) {
                for &(target, delta) in assocs {
                    if self.targets.contains(target) {
                        self.stats.cross_issued += 1;
                        out.push((addr.offset(delta), TactComponent::Cross));
                    }
                }
            }
        }

        // 3. Fire feeder prefetches where this load feeds targets.
        if self.config.enable_feeder {
            let feeder_emits = self.feeder_fire(pc, addr, value, image);
            out.extend(feeder_emits.into_iter().map(|a| (a, TactComponent::Feeder)));
        }

        // 4. Train (and fire Deep-Self) when this load is itself a target.
        if self.targets.contains(pc) {
            let deep = self.train_target(op, addr, feeder);
            out.extend(deep.into_iter().map(|a| (a, TactComponent::Deep)));
        }

        out.truncate(self.config.max_prefetches_per_event);
        out.dedup_by_key(|(a, _)| a.line());
        out
    }

    /// Training and Deep-Self emission for a critical target instance.
    fn train_target(&mut self, op: &MicroOp, addr: Addr, feeder: Option<(Pc, u64)>) -> Vec<Addr> {
        let pc = op.pc;
        let mut out = Vec::new();

        // Deep Self.
        let (deep_emits, _) = {
            let entry = self.targets.get_mut(pc).expect("target present");
            let emits = entry.self_stride.train_and_predict(
                addr,
                self.config.deep_max_distance,
                self.config.enable_deep,
            );
            (emits, ())
        };
        self.stats.deep_issued += deep_emits.len() as u64;
        out.extend(deep_emits);

        // Cross training.
        if self.config.enable_cross {
            self.train_cross(pc, addr);
        }

        // Feeder training.
        if self.config.enable_feeder {
            self.train_feeder(op, addr, feeder);
        }
        out
    }

    fn train_cross(&mut self, target_pc: Pc, addr: Addr) {
        // Split-borrow helpers: copy candidate info out first.
        let candidates = self.trigger_cache.candidates(addr.page());
        let entry = self.targets.get_mut(target_pc).expect("target present");
        if entry.cross_learned.is_some() {
            return;
        }
        let cross = &mut entry.cross;
        // Ensure a current candidate.
        if cross.current.is_none() {
            let next = candidates
                .iter()
                .copied()
                .find(|&c| c != target_pc && !cross.tried.contains(&Some(c)));
            if let Some(c) = next {
                cross.adopt(c);
                self.candidate_addrs.entry(c).or_insert(Addr::new(0));
            }
            return;
        }
        let cand = cross.current.expect("checked above");
        let Some(&trig_addr) = self.candidate_addrs.get(&cand) else {
            return;
        };
        let delta = addr.get() as i64 - trig_addr.get() as i64;
        let stable = cross.observe_delta(delta);
        if stable && delta.unsigned_abs() < catch_trace::PAGE_BYTES {
            entry.cross_learned = Some((cand, delta));
            self.cross_assocs
                .entry(cand)
                .or_default()
                .push((target_pc, delta));
            self.stats.cross_learned += 1;
        } else if cross.exhausted(
            self.config.cross_instances_per_candidate,
            self.config.cross_candidate_wraps,
        ) {
            // Move to the next candidate PC from the trigger cache.
            let next = candidates
                .iter()
                .copied()
                .find(|&c| c != target_pc && !cross.tried.contains(&Some(c)));
            cross.advance(next);
        }
    }

    fn train_feeder(&mut self, op: &MicroOp, addr: Addr, feeder: Option<(Pc, u64)>) {
        // The youngest load (in program order) feeding this load's
        // sources, captured by the core at allocation time.
        let entry = self.targets.get_mut(op.pc).expect("target present");
        let Some((feeder_pc, feeder_value)) = feeder else {
            return;
        };
        if feeder_pc == op.pc {
            return; // self dependence is Deep-Self's job
        }
        let confirmed = entry.feeder.observe_candidate(feeder_pc);
        if !confirmed {
            return;
        }
        // Learn address = scale * data + base.
        if entry.feeder.learned.is_none() {
            if let Some((scale, base)) = entry.feeder.train_relation(addr, feeder_value) {
                entry.feeder.learned = Some((scale, base));
                self.stats.feeder_learned += 1;
                self.feeders
                    .entry(feeder_pc)
                    .or_insert_with(|| (SelfStride::new(), Vec::new()))
                    .1
                    .push(op.pc);
            }
        }
    }

    /// Emits target prefetches when a confirmed feeder executes.
    fn feeder_fire(&mut self, pc: Pc, addr: Addr, value: u64, image: &MemoryImage) -> Vec<Addr> {
        let Some((self_stride, dependents)) = self.feeders.get_mut(&pc) else {
            return Vec::new();
        };
        // Train the feeder's own stride and predict future feeder
        // addresses (the paper prefetches the feeder up to distance 4 and
        // chains the returned data into target prefetches).
        let feeder_future = self_stride.train_and_predict_all(addr, self.config.feeder_distance);
        let dependents = dependents.clone();

        let mut out = Vec::new();
        for target_pc in dependents {
            let Some(entry) = self.targets.get(target_pc) else {
                continue;
            };
            let Some((scale, base)) = entry.feeder.learned else {
                continue;
            };
            // Distance 0: the data just loaded points at the next target.
            out.push(Addr::new(
                (scale as u64).wrapping_mul(value).wrapping_add(base as u64),
            ));
            // Deeper: chase future feeder instances through the image.
            for &fa in &feeder_future {
                if let Some(v) = image.read(fa) {
                    out.push(Addr::new(
                        (scale as u64).wrapping_mul(v).wrapping_add(base as u64),
                    ));
                }
            }
        }
        self.stats.feeder_issued += out.len() as u64;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catch_trace::ArchReg;

    fn load(pc_n: u64, addr: u64, value: u64) -> MicroOp {
        MicroOp::load(Pc::new(pc_n), ArchReg::new(1), Addr::new(addr), value, &[])
    }

    fn dep_load(pc_n: u64, addr: u64, value: u64, src: ArchReg) -> MicroOp {
        MicroOp::load(
            Pc::new(pc_n),
            ArchReg::new(2),
            Addr::new(addr),
            value,
            &[src],
        )
    }

    #[test]
    fn deep_self_prefetches_critical_strided_load() {
        let mut t = TactPrefetcher::new(TactConfig::paper());
        let image = MemoryImage::new();
        let pc = Pc::new(0x100);
        t.note_critical(pc);
        let mut last = Vec::new();
        for i in 0..40u64 {
            let op = MicroOp::load(pc, ArchReg::new(1), Addr::new(i * 64), 0, &[]);
            last = t.on_load(&op, None, &image);
        }
        assert!(!last.is_empty(), "stable stride must emit prefetches");
        assert!(t.stats().deep_issued > 0);
        // Deep distance grows past 1.
        let max = last.iter().map(|a| a.get()).max().unwrap();
        assert!(max > 40 * 64, "deep prefetch reaches ahead: {max}");
        assert!(max <= 39 * 64 + 16 * 64 + 64, "capped at distance 16");
    }

    #[test]
    fn non_critical_loads_do_not_prefetch() {
        let mut t = TactPrefetcher::new(TactConfig::paper());
        let image = MemoryImage::new();
        for i in 0..40u64 {
            let out = t.on_load(&load(0x100, i * 64, 0), None, &image);
            assert!(out.is_empty());
        }
    }

    #[test]
    fn cross_association_learns_and_fires() {
        let mut t = TactPrefetcher::new(TactConfig::paper());
        let image = MemoryImage::new();
        let trigger = Pc::new(0x200);
        let target = Pc::new(0x204);
        t.note_critical(target);
        // Trigger at X, target at X + 256, same page, random-ish X.
        for i in 0..80u64 {
            let x = 4096 * 10 + (i % 8) * 320; // stays in a few pages
            t.on_load(&load(0x200, x, 0), None, &image);
            t.on_load(&load(0x204, x + 256, 0), None, &image);
        }
        assert!(t.stats().cross_learned > 0, "delta must be learned");
        // Now a fresh trigger instance fires a prefetch for the target.
        let out = t.on_load(&load(0x200, 4096 * 20, 0), None, &image);
        assert!(out.contains(&Addr::new(4096 * 20 + 256)), "out {out:?}");
        let _ = (trigger, target);
    }

    #[test]
    fn feeder_association_chases_pointers() {
        let mut t = TactPrefetcher::new(TactConfig::paper());
        // Memory: feeder array at 0x1000 stride 8 holding pointers to
        // targets at value addresses.
        let mut image = MemoryImage::new();
        let src = ArchReg::new(1);
        for i in 0..200u64 {
            image.record(Addr::new(0x1000 + i * 8), 0x100000 + i * 4096);
        }
        let target = Pc::new(0x304);
        t.note_critical(target);
        let mut fired = Vec::new();
        for i in 0..60u64 {
            let feeder_op = MicroOp::load(
                Pc::new(0x300),
                src,
                Addr::new(0x1000 + i * 8),
                0x100000 + i * 4096,
                &[],
            );
            t.on_op(&feeder_op);
            let f = t.on_load(&feeder_op, None, &image);
            fired.extend(f);
            let target_op = dep_load(0x304, 0x100000 + i * 4096, 7, src);
            t.on_op(&target_op);
            let hint = t.feeder_hint(&target_op);
            t.on_load(&target_op, hint, &image);
        }
        assert!(t.stats().feeder_learned > 0, "feeder relation learned");
        assert!(
            t.stats().feeder_issued > 0,
            "feeder prefetches fired: {fired:?}"
        );
        // The fired addresses must be future target addresses.
        assert!(fired
            .iter()
            .any(|a| a.get() >= 0x100000 && a.get() % 4096 == 0));
    }

    #[test]
    fn component_disable_flags_respected() {
        let mut t = TactPrefetcher::new(TactConfig::disabled());
        let image = MemoryImage::new();
        let pc = Pc::new(0x100);
        t.note_critical(pc);
        for i in 0..40u64 {
            let out = t.on_load(&load(0x100, i * 64, 0), None, &image);
            assert!(out.is_empty(), "disabled TACT must stay quiet");
        }
        assert_eq!(t.stats().deep_issued, 0);
    }

    #[test]
    fn emission_is_capped_per_event() {
        let cfg = TactConfig {
            max_prefetches_per_event: 2,
            ..TactConfig::paper()
        };
        let mut t = TactPrefetcher::new(cfg);
        let image = MemoryImage::new();
        t.note_critical(Pc::new(0x100));
        for i in 0..60u64 {
            let out = t.on_load(&load(0x100, i * 64, 0), None, &image);
            assert!(out.len() <= 2);
        }
    }
}
