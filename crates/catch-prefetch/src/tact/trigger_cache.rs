//! The Cross trigger cache: first load PCs to touch each 4 KB page.

use catch_trace::{PageAddr, Pc};

#[derive(Clone, Debug)]
struct TriggerEntry {
    page: PageAddr,
    pcs: Vec<Pc>,
    last_use: u64,
}

/// Set-associative cache of recently touched 4 KB pages, remembering the
/// first few load PCs that touched each page during its residency
/// (paper: 8 sets × 8 ways, first 4 PCs).
///
/// Critical targets look up their page here to obtain candidate Trigger
/// PCs for Cross-association training: the paper observes that over 85% of
/// useful cross deltas stay within a 4 KB page, so a page-mate that runs
/// earlier is the natural trigger.
#[derive(Debug)]
pub struct TriggerCache {
    sets: usize,
    ways: usize,
    pcs_per_page: usize,
    entries: Vec<Option<TriggerEntry>>,
    tick: u64,
}

impl TriggerCache {
    /// Creates a cache of `sets × ways` pages tracking `pcs_per_page` PCs.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new(sets: usize, ways: usize, pcs_per_page: usize) -> Self {
        assert!(sets > 0 && ways > 0 && pcs_per_page > 0);
        TriggerCache {
            sets,
            ways,
            pcs_per_page,
            entries: vec![None; sets * ways],
            tick: 0,
        }
    }

    fn set_of(&self, page: PageAddr) -> usize {
        (page.get() % self.sets as u64) as usize
    }

    /// Records that load `pc` touched `page`.
    pub fn observe(&mut self, page: PageAddr, pc: Pc) {
        self.tick += 1;
        let set = self.set_of(page);
        let range = set * self.ways..(set + 1) * self.ways;
        // Hit: append PC if room and new.
        for i in range.clone() {
            if let Some(e) = self.entries[i].as_mut() {
                if e.page == page {
                    e.last_use = self.tick;
                    if e.pcs.len() < self.pcs_per_page && !e.pcs.contains(&pc) {
                        e.pcs.push(pc);
                    }
                    return;
                }
            }
        }
        // Allocate (LRU).
        let victim = range
            .clone()
            .find(|&i| self.entries[i].is_none())
            .unwrap_or_else(|| {
                range
                    .min_by_key(|&i| self.entries[i].as_ref().map(|e| e.last_use).unwrap_or(0))
                    .expect("sets are non-empty")
            });
        self.entries[victim] = Some(TriggerEntry {
            page,
            pcs: vec![pc],
            last_use: self.tick,
        });
    }

    /// Candidate trigger PCs for `page` (oldest first).
    pub fn candidates(&self, page: PageAddr) -> Vec<Pc> {
        let set = self.set_of(page);
        for i in set * self.ways..(set + 1) * self.ways {
            if let Some(e) = self.entries[i].as_ref() {
                if e.page == page {
                    return e.pcs.clone();
                }
            }
        }
        Vec::new()
    }

    /// Number of resident pages.
    pub fn occupancy(&self) -> usize {
        self.entries.iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(n: u64) -> PageAddr {
        PageAddr::new(n)
    }

    fn pc(n: u64) -> Pc {
        Pc::new(n * 4)
    }

    #[test]
    fn tracks_first_pcs_only() {
        let mut t = TriggerCache::new(8, 8, 4);
        for i in 0..6 {
            t.observe(page(1), pc(i));
        }
        let c = t.candidates(page(1));
        assert_eq!(c, vec![pc(0), pc(1), pc(2), pc(3)]);
    }

    #[test]
    fn repeat_pc_not_duplicated() {
        let mut t = TriggerCache::new(8, 8, 4);
        t.observe(page(1), pc(1));
        t.observe(page(1), pc(1));
        t.observe(page(1), pc(2));
        assert_eq!(t.candidates(page(1)), vec![pc(1), pc(2)]);
    }

    #[test]
    fn unknown_page_has_no_candidates() {
        let t = TriggerCache::new(8, 8, 4);
        assert!(t.candidates(page(9)).is_empty());
    }

    #[test]
    fn lru_replacement_within_set() {
        let mut t = TriggerCache::new(1, 2, 4);
        t.observe(page(1), pc(1));
        t.observe(page(2), pc(2));
        t.observe(page(1), pc(3)); // page 1 more recent
        t.observe(page(3), pc(4)); // evicts page 2
        assert!(t.candidates(page(2)).is_empty());
        assert_eq!(t.candidates(page(1)), vec![pc(1), pc(3)]);
        assert_eq!(t.occupancy(), 2);
    }
}
