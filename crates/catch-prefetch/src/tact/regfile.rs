//! Register-flow tracking for the Feeder prefetcher.

use catch_trace::{ArchReg, MicroOp, OpClass, Pc};

/// Per-architectural-register tracking of the youngest load influencing
/// its contents (paper Section IV-B1, "TACT - Feeder").
///
/// * A load writes its own PC (and loaded value) into its destination
///   register's slot.
/// * A non-load op propagates the *youngest* load PC across its source
///   registers into its destination.
///
/// The feeder candidate for a load is then the youngest load PC across
/// its source registers.
#[derive(Debug)]
pub struct FeederRegFile {
    /// (load PC, loaded value, age) per architectural register.
    slots: Vec<Option<(Pc, u64, u64)>>,
    tick: u64,
}

impl FeederRegFile {
    /// Creates an empty register file.
    pub fn new() -> Self {
        FeederRegFile {
            slots: vec![None; ArchReg::COUNT],
            tick: 0,
        }
    }

    /// Observes one retired micro-op.
    pub fn observe(&mut self, op: &MicroOp) {
        self.tick += 1;
        let Some(dst) = op.dst else { return };
        if op.class == OpClass::Load {
            self.slots[dst.index()] = Some((op.pc, op.load_value, self.tick));
        } else {
            // Propagate the youngest load among sources.
            let youngest = op
                .sources()
                .filter_map(|r| self.slots[r.index()])
                .max_by_key(|&(_, _, age)| age);
            self.slots[dst.index()] = youngest;
        }
    }

    /// The youngest load (PC, value) feeding any source of `op`.
    pub fn youngest_feeder(&self, op: &MicroOp) -> Option<(Pc, u64)> {
        op.sources()
            .filter_map(|r| self.slots[r.index()])
            .max_by_key(|&(_, _, age)| age)
            .map(|(pc, v, _)| (pc, v))
    }

    /// Current tracking for one register (diagnostics).
    pub fn slot(&self, reg: ArchReg) -> Option<(Pc, u64)> {
        self.slots[reg.index()].map(|(pc, v, _)| (pc, v))
    }
}

impl Default for FeederRegFile {
    fn default() -> Self {
        FeederRegFile::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catch_trace::Addr;

    fn r(i: u8) -> ArchReg {
        ArchReg::new(i)
    }

    #[test]
    fn load_sets_own_pc() {
        let mut f = FeederRegFile::new();
        let op = MicroOp::load(Pc::new(0x10), r(1), Addr::new(8), 42, &[]);
        f.observe(&op);
        assert_eq!(f.slot(r(1)), Some((Pc::new(0x10), 42)));
    }

    #[test]
    fn alu_propagates_youngest_load() {
        let mut f = FeederRegFile::new();
        f.observe(&MicroOp::load(Pc::new(0x10), r(1), Addr::new(8), 1, &[]));
        f.observe(&MicroOp::load(Pc::new(0x14), r(2), Addr::new(16), 2, &[]));
        // r3 = r1 + r2 -> youngest is the load at 0x14.
        f.observe(&MicroOp::compute(
            Pc::new(0x18),
            OpClass::Alu,
            Some(r(3)),
            &[r(1), r(2)],
        ));
        assert_eq!(f.slot(r(3)), Some((Pc::new(0x14), 2)));
    }

    #[test]
    fn youngest_feeder_for_dependent_load() {
        let mut f = FeederRegFile::new();
        f.observe(&MicroOp::load(
            Pc::new(0x10),
            r(1),
            Addr::new(8),
            0xBEEF,
            &[],
        ));
        let target = MicroOp::load(Pc::new(0x20), r(2), Addr::new(0xBEEF), 0, &[r(1)]);
        assert_eq!(f.youngest_feeder(&target), Some((Pc::new(0x10), 0xBEEF)));
    }

    #[test]
    fn untracked_sources_give_none() {
        let f = FeederRegFile::new();
        let op = MicroOp::load(Pc::new(0x20), r(2), Addr::new(0), 0, &[r(5)]);
        assert_eq!(f.youngest_feeder(&op), None);
    }

    #[test]
    fn overwrite_follows_program_order() {
        let mut f = FeederRegFile::new();
        f.observe(&MicroOp::load(Pc::new(0x10), r(1), Addr::new(8), 1, &[]));
        f.observe(&MicroOp::load(Pc::new(0x30), r(1), Addr::new(24), 3, &[]));
        assert_eq!(f.slot(r(1)), Some((Pc::new(0x30), 3)));
    }
}
