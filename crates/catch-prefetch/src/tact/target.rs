//! The Critical Target PC Table and its per-entry learning state.

use crate::tact::selfstride::SelfStride;
use catch_trace::Pc;

const DELTA_CONF_LEARN: u8 = 2;
const FEEDER_CONF_CONFIRM: u8 = 3;
const BASE_CONF_LEARN: u8 = 2;
const SCALES: [u8; 4] = [1, 2, 4, 8];

/// Cross-association training state for one target.
#[derive(Debug, Clone, Default)]
pub struct CrossState {
    /// Trigger candidate currently under evaluation.
    pub current: Option<Pc>,
    /// Candidates already tried (including the current one).
    pub tried: Vec<Option<Pc>>,
    instances: u8,
    wraps: u8,
    last_delta: i64,
    delta_conf: u8,
}

impl CrossState {
    /// Adopts a fresh candidate.
    pub fn adopt(&mut self, pc: Pc) {
        self.current = Some(pc);
        self.tried.push(Some(pc));
        self.instances = 0;
        self.last_delta = 0;
        self.delta_conf = 0;
    }

    /// Observes the delta between the target address and the candidate's
    /// last address; returns true when the delta is stable enough to learn.
    pub fn observe_delta(&mut self, delta: i64) -> bool {
        self.instances = self.instances.saturating_add(1);
        if delta == self.last_delta && delta != 0 {
            self.delta_conf = (self.delta_conf + 1).min(3);
        } else {
            self.last_delta = delta;
            self.delta_conf = 0;
        }
        self.delta_conf >= DELTA_CONF_LEARN
    }

    /// True when the current candidate has used up its instances.
    pub fn exhausted(&self, per_candidate: u8, max_wraps: u8) -> bool {
        self.instances >= per_candidate && self.wraps <= max_wraps
    }

    /// Moves to the next candidate (or wraps the search).
    pub fn advance(&mut self, next: Option<Pc>) {
        match next {
            Some(pc) => self.adopt(pc),
            None => {
                // Wrap: clear history and start over, bounded.
                self.wraps = self.wraps.saturating_add(1);
                self.tried.clear();
                self.current = None;
                self.instances = 0;
            }
        }
    }
}

/// Feeder training state for one target.
#[derive(Debug, Clone, Default)]
pub struct FeederState {
    candidate: Option<Pc>,
    candidate_conf: u8,
    scale_idx: usize,
    base: i64,
    base_conf: u8,
    /// Learned `(scale, base)` of `address = scale × data + base`.
    pub learned: Option<(u8, i64)>,
}

impl FeederState {
    /// Observes the youngest-feeder candidate for an instance; returns true
    /// once the candidate is confirmed (2-bit confidence saturated).
    pub fn observe_candidate(&mut self, pc: Pc) -> bool {
        match self.candidate {
            Some(c) if c == pc => {
                self.candidate_conf = (self.candidate_conf + 1).min(FEEDER_CONF_CONFIRM);
            }
            Some(_) => {
                if self.candidate_conf > 0 {
                    self.candidate_conf -= 1;
                } else {
                    self.candidate = Some(pc);
                    self.learned = None;
                    self.base_conf = 0;
                    self.scale_idx = 0;
                }
            }
            None => {
                self.candidate = Some(pc);
                self.candidate_conf = 1;
            }
        }
        self.candidate_conf >= FEEDER_CONF_CONFIRM
    }

    /// The confirmed feeder PC, if any.
    pub fn confirmed(&self) -> Option<Pc> {
        (self.candidate_conf >= FEEDER_CONF_CONFIRM)
            .then_some(self.candidate)
            .flatten()
    }

    /// Trains `address = scale × data + base`, limited to power-of-two
    /// scales (three shifts in hardware). Returns the relation when its
    /// confidence saturates.
    pub fn train_relation(&mut self, addr: catch_trace::Addr, value: u64) -> Option<(u8, i64)> {
        let scale = SCALES[self.scale_idx];
        let base = addr.get().wrapping_sub((scale as u64).wrapping_mul(value)) as i64;
        if base == self.base && self.base_conf > 0 {
            self.base_conf = (self.base_conf + 1).min(3);
        } else if self.base_conf > 0 {
            self.base_conf -= 1;
            if self.base_conf == 0 {
                // Try the next scale.
                self.scale_idx = (self.scale_idx + 1) % SCALES.len();
            }
        } else {
            self.base = base;
            self.base_conf = 1;
        }
        (self.base_conf >= BASE_CONF_LEARN).then_some((scale, self.base))
    }
}

/// One critical target's complete learning state.
#[derive(Debug, Clone, Default)]
pub struct TargetEntry {
    /// Deep-Self stride state.
    pub self_stride: SelfStride,
    /// Cross training state.
    pub cross: CrossState,
    /// Learned cross association `(trigger, delta)`.
    pub cross_learned: Option<(Pc, i64)>,
    /// Feeder training state.
    pub feeder: FeederState,
    last_use: u64,
}

/// The Critical Target PC Table (paper: 32 entries).
#[derive(Debug)]
pub struct TargetTable {
    capacity: usize,
    entries: Vec<(Pc, TargetEntry)>,
    tick: u64,
}

impl TargetTable {
    /// Creates a table for up to `capacity` targets.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "target table needs capacity");
        TargetTable {
            capacity,
            entries: Vec::with_capacity(capacity),
            tick: 0,
        }
    }

    /// True if `pc` has an entry.
    pub fn contains(&self, pc: Pc) -> bool {
        self.entries.iter().any(|(p, _)| *p == pc)
    }

    /// Number of live targets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no targets are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Refreshes `pc`'s entry or allocates one (LRU replacement).
    /// Returns true if a new entry was allocated.
    pub fn touch_or_allocate(&mut self, pc: Pc) -> bool {
        self.tick += 1;
        let tick = self.tick;
        if let Some((_, e)) = self.entries.iter_mut().find(|(p, _)| *p == pc) {
            e.last_use = tick;
            return false;
        }
        if self.entries.len() >= self.capacity {
            let (victim_idx, _) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, e))| e.last_use)
                .expect("table is non-empty");
            self.entries.swap_remove(victim_idx);
        }
        self.entries.push((
            pc,
            TargetEntry {
                last_use: tick,
                ..TargetEntry::default()
            },
        ));
        true
    }

    /// Immutable access to a target's state.
    pub fn get(&self, pc: Pc) -> Option<&TargetEntry> {
        self.entries.iter().find(|(p, _)| *p == pc).map(|(_, e)| e)
    }

    /// Mutable access to a target's state.
    pub fn get_mut(&mut self, pc: Pc) -> Option<&mut TargetEntry> {
        self.tick += 1;
        let tick = self.tick;
        self.entries
            .iter_mut()
            .find(|(p, _)| *p == pc)
            .map(|(_, e)| {
                e.last_use = tick;
                e
            })
    }

    /// All tracked PCs.
    pub fn pcs(&self) -> Vec<Pc> {
        self.entries.iter().map(|(p, _)| *p).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catch_trace::Addr;

    fn pc(n: u64) -> Pc {
        Pc::new(n * 4)
    }

    #[test]
    fn lru_eviction_when_full() {
        let mut t = TargetTable::new(2);
        assert!(t.touch_or_allocate(pc(1)));
        assert!(t.touch_or_allocate(pc(2)));
        assert!(!t.touch_or_allocate(pc(1))); // refresh
        assert!(t.touch_or_allocate(pc(3))); // evicts 2
        assert!(t.contains(pc(1)));
        assert!(!t.contains(pc(2)));
        assert!(t.contains(pc(3)));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn cross_state_learns_stable_delta() {
        let mut c = CrossState::default();
        c.adopt(pc(9));
        assert!(!c.observe_delta(256));
        assert!(!c.observe_delta(256));
        assert!(c.observe_delta(256));
        // Unstable delta resets.
        let mut c2 = CrossState::default();
        c2.adopt(pc(9));
        for d in [1, 2, 3, 4, 5] {
            assert!(!c2.observe_delta(d));
        }
    }

    #[test]
    fn cross_candidate_exhaustion_and_advance() {
        let mut c = CrossState::default();
        c.adopt(pc(1));
        for _ in 0..16 {
            c.observe_delta(0);
        }
        assert!(c.exhausted(16, 4));
        c.advance(Some(pc(2)));
        assert_eq!(c.current, Some(pc(2)));
        assert!(!c.exhausted(16, 4));
        c.advance(None); // wrap
        assert_eq!(c.current, None);
        assert!(c.tried.is_empty());
    }

    #[test]
    fn feeder_candidate_confirmation() {
        let mut f = FeederState::default();
        assert!(!f.observe_candidate(pc(5)));
        assert!(!f.observe_candidate(pc(5)));
        assert!(f.observe_candidate(pc(5)));
        assert_eq!(f.confirmed(), Some(pc(5)));
        // Competing candidate decays confidence but needs persistence.
        f.observe_candidate(pc(6));
        assert!(f.observe_candidate(pc(5)));
    }

    #[test]
    fn feeder_relation_learns_scale_and_base() {
        let mut f = FeederState::default();
        for _ in 0..3 {
            f.observe_candidate(pc(5));
        }
        // address = 8 * value + 0x1000
        let mut learned = None;
        for v in 0..20u64 {
            learned = f.train_relation(Addr::new(8 * v + 0x1000), v);
        }
        // The trainer tries scale 1 first; base = addr - v is not stable,
        // so it advances through scales until 8 sticks.
        assert_eq!(learned, Some((8, 0x1000)));
    }

    #[test]
    fn feeder_relation_scale_one_pointer() {
        let mut f = FeederState::default();
        let mut learned = None;
        for v in 0..10u64 {
            let ptr = 0x4000 + v * 4096;
            learned = f.train_relation(Addr::new(ptr), ptr);
        }
        assert_eq!(learned, Some((1, 0)));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = TargetTable::new(0);
    }
}
