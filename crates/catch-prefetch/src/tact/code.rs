//! TACT code runahead prefetching (paper Section IV-B2).

use catch_trace::LineAddr;

/// Counters for the code runahead prefetcher.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CodeRunaheadStats {
    /// Stall events during which the runahead was activated.
    pub activations: u64,
    /// Code lines prefetched.
    pub issued: u64,
    /// Resets due to branch mispredictions or the NIP catching up.
    pub resets: u64,
}

/// Front-end code prefetcher: while the Next Instruction Pointer (NIP) is
/// stalled on an L1I miss, a shadow Code-Next-Prefetch-IP (CNPIP) runs
/// ahead along the *predicted* instruction stream and prefetches the code
/// lines it crosses.
///
/// The walking itself is done by the front end (which owns the branch
/// predictor and the fetch stream); this type holds the CNPIP policy:
/// how far to run ahead per stall, line deduplication, and reset
/// bookkeeping.
#[derive(Debug)]
pub struct CodeRunahead {
    max_lines_per_stall: usize,
    last_issued: Option<LineAddr>,
    stats: CodeRunaheadStats,
}

impl CodeRunahead {
    /// Creates a runahead engine issuing at most `max_lines_per_stall`
    /// line prefetches per activation.
    ///
    /// # Panics
    ///
    /// Panics if `max_lines_per_stall` is zero.
    pub fn new(max_lines_per_stall: usize) -> Self {
        assert!(max_lines_per_stall > 0, "runahead needs a budget");
        CodeRunahead {
            max_lines_per_stall,
            last_issued: None,
            stats: CodeRunaheadStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> CodeRunaheadStats {
        self.stats
    }

    /// Called when the front end stalls on `miss_line`; `predicted_lines`
    /// is the predicted future code-line stream beyond the stalled fetch
    /// (already branch-predicted by the caller). Returns the distinct
    /// lines to prefetch, skipping the missing line itself.
    pub fn on_stall(
        &mut self,
        miss_line: LineAddr,
        predicted_lines: impl Iterator<Item = LineAddr>,
    ) -> Vec<LineAddr> {
        self.stats.activations += 1;
        let mut out: Vec<LineAddr> = Vec::new();
        for line in predicted_lines {
            if out.len() >= self.max_lines_per_stall {
                break;
            }
            if line == miss_line || out.contains(&line) || Some(line) == self.last_issued {
                continue;
            }
            out.push(line);
        }
        self.stats.issued += out.len() as u64;
        self.last_issued = out.last().copied().or(self.last_issued);
        out
    }

    /// Announces an issued code prefetch's expected arrival cycle to
    /// the timeq engine via `sink` (accounting only — see
    /// [`catch_timeq::Source::gating`]).
    pub fn note_issued(&self, sink: &mut catch_timeq::WakeBuf, arrival: u64) {
        sink.post_hint(arrival, catch_timeq::Source::Tact);
    }

    /// Called on a branch misprediction or when the NIP catches up with
    /// the CNPIP: the runahead restarts from the new stream.
    pub fn on_redirect(&mut self) {
        self.stats.resets += 1;
        self.last_issued = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn issues_deduplicated_future_lines() {
        let mut r = CodeRunahead::new(4);
        let future = [line(10), line(10), line(11), line(12), line(11)];
        let out = r.on_stall(line(9), future.into_iter());
        assert_eq!(out, vec![line(10), line(11), line(12)]);
        assert_eq!(r.stats().issued, 3);
    }

    #[test]
    fn skips_the_missing_line_itself() {
        let mut r = CodeRunahead::new(4);
        let out = r.on_stall(line(9), [line(9), line(10)].into_iter());
        assert_eq!(out, vec![line(10)]);
    }

    #[test]
    fn respects_budget() {
        let mut r = CodeRunahead::new(2);
        let out = r.on_stall(line(0), (1..10).map(line));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn redirect_resets_dedup_state() {
        let mut r = CodeRunahead::new(4);
        r.on_stall(line(0), [line(1)].into_iter());
        r.on_redirect();
        let out = r.on_stall(line(0), [line(1)].into_iter());
        assert_eq!(out, vec![line(1)]);
        assert_eq!(r.stats().resets, 1);
    }
}
