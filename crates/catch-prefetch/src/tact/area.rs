//! Storage accounting for the TACT structures (paper Figure 9).
//!
//! The paper budgets ~1.2 KB for all TACT state:
//!
//! * Critical Target PC table — 32 entries × (Deep-Self 2 B + Cross 5 B +
//!   Feeder 10.5 B + tag) ≈ 640 B
//! * Feeder PC table — 32 entries × 2 B (Deep-Self state) = 64 B
//! * Feeder tracking — 16 architectural registers × 3 B (youngest load
//!   PC) = 48 B
//! * Trigger cache — 8 sets × 8 ways × 6 B (first 4 load PCs per 4 KB
//!   page) = 384 B
//! * Cross PC candidates — 32 × 2 B = 64 B
//! * Code next-prefetch instruction pointer — 8 B

/// Byte budget of each TACT structure (Figure 9).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TactArea {
    /// Critical Target PC table (32 entries with per-component state).
    pub target_table_bytes: u64,
    /// Feeder PC table (32 entries).
    pub feeder_table_bytes: u64,
    /// Per-architectural-register feeder tracking (16 registers).
    pub feeder_tracking_bytes: u64,
    /// Cross trigger cache (8 sets × 8 ways).
    pub trigger_cache_bytes: u64,
    /// Cross candidate PCs (32).
    pub cross_candidates_bytes: u64,
    /// Code next-prefetch instruction pointer.
    pub code_cnpip_bytes: u64,
}

/// The paper's Figure 9 budget.
pub const FIGURE_9: TactArea = TactArea {
    // 32 × (2 B Deep-Self + 5 B Cross + 10.5 B Feeder) + tags = 640 B.
    target_table_bytes: 640,
    feeder_table_bytes: 64,
    feeder_tracking_bytes: 48,
    trigger_cache_bytes: 384,
    cross_candidates_bytes: 64,
    code_cnpip_bytes: 8,
};

impl TactArea {
    /// Total bytes.
    pub const fn total_bytes(&self) -> u64 {
        self.target_table_bytes
            + self.feeder_table_bytes
            + self.feeder_tracking_bytes
            + self.trigger_cache_bytes
            + self.cross_candidates_bytes
            + self.code_cnpip_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_9_totals_about_1_2_kb() {
        let kb = FIGURE_9.total_bytes() as f64 / 1024.0;
        assert!(
            (1.0..1.4).contains(&kb),
            "TACT area {kb:.2} KB should be ~1.2 KB"
        );
    }

    #[test]
    fn target_table_dominates() {
        // Evaluate through a runtime copy so the assertion exercises the
        // accessors rather than constant-folding away.
        let area: TactArea = FIGURE_9;
        let parts = [
            area.target_table_bytes,
            area.trigger_cache_bytes,
            area.feeder_table_bytes,
        ];
        assert!(parts.windows(2).all(|w| w[0] > w[1]), "{parts:?}");
    }
}
