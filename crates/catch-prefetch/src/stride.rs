//! Baseline PC-indexed stride prefetcher (Fu et al., MICRO'92 style).

use catch_trace::{Addr, LineAddr, Pc};

#[derive(Copy, Clone, Debug)]
struct StrideEntry {
    tag: u64,
    last_addr: Addr,
    stride: i64,
    confidence: u8,
}

/// Counters for the stride prefetcher.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct StrideStats {
    /// Load observations.
    pub trains: u64,
    /// Prefetches emitted.
    pub issued: u64,
}

const CONFIDENCE_MAX: u8 = 3;
const CONFIDENCE_ISSUE: u8 = 2;

/// The baseline L1 stride prefetcher: per-PC last address, stride and a
/// 2-bit confidence counter; prefetch distance 1 (the paper notes that
/// raising the distance for *all* PCs hurts — that is TACT Deep-Self's
/// job, for critical PCs only).
#[derive(Debug)]
pub struct StridePrefetcher {
    entries: Vec<Option<StrideEntry>>,
    stats: StrideStats,
}

impl StridePrefetcher {
    /// Creates a prefetcher with `entries` direct-mapped PC slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "stride table needs capacity");
        StridePrefetcher {
            entries: vec![None; entries],
            stats: StrideStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> StrideStats {
        self.stats
    }

    fn slot(&self, pc: Pc) -> usize {
        (pc.get() / 4 % self.entries.len() as u64) as usize
    }

    /// Observes a demand load; returns the line to prefetch into the L1,
    /// if a stable stride is known.
    pub fn on_load(&mut self, pc: Pc, addr: Addr) -> Option<LineAddr> {
        self.stats.trains += 1;
        let slot = self.slot(pc);
        let tag = pc.get();
        let entry = &mut self.entries[slot];
        match entry {
            Some(e) if e.tag == tag => {
                let delta = addr.get() as i64 - e.last_addr.get() as i64;
                if delta == e.stride && delta != 0 {
                    e.confidence = (e.confidence + 1).min(CONFIDENCE_MAX);
                } else if e.confidence > 0 {
                    e.confidence -= 1;
                } else {
                    e.stride = delta;
                }
                e.last_addr = addr;
                if e.confidence >= CONFIDENCE_ISSUE && e.stride != 0 {
                    self.stats.issued += 1;
                    let next = addr.offset(e.stride);
                    // Only emit when the prefetch crosses into another line;
                    // same-line strides are already covered by the demand.
                    if next.line() != addr.line() {
                        return Some(next.line());
                    }
                }
                None
            }
            _ => {
                *entry = Some(StrideEntry {
                    tag,
                    last_addr: addr,
                    stride: 0,
                    confidence: 0,
                });
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pc(n: u64) -> Pc {
        Pc::new(n * 4)
    }

    #[test]
    fn learns_line_crossing_stride() {
        let mut p = StridePrefetcher::new(64);
        let mut got = None;
        for i in 0..6u64 {
            got = p.on_load(pc(1), Addr::new(i * 64));
        }
        assert_eq!(got, Some(Addr::new(6 * 64).line()));
    }

    #[test]
    fn same_line_stride_is_suppressed() {
        let mut p = StridePrefetcher::new(64);
        let mut got = None;
        for i in 0..8u64 {
            got = p.on_load(pc(1), Addr::new(i * 8)); // 8-byte stride
        }
        // Stride is stable but stays within the line most accesses.
        assert!(got.is_none() || got == Some(Addr::new(64).line()));
    }

    #[test]
    fn irregular_pattern_earns_no_prefetch() {
        let mut p = StridePrefetcher::new(64);
        let addrs = [0u64, 640, 64, 8192, 320];
        let mut got = None;
        for a in addrs {
            got = p.on_load(pc(1), Addr::new(a));
        }
        assert!(got.is_none());
    }

    #[test]
    fn distinct_pcs_do_not_interfere() {
        let mut p = StridePrefetcher::new(64);
        for i in 0..6u64 {
            p.on_load(pc(1), Addr::new(i * 64));
            p.on_load(pc(2), Addr::new(1_000_000 + i * 128));
        }
        let a = p.on_load(pc(1), Addr::new(6 * 64));
        let b = p.on_load(pc(2), Addr::new(1_000_000 + 6 * 128));
        assert_eq!(a, Some(Addr::new(7 * 64).line()));
        assert_eq!(b, Some(Addr::new(1_000_000 + 7 * 128).line()));
    }

    #[test]
    fn conflicting_pcs_realias() {
        let mut p = StridePrefetcher::new(1); // everything aliases
        for i in 0..4u64 {
            p.on_load(pc(1), Addr::new(i * 64));
        }
        // A different PC steals the slot.
        assert!(p.on_load(pc(2), Addr::new(0)).is_none());
        assert!(p.on_load(pc(1), Addr::new(0)).is_none());
    }
}
