//! Baseline multi-stream prefetcher (Srinath et al. HPCA'07 /
//! Dahlgren & Stenström style), prefetching into the mid-level cache.

use catch_trace::{Addr, LineAddr, PageAddr};

#[derive(Copy, Clone, Debug)]
struct Stream {
    page: PageAddr,
    last_line: LineAddr,
    direction: i64,
    confidence: u8,
    last_use: u64,
}

/// Counters for the stream prefetcher.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Miss observations used for training.
    pub trains: u64,
    /// Prefetch lines emitted.
    pub issued: u64,
    /// Streams allocated.
    pub allocations: u64,
}

const CONFIRM: u8 = 2;

/// Tracks multiple concurrent sequential streams (one per 4 KB page) and
/// prefetches `degree` lines ahead once a stream's direction is confirmed.
#[derive(Debug)]
pub struct StreamPrefetcher {
    streams: Vec<Option<Stream>>,
    degree: usize,
    distance: i64,
    tick: u64,
    stats: StreamStats,
}

impl StreamPrefetcher {
    /// Creates a prefetcher tracking up to `streams` streams with the given
    /// prefetch `degree` (lines fetched per trigger) starting `distance`
    /// lines ahead of the miss (aggressive lookahead hides DRAM latency,
    /// as the paper's "aggressive multi-stream prefetcher" does).
    ///
    /// # Panics
    ///
    /// Panics if `streams` or `degree` is zero.
    pub fn new(streams: usize, degree: usize, distance: usize) -> Self {
        assert!(
            streams > 0 && degree > 0,
            "stream prefetcher needs capacity"
        );
        StreamPrefetcher {
            streams: vec![None; streams],
            degree,
            distance: distance as i64,
            tick: 0,
            stats: StreamStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Observes an L1 miss; returns lines to prefetch into the mid level.
    pub fn on_l1_miss(&mut self, addr: Addr) -> Vec<LineAddr> {
        self.stats.trains += 1;
        self.tick += 1;
        let page = addr.page();
        let line = addr.line();

        // Find the stream for this page.
        if let Some(stream) = self.streams.iter_mut().flatten().find(|s| s.page == page) {
            stream.last_use = self.tick;
            let delta = line.get() as i64 - stream.last_line.get() as i64;
            if delta == 0 {
                return Vec::new();
            }
            let dir = delta.signum();
            if dir == stream.direction {
                stream.confidence = (stream.confidence + 1).min(CONFIRM);
            } else {
                stream.direction = dir;
                stream.confidence = 1;
            }
            stream.last_line = line;
            if stream.confidence >= CONFIRM {
                let dir = stream.direction;
                let degree = self.degree;
                let distance = self.distance;
                self.stats.issued += degree as u64;
                return (1..=degree as i64)
                    .map(|d| line.offset(dir * (distance + d)))
                    .collect();
            }
            return Vec::new();
        }

        // Allocate a new stream, evicting the least recently used.
        self.stats.allocations += 1;
        let slot = match self.streams.iter().position(|s| s.is_none()) {
            Some(i) => i,
            None => self
                .streams
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.map(|s| s.last_use).unwrap_or(0))
                .map(|(i, _)| i)
                .expect("stream table is non-empty"),
        };
        self.streams[slot] = Some(Stream {
            page,
            last_line: line,
            direction: 1,
            confidence: 0,
            last_use: self.tick,
        });
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascending_stream_prefetches_ahead() {
        let mut p = StreamPrefetcher::new(16, 2, 0);
        let mut out = Vec::new();
        for i in 0..4u64 {
            out = p.on_l1_miss(Addr::new(i * 64));
        }
        assert_eq!(out, vec![LineAddr::new(4), LineAddr::new(5)]);
    }

    #[test]
    fn descending_stream_follows_direction() {
        let mut p = StreamPrefetcher::new(16, 1, 0);
        let mut out = Vec::new();
        for i in (0..6u64).rev() {
            out = p.on_l1_miss(Addr::new(i * 64));
        }
        assert_eq!(out, vec![LineAddr::new(0).offset(-1)]);
    }

    #[test]
    fn repeated_same_line_is_quiet() {
        let mut p = StreamPrefetcher::new(16, 2, 0);
        p.on_l1_miss(Addr::new(0));
        let out = p.on_l1_miss(Addr::new(8)); // same line
        assert!(out.is_empty());
    }

    #[test]
    fn concurrent_streams_per_page() {
        let mut p = StreamPrefetcher::new(16, 1, 0);
        for i in 0..4u64 {
            p.on_l1_miss(Addr::new(i * 64)); // page 0
            p.on_l1_miss(Addr::new(8192 + i * 64)); // page 2
        }
        let a = p.on_l1_miss(Addr::new(4 * 64));
        let b = p.on_l1_miss(Addr::new(8192 + 4 * 64));
        assert_eq!(a, vec![LineAddr::new(5)]);
        assert_eq!(b, vec![LineAddr::new(8192 / 64 + 5)]);
    }

    #[test]
    fn lru_stream_replacement() {
        let mut p = StreamPrefetcher::new(2, 1, 0);
        p.on_l1_miss(Addr::new(0)); // page 0
        p.on_l1_miss(Addr::new(4096)); // page 1
        p.on_l1_miss(Addr::new(64)); // touch page 0 again
        p.on_l1_miss(Addr::new(8192)); // page 2 evicts page 1
        assert_eq!(p.stats().allocations, 3);
        // Page 1 must retrain from scratch.
        let out = p.on_l1_miss(Addr::new(4096 + 64));
        assert!(out.is_empty());
    }

    #[test]
    fn direction_flip_resets_confidence() {
        let mut p = StreamPrefetcher::new(4, 1, 0);
        for i in 0..4u64 {
            p.on_l1_miss(Addr::new(i * 64));
        }
        // Reverse.
        let out = p.on_l1_miss(Addr::new(64));
        assert!(out.is_empty());
    }
}
