//! Prefetchers for the CATCH simulator.
//!
//! Two groups:
//!
//! * **Baseline** prefetchers present in the paper's baseline machine:
//!   a PC-indexed [`StridePrefetcher`] at the L1 and an aggressive
//!   multi-stream [`StreamPrefetcher`] feeding the L2/LLC.
//! * **TACT** — Timeliness Aware and Criticality Triggered prefetchers
//!   (paper Section IV-B), which prefetch the cache lines of a small set
//!   of *critical* load PCs from the L2/LLC into the L1, just in time:
//!   - [`tact::TactPrefetcher`] hosts the **Cross** (trigger-PC address
//!     association), **Deep-Self** (long-distance stride for critical PCs)
//!     and **Feeder** (data→address association) prefetchers with the
//!     paper's structure sizes (Figure 9),
//!   - [`tact::CodeRunahead`] implements the front-end code prefetcher
//!     that runs the next-prefetch instruction pointer ahead during L1I
//!     miss stalls.
//!
//! The [`MemoryImage`] gives the Feeder prefetcher the view of memory that
//! real hardware gets for free: the value a prefetched feeder line holds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod image;
mod stream;
mod stride;
pub mod tact;

pub use image::MemoryImage;
pub use stream::{StreamPrefetcher, StreamStats};
pub use stride::{StridePrefetcher, StrideStats};
pub use tact::{CodeRunahead, TactComponent, TactConfig, TactPrefetcher, TactStats};
