//! Learning properties of the TACT prefetchers on synthetic access
//! patterns.
//!
//! Properties run on the in-repo deterministic case driver
//! ([`catch_trace::rng::Cases`]); a failing case prints the seed that
//! reproduces it.

use catch_prefetch::{MemoryImage, StridePrefetcher, TactConfig, TactPrefetcher};
use catch_trace::rng::Cases;
use catch_trace::{Addr, ArchReg, MicroOp, Pc};

fn load(pc: u64, addr: u64, value: u64) -> MicroOp {
    MicroOp::load(Pc::new(pc), ArchReg::new(1), Addr::new(addr), value, &[])
}

/// The stride prefetcher learns any non-zero line-crossing stride and
/// predicts exactly `addr + stride`.
#[test]
fn stride_learns_any_constant_stride() {
    Cases::new(64).run(|rng| {
        let base = rng.gen_range(0u64..1 << 30);
        let stride = rng.gen_range(64i64..4096);
        let mut p = StridePrefetcher::new(64);
        let pc = Pc::new(0x40);
        let mut predicted = None;
        let mut last = 0u64;
        for i in 0..10u64 {
            last = (base as i64 + stride * i as i64) as u64;
            predicted = p.on_load(pc, Addr::new(last));
        }
        assert_eq!(
            predicted,
            Some(Addr::new((last as i64 + stride) as u64).line())
        );
    });
}

/// Deep-Self on a critical PC always prefetches along the stride
/// direction and never beyond 16 elements.
#[test]
fn deep_self_stays_within_distance() {
    Cases::new(64).run(|rng| {
        let stride = [64i64, 128, -64, 256][rng.gen_range(0usize..4)];
        let reps = rng.gen_range(20usize..60);
        let mut tact = TactPrefetcher::new(TactConfig::paper());
        let image = MemoryImage::new();
        let pc = 0x100u64;
        tact.note_critical(Pc::new(pc));
        let base: i64 = 1 << 30;
        for i in 0..reps {
            let addr = (base + stride * i as i64) as u64;
            let out = tact.on_load(&load(pc, addr, 0), None, &image);
            for a in out {
                let delta = a.get() as i64 - addr as i64;
                assert!(
                    delta.signum() == stride.signum(),
                    "prefetch against stride direction: {delta}"
                );
                assert!(
                    delta.abs() <= stride.abs() * 16,
                    "prefetch {delta} beyond 16 elements of stride {stride}"
                );
            }
        }
    });
}

/// Feeder learns pointer identity (scale 1, base 0): every emitted
/// prefetch address equals some pointer value the feeder loaded.
#[test]
fn feeder_prefetches_only_loaded_pointers() {
    Cases::new(64).run(|rng| {
        let count = rng.gen_range(20u64..80);
        let mut tact = TactPrefetcher::new(TactConfig::paper());
        let mut image = MemoryImage::new();
        // Feeder array: slot i at F + 8i holds pointer P_i.
        let feeder_base = 1u64 << 20;
        let ptrs: Vec<u64> = (0..count).map(|i| (1 << 30) + i * 4096).collect();
        for (i, &p) in ptrs.iter().enumerate() {
            image.record(Addr::new(feeder_base + i as u64 * 8), p);
        }
        let target_pc = Pc::new(0x204);
        tact.note_critical(target_pc);
        let mut emitted = Vec::new();
        for (i, &p) in ptrs.iter().enumerate() {
            let feeder_op = load(0x200, feeder_base + i as u64 * 8, p);
            tact.on_op(&feeder_op);
            emitted.extend(tact.on_load(&feeder_op, None, &image));
            let target_op = MicroOp::load(
                target_pc,
                ArchReg::new(2),
                Addr::new(p),
                0,
                &[ArchReg::new(1)],
            );
            let hint = tact.feeder_hint(&target_op);
            tact.on_op(&target_op);
            emitted.extend(tact.on_load(&target_op, hint, &image));
        }
        // Every emitted prefetch lands in one of the two legitimate
        // regions: the pointer targets (including Deep-Self stride
        // extrapolation up to 16 elements past the end — the pointers in
        // this synthetic form a perfect stride) or the feeder array.
        let target_region = (1u64 << 30)..(1u64 << 30) + (count + 16) * 4096 + 1;
        let feeder_region = feeder_base..feeder_base + (count + 16) * 8 + 1;
        for a in emitted {
            let ok = target_region.contains(&a.get()) || feeder_region.contains(&a.get());
            assert!(ok, "prefetch to unknown address {a}");
        }
    });
}

/// The prefetch-count cap holds for any input stream.
#[test]
fn per_event_cap_holds() {
    Cases::new(64).run(|rng| {
        let n = rng.gen_range(1usize..200);
        let addrs: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..1 << 16)).collect();
        let cap = rng.gen_range(1usize..6);
        let config = TactConfig {
            max_prefetches_per_event: cap,
            ..TactConfig::paper()
        };
        let mut tact = TactPrefetcher::new(config);
        let image = MemoryImage::new();
        tact.note_critical(Pc::new(0x100));
        for &a in &addrs {
            let out = tact.on_load(&load(0x100, a * 64, 0), None, &image);
            assert!(out.len() <= cap);
        }
    });
}
