//! The structured event model: what a simulator component can report.
//!
//! Every event is cycle-stamped and attributed to a core (shared
//! structures such as the LLC and DRAM report the core that triggered
//! the activity). The taxonomy deliberately mirrors the simulator's
//! microarchitectural structures — see DESIGN.md §8 for the full table.

use std::fmt::Write as _;

/// Cache level, as seen by the observability layer.
///
/// A standalone copy of the hierarchy's level enum so `catch-obs` stays
/// dependency-free below `catch-trace`; producers convert at emit time.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ObsLevel {
    /// L1 instruction cache.
    L1i,
    /// L1 data cache.
    L1d,
    /// Per-core mid-level cache.
    L2,
    /// Shared last-level cache.
    Llc,
    /// Main memory.
    Memory,
}

impl ObsLevel {
    /// Short stable label used in exported traces.
    pub fn label(self) -> &'static str {
        match self {
            ObsLevel::L1i => "l1i",
            ObsLevel::L1d => "l1d",
            ObsLevel::L2 => "l2",
            ObsLevel::Llc => "llc",
            ObsLevel::Memory => "mem",
        }
    }
}

/// DRAM row-buffer outcome, mirrored from `catch-dram`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ObsRowOutcome {
    /// The addressed row was already open.
    Hit,
    /// The bank was precharged; activate only.
    Empty,
    /// A different row was open; precharge + activate.
    Conflict,
}

impl ObsRowOutcome {
    /// Short stable label used in exported traces.
    pub fn label(self) -> &'static str {
        match self {
            ObsRowOutcome::Hit => "hit",
            ObsRowOutcome::Empty => "empty",
            ObsRowOutcome::Conflict => "conflict",
        }
    }
}

/// TACT prefetcher component that produced a target.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ObsTactComponent {
    /// Deep self-targets (same-PC pointer chains).
    Deep,
    /// Cross-PC trigger→target pairs.
    Cross,
    /// Feeder-driven pre-computation targets.
    Feeder,
}

impl ObsTactComponent {
    /// Short stable label used in exported traces.
    pub fn label(self) -> &'static str {
        match self {
            ObsTactComponent::Deep => "deep",
            ObsTactComponent::Cross => "cross",
            ObsTactComponent::Feeder => "feeder",
        }
    }
}

/// What happened (the payload of an [`Event`]).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum EventKind {
    // --- OOO core -----------------------------------------------------
    /// A micro-op was allocated into the ROB.
    Alloc {
        /// Program counter of the micro-op.
        pc: u64,
    },
    /// A micro-op left the scheduler and began execution.
    Exec {
        /// Program counter of the micro-op.
        pc: u64,
        /// Execution latency in cycles (memory ops: observed load-to-use).
        latency: u64,
    },
    /// A micro-op retired.
    Retire {
        /// Program counter of the micro-op.
        pc: u64,
    },
    /// Periodic ROB occupancy sample.
    RobOccupancy {
        /// Entries in use.
        used: u32,
        /// ROB capacity.
        cap: u32,
    },
    /// Periodic scheduler occupancy sample (allocated, not yet started).
    SchedOccupancy {
        /// Entries in use.
        used: u32,
        /// Scheduling-window capacity.
        cap: u32,
    },
    /// Periodic load-MSHR occupancy sample (outstanding loads).
    MshrOccupancy {
        /// Outstanding loads.
        used: u32,
        /// Maximum outstanding loads.
        cap: u32,
    },

    // --- Cache hierarchy ----------------------------------------------
    /// A lookup hit at `level`.
    CacheHit {
        /// Level that supplied the data.
        level: ObsLevel,
        /// Line address.
        line: u64,
    },
    /// A lookup missed at `level` (the walk continues outward).
    CacheMiss {
        /// Level that missed.
        level: ObsLevel,
        /// Line address.
        line: u64,
    },
    /// A line was filled into `level`.
    CacheFill {
        /// Level receiving the fill.
        level: ObsLevel,
        /// Line address.
        line: u64,
    },
    /// An inclusive-LLC victim back-invalidated a private copy at `level`.
    BackInvalidate {
        /// Private level losing its copy.
        level: ObsLevel,
        /// Line address.
        line: u64,
    },
    /// An exclusive-mode LLC hit migrated the line into the private L2.
    ExclusiveMigrate {
        /// Line address.
        line: u64,
    },
    /// In-flight fill (MSHR ledger) occupancy observed at a demand miss.
    CacheMshrOccupancy {
        /// Outstanding fills tracked by the data-side ledger.
        used: u32,
    },

    // --- DRAM ----------------------------------------------------------
    /// A DRAM read was serviced.
    DramRead {
        /// Row-buffer outcome.
        outcome: ObsRowOutcome,
        /// Bank index.
        bank: u32,
        /// Total read latency in core cycles.
        latency: u64,
    },
    /// A posted-write batch drained.
    DramWriteBatch {
        /// Writes in the batch.
        count: u32,
    },
    /// Busy-bank count observed when a read arrived.
    BankBusy {
        /// Banks still command-busy at arrival.
        busy: u32,
        /// Total banks.
        cap: u32,
    },

    // --- TACT prefetcher ------------------------------------------------
    /// A trigger load activated the TACT prefetcher.
    TactTrigger {
        /// Trigger program counter.
        pc: u64,
        /// Trigger line address.
        line: u64,
    },
    /// TACT issued a prefetch for a target line.
    TactTarget {
        /// Component that produced the target.
        component: ObsTactComponent,
        /// Target line address.
        line: u64,
    },
    /// A demand access consumed a TACT-prefetched line (timeliness).
    TactTimely {
        /// Level the prefetch fetched from.
        source: ObsLevel,
        /// Percent of the LLC hit latency the prefetch hid (0–100).
        saved_pct: u8,
    },

    // --- Criticality detector -------------------------------------------
    /// The detector walked the data-dependence graph buffer.
    CritWalk {
        /// Nodes on the reconstructed critical path.
        path_len: u32,
        /// Critical loads observed on that path.
        critical_loads: u32,
    },
    /// A PC was inserted into (or reinforced in) the critical-load table.
    CritInsert {
        /// Load program counter.
        pc: u64,
    },
    /// A PC was evicted from the critical-load table.
    CritEvict {
        /// Evicted program counter.
        pc: u64,
    },

    // --- catch-server job lifecycle -------------------------------------
    //
    // Daemon events carry the scheduler's monotonic event sequence in
    // the `cycle` field and `core = 0`; they are never emitted by a
    // simulator component (see DESIGN.md §12).
    /// A request was admitted as a new job.
    ServerAdmit {
        /// Daemon-assigned job id.
        job: u64,
        /// Queue depth after admission.
        depth: u32,
    },
    /// A request coalesced onto an in-flight job (socket-level dedup).
    ServerCoalesce {
        /// Job the request attached to.
        job: u64,
        /// Waiters on the job after coalescing.
        waiters: u32,
    },
    /// A request was rejected by admission control (queue full or drain).
    ServerReject {
        /// Queue depth at rejection time.
        depth: u32,
    },
    /// A job was picked by the fair-share scheduler and started running.
    ServerDispatch {
        /// Job id.
        job: u64,
        /// Queue depth after dispatch.
        depth: u32,
    },
    /// A job finished; its report was delivered to every waiter.
    ServerComplete {
        /// Job id.
        job: u64,
        /// Waiters the result was delivered to.
        waiters: u32,
    },
    /// The daemon began draining: queued jobs rejected, in-flight finish.
    ServerDrain {
        /// Queued jobs rejected by the drain.
        rejected: u32,
    },
}

/// One cycle-stamped simulator event.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Event {
    /// Core cycle at which the event occurred.
    pub cycle: u64,
    /// Core the event is attributed to.
    pub core: u32,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Stable dotted event name (`component.event`).
    pub fn name(&self) -> &'static str {
        match self.kind {
            EventKind::Alloc { .. } => "core.alloc",
            EventKind::Exec { .. } => "core.exec",
            EventKind::Retire { .. } => "core.retire",
            EventKind::RobOccupancy { .. } => "core.rob_occupancy",
            EventKind::SchedOccupancy { .. } => "core.sched_occupancy",
            EventKind::MshrOccupancy { .. } => "core.mshr_occupancy",
            EventKind::CacheHit { .. } => "cache.hit",
            EventKind::CacheMiss { .. } => "cache.miss",
            EventKind::CacheFill { .. } => "cache.fill",
            EventKind::BackInvalidate { .. } => "cache.back_invalidate",
            EventKind::ExclusiveMigrate { .. } => "cache.exclusive_migrate",
            EventKind::CacheMshrOccupancy { .. } => "cache.mshr_occupancy",
            EventKind::DramRead { .. } => "dram.read",
            EventKind::DramWriteBatch { .. } => "dram.write_batch",
            EventKind::BankBusy { .. } => "dram.bank_busy",
            EventKind::TactTrigger { .. } => "tact.trigger",
            EventKind::TactTarget { .. } => "tact.target",
            EventKind::TactTimely { .. } => "tact.timely",
            EventKind::CritWalk { .. } => "crit.walk",
            EventKind::CritInsert { .. } => "crit.table_insert",
            EventKind::CritEvict { .. } => "crit.table_evict",
            EventKind::ServerAdmit { .. } => "server.admit",
            EventKind::ServerCoalesce { .. } => "server.coalesce",
            EventKind::ServerReject { .. } => "server.reject",
            EventKind::ServerDispatch { .. } => "server.dispatch",
            EventKind::ServerComplete { .. } => "server.complete",
            EventKind::ServerDrain { .. } => "server.drain",
        }
    }

    /// The [`EventClass`](crate::EventClass) this event belongs to
    /// (the class a sink must enable in its mask to receive it).
    pub fn class(&self) -> crate::EventClass {
        use crate::EventClass;
        match self.kind {
            EventKind::Alloc { .. } | EventKind::Exec { .. } | EventKind::Retire { .. } => {
                EventClass::CORE
            }
            EventKind::RobOccupancy { .. }
            | EventKind::SchedOccupancy { .. }
            | EventKind::MshrOccupancy { .. }
            | EventKind::CacheMshrOccupancy { .. }
            | EventKind::BankBusy { .. } => EventClass::OCCUPANCY,
            EventKind::CacheHit { .. }
            | EventKind::CacheMiss { .. }
            | EventKind::CacheFill { .. }
            | EventKind::BackInvalidate { .. }
            | EventKind::ExclusiveMigrate { .. } => EventClass::CACHE,
            EventKind::DramRead { .. } | EventKind::DramWriteBatch { .. } => EventClass::DRAM,
            EventKind::TactTrigger { .. }
            | EventKind::TactTarget { .. }
            | EventKind::TactTimely { .. } => EventClass::TACT,
            EventKind::CritWalk { .. }
            | EventKind::CritInsert { .. }
            | EventKind::CritEvict { .. } => EventClass::CRIT,
            EventKind::ServerAdmit { .. }
            | EventKind::ServerCoalesce { .. }
            | EventKind::ServerReject { .. }
            | EventKind::ServerDispatch { .. }
            | EventKind::ServerComplete { .. }
            | EventKind::ServerDrain { .. } => EventClass::SERVER,
        }
    }

    /// Renders the event arguments as a JSON object (no external deps:
    /// all values are integers or fixed label strings, so no escaping is
    /// ever required).
    pub fn args_json(&self) -> String {
        let mut s = String::with_capacity(48);
        s.push('{');
        match self.kind {
            EventKind::Alloc { pc } | EventKind::Retire { pc } => {
                let _ = write!(s, "\"pc\":{pc}");
            }
            EventKind::Exec { pc, latency } => {
                let _ = write!(s, "\"pc\":{pc},\"latency\":{latency}");
            }
            EventKind::RobOccupancy { used, cap }
            | EventKind::SchedOccupancy { used, cap }
            | EventKind::MshrOccupancy { used, cap } => {
                let _ = write!(s, "\"used\":{used},\"cap\":{cap}");
            }
            EventKind::CacheHit { level, line }
            | EventKind::CacheMiss { level, line }
            | EventKind::CacheFill { level, line }
            | EventKind::BackInvalidate { level, line } => {
                let _ = write!(s, "\"level\":\"{}\",\"line\":{line}", level.label());
            }
            EventKind::ExclusiveMigrate { line } => {
                let _ = write!(s, "\"line\":{line}");
            }
            EventKind::CacheMshrOccupancy { used } => {
                let _ = write!(s, "\"used\":{used}");
            }
            EventKind::DramRead {
                outcome,
                bank,
                latency,
            } => {
                let _ = write!(
                    s,
                    "\"outcome\":\"{}\",\"bank\":{bank},\"latency\":{latency}",
                    outcome.label()
                );
            }
            EventKind::DramWriteBatch { count } => {
                let _ = write!(s, "\"count\":{count}");
            }
            EventKind::BankBusy { busy, cap } => {
                let _ = write!(s, "\"busy\":{busy},\"cap\":{cap}");
            }
            EventKind::TactTrigger { pc, line } => {
                let _ = write!(s, "\"pc\":{pc},\"line\":{line}");
            }
            EventKind::TactTarget { component, line } => {
                let _ = write!(s, "\"component\":\"{}\",\"line\":{line}", component.label());
            }
            EventKind::TactTimely { source, saved_pct } => {
                let _ = write!(
                    s,
                    "\"source\":\"{}\",\"saved_pct\":{saved_pct}",
                    source.label()
                );
            }
            EventKind::CritWalk {
                path_len,
                critical_loads,
            } => {
                let _ = write!(
                    s,
                    "\"path_len\":{path_len},\"critical_loads\":{critical_loads}"
                );
            }
            EventKind::CritInsert { pc } | EventKind::CritEvict { pc } => {
                let _ = write!(s, "\"pc\":{pc}");
            }
            EventKind::ServerAdmit { job, depth } | EventKind::ServerDispatch { job, depth } => {
                let _ = write!(s, "\"job\":{job},\"depth\":{depth}");
            }
            EventKind::ServerCoalesce { job, waiters }
            | EventKind::ServerComplete { job, waiters } => {
                let _ = write!(s, "\"job\":{job},\"waiters\":{waiters}");
            }
            EventKind::ServerReject { depth } => {
                let _ = write!(s, "\"depth\":{depth}");
            }
            EventKind::ServerDrain { rejected } => {
                let _ = write!(s, "\"rejected\":{rejected}");
            }
        }
        s.push('}');
        s
    }

    /// Renders the event as one newline-free JSONL record.
    pub fn to_jsonl(&self) -> String {
        format!(
            "{{\"cycle\":{},\"core\":{},\"name\":\"{}\",\"args\":{}}}",
            self.cycle,
            self.core,
            self.name(),
            self.args_json()
        )
    }

    /// Renders the event as one Chrome `about://tracing` trace-event
    /// object (newline-free). Occupancy samples become counter events
    /// (`"ph":"C"`, plotted as a time series); everything else becomes an
    /// instant event (`"ph":"i"`). Cycles map 1:1 onto microseconds.
    pub fn to_chrome(&self) -> String {
        let counter = matches!(
            self.kind,
            EventKind::RobOccupancy { .. }
                | EventKind::SchedOccupancy { .. }
                | EventKind::MshrOccupancy { .. }
                | EventKind::CacheMshrOccupancy { .. }
                | EventKind::BankBusy { .. }
        );
        if counter {
            format!(
                "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\"tid\":{},\"args\":{}}}",
                self.name(),
                self.cycle,
                self.core,
                self.args_json()
            )
        } else {
            format!(
                "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":0,\"tid\":{},\"args\":{}}}",
                self.name(),
                self.cycle,
                self.core,
                self.args_json()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_rendering_is_stable() {
        let e = Event {
            cycle: 7,
            core: 1,
            kind: EventKind::CacheHit {
                level: ObsLevel::L2,
                line: 42,
            },
        };
        assert_eq!(
            e.to_jsonl(),
            "{\"cycle\":7,\"core\":1,\"name\":\"cache.hit\",\"args\":{\"level\":\"l2\",\"line\":42}}"
        );
    }

    #[test]
    fn occupancy_renders_as_chrome_counter() {
        let e = Event {
            cycle: 3,
            core: 0,
            kind: EventKind::RobOccupancy { used: 10, cap: 224 },
        };
        assert!(e.to_chrome().contains("\"ph\":\"C\""));
        let i = Event {
            cycle: 3,
            core: 0,
            kind: EventKind::Retire { pc: 9 },
        };
        assert!(i.to_chrome().contains("\"ph\":\"i\""));
    }
}
