//! Event sinks: where emitted events go.

use crate::event::Event;

/// Consumes a stream of [`Event`]s.
///
/// Sinks are driven behind the [`Obs`](crate::Obs) handle: `record` is
/// called only when a sink is attached *and* the event's class is
/// enabled, so a detached run never constructs events, let alone
/// records them.
pub trait EventSink {
    /// Records one event.
    fn record(&mut self, event: Event);

    /// Flushes any buffered output (file exporters override this; the
    /// in-memory sinks need no finalisation).
    fn finish(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// A sink that drops every event.
///
/// Attaching `NullSink` exercises the full emit path (mask check, lock,
/// virtual dispatch) without retaining anything — the stats-parity and
/// overhead tests use it to bound instrumentation cost.
#[derive(Copy, Clone, Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn record(&mut self, _event: Event) {}
}

/// A sink that buffers every event in memory (tests, `--profile`).
#[derive(Clone, Debug, Default)]
pub struct VecSink {
    events: Vec<Event>,
}

impl VecSink {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The events recorded so far.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Takes the buffered events, leaving the sink empty.
    pub fn take(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.events)
    }
}

impl EventSink for VecSink {
    fn record(&mut self, event: Event) {
        self.events.push(event);
    }
}

/// A sink that only counts events per name (cheap taxonomy summaries).
#[derive(Clone, Debug, Default)]
pub struct CountingSink {
    counts: Vec<(&'static str, u64)>,
    total: u64,
}

impl CountingSink {
    /// An empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-name counts in first-seen order.
    pub fn counts(&self) -> &[(&'static str, u64)] {
        &self.counts
    }
}

impl EventSink for CountingSink {
    fn record(&mut self, event: Event) {
        self.total += 1;
        let name = event.name();
        match self.counts.iter_mut().find(|(n, _)| *n == name) {
            Some((_, c)) => *c += 1,
            None => self.counts.push((name, 1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn retire(cycle: u64) -> Event {
        Event {
            cycle,
            core: 0,
            kind: EventKind::Retire { pc: cycle },
        }
    }

    #[test]
    fn vec_sink_buffers_in_order() {
        let mut s = VecSink::new();
        s.record(retire(1));
        s.record(retire(2));
        assert_eq!(s.events().len(), 2);
        assert_eq!(s.take()[1].cycle, 2);
        assert!(s.events().is_empty());
    }

    #[test]
    fn counting_sink_groups_by_name() {
        let mut s = CountingSink::new();
        s.record(retire(1));
        s.record(retire(2));
        s.record(Event {
            cycle: 3,
            core: 0,
            kind: EventKind::Alloc { pc: 3 },
        });
        assert_eq!(s.total(), 3);
        assert_eq!(s.counts(), &[("core.retire", 2), ("core.alloc", 1)]);
    }
}
