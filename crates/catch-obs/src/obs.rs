//! The `Obs` handle components hold to emit events.

use crate::event::Event;
use crate::sink::EventSink;
use std::fmt;
use std::sync::{Arc, Mutex};

/// A bitmask of event classes (one bit per simulator component).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct EventClass(u8);

impl EventClass {
    /// No classes.
    pub const NONE: EventClass = EventClass(0);
    /// OOO-core pipeline events (alloc/exec/retire).
    pub const CORE: EventClass = EventClass(1);
    /// Periodic occupancy samples (ROB, scheduler, MSHRs, banks).
    pub const OCCUPANCY: EventClass = EventClass(1 << 1);
    /// Cache-hierarchy events (hit/miss/fill/invalidate/migrate).
    pub const CACHE: EventClass = EventClass(1 << 2);
    /// DRAM events (row outcomes, write batches).
    pub const DRAM: EventClass = EventClass(1 << 3);
    /// TACT prefetcher events (trigger/target/timeliness).
    pub const TACT: EventClass = EventClass(1 << 4);
    /// Criticality-detector events (walks, table churn).
    pub const CRIT: EventClass = EventClass(1 << 5);
    /// `catch-server` job-lifecycle events (admit/dispatch/complete).
    ///
    /// Unlike the simulator classes these are not cycle-stamped by a
    /// core clock: the daemon stamps them with its own monotonic event
    /// sequence number, and no simulator component ever emits them — so
    /// enabling [`EventClass::ALL`] on a simulation run is unaffected.
    pub const SERVER: EventClass = EventClass(1 << 6);
    /// Every class.
    pub const ALL: EventClass = EventClass(0x7f);

    /// True when every bit of `other` is enabled in `self`.
    #[inline]
    pub fn contains(self, other: EventClass) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two masks.
    pub fn with(self, other: EventClass) -> EventClass {
        EventClass(self.0 | other.0)
    }
}

/// Shared handle to an optional event sink plus a class mask.
///
/// Cloning is cheap (an `Option<Arc>` and a byte); every component in a
/// system holds its own clone. The handle is `Send`-friendly because the
/// DRAM backend — which holds one — must stay `Send` for the parallel
/// runner.
///
/// The disabled path is the design center: [`Obs::off`] stores `None`,
/// so [`Obs::emit`] is a single branch and the event-construction
/// closure is never invoked. See DESIGN.md §8 for the measured cost.
#[derive(Clone, Default)]
pub struct Obs {
    link: Option<Arc<Mutex<dyn EventSink + Send>>>,
    mask: EventClass,
}

impl Obs {
    /// A detached handle: every `emit` is a no-op branch.
    pub fn off() -> Self {
        Obs::default()
    }

    /// A handle delivering events of the enabled classes to `sink`.
    ///
    /// Callers keep their own `Arc` to the sink when they need to read
    /// it back after the run (e.g. a `VecSink` in tests).
    pub fn attached<S: EventSink + Send + 'static>(sink: Arc<Mutex<S>>, mask: EventClass) -> Self {
        Obs {
            link: Some(sink),
            mask,
        }
    }

    /// True when a sink is attached (regardless of mask).
    pub fn is_attached(&self) -> bool {
        self.link.is_some()
    }

    /// True when events of `class` would actually be recorded.
    ///
    /// Producers use this to skip *preparatory* work (e.g. scanning bank
    /// state for a busy count) that the emit closure alone would not
    /// avoid.
    ///
    /// The mask is tested before the link: a detached handle keeps the
    /// default `NONE` mask, so the detached *and* the fully-masked paths
    /// both reject on the same single byte test (the `obs-smoke` gate
    /// times the two against each other).
    #[inline]
    pub fn wants(&self, class: EventClass) -> bool {
        self.mask.contains(class) && self.link.is_some()
    }

    /// Emits the event built by `build` if a sink is attached and
    /// `class` is enabled. The closure runs only on the enabled path, so
    /// disabled runs never construct an [`Event`].
    #[inline]
    pub fn emit<F: FnOnce() -> Event>(&self, class: EventClass, build: F) {
        if self.mask.contains(class) {
            if let Some(link) = &self.link {
                link.lock()
                    .expect("event sink lock poisoned")
                    .record(build());
            }
        }
    }

    /// Flushes the attached sink (no-op when detached).
    pub fn finish(&self) -> std::io::Result<()> {
        match &self.link {
            Some(link) => link.lock().expect("event sink lock poisoned").finish(),
            None => Ok(()),
        }
    }
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.link.is_some() {
            write!(f, "Obs(attached, mask={:?})", self.mask)
        } else {
            write!(f, "Obs(off)")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::sink::VecSink;

    fn ev() -> Event {
        Event {
            cycle: 1,
            core: 0,
            kind: EventKind::Retire { pc: 2 },
        }
    }

    #[test]
    fn off_never_invokes_the_closure() {
        let obs = Obs::off();
        obs.emit(EventClass::CORE, || unreachable!("closure ran while off"));
        assert!(!obs.wants(EventClass::CORE));
        assert!(obs.finish().is_ok());
    }

    #[test]
    fn mask_filters_classes() {
        let sink = Arc::new(Mutex::new(VecSink::new()));
        let obs = Obs::attached(sink.clone(), EventClass::CACHE);
        obs.emit(EventClass::CORE, ev);
        obs.emit(EventClass::CACHE, ev);
        assert!(obs.wants(EventClass::CACHE));
        assert!(!obs.wants(EventClass::CORE));
        assert_eq!(sink.lock().unwrap().events().len(), 1);
    }

    #[test]
    fn mask_algebra() {
        let m = EventClass::CORE.with(EventClass::DRAM);
        assert!(m.contains(EventClass::CORE));
        assert!(m.contains(EventClass::DRAM));
        assert!(!m.contains(EventClass::CACHE));
        assert!(EventClass::ALL.contains(m));
        assert!(!EventClass::NONE.contains(EventClass::CORE));
    }
}
