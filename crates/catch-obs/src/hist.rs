//! Always-on occupancy histograms folded into the stats machinery.
//!
//! Unlike the event stream (opt-in, per-event), these histograms are
//! cheap enough to maintain unconditionally: producers sample structure
//! occupancy on a fixed cycle cadence and fold the result into their
//! stats blocks, so every run — traced or not — reports per-structure
//! utilization through the existing `Counters`/report path.

use catch_trace::counters::{
    monotonic_delta, push_counter, CounterSource, CounterVec, Counters, FromCounters,
};

/// Number of relative-occupancy buckets (eighths of capacity).
pub const OCC_BUCKETS: usize = 8;

/// Cycle cadence at which producers sample occupancy (power of two so
/// the check is a mask).
pub const OCC_SAMPLE_PERIOD: u64 = 32;

/// A fixed-bucket occupancy histogram over `used / capacity`.
///
/// Bucket `i` counts samples with `used/cap` in `[i/8, (i+1)/8)`; the
/// last bucket also holds completely full samples. `sum`/`samples`/`max`
/// give the mean and peak in absolute entries.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct OccupancyHist {
    /// Samples taken.
    pub samples: u64,
    /// Sum of sampled occupancies (entries).
    pub sum: u64,
    /// Peak sampled occupancy (entries).
    pub max: u64,
    /// Relative-occupancy buckets (eighths of capacity).
    pub buckets: [u64; OCC_BUCKETS],
}

impl OccupancyHist {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample of `used` entries out of `cap`.
    #[inline]
    pub fn record(&mut self, used: u64, cap: u64) {
        self.samples += 1;
        self.sum += used;
        if used > self.max {
            self.max = used;
        }
        let cap = cap.max(1);
        let idx = ((used * OCC_BUCKETS as u64) / cap).min(OCC_BUCKETS as u64 - 1);
        self.buckets[idx as usize] += 1;
    }

    /// Mean sampled occupancy in entries (0 when never sampled).
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum as f64 / self.samples as f64
        }
    }

    /// Fraction of samples at or above `bucket` (eighths of capacity);
    /// 0 when never sampled.
    pub fn fraction_at_or_above(&self, bucket: usize) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        let hi: u64 = self.buckets[bucket.min(OCC_BUCKETS - 1)..].iter().sum();
        hi as f64 / self.samples as f64
    }

    /// Combines two snapshots field-by-field with `f` (`max` combines
    /// with `g`, which differs: deltas keep the later peak).
    fn zip(&self, other: &Self, f: impl Fn(u64, u64) -> u64, g: impl Fn(u64, u64) -> u64) -> Self {
        let mut buckets = [0u64; OCC_BUCKETS];
        for (i, b) in buckets.iter_mut().enumerate() {
            *b = f(self.buckets[i], other.buckets[i]);
        }
        OccupancyHist {
            samples: f(self.samples, other.samples),
            sum: f(self.sum, other.sum),
            max: g(self.max, other.max),
            buckets,
        }
    }

    /// Per-counter difference against an `earlier` snapshot. The peak is
    /// not differenced (it is a high-water mark, not a monotone count):
    /// the later snapshot's peak is kept.
    pub fn minus(&self, earlier: &Self) -> Self {
        self.zip(earlier, monotonic_delta, |later, _| later)
    }

    /// Accumulates `weight` copies of `delta` into `self` (saturating);
    /// the peak accumulates as a max.
    pub fn add_scaled(&mut self, delta: &Self, weight: u64) {
        *self = self.zip(
            delta,
            |a, d| a.saturating_add(d.saturating_mul(weight)),
            u64::max,
        );
    }
}

impl Counters for OccupancyHist {
    fn counters_into(&self, prefix: &str, out: &mut CounterVec) {
        push_counter(out, prefix, "samples", self.samples);
        push_counter(out, prefix, "sum", self.sum);
        push_counter(out, prefix, "max", self.max);
        for (i, b) in self.buckets.iter().enumerate() {
            push_counter(out, prefix, &format!("bucket{i}"), *b);
        }
    }
}

impl FromCounters for OccupancyHist {
    fn from_counters(prefix: &str, src: &mut CounterSource) -> Result<Self, String> {
        let mut h = OccupancyHist {
            samples: src.take(prefix, "samples")?,
            sum: src.take(prefix, "sum")?,
            max: src.take(prefix, "max")?,
            buckets: [0; OCC_BUCKETS],
        };
        for (i, b) in h.buckets.iter_mut().enumerate() {
            *b = src.take(prefix, &format!("bucket{i}"))?;
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_buckets() {
        let mut h = OccupancyHist::new();
        h.record(0, 8); // bucket 0
        h.record(4, 8); // bucket 4
        h.record(8, 8); // full → last bucket
        assert_eq!(h.samples, 3);
        assert_eq!(h.max, 8);
        assert!((h.mean() - 4.0).abs() < 1e-12);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[4], 1);
        assert_eq!(h.buckets[7], 1);
        assert!((h.fraction_at_or_above(4) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_capacity_is_safe() {
        let mut h = OccupancyHist::new();
        h.record(0, 0);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(OccupancyHist::new().mean(), 0.0);
        assert_eq!(OccupancyHist::new().fraction_at_or_above(0), 0.0);
    }

    #[test]
    fn minus_and_add_scaled_round_trip() {
        let mut early = OccupancyHist::new();
        early.record(2, 8);
        let mut late = early;
        late.record(6, 8);
        let delta = late.minus(&early);
        assert_eq!(delta.samples, 1);
        assert_eq!(delta.sum, 6);
        assert_eq!(delta.max, 6, "peak keeps the later high-water mark");
        let mut acc = OccupancyHist::new();
        acc.add_scaled(&delta, 3);
        assert_eq!(acc.samples, 3);
        assert_eq!(acc.sum, 18);
        assert_eq!(acc.max, 6);
    }

    #[test]
    fn counters_are_exhaustive_and_ordered() {
        let mut h = OccupancyHist::new();
        h.record(3, 8);
        let c = h.counters("rob");
        assert_eq!(c[0].0, "rob.samples");
        assert_eq!(c.len(), 3 + OCC_BUCKETS);
        assert_eq!(c.last().unwrap().0, "rob.bucket7");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-monotonic")]
    fn minus_rejects_non_monotonic_snapshots() {
        let mut early = OccupancyHist::new();
        early.record(2, 8);
        OccupancyHist::new().minus(&early);
    }
}
