//! `catch-obs`: cycle-stamped structured observability for the CATCH
//! simulator.
//!
//! Simulator components (core, caches, DRAM, prefetcher, criticality
//! detector) hold a cheap [`Obs`] handle and report [`Event`]s through
//! it. A detached handle ([`Obs::off`]) reduces every emit site to a
//! single predictable branch — the event-construction closure never
//! runs — so untraced simulations pay nothing measurable (the CI
//! `obs-smoke` gate bounds this; see DESIGN.md §8).
//!
//! Attached sinks implement [`EventSink`]: in-memory buffers for tests
//! and profiling ([`VecSink`], [`CountingSink`]), and two streaming file
//! exporters — Chrome `about://tracing` JSON ([`ChromeTraceSink`]) and
//! newline-delimited JSON ([`JsonlSink`]). Parallel suite runs write
//! per-worker part files stitched deterministically by [`merge_parts`].
//!
//! Orthogonally, [`OccupancyHist`] provides always-on per-structure
//! utilization histograms that components fold into their regular stats
//! blocks (ROB, scheduler, MSHRs, DRAM banks), reported through the
//! existing `Counters` machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod hist;
pub mod json_lint;
mod obs;
pub mod sink;

pub use event::{Event, EventKind, ObsLevel, ObsRowOutcome, ObsTactComponent};
pub use export::{merge_parts, part_path, ChromeTraceSink, JsonlSink, TraceFormat};
pub use hist::{OccupancyHist, OCC_BUCKETS, OCC_SAMPLE_PERIOD};
pub use obs::{EventClass, Obs};
pub use sink::{CountingSink, EventSink, NullSink, VecSink};
