//! A minimal JSON well-formedness checker (no external deps).
//!
//! The workspace has no serialisation dependency, but the trace tests
//! must assert that exported files are loadable JSON. This is a strict
//! recursive-descent validator over the JSON grammar — it accepts
//! exactly one top-level value and rejects trailing garbage. It does
//! not build a document; it only validates.

/// Validates that `text` is one well-formed JSON value.
pub fn validate_json(text: &str) -> Result<(), String> {
    let b = text.as_bytes();
    let mut pos = skip_ws(b, 0);
    pos = value(b, pos, 0)?;
    pos = skip_ws(b, pos);
    if pos != b.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(())
}

const MAX_DEPTH: usize = 64;

fn skip_ws(b: &[u8], mut pos: usize) -> usize {
    while pos < b.len() && matches!(b[pos], b' ' | b'\t' | b'\n' | b'\r') {
        pos += 1;
    }
    pos
}

fn value(b: &[u8], pos: usize, depth: usize) -> Result<usize, String> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep".into());
    }
    match b.get(pos) {
        Some(b'{') => object(b, pos + 1, depth + 1),
        Some(b'[') => array(b, pos + 1, depth + 1),
        Some(b'"') => string(b, pos + 1),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {pos}", *c as char)),
        None => Err("unexpected end of input".into()),
    }
}

fn literal(b: &[u8], pos: usize, word: &[u8]) -> Result<usize, String> {
    if b.len() >= pos + word.len() && &b[pos..pos + word.len()] == word {
        Ok(pos + word.len())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn number(b: &[u8], mut pos: usize) -> Result<usize, String> {
    let start = pos;
    if b.get(pos) == Some(&b'-') {
        pos += 1;
    }
    let digits = |b: &[u8], mut p: usize| {
        let s = p;
        while p < b.len() && b[p].is_ascii_digit() {
            p += 1;
        }
        (p, p > s)
    };
    let (p, ok) = digits(b, pos);
    if !ok {
        return Err(format!("bad number at byte {start}"));
    }
    pos = p;
    if b.get(pos) == Some(&b'.') {
        let (p, ok) = digits(b, pos + 1);
        if !ok {
            return Err(format!("bad number at byte {start}"));
        }
        pos = p;
    }
    if matches!(b.get(pos), Some(b'e') | Some(b'E')) {
        pos += 1;
        if matches!(b.get(pos), Some(b'+') | Some(b'-')) {
            pos += 1;
        }
        let (p, ok) = digits(b, pos);
        if !ok {
            return Err(format!("bad number at byte {start}"));
        }
        pos = p;
    }
    Ok(pos)
}

fn string(b: &[u8], mut pos: usize) -> Result<usize, String> {
    // `pos` is just past the opening quote.
    while let Some(&c) = b.get(pos) {
        match c {
            b'"' => return Ok(pos + 1),
            b'\\' => match b.get(pos + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => pos += 2,
                Some(b'u') => {
                    let hex = b.get(pos + 2..pos + 6).ok_or("truncated \\u escape")?;
                    if !hex.iter().all(u8::is_ascii_hexdigit) {
                        return Err(format!("bad \\u escape at byte {pos}"));
                    }
                    pos += 6;
                }
                _ => return Err(format!("bad escape at byte {pos}")),
            },
            0x00..=0x1f => return Err(format!("raw control byte in string at {pos}")),
            _ => pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn object(b: &[u8], mut pos: usize, depth: usize) -> Result<usize, String> {
    pos = skip_ws(b, pos);
    if b.get(pos) == Some(&b'}') {
        return Ok(pos + 1);
    }
    loop {
        pos = skip_ws(b, pos);
        if b.get(pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        pos = string(b, pos + 1)?;
        pos = skip_ws(b, pos);
        if b.get(pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        pos = skip_ws(b, pos + 1);
        pos = value(b, pos, depth)?;
        pos = skip_ws(b, pos);
        match b.get(pos) {
            Some(b',') => pos += 1,
            Some(b'}') => return Ok(pos + 1),
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn array(b: &[u8], mut pos: usize, depth: usize) -> Result<usize, String> {
    pos = skip_ws(b, pos);
    if b.get(pos) == Some(&b']') {
        return Ok(pos + 1);
    }
    loop {
        pos = skip_ws(b, pos);
        pos = value(b, pos, depth)?;
        pos = skip_ws(b, pos);
        match b.get(pos) {
            Some(b',') => pos += 1,
            Some(b']') => return Ok(pos + 1),
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-1.5e+10",
            "\"a\\nb\\u00ff\"",
            "{\"traceEvents\":[{\"name\":\"x\",\"ts\":1,\"args\":{\"a\":[1,2]}}]}",
            " { \"k\" : [ true , false , null ] } ",
        ] {
            validate_json(ok).unwrap_or_else(|e| panic!("rejected {ok}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "{'a':1}",
            "01x",
            "\"unterminated",
            "{} {}",
            "[1 2]",
            "nul",
        ] {
            assert!(validate_json(bad).is_err(), "accepted {bad:?}");
        }
    }
}
